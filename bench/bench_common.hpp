// Shared helpers for the figure/table reproduction binaries.
//
// Each bench prints the rows/series of one table or figure from the paper's
// evaluation section, with the paper's reported values alongside where they
// are given, so the shape comparison is immediate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/artifacts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/synthetic.hpp"

namespace bm::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// The paper's standard setup: smallbank, 2-outof-2, 4-org network.
inline workload::SyntheticSpec standard_spec() {
  workload::SyntheticSpec spec;
  spec.blocks = 40;
  spec.block_size = 150;
  spec.ends_attached = 2;
  spec.chaincode = "smallbank";
  spec.policy_text = "2-outof-2 orgs";
  spec.org_count = 4;
  spec.reads_per_tx = 2.0;
  spec.writes_per_tx = 2.0;
  spec.hw.tx_validators = 8;
  spec.hw.engines_per_vscc = 2;
  return spec;
}

/// drm has fewer database requests per transaction (Fig. 8 discussion).
inline workload::SyntheticSpec drm_spec() {
  workload::SyntheticSpec spec = standard_spec();
  spec.chaincode = "drm";
  spec.reads_per_tx = 2.0 / 3.0;
  spec.writes_per_tx = 1.0;
  return spec;
}

/// Standard metadata preamble for bench JSON artifacts. Every artifact
/// opens with a schema_version, the bench name, the seed the runs used and
/// the knob values that shaped them (`config` is a JSON object literal), so
/// a consumer can validate provenance without reconstructing the command
/// line. Bump the version when a bench's artifact layout changes shape.
inline std::string artifact_meta(const std::string& bench, std::uint64_t seed,
                                 const std::string& config) {
  std::ostringstream out;
  out << "  \"schema_version\": 1,\n  \"kind\": \"bench\",\n  \"bench\": \""
      << bench << "\",\n  \"seed\": " << seed
      << ",\n  \"config\": " << config << ",\n";
  return out.str();
}

/// Optional observability for the figure benches: pass
/// --trace-out FILE / --metrics-out FILE / --metrics-text FILE to any bench
/// and every simulated run it performs is traced (one Chrome-trace process
/// per run, labeled) and its metrics published into one shared registry.
/// Without these flags `run()` is exactly `workload::run_hw_workload()`.
///
/// Counters in the shared registry accumulate across the bench's runs;
/// gauges and histograms reflect the union (last writer wins for gauges).
class Observability {
 public:
  Observability(int argc, char** argv) {
    // Permissive: benches take only the shared observability flags and must
    // not choke on anything else on their command line.
    cli::ArgParser parser(cli::ArgParser::Unknown::kIgnore);
    flags_.register_with(parser);
    parser.parse(argc, argv);
  }

  bool enabled() const { return flags_.wants_obs(); }

  /// Run the hardware workload, instrumented when enabled. `label` names
  /// the run's process group in the trace (e.g. "block_size 150").
  workload::HwRunResult run(workload::SyntheticSpec spec,
                            const std::string& label) {
    if (enabled()) {
      tracer_.begin_process(label);
      spec.registry = &registry_;
      spec.tracer = &tracer_;
    }
    const auto result = workload::run_hw_workload(spec);
    at_ = std::max(at_, static_cast<sim::Time>(result.sim_seconds *
                                               static_cast<double>(
                                                   sim::kSecond)));
    return result;
  }

  /// Write the requested artifacts. Call once, after the last run. Returns
  /// 0 on success (or when disabled).
  int finish() const {
    return obs::write_artifacts(flags_, registry_, tracer_, at_);
  }

  obs::Registry& registry() { return registry_; }
  obs::Tracer& tracer() { return tracer_; }

  /// For benches that instrument a simulation directly (rather than via
  /// run()): record the simulated end time the metrics snapshot is taken at.
  void note_time(sim::Time at) { at_ = std::max(at_, at); }

 private:
  cli::CommonFlags flags_;
  obs::Registry registry_;
  obs::Tracer tracer_;
  sim::Time at_ = 0;
};

}  // namespace bm::bench

// Shared helpers for the figure/table reproduction binaries.
//
// Each bench prints the rows/series of one table or figure from the paper's
// evaluation section, with the paper's reported values alongside where they
// are given, so the shape comparison is immediate.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "workload/synthetic.hpp"

namespace bm::bench {

inline void title(const std::string& text) {
  std::printf("\n=== %s ===\n", text.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// The paper's standard setup: smallbank, 2-outof-2, 4-org network.
inline workload::SyntheticSpec standard_spec() {
  workload::SyntheticSpec spec;
  spec.blocks = 40;
  spec.block_size = 150;
  spec.ends_attached = 2;
  spec.chaincode = "smallbank";
  spec.policy_text = "2-outof-2 orgs";
  spec.org_count = 4;
  spec.reads_per_tx = 2.0;
  spec.writes_per_tx = 2.0;
  spec.hw.tx_validators = 8;
  spec.hw.engines_per_vscc = 2;
  return spec;
}

/// drm has fewer database requests per transaction (Fig. 8 discussion).
inline workload::SyntheticSpec drm_spec() {
  workload::SyntheticSpec spec = standard_spec();
  spec.chaincode = "drm";
  spec.reads_per_tx = 2.0 / 3.0;
  spec.writes_per_tx = 1.0;
  return spec;
}

}  // namespace bm::bench

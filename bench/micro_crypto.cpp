// Microbenchmarks for the crypto substrate (google-benchmark).
//
// These measure the host CPU's software implementations — the operations
// the paper offloads. A software ECDSA verification in the hundreds of
// microseconds is exactly the §4.3 observation that motivates parallel
// ecdsa_engines (145 us each in hardware).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/der.hpp"
#include "crypto/ecdsa.hpp"

namespace {

using namespace bm;
using namespace bm::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data = Rng(1).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EcdsaSign(benchmark::State& state) {
  const PrivateKey key = key_from_seed(to_bytes("bench"));
  const Digest digest = sha256(to_bytes("message"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sign(key, digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const PrivateKey key = key_from_seed(to_bytes("bench"));
  const PublicKey pub = key.public_key();
  const Digest digest = sha256(to_bytes("message"));
  const Signature sig = sign(key, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(pub, digest, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_DerRoundTrip(benchmark::State& state) {
  const PrivateKey key = key_from_seed(to_bytes("bench"));
  const Signature sig = sign(key, sha256(to_bytes("m")));
  for (auto _ : state) {
    const Bytes der = der_encode_signature(sig);
    benchmark::DoNotOptimize(der_decode_signature(der));
  }
}
BENCHMARK(BM_DerRoundTrip);

void BM_FieldMul(benchmark::State& state) {
  Rng rng(2);
  U256 a = mod(U256::from_bytes_be(rng.bytes(32)), p256_p());
  const U256 b = mod(U256::from_bytes_be(rng.bytes(32)), p256_p());
  for (auto _ : state) {
    a = fp_mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInv(benchmark::State& state) {
  Rng rng(3);
  U256 a = mod(U256::from_bytes_be(rng.bytes(32)), p256_p());
  for (auto _ : state) {
    a = fp_inv(a);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldInv);

void BM_ModNReduce(benchmark::State& state) {
  // The scalar-field workhorse: 512-bit product reduced mod n via the
  // limb-wise Knuth division (bit-by-bit before the fast path landed).
  Rng rng(4);
  U512 a;
  for (auto& w : a.w) w = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mod(a, p256_n()));
  }
}
BENCHMARK(BM_ModNReduce);

void BM_ScalarMultNaive(benchmark::State& state) {
  const AffinePoint q = key_from_seed(to_bytes("sm")).public_key().point;
  const U256 k = mod(U256::from_bytes_be(Rng(5).bytes(32)), p256_n());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar_mult_naive(k, q));
  }
}
BENCHMARK(BM_ScalarMultNaive);

void BM_ScalarMultWnaf(benchmark::State& state) {
  const AffinePoint q = key_from_seed(to_bytes("sm")).public_key().point;
  const U256 k = mod(U256::from_bytes_be(Rng(5).bytes(32)), p256_n());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar_mult_wnaf(k, q));
  }
}
BENCHMARK(BM_ScalarMultWnaf);

void BM_BaseMultComb(benchmark::State& state) {
  const U256 k = mod(U256::from_bytes_be(Rng(6).bytes(32)), p256_n());
  benchmark::DoNotOptimize(base_mult(k));  // warm the table outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(base_mult(k));
  }
}
BENCHMARK(BM_BaseMultComb);

void BM_DoubleScalarMult(benchmark::State& state) {
  const AffinePoint q = key_from_seed(to_bytes("dsm")).public_key().point;
  Rng rng(7);
  const U256 u1 = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
  const U256 u2 = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
  benchmark::DoNotOptimize(double_scalar_mult(u1, u2, q));
  for (auto _ : state) {
    benchmark::DoNotOptimize(double_scalar_mult(u1, u2, q));
  }
}
BENCHMARK(BM_DoubleScalarMult);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks for the crypto substrate (google-benchmark).
//
// These measure the host CPU's software implementations — the operations
// the paper offloads. A software ECDSA verification in the hundreds of
// microseconds is exactly the §4.3 observation that motivates parallel
// ecdsa_engines (145 us each in hardware).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/der.hpp"
#include "crypto/ecdsa.hpp"

namespace {

using namespace bm;
using namespace bm::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data = Rng(1).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EcdsaSign(benchmark::State& state) {
  const PrivateKey key = key_from_seed(to_bytes("bench"));
  const Digest digest = sha256(to_bytes("message"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sign(key, digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const PrivateKey key = key_from_seed(to_bytes("bench"));
  const PublicKey pub = key.public_key();
  const Digest digest = sha256(to_bytes("message"));
  const Signature sig = sign(key, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(pub, digest, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_DerRoundTrip(benchmark::State& state) {
  const PrivateKey key = key_from_seed(to_bytes("bench"));
  const Signature sig = sign(key, sha256(to_bytes("m")));
  for (auto _ : state) {
    const Bytes der = der_encode_signature(sig);
    benchmark::DoNotOptimize(der_decode_signature(der));
  }
}
BENCHMARK(BM_DerRoundTrip);

void BM_FieldMul(benchmark::State& state) {
  Rng rng(2);
  U256 a = mod(U256::from_bytes_be(rng.bytes(32)), p256_p());
  const U256 b = mod(U256::from_bytes_be(rng.bytes(32)), p256_p());
  for (auto _ : state) {
    a = fp_mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

}  // namespace

BENCHMARK_MAIN();

// Figures 7c & 7d: the full block-size x parallelism grid for the software
// validator peer (7c) and the BMac peer (7d), smallbank, 2-outof-2.
//
// Paper shape: sw_validator tops out around 5,600 tps; BMac spans
// 22,900-95,600 tps — a 17x best-case improvement. Per-transaction
// validation latency for BMac is ~0.3 ms.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  const int block_sizes[] = {50, 100, 150, 200, 250};
  const int parallel[] = {4, 8, 16};

  bench::title("Fig 7c - sw_validator throughput (tps), block size x vCPUs");
  std::printf("%-12s", "block\\vcpus");
  for (const int v : parallel) std::printf("%10d", v);
  std::printf("\n");
  bench::rule(46);
  double sw_max = 0;
  for (const int size : block_sizes) {
    std::printf("%-12d", size);
    for (const int v : parallel) {
      auto spec = bench::standard_spec();
      spec.block_size = size;
      const double tps = workload::run_sw_model(spec, v).validator_tps;
      sw_max = std::max(sw_max, tps);
      std::printf("%10.0f", tps);
    }
    std::printf("\n");
  }

  bench::title("Fig 7d - BMac throughput (tps), block size x tx_validators");
  std::printf("%-12s", "block\\txval");
  for (const int v : parallel) std::printf("%10d", v);
  std::printf("\n");
  bench::rule(46);
  double hw_min = 1e18, hw_max = 0, tx_latency = 0;
  for (const int size : block_sizes) {
    std::printf("%-12d", size);
    for (const int v : parallel) {
      auto spec = bench::standard_spec();
      spec.block_size = size;
      spec.hw.tx_validators = v;
      const auto hw = obs.run(spec, "block " + std::to_string(size) + " V" +
                                        std::to_string(v));
      hw_min = std::min(hw_min, hw.tps);
      hw_max = std::max(hw_max, hw.tps);
      tx_latency = hw.tx_latency_us;
      std::printf("%10.0f", hw.tps);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("sw max: %.0f tps (paper: 5,600)\n", sw_max);
  std::printf("bmac range: %.0f - %.0f tps (paper: 22,900 - 95,600)\n",
              hw_min, hw_max);
  std::printf("best-case speedup: %.1fx (paper: 17x)\n", hw_max / sw_max);
  std::printf("bmac tx validation latency: %.0f us (paper: ~0.3 ms; "
              "StreamChain's best software latency: 0.7 ms)\n", tx_latency);
  return obs.finish();
}

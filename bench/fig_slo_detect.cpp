// SLO detection latency: how long after a fault (or an overload) begins
// does the burn-rate monitor raise its alert, in simulated time?
// (docs/OBSERVABILITY.md)
//
// Three runs, all on the same monitor rules the tools ship by default:
//
//   clean    — steady serve traffic well under capacity. The monitor must
//              stay silent: zero fires is the false-positive check.
//   overload — open-loop traffic at 3x the endorsement knee. Admission
//              shedding starts as soon as the token bucket drains; the
//              shed_burn ratio rule must fire within its long window of
//              the first shed (detection latency, measured sample-to-fire).
//   fault    — chaos run with a data+ack partition injected at a known
//              onset. The peer's watchdog firing is the symptom; the
//              watchdog_activity rate rule must fire within its window of
//              the symptom (the flight recorder pins the symptom time).
//
// Emits the detection latencies as JSON (stdout, and --out FILE when
// given). Acceptance: clean run fires nothing, both detections are
// bounded by their rule's longest window plus one evaluation tick.
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "net/faults.hpp"
#include "obs/telemetry.hpp"
#include "serve/pipeline.hpp"
#include "workload/chaos.hpp"

namespace {

using namespace bm;

// The loadsweep serving configuration: 2 endorser lanes at ~1 ms/tx gives
// a ~2000 tps knee (bench/fig_serve_loadsweep.cpp).
serve::ServeOptions serve_scenario(double offered_tps) {
  serve::ServeOptions options;
  options.name = "slo_detect";
  options.network.seed = 7;
  options.traffic.seed = 7 ^ 0x9E3779B97F4A7C15ull;
  options.traffic.rate_tps = offered_tps;
  options.duration = 300 * sim::kMillisecond;
  options.admission.queue_capacity = 128;
  options.endorse.workers = 2;
  options.endorse.service_base = sim::kMillisecond;
  options.endorse.per_endorsement = 0;
  options.endorse.deadline = 50 * sim::kMillisecond;
  options.ingress.max_batch = 50;
  options.ingress.batch_timeout = 25 * sim::kMillisecond;
  return options;
}

obs::SloConfig serve_rules() {
  obs::SloConfig config;
  config.name = "slo_detect_serve";
  config.evaluation_interval = 5 * sim::kMillisecond;
  obs::SloRule shed;
  shed.name = "shed_burn";
  shed.kind = obs::SloRuleKind::kRatio;
  shed.metric = "serve_admission_shed_total";
  shed.denominator = "serve_admission_offered_total";
  shed.threshold = 0.05;
  shed.burn_rate = 2.0;
  shed.min_count = 20;
  shed.windows = {25 * sim::kMillisecond, 250 * sim::kMillisecond};
  config.rules.push_back(shed);
  return config;
}

obs::SloConfig chaos_rules() {
  obs::SloConfig config;
  config.name = "slo_detect_chaos";
  config.evaluation_interval = 5 * sim::kMillisecond;
  obs::SloRule watchdog;
  watchdog.name = "watchdog_activity";
  watchdog.kind = obs::SloRuleKind::kRateAbove;
  watchdog.metric = "bmac_watchdog_fires_total";
  watchdog.threshold = 0.5;
  watchdog.windows = {100 * sim::kMillisecond};
  config.rules.push_back(watchdog);
  return config;
}

// The faults_partition.json scenario, inlined: a data+ack partition from
// 60 ms to 240 ms plus light background loss.
constexpr sim::Time kFaultOnset = 60 * sim::kMillisecond;
constexpr const char* kPartitionScenario = R"({
  "name": "partition",
  "seed": 4004,
  "data": {"loss": {"good": 0.02, "bad": 0.02}, "partitions_ms": [[60, 240]]},
  "ack": {"partitions_ms": [[60, 240]]}
})";

obs::TimeSeriesConfig sampler_config() {
  obs::TimeSeriesConfig config;
  config.interval = 5 * sim::kMillisecond;
  return config;
}

double ms(sim::Time t) {
  return static_cast<double>(t) / static_cast<double>(sim::kMillisecond);
}

/// First sample time at which `metric` is non-zero, or -1 when it never is.
double first_nonzero_ms(const obs::TimeSeriesSampler& sampler,
                        const std::string& metric) {
  const auto values = sampler.values(metric);
  const auto& at = sampler.sample_times();
  for (std::size_t i = 0; i < values.size() && i < at.size(); ++i)
    if (values[i] > 0) return ms(at[i]);
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  cli::ArgParser parser(cli::ArgParser::Unknown::kIgnore);
  parser.add_string("--out", &out_path, "write the result JSON here too");
  parser.parse(argc, argv);

  bench::title("SLO burn-rate monitor: detection latency (sim time)");

  // --- clean: steady traffic, the monitor must stay silent ---------------
  obs::Registry clean_registry;
  obs::Telemetry clean_telemetry;
  clean_telemetry.configure(sampler_config(), serve_rules());
  const serve::ServeReport clean = serve::run_serve(
      serve_scenario(1000), &clean_registry, nullptr, &clean_telemetry);
  const std::uint64_t clean_fires = clean_telemetry.slo()->fires();
  std::printf("clean    | 1000 tps offered, %6.1f tps goodput | fires: %llu "
              "(want 0)\n",
              clean.goodput_tps,
              static_cast<unsigned long long>(clean_fires));

  // --- overload: 3x the knee, shed_burn must fire promptly ---------------
  obs::Registry over_registry;
  obs::Telemetry over_telemetry;
  over_telemetry.configure(sampler_config(), serve_rules());
  const serve::ServeReport over = serve::run_serve(
      serve_scenario(6000), &over_registry, nullptr, &over_telemetry);
  const double shed_onset_ms = first_nonzero_ms(
      *over_telemetry.sampler(), "serve_admission_shed_total");
  const auto over_fire = over_telemetry.slo()->first_fire("shed_burn");
  const double over_fire_ms = over_fire ? ms(*over_fire) : -1;
  const double over_detect_ms =
      over_fire && shed_onset_ms >= 0 ? over_fire_ms - shed_onset_ms : -1;
  std::printf("overload | 6000 tps offered, %6.1f tps goodput | first shed "
              "~%.0f ms, alert %.0f ms => detect %.0f ms\n",
              over.goodput_tps, shed_onset_ms, over_fire_ms, over_detect_ms);

  // --- fault: partition at a known onset, watchdog rule must catch it ----
  std::string fault_error;
  const auto scenario =
      net::parse_fault_scenario(kPartitionScenario, &fault_error);
  if (!scenario) {
    std::fprintf(stderr, "fault scenario: %s\n", fault_error.c_str());
    return 2;
  }
  workload::ChaosOptions chaos;
  chaos.scenario = *scenario;
  obs::Registry chaos_registry;
  obs::Telemetry chaos_telemetry;
  chaos_telemetry.configure(sampler_config(), chaos_rules());
  const workload::ChaosReport chaos_report = workload::run_chaos_scenario(
      chaos, &chaos_registry, nullptr, &chaos_telemetry);
  // The peer trips the flight recorder at its first watchdog fire, which
  // timestamps the symptom exactly; the fault itself began at kFaultOnset.
  const obs::FlightRecorder* flight = chaos_telemetry.flight();
  const double symptom_ms =
      flight->triggered() ? ms(flight->trigger_at()) : -1;
  const auto chaos_fire =
      chaos_telemetry.slo()->first_fire("watchdog_activity");
  const double chaos_fire_ms = chaos_fire ? ms(*chaos_fire) : -1;
  const double chaos_detect_ms =
      chaos_fire && symptom_ms >= 0 ? chaos_fire_ms - symptom_ms : -1;
  std::printf("fault    | partition at %.0f ms, watchdog (symptom) %.0f ms, "
              "alert %.0f ms => detect %.0f ms | equivalence: %s\n",
              ms(kFaultOnset), symptom_ms, chaos_fire_ms, chaos_detect_ms,
              chaos_report.hashes_match && chaos_report.flags_match
                  ? "PASS"
                  : "FAIL");

  // Acceptance: silent when healthy, detection bounded by the rule's
  // longest window plus one evaluation tick when not.
  const double over_bound_ms = 250 + 5;
  const double chaos_bound_ms = 100 + 5;
  const bool ok = clean_fires == 0 && over_detect_ms >= 0 &&
                  over_detect_ms <= over_bound_ms && chaos_detect_ms >= 0 &&
                  chaos_detect_ms <= chaos_bound_ms &&
                  chaos_report.hashes_match && chaos_report.flags_match;
  std::printf("clean fires == 0: %s | overload detect <= %.0f ms: %s | "
              "fault detect <= %.0f ms: %s\n",
              clean_fires == 0 ? "PASS" : "FAIL", over_bound_ms,
              over_detect_ms >= 0 && over_detect_ms <= over_bound_ms
                  ? "PASS"
                  : "FAIL",
              chaos_bound_ms,
              chaos_detect_ms >= 0 && chaos_detect_ms <= chaos_bound_ms
                  ? "PASS"
                  : "FAIL");

  std::ostringstream json;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"clean\": {\"offered_tps\": 1000, \"fires\": %llu},\n"
      "  \"overload\": {\"offered_tps\": 6000, \"shed_onset_ms\": %.1f, "
      "\"first_fire_ms\": %.1f, \"detect_ms\": %.1f, \"bound_ms\": %.0f},\n"
      "  \"fault\": {\"onset_ms\": %.1f, \"symptom_ms\": %.1f, "
      "\"first_fire_ms\": %.1f, \"detect_ms\": %.1f, \"bound_ms\": %.0f},\n"
      "  \"pass\": %s\n",
      static_cast<unsigned long long>(clean_fires), shed_onset_ms,
      over_fire_ms, over_detect_ms, over_bound_ms, ms(kFaultOnset),
      symptom_ms, chaos_fire_ms, chaos_detect_ms, chaos_bound_ms,
      ok ? "true" : "false");
  json << "{\n"
       << bench::artifact_meta(
              "fig_slo_detect", 7,
              "{\"sample_interval_ms\": 5, \"evaluation_interval_ms\": 5, "
              "\"serve_duration_ms\": 300, \"partition_ms\": [60, 240]}")
       << buf << "}\n";

  std::printf("\n%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return ok ? 0 : 1;
}

// Ordering failover and lagging-peer catch-up in the cluster subsystem
// (docs/CLUSTER.md).
//
// Part 1 — failover: a 2-org × 2-peer deployment with a 3-node Raft
// ordering cluster runs under steady client load; mid-stream the bench
// kills the current leader. The ordering stall is the widest gap between
// consecutive block emissions across the failover (election timeout +
// re-election + backlog drain). Gates: the stream resumes and reaches its
// block target, the stall stays under the bound, the stream never forks or
// skips a number, and every peer still matches the reference chain byte
// for byte.
//
// Part 2 — catch-up: one peer crashes cold (state, ledger and local disk
// gone) while the cluster keeps committing; on restart it is far enough
// behind to state-transfer a snapshot + log tail off a healthy neighbour.
// Gates: exactly one transfer ran, the restarted peer reaches the tip, and
// the cluster converges.
//
// Emits one JSON artifact (stdout, and --out FILE when given). --quick is
// the CI smoke: same gates, smaller block counts.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"

namespace {

using namespace bm;

double ms(sim::Time t) {
  return static_cast<double>(t) / sim::kMillisecond;
}

cluster::ClusterConfig base_config(std::uint64_t seed) {
  cluster::ClusterConfig config;
  config.orgs = 2;
  config.peers_per_org = 2;
  config.orderers = 3;
  config.block_size = 4;
  config.seed = seed;
  config.submit_interval = 2 * sim::kMillisecond;
  return config;
}

/// Median inter-emission gap over [first, last) of the emission series.
sim::Time median_gap(const std::vector<sim::Time>& times, std::size_t first,
                     std::size_t last) {
  std::vector<sim::Time> gaps;
  for (std::size_t i = std::max<std::size_t>(first, 1); i < last; ++i)
    gaps.push_back(times[i] - times[i - 1]);
  if (gaps.empty()) return 0;
  std::sort(gaps.begin(), gaps.end());
  return gaps[gaps.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  const std::uint64_t pre_blocks = quick ? 5 : 10;
  const std::uint64_t target = quick ? 14 : 30;
  const std::uint64_t crash_at = quick ? 4 : 8;
  // Election timeout max is 300 ms; one or two failed rounds plus the
  // backlog drain must stay comfortably inside this.
  const sim::Time stall_bound = 3 * sim::kSecond;

  bench::title("ordering failover + lagging-peer catch-up (docs/CLUSTER.md)");
  bool ok = true;

  // --- part 1: leader kill under load ----------------------------------
  double stall_ms = 0, cadence_before_ms = 0, cadence_after_ms = 0;
  bool failover_pass = false;
  int killed = -1;
  {
    sim::Simulation sim;
    cluster::ClusterDeployment cluster(sim, base_config(11));
    const bool warmed = cluster.run_until_blocks(pre_blocks, 300 * sim::kSecond);
    killed = cluster.leader();
    cluster.kill_orderer(killed);
    const bool reached = cluster.run_until_blocks(target, 900 * sim::kSecond);
    cluster.settle(2 * sim::kSecond);

    const std::vector<sim::Time>& times = cluster.emission_times();
    sim::Time stall = 0;
    for (std::size_t i = 1; i < times.size(); ++i)
      stall = std::max(stall, times[i] - times[i - 1]);
    stall_ms = ms(stall);
    cadence_before_ms = ms(median_gap(times, 0, pre_blocks));
    cadence_after_ms = ms(median_gap(times, pre_blocks, times.size()));

    failover_pass = warmed && reached && stall <= stall_bound &&
                    cluster.ordering().forks_detected() == 0 &&
                    cluster.blocks_emitted() == target && cluster.converged();
    std::printf(
        "failover: killed orderer %d after %llu blocks; stall %.1f ms "
        "(bound %.0f ms), cadence %.1f -> %.1f ms, forks %llu: %s\n",
        killed, static_cast<unsigned long long>(pre_blocks), stall_ms,
        ms(stall_bound), cadence_before_ms, cadence_after_ms,
        static_cast<unsigned long long>(cluster.ordering().forks_detected()),
        failover_pass ? "PASS" : "FAIL");
    if (!cluster.divergence().empty())
      std::printf("  divergence: %s\n", cluster.divergence().c_str());
    ok = ok && failover_pass;
  }

  // --- part 2: crash a peer, catch up via state transfer ----------------
  double transfer_kb = 0;
  std::uint64_t caught_up = 0, transfers = 0, final_height = 0;
  bool catchup_pass = false;
  {
    cluster::ClusterConfig config = base_config(23);
    config.data_dir =
        (std::filesystem::temp_directory_path() / "bm_fig_failover").string();
    std::error_code ec;
    std::filesystem::remove_all(config.data_dir, ec);
    std::filesystem::create_directories(config.data_dir);
    config.snapshot_interval = quick ? 2 : 4;
    config.catch_up_threshold = 3;

    sim::Simulation sim;
    cluster::ClusterDeployment cluster(sim, config);
    bool reached = cluster.run_until_blocks(crash_at, 300 * sim::kSecond);
    cluster.settle(sim::kSecond);
    cluster.crash_peer(3);
    reached = reached && cluster.run_until_blocks(target, 900 * sim::kSecond);
    cluster.restart_peer(3);
    cluster.settle(10 * sim::kSecond);

    transfers = cluster.state_transfers();
    caught_up = cluster.catch_up_blocks();
    transfer_kb = static_cast<double>(cluster.transfer_bytes()) / 1024.0;
    final_height = cluster.peer_height(3);
    catchup_pass = reached && transfers == 1 && cluster.last_transfer().ok &&
                   final_height == target && cluster.converged();
    std::printf(
        "catch-up: peer 3 crashed at block %llu, restarted at tip %llu; "
        "1 transfer (%.1f KiB, %llu blocks via snapshot+log), height %llu: "
        "%s\n",
        static_cast<unsigned long long>(crash_at),
        static_cast<unsigned long long>(target), transfer_kb,
        static_cast<unsigned long long>(caught_up),
        static_cast<unsigned long long>(final_height),
        catchup_pass ? "PASS" : "FAIL");
    if (!cluster.last_transfer().error.empty())
      std::printf("  transfer error: %s\n",
                  cluster.last_transfer().error.c_str());
    if (!cluster.divergence().empty())
      std::printf("  divergence: %s\n", cluster.divergence().c_str());
    ok = ok && catchup_pass;
    std::filesystem::remove_all(config.data_dir, ec);
  }

  std::ostringstream json;
  json << "{\n"
       << bench::artifact_meta(
              "fig_failover", 11,
              "{\"pre_blocks\": " + std::to_string(pre_blocks) +
                  ", \"target\": " + std::to_string(target) +
                  ", \"stall_bound_ms\": " +
                  std::to_string(static_cast<long long>(ms(stall_bound))) +
                  ", \"quick\": " + (quick ? "true" : "false") + "}");
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"failover\": {\"killed_orderer\": %d, "
                "\"stall_ms\": %.3f, \"cadence_before_ms\": %.3f, "
                "\"cadence_after_ms\": %.3f, \"pass\": %s},\n"
                "  \"catchup\": {\"transfers\": %llu, \"transfer_kib\": %.1f, "
                "\"catch_up_blocks\": %llu, \"final_height\": %llu, "
                "\"pass\": %s},\n"
                "  \"pass\": %s\n}\n",
                killed, stall_ms, cadence_before_ms, cadence_after_ms,
                failover_pass ? "true" : "false",
                static_cast<unsigned long long>(transfers), transfer_kb,
                static_cast<unsigned long long>(caught_up),
                static_cast<unsigned long long>(final_height),
                catchup_pass ? "true" : "false", ok ? "true" : "false");
  json << buf;

  std::printf("\n%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return ok ? 0 : 1;
}

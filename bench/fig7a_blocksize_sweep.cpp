// Figure 7a: smallbank commit throughput vs block size (50..250) for the
// endorser peer, software validator peer (8 vCPUs) and BMac peer (8x2).
//
// Paper shape: all peers improve with larger blocks (per-block fixed cost
// amortized); sw_validator >= 1.35x endorser; BMac >= 38,000 tps minimum and
// always >= 10x the software validator; >50,000 tps and <5 ms latency at 250.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  bench::title("Fig 7a - smallbank throughput vs block size (8 vCPUs / 8x2)");
  std::printf("%-10s %12s %14s %12s %14s %10s\n", "block", "endorser",
              "sw_validator", "bmac", "bmac/sw", "bmac lat");
  std::printf("%-10s %12s %14s %12s %14s %10s\n", "size", "(tps)", "(tps)",
              "(tps)", "(x)", "(ms)");
  bench::rule();

  double min_bmac = 1e18, min_ratio = 1e18;
  for (int block_size = 50; block_size <= 250; block_size += 50) {
    auto spec = bench::standard_spec();
    spec.block_size = block_size;
    const auto hw = obs.run(spec, "block " + std::to_string(block_size));
    const auto sw = workload::run_sw_model(spec, 8);

    min_bmac = std::min(min_bmac, hw.tps);
    min_ratio = std::min(min_ratio, hw.tps / sw.validator_tps);
    std::printf("%-10d %12.0f %14.0f %12.0f %14.1f %10.2f\n", block_size,
                sw.endorser_tps, sw.validator_tps, hw.tps,
                hw.tps / sw.validator_tps, hw.block_latency_ms);
  }
  bench::rule();
  std::printf("BMac minimum: %.0f tps (paper: 38,000); min speedup over "
              "sw_validator: %.1fx (paper: >=10x)\n",
              min_bmac, min_ratio);
  return obs.finish();
}

// Figure 6a: BMac protocol vs Gossip — block size and network bandwidth
// savings as the number of endorsements per transaction grows, measured on
// real marshaled blocks (150 transactions each), plus the protocol_processor
// throughput table.
//
// Paper shape: identity certificates make up >= 73% of a Gossip block; the
// BMac protocol's DataRemover strips them, shrinking blocks 3.4x-5.3x
// (bandwidth savings up to 85%). The hardware receiver sustains up to
// 30 Gbps / >= 205,000 tps.
#include "bench_common.hpp"
#include "bmac/protocol.hpp"
#include "workload/network_harness.hpp"

int main() {
  using namespace bm;
  bench::title("Fig 6a - block size: Gossip vs BMac protocol (150-tx blocks)");
  std::printf("%-8s %12s %12s %8s %10s %12s\n", "ends/tx", "gossip (B)",
              "bmac (B)", "ratio", "savings", "identity %");
  bench::rule();

  bmac::HwTimingModel timing;
  struct RateRow { int ends; double gbps; double tps; };
  std::vector<RateRow> rates;

  for (int ends = 1; ends <= 4; ++ends) {
    workload::NetworkOptions options;
    options.orgs = 4;
    options.policy_text =
        std::to_string(ends) + "-outof-" + std::to_string(ends) + " orgs";
    options.block_size = 150;
    options.seed = 42;
    workload::FabricNetworkHarness harness(options);
    bmac::ProtocolSender sender(harness.msp());

    // Warm the identity cache (steady state, like the paper's 500-block
    // measurement), then measure.
    sender.send(harness.next_block());
    std::size_t gossip = 0, bmac_size = 0, identity_bytes = 0;
    std::size_t tx_packet_bytes = 0, tx_packets = 0;
    for (int i = 0; i < 4; ++i) {
      const fabric::Block block = harness.next_block();
      const bmac::SendResult result = sender.send(block);
      gossip += result.gossip_size;
      bmac_size += result.bmac_size;
      identity_bytes += result.identity_bytes_removed;
      for (const auto& pkt : result.packets) {
        if (pkt.header.section == bmac::SectionType::kTransaction) {
          tx_packet_bytes += pkt.wire_size();
          ++tx_packets;
        }
      }
    }
    const double ratio = static_cast<double>(gossip) / bmac_size;
    std::printf("%-8d %12zu %12zu %7.1fx %9.1f%% %11.1f%%\n", ends,
                gossip / 4, bmac_size / 4, ratio,
                100.0 * (1.0 - static_cast<double>(bmac_size) / gossip),
                100.0 * identity_bytes / gossip);

    // protocol_processor rate: one packet per transaction section; the
    // pipeline ingests each packet in max(bytes / 30 Gbps, initiation
    // interval).
    const double avg_packet =
        static_cast<double>(tx_packet_bytes) / tx_packets;
    const double per_packet_seconds =
        static_cast<double>(
            timing.packet_processing_time(static_cast<std::size_t>(avg_packet))) /
        sim::kSecond;
    const double tps = 1.0 / per_packet_seconds;
    rates.push_back({ends, tps * avg_packet * 8 / 1e9, tps});
  }
  bench::rule();
  std::printf("paper: ratio 3.4x - 5.3x, savings up to 85%%, identities >= "
              "73%% of block\n");

  bench::title("protocol_processor throughput (hardware receiver)");
  std::printf("%-8s %16s %14s\n", "ends/tx", "data rate", "transactions");
  bench::rule(42);
  for (const auto& row : rates)
    std::printf("%-8d %13.2f Gbps %11.0f tps\n", row.ends, row.gbps, row.tps);
  bench::rule(42);
  std::printf("paper: up to 30 Gbps internal processing, at least 205,000 tps "
              "(larger packets with more endorsements lower the tps rate)\n");
  return 0;
}

// Figure 6b: CDF of end-to-end block transmission time, Gossip vs BMac
// protocol, over the simulated 1 Gbps network of the paper's testbed
// (Fig. 5), for 500+ blocks of 150 transactions.
//
// Both paths share the orderer-side block assembly cost and OS scheduling
// jitter; they differ in what happens next:
//   Gossip: marshal the whole block, gRPC/HTTP2/TCP stream (window stalls,
//           per-segment overhead) — the receiver needs every segment before
//           the block exists.
//   BMac:   slice the already-marshaled block into sections, strip
//           identities, fire self-contained UDP packets; the hardware
//           consumes them as they arrive (per-packet pipeline latency).
//
// Paper shape: p95 of 18 ms (BMac) vs 26 ms (Gossip) — a 30% reduction.
#include "bench_common.hpp"
#include "bmac/protocol.hpp"
#include "net/transport.hpp"
#include "workload/metrics.hpp"
#include "workload/network_harness.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  constexpr int kBlocks = 500;

  // Measure real protocol sizes once (steady-state identity cache).
  workload::NetworkOptions options;
  options.block_size = 150;
  options.seed = 7;
  workload::FabricNetworkHarness harness(options);
  bmac::ProtocolSender sender(harness.msp());
  sender.send(harness.next_block());  // warm-up
  const bmac::SendResult sized = sender.send(harness.next_block());
  const std::size_t gossip_bytes = sized.gossip_size;
  std::vector<std::size_t> packet_sizes;
  for (const auto& pkt : sized.packets) packet_sizes.push_back(pkt.wire_size());

  sim::Simulation sim;
  net::Link link(sim, {.gbps = 1.0,
                       .propagation = 50 * sim::kMicrosecond,
                       .jitter_max = 100 * sim::kMicrosecond,
                       .seed = 3});
  net::TcpStream::Config tcp_config;
  tcp_config.software_base = 2 * sim::kMillisecond;  // gRPC/HTTP2 framing
  tcp_config.software_per_mb = 6 * sim::kMillisecond;  // block marshal+copies
  tcp_config.software_jitter_max = sim::kMillisecond;
  net::TcpStream gossip(sim, link, tcp_config);
  net::UdpChannel::Config udp_config;
  udp_config.software_per_packet = 6 * sim::kMicrosecond;
  udp_config.software_jitter_max = 0;  // jitter modeled in the shared prep
  net::UdpChannel bmac_channel(sim, link, udp_config);
  bmac::HwTimingModel hw_timing;
  if (obs.enabled()) {
    obs.tracer().begin_process("fig6b 1gbps link");
    link.set_tracer(&obs.tracer(), obs.tracer().lane("link"));
  }

  // Shared orderer-side cost per block: block assembly, signing, scheduling.
  Rng prep_rng(11);
  std::vector<double> gossip_ms, bmac_ms;
  sim::Time cursor = 0;
  for (int b = 0; b < kBlocks; ++b) {
    cursor += 40 * sim::kMillisecond;  // block production interval
    const sim::Time prep =
        7 * sim::kMillisecond +
        static_cast<sim::Time>(prep_rng.uniform(9 * sim::kMillisecond));

    // Gossip path.
    const sim::Time born = cursor;
    sim.schedule(cursor - sim.now() + prep, [&, born] {
      gossip.send_message(gossip_bytes, [&, born] {
        gossip_ms.push_back(static_cast<double>(sim.now() - born) /
                            sim::kMillisecond);
      });
    });

    // BMac path: sectioning (DataRemover+AnnotationGenerator in software)
    // then one UDP datagram per section; done when the last packet has been
    // ingested by the protocol_processor.
    const sim::Time sectioning =
        1500 * sim::kMicrosecond +
        static_cast<sim::Time>(2e-3 * gossip_bytes) * sim::kMicrosecond / 1000;
    sim.schedule(cursor - sim.now() + prep + sectioning, [&, born] {
      const std::size_t last = packet_sizes.size() - 1;
      for (std::size_t i = 0; i < packet_sizes.size(); ++i) {
        const std::size_t bytes = packet_sizes[i];
        if (i == last) {
          bmac_channel.send_datagram(bytes, [&, born, bytes] {
            sim.schedule(hw_timing.packet_processing_time(bytes), [&, born] {
              bmac_ms.push_back(static_cast<double>(sim.now() - born) /
                                sim::kMillisecond);
            });
          });
        } else {
          bmac_channel.send_datagram(bytes, [] {});
        }
      }
    });
    sim.run();
  }

  const auto gossip_summary = workload::summarize(gossip_ms);
  const auto bmac_summary = workload::summarize(bmac_ms);

  bench::title("Fig 6b - end-to-end block transmission time CDF (ms)");
  std::printf("sizes: gossip block = %zu B, bmac block = %zu B over %zu "
              "packets\n\n",
              gossip_bytes, sized.bmac_size, packet_sizes.size());
  std::printf("%-12s %10s %10s\n", "percentile", "gossip", "bmac");
  bench::rule(34);
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("p%-11.0f %10.2f %10.2f\n", p,
                workload::percentile(gossip_ms, p),
                workload::percentile(bmac_ms, p));
  }
  bench::rule(34);
  std::printf("mean: gossip %.2f ms, bmac %.2f ms\n", gossip_summary.mean,
              bmac_summary.mean);
  const double p95_gossip = workload::percentile(gossip_ms, 95);
  const double p95_bmac = workload::percentile(bmac_ms, 95);
  std::printf("p95: gossip %.1f ms, bmac %.1f ms -> %.0f%% reduction "
              "(paper: 26 ms vs 18 ms, 30%%)\n",
              p95_gossip, p95_bmac, 100.0 * (1.0 - p95_bmac / p95_gossip));
  if (obs.enabled()) {
    link.publish_metrics(obs.registry(), "net_link");
    gossip.publish_metrics(obs.registry(), "tcp_gossip");
    bmac_channel.publish_metrics(obs.registry(), "udp_bmac");
    obs.note_time(sim.now());
  }
  return obs.finish();
}

// Figure 7b: smallbank throughput vs vCPUs (software) / tx_validators (BMac)
// at block size 150.
//
// Paper anchors: sw 3,500 -> ~4,600 -> 5,300 tps (a mere 1.5x for 4x the
// cores: mvcc and commit are sequential); BMac 25,800 -> 49,200 -> 86,100
// tps (3.3x for 4x the validators); BMac with 4 validators beats software
// with 16 vCPUs by 4.8x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  bench::title("Fig 7b - throughput vs vCPUs / tx_validators (block 150)");
  std::printf("%-16s %14s %12s %12s\n", "vcpus/tx_vals", "sw_validator",
              "bmac", "bmac lat");
  std::printf("%-16s %14s %12s %12s\n", "", "(tps)", "(tps)", "(ms)");
  bench::rule();

  double sw_at16 = 0, hw_at4 = 0, hw_at16 = 0, sw_at4 = 0;
  for (const int n : {4, 8, 16}) {
    auto spec = bench::standard_spec();
    spec.hw.tx_validators = n;
    const auto hw = obs.run(spec, "tx_validators " + std::to_string(n));
    const auto sw = workload::run_sw_model(spec, n);
    if (n == 4) { hw_at4 = hw.tps; sw_at4 = sw.validator_tps; }
    if (n == 16) { hw_at16 = hw.tps; sw_at16 = sw.validator_tps; }
    std::printf("%-16d %14.0f %12.0f %12.2f\n", n, sw.validator_tps, hw.tps,
                hw.block_latency_ms);
  }
  bench::rule();
  std::printf("sw scaling 4->16 vCPUs: %.2fx (paper: 1.5x)\n",
              sw_at16 / sw_at4);
  std::printf("bmac scaling 4->16 validators: %.2fx (paper: 3.3x, ideal 4x)\n",
              hw_at16 / hw_at4);
  std::printf("bmac@4 vs sw@16: %.1fx (paper: 4.8x)\n", hw_at4 / sw_at16);
  return obs.finish();
}

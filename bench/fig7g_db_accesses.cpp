// Figure 7g: modified smallbank with split payments — database accesses per
// transaction swept from 3 to 13 (8 vCPUs / 8x2, block 150).
//
// Paper shape: BMac throughput stays flat at 49,200 tps (tx_mvcc_commit
// latency grows but remains hidden under the 145 us vscc stage), while the
// software peer loses ~16% over the sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  bench::title("Fig 7g - throughput vs database accesses per tx (block 150)");
  std::printf("%-10s %14s %12s %14s\n", "rw/tx", "sw_validator", "bmac",
              "bmac lat");
  std::printf("%-10s %14s %12s %14s\n", "", "(tps)", "(tps)", "(ms)");
  bench::rule();

  double sw_first = 0, sw_last = 0, hw_first = 0, hw_last = 0;
  for (int rw = 3; rw <= 13; rw += 2) {
    auto spec = bench::standard_spec();
    // Split payment to n accounts: (1+n) reads and (1+n) writes; the sweep
    // parameter is total accesses per tx.
    spec.reads_per_tx = (rw + 1) / 2.0;
    spec.writes_per_tx = rw / 2.0;
    const auto hw = obs.run(spec, "rw_per_tx " + std::to_string(rw));
    const auto sw = workload::run_sw_model(spec, 8);
    if (rw == 3) { sw_first = sw.validator_tps; hw_first = hw.tps; }
    sw_last = sw.validator_tps;
    hw_last = hw.tps;
    std::printf("%-10d %14.0f %12.0f %14.2f\n", rw, sw.validator_tps, hw.tps,
                hw.block_latency_ms);
  }
  bench::rule();
  std::printf("software change 3rw -> 13rw: %+.1f%% (paper: -16%%)\n",
              100.0 * (sw_last - sw_first) / sw_first);
  std::printf("bmac change 3rw -> 13rw: %+.1f%% (paper: flat — mvcc/commit "
              "hidden by vscc latency)\n",
              100.0 * (hw_last - hw_first) / hw_first);
  return obs.finish();
}

// Recovery time vs chain length, with and without StateDb snapshots
// (docs/DURABILITY.md).
//
// One durability-enabled harness grows a single on-disk chain through a
// series of lengths, cutting snapshots on schedule. At each length the
// bench measures, on the same log:
//
//   full — scan every record (CRC + commit-hash chain) and replay world
//          state from genesis: FileBlockStore::recover + replay_chain;
//   snap — DurableLedger::recover: restore the newest snapshot, skip the
//          already-covered prefix with framing-only checks and replay only
//          the records past it.
//
// Both recoveries must reproduce the builder's reference tail commit hash
// byte for byte (the §4.1 oracle) — that equality, at every length and on
// every repetition, is the exit code. The full run's acceptance bound is
// snap beating full by >= 5x at the 10k-block point; --quick (the CI smoke)
// keeps the equality oracle but drops the timing bound, which would be
// noise at smoke sizes.
//
// Emits one JSON row per length (stdout, and --out FILE when given).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fabric/durability.hpp"
#include "workload/network_harness.hpp"

namespace {

using namespace bm;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::uint64_t blocks = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t snapshot_height = 0;
  std::uint64_t snap_replayed = 0;
  double full_ms = 0;
  double snap_ms = 0;
  bool tails_ok = false;  ///< both paths reproduced the reference tail
  double speedup() const { return snap_ms > 0 ? full_ms / snap_ms : 0; }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  const std::vector<std::uint64_t> lengths =
      quick ? std::vector<std::uint64_t>{200, 1000}
            : std::vector<std::uint64_t>{1000, 2500, 5000, 10000};
  const std::uint64_t interval = quick ? 100 : 500;
  const int reps = 3;  // best-of per path: recovery must only get faster

  fabric::DurabilityConfig durability;
  durability.ledger_path =
      (std::filesystem::temp_directory_path() / "bm_fig_recovery.log")
          .string();
  durability.snapshot_interval = interval;
  durability.keep_snapshots = 2;

  // Clean slate: a stale log would make the builder's appends mis-chain.
  std::error_code ec;
  std::filesystem::remove(durability.ledger_path, ec);
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(durability.ledger_path).parent_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("bm_fig_recovery.log.snap.", 0) == 0)
      std::filesystem::remove(entry.path(), ec);
  }

  workload::NetworkOptions net;
  net.seed = 7;
  net.block_size = 2;  // short blocks: chain length, not block weight
  net.durability = durability;

  bench::title("recovery time vs chain length (docs/DURABILITY.md)");
  std::printf("%8s %12s %12s %10s %10s %8s %s\n", "blocks", "full_ms",
              "snap_ms", "speedup", "snap_at", "replayed", "tails");

  workload::FabricNetworkHarness harness(net);
  std::vector<Row> rows;
  bool ok = true;

  for (const std::uint64_t length : lengths) {
    while (harness.reference_ledger().height() < length) harness.next_block();
    harness.durable()->sync();
    const crypto::Digest& want = harness.reference_ledger().last_commit_hash();

    Row row;
    row.blocks = length;
    row.log_bytes = std::filesystem::file_size(durability.ledger_path);
    row.tails_ok = true;

    for (int rep = 0; rep < reps; ++rep) {
      // Full replay: every record CRC-checked, hash-chained and applied.
      {
        fabric::Ledger ledger;
        fabric::StateDb state;
        const auto start = std::chrono::steady_clock::now();
        const auto chain = fabric::FileBlockStore::recover(
            durability.ledger_path);
        const bool replayed = fabric::replay_chain(chain, ledger, &state);
        const double elapsed_ms = seconds_since(start) * 1e3;
        if (rep == 0 || elapsed_ms < row.full_ms) row.full_ms = elapsed_ms;
        row.tails_ok = row.tails_ok && replayed &&
                       ledger.height() == length &&
                       ledger.last_commit_hash() == want;
      }
      // Snapshot recovery: restore + skip the covered prefix + replay rest.
      {
        fabric::Ledger ledger;
        fabric::StateDb state;
        const auto result =
            fabric::DurableLedger::recover(durability, ledger, state);
        const double elapsed_ms = result.duration_s * 1e3;
        if (rep == 0 || elapsed_ms < row.snap_ms) row.snap_ms = elapsed_ms;
        row.snapshot_height = result.snapshot_height;
        row.snap_replayed = result.blocks_replayed;
        row.tails_ok = row.tails_ok && result.ok && result.used_snapshot &&
                       ledger.height() == length &&
                       ledger.last_commit_hash() == want;
      }
    }

    std::printf("%8llu %12.2f %12.2f %9.1fx %10llu %8llu %s\n",
                static_cast<unsigned long long>(row.blocks), row.full_ms,
                row.snap_ms, row.speedup(),
                static_cast<unsigned long long>(row.snapshot_height),
                static_cast<unsigned long long>(row.snap_replayed),
                row.tails_ok ? "PASS" : "FAIL");
    ok = ok && row.tails_ok;
    rows.push_back(row);
  }

  // Acceptance: snapshots must pay for themselves where replay is long.
  const double top_speedup = rows.back().speedup();
  const bool bound_applies = !quick && rows.back().blocks >= 10000;
  if (bound_applies) {
    ok = ok && top_speedup >= 5.0;
    std::printf("snapshot speedup at %llu blocks: %.1fx (bound >= 5.0x): %s\n",
                static_cast<unsigned long long>(rows.back().blocks),
                top_speedup, top_speedup >= 5.0 ? "PASS" : "FAIL");
  }

  std::ostringstream json;
  json << "{\n"
       << bench::artifact_meta(
              "fig_recovery", net.seed,
              "{\"block_size\": " + std::to_string(net.block_size) +
                  ", \"snapshot_interval\": " + std::to_string(interval) +
                  ", \"quick\": " + (quick ? "true" : "false") + "}")
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"blocks\": %llu, \"log_bytes\": %llu, "
                  "\"full_ms\": %.3f, \"snap_ms\": %.3f, \"speedup\": %.2f, "
                  "\"snapshot_height\": %llu, \"blocks_replayed\": %llu, "
                  "\"tails_ok\": %s}%s\n",
                  static_cast<unsigned long long>(row.blocks),
                  static_cast<unsigned long long>(row.log_bytes), row.full_ms,
                  row.snap_ms, row.speedup(),
                  static_cast<unsigned long long>(row.snapshot_height),
                  static_cast<unsigned long long>(row.snap_replayed),
                  row.tails_ok ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n  \"speedup_bound\": " << (bound_applies ? "5.0" : "null")
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";

  std::printf("\n%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return ok ? 0 : 1;
}

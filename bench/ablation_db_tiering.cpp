// Ablation (§5 discussion): scaling the state database beyond the FPGA.
//
// The paper's in-hardware database holds 8192 entries; real applications
// need more. §5 proposes keeping hot data on-chip with a persistent host
// database behind it. This ablation sweeps the write working set across the
// on-chip capacity and compares:
//   - hw-only: writes beyond capacity overflow (data loss — unusable);
//   - tiered:  LRU spill to the host, correctness preserved, with the PCIe
//     round-trip (db_op_host) charged per host access.
// Shape: throughput is unaffected while the working set fits; with spilling
// it dips only slightly because database time stays hidden under the
// 145 us vscc stage (the same effect as Fig. 7g) until host accesses
// dominate.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  bench::title("Ablation - host-backed state database (8x2, block 150, "
               "on-chip capacity 8192)");
  std::printf("%-14s %10s %12s %12s %12s %12s\n", "working set", "fits?",
              "bmac (tps)", "evictions", "host acc", "overflows");
  bench::rule();

  for (const std::size_t working_set :
       {std::size_t{4096}, std::size_t{8192}, std::size_t{16384},
        std::size_t{65536}, std::size_t{262144}}) {
    auto spec = bench::standard_spec();
    spec.write_working_set = working_set;
    spec.host_backed_db = true;
    const auto tiered =
        obs.run(spec, "tiered ws " + std::to_string(working_set));
    std::printf("%-14zu %10s %12.0f %12llu %12llu %12llu\n", working_set,
                working_set <= spec.hw.db_capacity ? "yes" : "no", tiered.tps,
                static_cast<unsigned long long>(tiered.db_evictions),
                static_cast<unsigned long long>(tiered.db_host_accesses),
                static_cast<unsigned long long>(tiered.db_overflows));
  }
  bench::rule();

  // The counterfactual: without the host tier, an oversized working set
  // silently drops writes.
  auto spec = bench::standard_spec();
  spec.write_working_set = 65536;
  spec.host_backed_db = false;
  const auto hw_only = obs.run(spec, "hw-only ws 65536");
  std::printf("hw-only with 64k working set: %.0f tps but %llu overflowed "
              "writes (state lost) -> the host tier is required for large "
              "applications\n",
              hw_only.tps,
              static_cast<unsigned long long>(hw_only.db_overflows));
  return obs.finish();
}

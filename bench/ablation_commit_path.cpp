// Ablation: commit-path scale-out — endorsement-verification cache and
// sharded/batched StateDb.
//
// Part 1 measures REAL wall-clock software validation (full parse +
// ECDSA + MVCC + commit, no simulated timing) on a repeated-endorser
// workload: every transaction's rwset is drawn from a small pool of hot
// rwsets, so the same endorser signs the same endorsement digest over and
// over — deterministic RFC 6979 signing makes those signatures
// bit-identical, which is exactly what the VerifyCache memoizes. This is
// the shape "Performance Characterization and Bottleneck Analysis of
// Hyperledger Fabric" reports for smallbank-style contracts. The check
// for the cached and uncached lanes producing identical commit hashes is
// part of the bench.
//
// Part 2 sweeps the StateDb shard count under a multi-threaded batched
// commit: one write-batch per block, applied with a worker pool, shards
// {1, 2, 4, 8, 16}. With one shard every worker serializes on one mutex;
// with enough shards the batch applies in parallel.
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "fabric/orderer.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"

namespace {

using namespace bm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Workload {
  fabric::Msp msp;
  std::map<std::string, fabric::EndorsementPolicy> policies;
  std::vector<fabric::Block> blocks;
  std::size_t total_txs = 0;
};

/// `blocks` blocks of `block_size` txs; each tx blind-writes one of
/// `hot_rwsets` hot keys (so endorsement digests repeat, but MVCC never
/// conflicts).
Workload repeated_endorser_workload(int blocks, int block_size,
                                    int hot_rwsets) {
  Workload w;
  auto& org1 = w.msp.add_org("Org1");
  auto& org2 = w.msp.add_org("Org2");
  const fabric::Identity client = org1.issue(fabric::Role::kClient, 0, "c0");
  const fabric::Identity peer1 = org1.issue(fabric::Role::kPeer, 0, "p0.org1");
  const fabric::Identity peer2 = org2.issue(fabric::Role::kPeer, 0, "p0.org2");
  w.policies.emplace("smallbank", fabric::parse_policy_or_throw(
                                      "2-outof-2 orgs", w.msp.org_names()));
  fabric::Orderer orderer(
      org1.issue(fabric::Role::kOrderer, 0, "o0"),
      fabric::Orderer::Config{.max_tx_per_block =
                                  static_cast<std::size_t>(block_size)});

  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < block_size; ++i) {
      fabric::TxProposal proposal;
      proposal.channel_id = "ch";
      proposal.chaincode_id = "smallbank";
      proposal.tx_id = "t" + std::to_string(b) + "_" + std::to_string(i);
      proposal.rwset.writes.push_back(
          {"hot" + std::to_string(i % hot_rwsets), to_bytes("v")});
      // The orderer cuts the block itself when the batch fills.
      if (auto block = orderer.submit(
              fabric::build_envelope(proposal, client, {&peer1, &peer2})))
        w.blocks.push_back(*std::move(block));
    }
    w.total_txs += static_cast<std::size_t>(block_size);
  }
  if (auto block = orderer.flush()) w.blocks.push_back(*std::move(block));
  return w;
}

struct LaneResult {
  double tps = 0;
  crypto::Digest final_hash{};
  std::uint64_t cache_hits = 0;
};

LaneResult run_lane(const Workload& w, fabric::SoftwareBackendOptions options) {
  const auto backend =
      fabric::make_software_backend(w.msp, w.policies, options);
  fabric::StateDb db;
  fabric::Ledger ledger;
  const auto start = Clock::now();
  for (const auto& block : w.blocks)
    backend->validate_and_commit(block, db, ledger);
  const double elapsed = seconds_since(start);
  LaneResult result;
  result.tps = static_cast<double>(w.total_txs) / elapsed;
  result.final_hash = ledger.last().commit_hash;
  if (const auto* sw =
          dynamic_cast<const fabric::SoftwareValidator*>(backend.get());
      sw != nullptr && sw->verify_cache() != nullptr)
    result.cache_hits = sw->verify_cache()->hits();
  return result;
}

void shard_sweep(int batches, int writes_per_batch, unsigned workers) {
  bench::title("StateDb shard-count sweep, batched commit");
  std::printf("%d batches x %d writes, %u worker threads (host has %u "
              "hardware threads)\n",
              batches, writes_per_batch, workers,
              std::thread::hardware_concurrency());
  std::printf("%8s %16s %10s\n", "shards", "writes/s", "vs 1 shard");
  bench::rule(40);

  ThreadPool pool(workers);
  double base = 0;
  for (const std::size_t shards : {1, 2, 4, 8, 16}) {
    fabric::StateDb db(shards);
    double elapsed = 0;  // commit time only: batch building is untimed
    for (int b = 0; b < batches; ++b) {
      fabric::StateDb::WriteBatch batch = db.make_batch();
      for (int i = 0; i < writes_per_batch; ++i)
        batch.add("acct" + std::to_string(i),
                  to_bytes("balance" + std::to_string(b)),
                  fabric::Version{static_cast<std::uint64_t>(b),
                                  static_cast<std::uint32_t>(i)});
      const auto start = Clock::now();
      db.commit_batch(std::move(batch), &pool);
      elapsed += seconds_since(start);
    }
    const double rate =
        static_cast<double>(batches) * writes_per_batch / elapsed;
    if (shards == 1) base = rate;
    std::printf("%8zu %16.0f %9.2fx\n", shards, rate, rate / base);
  }
  bench::rule(40);
}

}  // namespace

int main(int argc, char** argv) {
  // Wall-clock bench: the obs flags are accepted for uniformity but there
  // is no simulated pipeline to trace here.
  bench::Observability obs(argc, argv);
  (void)obs;

  bench::title(
      "Ablation - endorsement-verification cache (real validation wall clock)");
  const int blocks = 12, block_size = 100, hot_rwsets = 16;
  std::printf("repeated-endorser workload: %d blocks x %d txs, %d distinct "
              "rwsets, 2-outof-2\n",
              blocks, block_size, hot_rwsets);
  const Workload w = repeated_endorser_workload(blocks, block_size, hot_rwsets);

  std::printf("%-28s %10s %10s %12s\n", "backend", "tps", "speedup",
              "cache hits");
  bench::rule(64);
  const LaneResult off = run_lane(w, {.parallelism = 1});
  std::printf("%-28s %10.0f %9.2fx %12s\n", "cache off, 1 thread", off.tps,
              1.0, "-");
  const LaneResult on =
      run_lane(w, {.parallelism = 1, .verify_cache_capacity = 8192});
  std::printf("%-28s %10.0f %9.2fx %12llu\n", "cache 8192, 1 thread", on.tps,
              on.tps / off.tps, static_cast<unsigned long long>(on.cache_hits));
  const LaneResult both =
      run_lane(w, {.parallelism = 4, .verify_cache_capacity = 8192});
  std::printf("%-28s %10.0f %9.2fx %12llu\n", "cache 8192, 4 threads",
              both.tps, both.tps / off.tps,
              static_cast<unsigned long long>(both.cache_hits));
  bench::rule(64);

  const bool hashes_match = off.final_hash == on.final_hash &&
                            off.final_hash == both.final_hash;
  std::printf("commit hashes identical across lanes: %s\n",
              hashes_match ? "PASS" : "FAIL");
  std::printf("acceptance: cache >= 2x on repeated endorsers: %s "
              "(%.2fx single-threaded)\n",
              on.tps / off.tps >= 2.0 ? "PASS" : "FAIL", on.tps / off.tps);

  shard_sweep(/*batches=*/50, /*writes_per_batch=*/32768, /*workers=*/8);
  std::printf("paper tie-in: the cache is the software mirror of the BMac "
              "identity cache's\nparse-once semantics; the sharded batch "
              "commit mirrors the hardware's\nper-block write burst into "
              "the on-chip KVS (one version stamp per block).\n");
  return hashes_match && on.tps / off.tps >= 2.0 ? 0 : 1;
}

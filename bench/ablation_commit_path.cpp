// Ablation: commit-path scale-out — endorsement-verification cache,
// per-identity comb tables, sharded/batched StateDb, and dependency-aware
// parallel commit.
//
// Part 1 measures REAL wall-clock software validation (full parse +
// ECDSA + MVCC + commit, no simulated timing) on a repeated-endorser
// workload: every transaction's rwset is drawn from a small pool of hot
// rwsets, so the same endorser signs the same endorsement digest over and
// over — deterministic RFC 6979 signing makes those signatures
// bit-identical, which is exactly what the VerifyCache memoizes. The comb
// lane attacks the orthogonal axis: the same *identity* signs different
// digests, so the cache misses but the per-point comb table still turns
// the double-scalar multiply into table lookups. This is the shape
// "Performance Characterization and Bottleneck Analysis of Hyperledger
// Fabric" reports for smallbank-style contracts. The check for all lanes
// producing identical commit hashes is part of the bench.
//
// Part 2 sweeps the StateDb shard count under a multi-threaded batched
// commit: one write-batch per block, applied with a worker pool, shards
// {1, 2, 4, 8, 16}. With one shard every worker serializes on one mutex;
// with enough shards the batch applies in parallel.
//
// Part 3 is the round-two headline: full validate_and_commit on a
// read+write workload with intra-block anti-dependencies, sequential
// baseline vs the combined configuration (N verify threads + verify cache
// + comb tables + dependency-aware parallel commit) at 1/2/4/8 threads.
// The parallel lanes must produce byte-identical commit hashes to the
// sequential lane — that equality always gates the exit code; the >= 4x
// speedup gate only applies when the host actually has >= 8 hardware
// threads (on smaller hosts the caveat is printed and the gate skipped).
//
// `--quick` shrinks every part for CI smoke runs; all correctness gates
// still apply at the reduced sizes.
#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "fabric/orderer.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"

namespace {

using namespace bm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Workload {
  fabric::Msp msp;
  std::map<std::string, fabric::EndorsementPolicy> policies;
  std::vector<fabric::Block> blocks;
  std::size_t total_txs = 0;
};

struct Fixture {
  fabric::Identity client;
  fabric::Identity peer1;
  fabric::Identity peer2;
  fabric::Identity orderer;
};

Fixture make_fixture(Workload& w) {
  auto& org1 = w.msp.add_org("Org1");
  auto& org2 = w.msp.add_org("Org2");
  Fixture f{.client = org1.issue(fabric::Role::kClient, 0, "c0"),
            .peer1 = org1.issue(fabric::Role::kPeer, 0, "p0.org1"),
            .peer2 = org2.issue(fabric::Role::kPeer, 0, "p0.org2"),
            .orderer = org1.issue(fabric::Role::kOrderer, 0, "o0")};
  w.policies.emplace("smallbank", fabric::parse_policy_or_throw(
                                      "2-outof-2 orgs", w.msp.org_names()));
  return f;
}

/// `blocks` blocks of `block_size` txs; each tx blind-writes one of
/// `hot_rwsets` hot keys (so endorsement digests repeat, but MVCC never
/// conflicts).
Workload repeated_endorser_workload(int blocks, int block_size,
                                    int hot_rwsets) {
  Workload w;
  const Fixture f = make_fixture(w);
  fabric::Orderer orderer(
      f.orderer, fabric::Orderer::Config{
                     .max_tx_per_block = static_cast<std::size_t>(block_size)});

  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < block_size; ++i) {
      fabric::TxProposal proposal;
      proposal.channel_id = "ch";
      proposal.chaincode_id = "smallbank";
      proposal.tx_id = "t" + std::to_string(b) + "_" + std::to_string(i);
      proposal.rwset.writes.push_back(
          {"hot" + std::to_string(i % hot_rwsets), to_bytes("v")});
      // The orderer cuts the block itself when the batch fills.
      if (auto block = orderer.submit(fabric::build_envelope(
              proposal, f.client, {&f.peer1, &f.peer2})))
        w.blocks.push_back(*std::move(block));
    }
    w.total_txs += static_cast<std::size_t>(block_size);
  }
  if (auto block = orderer.flush()) w.blocks.push_back(*std::move(block));
  return w;
}

/// Read+write workload for the parallel-commit sweep. Every transaction
/// reads two keys unique to it (absent from the DB, so the read always
/// validates) and writes two shared account keys; every fourth transaction
/// additionally writes a key the PREVIOUS transaction read. That last write
/// is an anti-dependency — the scheduler must not fold it in before the
/// reader has been decided — without ever invalidating anything, so the
/// whole workload commits valid and the dependency machinery is exercised.
Workload transfer_workload(int blocks, int block_size, int accounts) {
  Workload w;
  const Fixture f = make_fixture(w);
  fabric::Orderer orderer(
      f.orderer, fabric::Orderer::Config{
                     .max_tx_per_block = static_cast<std::size_t>(block_size)});

  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < block_size; ++i) {
      fabric::TxProposal proposal;
      proposal.channel_id = "ch";
      proposal.chaincode_id = "smallbank";
      proposal.tx_id = "t" + std::to_string(b) + "_" + std::to_string(i);
      const std::string stem =
          "r" + std::to_string(b) + "_" + std::to_string(i);
      proposal.rwset.reads.push_back({stem + "a", std::nullopt});
      proposal.rwset.reads.push_back({stem + "b", std::nullopt});
      proposal.rwset.writes.push_back(
          {"acct" + std::to_string((2 * i) % accounts), to_bytes("v")});
      proposal.rwset.writes.push_back(
          {"acct" + std::to_string((2 * i + 1) % accounts), to_bytes("w")});
      if (i % 4 == 3)
        proposal.rwset.writes.push_back(
            {"r" + std::to_string(b) + "_" + std::to_string(i - 1) + "a",
             to_bytes("x")});
      if (auto block = orderer.submit(fabric::build_envelope(
              proposal, f.client, {&f.peer1, &f.peer2})))
        w.blocks.push_back(*std::move(block));
    }
    w.total_txs += static_cast<std::size_t>(block_size);
  }
  if (auto block = orderer.flush()) w.blocks.push_back(*std::move(block));
  return w;
}

struct LaneResult {
  double tps = 0;
  crypto::Digest final_hash{};
  std::uint64_t cache_hits = 0;
  std::uint64_t comb_hits = 0;
  fabric::ValidationStats stats;
};

LaneResult run_lane(const Workload& w, fabric::SoftwareBackendOptions options) {
  const auto backend =
      fabric::make_software_backend(w.msp, w.policies, options);
  fabric::StateDb db;
  fabric::Ledger ledger;
  const auto start = Clock::now();
  for (const auto& block : w.blocks)
    backend->validate_and_commit(block, db, ledger);
  const double elapsed = seconds_since(start);
  LaneResult result;
  result.tps = static_cast<double>(w.total_txs) / elapsed;
  result.final_hash = ledger.last().commit_hash;
  result.stats = backend->stats();
  if (const auto* sw =
          dynamic_cast<const fabric::SoftwareValidator*>(backend.get())) {
    if (sw->verify_cache() != nullptr)
      result.cache_hits = sw->verify_cache()->hits();
    if (sw->comb_cache() != nullptr)
      result.comb_hits = sw->comb_cache()->hits();
  }
  return result;
}

void shard_sweep(int batches, int writes_per_batch, unsigned workers) {
  bench::title("StateDb shard-count sweep, batched commit");
  std::printf("%d batches x %d writes, %u worker threads (host has %u "
              "hardware threads)\n",
              batches, writes_per_batch, workers,
              std::thread::hardware_concurrency());
  std::printf("%8s %16s %10s\n", "shards", "writes/s", "vs 1 shard");
  bench::rule(40);

  ThreadPool pool(workers);
  double base = 0;
  for (const std::size_t shards : {1, 2, 4, 8, 16}) {
    fabric::StateDb db(shards);
    double elapsed = 0;  // commit time only: batch building is untimed
    for (int b = 0; b < batches; ++b) {
      fabric::StateDb::WriteBatch batch = db.make_batch();
      for (int i = 0; i < writes_per_batch; ++i)
        batch.add("acct" + std::to_string(i),
                  to_bytes("balance" + std::to_string(b)),
                  fabric::Version{static_cast<std::uint64_t>(b),
                                  static_cast<std::uint32_t>(i)});
      const auto start = Clock::now();
      db.commit_batch(std::move(batch), &pool);
      elapsed += seconds_since(start);
    }
    const double rate =
        static_cast<double>(batches) * writes_per_batch / elapsed;
    if (shards == 1) base = rate;
    std::printf("%8zu %16.0f %9.2fx\n", shards, rate, rate / base);
  }
  bench::rule(40);
}

/// Part 3: sequential baseline vs the full round-two configuration.
/// Returns false if any parallel lane's commit hash diverges from the
/// sequential lane — that is the only unconditional failure here.
bool parallel_commit_sweep(int blocks, int block_size, bool* speedup_ok) {
  bench::title("Dependency-aware parallel commit (full validate_and_commit)");
  const Workload w = transfer_workload(blocks, block_size, /*accounts=*/64);
  std::printf("transfer workload: %d blocks x %d txs, 2 reads + 2-3 writes "
              "per tx, anti-deps every 4th tx\n",
              blocks, block_size);

  const LaneResult seq = run_lane(w, {.parallelism = 1});
  std::printf("%-30s %10s %10s %8s %10s\n", "configuration", "tps", "speedup",
              "waves", "deps/blk");
  bench::rule(74);
  std::printf("%-30s %10.0f %9.2fx %8s %10s\n", "sequential, 1 thread",
              seq.tps, 1.0, "-", "-");

  bool hashes_match = true;
  double best = 0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const LaneResult par = run_lane(
        w, {.parallelism = threads,
            .verify_cache_capacity = 8192,
            .comb_table_capacity = 64,
            .parallel_commit = true});
    const double waves_per_block =
        static_cast<double>(par.stats.commit_waves) /
        static_cast<double>(par.stats.blocks_processed);
    const double deps_per_block =
        static_cast<double>(par.stats.commit_deps) /
        static_cast<double>(par.stats.blocks_processed);
    std::printf("%-30s %10.0f %9.2fx %8.1f %10.1f\n",
                ("round two, " + std::to_string(threads) + " threads").c_str(),
                par.tps, par.tps / seq.tps, waves_per_block, deps_per_block);
    hashes_match = hashes_match && par.final_hash == seq.final_hash;
    best = std::max(best, par.tps / seq.tps);
  }
  bench::rule(74);
  std::printf("commit hashes identical to sequential lane: %s\n",
              hashes_match ? "PASS" : "FAIL");

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8) {
    *speedup_ok = best >= 4.0;
    std::printf("acceptance: >= 4x at 8 threads: %s (best %.2fx)\n",
                *speedup_ok ? "PASS" : "FAIL", best);
  } else {
    *speedup_ok = true;
    std::printf("acceptance: >= 4x gate SKIPPED — host has %u hardware "
                "thread(s); the speedup is bounded by physical cores, not by "
                "the scheduler (best %.2fx here).\n",
                hw, best);
  }
  return hashes_match;
}

}  // namespace

int main(int argc, char** argv) {
  // Wall-clock bench: the obs flags are accepted for uniformity but there
  // is no simulated pipeline to trace here.
  bench::Observability obs(argc, argv);
  (void)obs;
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  bench::title(
      "Ablation - endorsement-verification cache + comb tables (real "
      "validation wall clock)");
  const int blocks = quick ? 3 : 12;
  const int block_size = quick ? 40 : 100;
  const int hot_rwsets = 16;
  std::printf("repeated-endorser workload: %d blocks x %d txs, %d distinct "
              "rwsets, 2-outof-2\n",
              blocks, block_size, hot_rwsets);
  const Workload w = repeated_endorser_workload(blocks, block_size, hot_rwsets);

  std::printf("%-28s %10s %10s %12s %12s\n", "backend", "tps", "speedup",
              "cache hits", "comb hits");
  bench::rule(78);
  const LaneResult off = run_lane(w, {.parallelism = 1});
  std::printf("%-28s %10.0f %9.2fx %12s %12s\n", "cache off, 1 thread",
              off.tps, 1.0, "-", "-");
  const LaneResult comb =
      run_lane(w, {.parallelism = 1, .comb_table_capacity = 64});
  std::printf("%-28s %10.0f %9.2fx %12s %12llu\n", "comb 64, 1 thread",
              comb.tps, comb.tps / off.tps, "-",
              static_cast<unsigned long long>(comb.comb_hits));
  const LaneResult on =
      run_lane(w, {.parallelism = 1, .verify_cache_capacity = 8192});
  std::printf("%-28s %10.0f %9.2fx %12llu %12s\n", "cache 8192, 1 thread",
              on.tps, on.tps / off.tps,
              static_cast<unsigned long long>(on.cache_hits), "-");
  const LaneResult both = run_lane(w, {.parallelism = 4,
                                       .verify_cache_capacity = 8192,
                                       .comb_table_capacity = 64});
  std::printf("%-28s %10.0f %9.2fx %12llu %12llu\n",
              "cache+comb, 4 threads", both.tps, both.tps / off.tps,
              static_cast<unsigned long long>(both.cache_hits),
              static_cast<unsigned long long>(both.comb_hits));
  bench::rule(78);

  const bool hashes_match = off.final_hash == on.final_hash &&
                            off.final_hash == comb.final_hash &&
                            off.final_hash == both.final_hash;
  std::printf("commit hashes identical across lanes: %s\n",
              hashes_match ? "PASS" : "FAIL");
  std::printf("acceptance: cache >= 2x on repeated endorsers: %s "
              "(%.2fx single-threaded)\n",
              on.tps / off.tps >= 2.0 ? "PASS" : "FAIL", on.tps / off.tps);

  shard_sweep(/*batches=*/quick ? 10 : 50,
              /*writes_per_batch=*/quick ? 4096 : 32768, /*workers=*/8);

  bool speedup_ok = true;
  const bool parallel_hashes_match = parallel_commit_sweep(
      quick ? 4 : 16, quick ? 50 : 120, &speedup_ok);

  std::printf("paper tie-in: the cache is the software mirror of the BMac "
              "identity cache's\nparse-once semantics; the comb tables "
              "mirror its per-identity key store; the\nsharded batch commit "
              "and dependency waves mirror the hardware's per-block\nwrite "
              "burst into the on-chip KVS (one version stamp per block).\n");
  return hashes_match && parallel_hashes_match && speedup_ok &&
                 on.tps / off.tps >= 2.0
             ? 0
             : 1;
}

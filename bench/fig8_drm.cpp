// Figure 8: the drm (digital rights management) benchmark.
//
// Paper shape: trends mirror smallbank. The software validator does
// slightly better than on smallbank (drm has fewer database requests, so
// mvcc and commit are faster); BMac throughput is essentially unchanged
// because mvcc/commit are hidden under the vscc latency either way.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  bench::title("Fig 8a - drm throughput vs block size (8 vCPUs / 8x2)");
  std::printf("%-10s %14s %12s %14s %12s\n", "block", "sw_validator", "bmac",
              "sw smallbank", "bmac smallbank");
  bench::rule();
  for (int block_size = 50; block_size <= 250; block_size += 50) {
    auto drm = bench::drm_spec();
    drm.block_size = block_size;
    auto smallbank = bench::standard_spec();
    smallbank.block_size = block_size;
    const auto hw_drm = obs.run(drm, "drm block " + std::to_string(block_size));
    const auto sw_drm = workload::run_sw_model(drm, 8);
    const auto hw_sb =
        obs.run(smallbank, "smallbank block " + std::to_string(block_size));
    const auto sw_sb = workload::run_sw_model(smallbank, 8);
    std::printf("%-10d %14.0f %12.0f %14.0f %12.0f\n", block_size,
                sw_drm.validator_tps, hw_drm.tps, sw_sb.validator_tps,
                hw_sb.tps);
  }

  bench::title("Fig 8b - drm throughput vs vCPUs / tx_validators (block 150)");
  std::printf("%-16s %14s %12s\n", "vcpus/tx_vals", "sw_validator", "bmac");
  bench::rule(46);
  for (const int n : {4, 8, 16}) {
    auto spec = bench::drm_spec();
    spec.hw.tx_validators = n;
    const auto hw = obs.run(spec, "drm tx_validators " + std::to_string(n));
    const auto sw = workload::run_sw_model(spec, n);
    std::printf("%-16d %14.0f %12.0f\n", n, sw.validator_tps, hw.tps);
  }
  bench::rule();
  std::printf("paper: drm sw_validator slightly above smallbank (fewer db "
              "requests); bmac unchanged (db hidden by vscc)\n");
  return obs.finish();
}

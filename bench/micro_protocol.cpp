// Microbenchmarks for the BMac protocol hot paths: sender-side block
// sectioning (DataRemover + AnnotationGenerator) and the receiver-side
// reconstruction + extraction, plus policy-circuit compilation/evaluation.
#include <benchmark/benchmark.h>

#include "bmac/policy_circuit.hpp"
#include "bmac/protocol.hpp"
#include "workload/network_harness.hpp"

namespace {

using namespace bm;

struct ProtocolFixture {
  ProtocolFixture() : harness(make_options()), sender(harness.msp()) {
    block = harness.next_block();
    warm = sender.send(block);  // identities cached after this
  }
  static workload::NetworkOptions make_options() {
    workload::NetworkOptions options;
    options.block_size = 50;
    return options;
  }
  workload::FabricNetworkHarness harness;
  bmac::ProtocolSender sender;
  fabric::Block block;
  bmac::SendResult warm;
};

void BM_ProtocolSend(benchmark::State& state) {
  static ProtocolFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.sender.send(fixture.block));
  }
  state.SetItemsProcessed(state.iterations() * 50);  // transactions
}
BENCHMARK(BM_ProtocolSend);

void BM_ProtocolReceive(benchmark::State& state) {
  static ProtocolFixture fixture;
  bmac::HwIdentityCache cache;
  // Load identities from the warm-up sync packets.
  for (const auto& pkt : fixture.warm.packets)
    if (pkt.header.section == bmac::SectionType::kIdentitySync)
      cache.insert(pkt.annotations[0].id, pkt.payload);
  const bmac::SendResult steady = fixture.sender.send(fixture.block);
  for (auto _ : state) {
    bmac::ProtocolReceiver receiver(cache);
    for (const auto& pkt : steady.packets)
      benchmark::DoNotOptimize(receiver.on_packet(pkt));
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_ProtocolReceive);

void BM_PacketEncodeDecode(benchmark::State& state) {
  static ProtocolFixture fixture;
  const bmac::SendResult steady = fixture.sender.send(fixture.block);
  const bmac::BmacPacket& pkt = steady.packets[1];
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmac::BmacPacket::decode(pkt.encode()));
  }
}
BENCHMARK(BM_PacketEncodeDecode);

void BM_PolicyCompile(benchmark::State& state) {
  fabric::Msp msp;
  std::vector<std::string> orgs;
  for (int i = 1; i <= 4; ++i) {
    orgs.push_back("Org" + std::to_string(i));
    msp.add_org(orgs.back());
  }
  const auto policy = fabric::parse_policy_or_throw(
      "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | "
      "(Org3 & Org4)",
      orgs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmac::PolicyCircuit::compile(policy, msp));
  }
}
BENCHMARK(BM_PolicyCompile);

void BM_PolicyCircuitEval(benchmark::State& state) {
  fabric::Msp msp;
  std::vector<std::string> orgs;
  for (int i = 1; i <= 4; ++i) {
    orgs.push_back("Org" + std::to_string(i));
    msp.add_org(orgs.back());
  }
  const auto circuit = bmac::PolicyCircuit::compile(
      fabric::parse_policy_or_throw("2-outof-4 orgs", orgs), msp);
  bmac::RegisterFile regs(16);
  regs.set(fabric::EncodedId::make(1, fabric::Role::kPeer, 0), true);
  regs.set(fabric::EncodedId::make(3, fabric::Role::kPeer, 0), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.evaluate(regs));
  }
}
BENCHMARK(BM_PolicyCircuitEval);

}  // namespace

BENCHMARK_MAIN();

// Figure 7e: throughput under eight endorsement policies (8 vCPUs / 8x2,
// block size 150, 4 orgs).
//
// Paper shape: software throughput decays almost linearly with the number
// of endorsements because Fabric verifies ALL endorsements regardless of
// the policy (2of3 ~= 3of3 ~= 3,800 tps). The hardware short-circuit
// evaluator verifies only as many as needed: 2of3 hits 49,200 tps vs
// 25,800 for 3of3 (2 engines need a second round for the third signature).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  struct PolicyCase {
    const char* text;
    int endorsements;  // one per principal, like the paper's clients
  };
  const PolicyCase cases[] = {
      {"1-outof-1 orgs", 1}, {"1-outof-2 orgs", 2}, {"2-outof-2 orgs", 2},
      {"2-outof-3 orgs", 3}, {"3-outof-3 orgs", 3}, {"2-outof-4 orgs", 4},
      {"3-outof-4 orgs", 4}, {"4-outof-4 orgs", 4},
  };

  bench::title("Fig 7e - throughput by endorsement policy (block 150, 8x2)");
  std::printf("%-18s %6s %14s %12s %16s\n", "policy", "ends", "sw_validator",
              "bmac", "bmac skipped");
  std::printf("%-18s %6s %14s %12s %16s\n", "", "", "(tps)", "(tps)",
              "(sig checks)");
  bench::rule();

  double hw_2of3 = 0, hw_3of3 = 0, sw_2of3 = 0, sw_3of3 = 0;
  for (const auto& c : cases) {
    auto spec = bench::standard_spec();
    spec.policy_text = c.text;
    spec.ends_attached = c.endorsements;
    const auto hw = obs.run(spec, c.text);
    const auto sw = workload::run_sw_model(spec, 8);
    if (std::string(c.text) == "2-outof-3 orgs") { hw_2of3 = hw.tps; sw_2of3 = sw.validator_tps; }
    if (std::string(c.text) == "3-outof-3 orgs") { hw_3of3 = hw.tps; sw_3of3 = sw.validator_tps; }
    std::printf("%-18s %6d %14.0f %12.0f %16llu\n", c.text, c.endorsements,
                sw.validator_tps, hw.tps,
                static_cast<unsigned long long>(hw.ecdsa_skipped));
  }
  bench::rule();
  std::printf("software 2of3 vs 3of3: %.0f vs %.0f tps (paper: both ~3,800 — "
              "Fabric verifies all endorsements)\n", sw_2of3, sw_3of3);
  std::printf("bmac 2of3 vs 3of3: %.0f vs %.0f tps = %.2fx (paper: 49,200 vs "
              "25,800 — short-circuit evaluation)\n",
              hw_2of3, hw_3of3, hw_2of3 / hw_3of3);
  return obs.finish();
}

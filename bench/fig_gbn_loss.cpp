// Goodput vs loss rate for the Go-Back-N reliability shim (docs/FAULTS.md).
//
// The paper's reliability story (§5) points at Go-Back-N as used by
// RDMA-over-Ethernet. This bench drives the GBN sender/receiver pair over
// the fault-injection channel (net/faults.hpp) and sweeps the average loss
// rate twice: once i.i.d. (uniform), once as Gilbert–Elliott bursts with
// the same average rate. GBN's cost is per loss *event* (a window collapse
// plus an RTO), so the burst/uniform comparison crosses over: bursts are
// worse at low rates and better at high ones — which is why the chaos soak
// exercises the burst scenario explicitly.
//
// Everything is deterministic: fixed seeds, fixed frame schedule.
#include "bench_common.hpp"
#include "bmac/reliable.hpp"
#include "net/faults.hpp"
#include "net/transport.hpp"

namespace {

struct SweepPoint {
  double goodput_mbps = 0.0;
  double retx_per_frame = 0.0;
  double elapsed_ms = 0.0;
  std::uint64_t timeouts = 0;
};

constexpr int kFrames = 1500;
constexpr std::size_t kPayload = 1024;  // ~1 KB, a typical BMac section

SweepPoint run_sweep_point(const bm::net::FaultConfig& data_faults,
                           const bm::net::FaultConfig& ack_faults) {
  using namespace bm;
  sim::Simulation sim;
  net::Link data_link(sim, {.gbps = 1.0, .propagation = 50 * sim::kMicrosecond,
                            .seed = 3});
  net::Link ack_link(sim, {.gbps = 1.0, .propagation = 50 * sim::kMicrosecond,
                           .seed = 4});
  net::FaultyChannel data(sim, data_link, data_faults);
  net::FaultyChannel ack(sim, ack_link, ack_faults);

  bmac::GbnSender::Config config;  // window 32, 2 ms RTO, 2x backoff
  bmac::GbnSender sender(sim, config, [&](const bmac::SequencedFrame& frame) {
    data.send(frame.encode());
  });

  std::uint64_t delivered_bytes = 0;
  sim::Time last_delivery = 0;
  bmac::GbnReceiver receiver(
      [&](Bytes payload) {
        delivered_bytes += payload.size();
        last_delivery = sim.now();
      },
      [&](std::uint64_t next_expected) {
        ack.send(bmac::encode_ack(next_expected));
      });
  data.set_receiver([&](Bytes wire) { receiver.on_wire(wire); });
  ack.set_receiver([&](Bytes wire) {
    if (const auto n = bmac::decode_ack(wire)) sender.on_ack(*n);
  });

  for (int i = 0; i < kFrames; ++i)
    sender.send(Bytes(kPayload, static_cast<std::uint8_t>(i)));
  sim.run();

  SweepPoint point;
  point.elapsed_ms =
      static_cast<double>(last_delivery) / sim::kMillisecond;
  point.goodput_mbps = point.elapsed_ms > 0
                           ? static_cast<double>(delivered_bytes) * 8.0 /
                                 (point.elapsed_ms * 1e3)
                           : 0.0;
  point.retx_per_frame =
      static_cast<double>(sender.stats().retransmissions) / kFrames;
  point.timeouts = sender.stats().timeouts;
  return point;
}

}  // namespace

int main() {
  using namespace bm;
  const double rates[] = {0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15};

  bench::title("GBN goodput vs loss rate, 1 Gbps link, 1 KB frames");
  std::printf("%d frames, window 32, RTO 2 ms x2 backoff; burst = "
              "Gilbert-Elliott\nwith the same average rate (bad-state "
              "dwell ~4 frames)\n\n",
              kFrames);
  std::printf("%-8s | %13s %10s %8s | %13s %10s %8s\n", "loss",
              "uniform Mbps", "retx/frm", "ms", "burst Mbps", "retx/frm",
              "ms");
  bench::rule(78);
  for (const double rate : rates) {
    const auto uniform = run_sweep_point(
        net::FaultConfig::uniform_loss(rate, 101),
        net::FaultConfig::uniform_loss(rate / 2, 202));

    // Same average rate as bursts: stationary bad fraction 1/6
    // (0.05 / (0.05 + 0.25)), so loss_bad = 6 * rate, clamped.
    net::FaultConfig burst;
    burst.loss_good = 0.0;
    burst.loss_bad = std::min(1.0, rate * 6.0);
    burst.p_good_to_bad = 0.05;
    burst.p_bad_to_good = 0.25;
    burst.seed = 303;
    const auto bursty = run_sweep_point(
        burst, net::FaultConfig::uniform_loss(rate / 2, 404));

    std::printf("%-7.1f%% | %13.1f %10.2f %8.0f | %13.1f %10.2f %8.0f\n",
                rate * 100, uniform.goodput_mbps, uniform.retx_per_frame,
                uniform.elapsed_ms, bursty.goodput_mbps,
                bursty.retx_per_frame, bursty.elapsed_ms);
  }
  bench::rule(78);
  std::printf("goodput counts application payload only (13 B/frame GBN "
              "framing excluded).\nGBN pays roughly one window + RTO per "
              "loss *event*: at low rates bursts cost\nmore (a whole burst "
              "collapses the window), at high rates bursts cost less\n(the "
              "same losses concentrate into fewer events, leaving clean "
              "stretches).\n");
  return 0;
}

// Ablation: what does the short-circuit endorsement evaluation (§3.3) buy?
//
// The paper contrasts its ends_scheduler (stop as soon as the compiled
// policy circuit is satisfied, drop in-flight verifications) with Fabric's
// verify-everything behaviour. This ablation runs the SAME hardware with
// short-circuiting disabled — i.e., a BMac that inherited Fabric's software
// semantics — across the policies of Fig. 7e.
//
// Shape: for k-of-n policies with k < n the win is a full engine round per
// transaction (2x for 2of3 on 2-engine vscc instances); for k = n policies
// the two modes are identical.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  bench::title("Ablation - short-circuit vscc vs verify-all (8x2, block 150)");
  std::printf("%-18s %6s %14s %14s %10s %14s\n", "policy", "ends",
              "short-circuit", "verify-all", "gain", "sigs saved/tx");
  bench::rule(82);

  struct PolicyCase { const char* text; int ends; };
  for (const PolicyCase c : {PolicyCase{"2-outof-2 orgs", 2},
                             PolicyCase{"2-outof-3 orgs", 3},
                             PolicyCase{"2-outof-4 orgs", 4},
                             PolicyCase{"3-outof-4 orgs", 4},
                             PolicyCase{"1-outof-4 orgs", 4}}) {
    auto spec = bench::standard_spec();
    spec.policy_text = c.text;
    spec.ends_attached = c.ends;

    spec.hw.short_circuit_vscc = true;
    const auto fast = obs.run(spec, std::string("short-circuit ") + c.text);
    spec.hw.short_circuit_vscc = false;
    const auto slow = obs.run(spec, std::string("verify-all ") + c.text);

    std::printf("%-18s %6d %14.0f %14.0f %9.2fx %14.2f\n", c.text, c.ends,
                fast.tps, slow.tps, fast.tps / slow.tps,
                static_cast<double>(fast.ecdsa_skipped) /
                    static_cast<double>(fast.total_txs));
  }
  bench::rule(82);
  std::printf("paper: Fabric software always verifies all endorsements "
              "(2of3 == 3of3 at ~3,800 tps);\n"
              "       the hardware short-circuit gives 2of3 the full "
              "49,200 tps (Fig. 7e)\n");
  return obs.finish();
}

// Figure 7f: adapting the architecture to the cryptographic workload —
// 8x2 vs 5x3 (similar total engine count, organized differently), plus the
// complex policy "(Org1&Org2)|(Org1&Org4)|(Org2&Org3)|(Org2&Org4)|(Org3&Org4)".
//
// Paper shape: 8x2 wins by ~52% for 2ofN policies; 5x3 wins by ~25% for
// 3ofN. The complex policy drops the software peer to ~2,700 tps (all
// sub-expressions evaluated sequentially) while BMac's combinational
// circuit evaluates them in parallel — throughput equals plain 2of4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  bench::Observability obs(argc, argv);
  constexpr const char* kComplex =
      "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | "
      "(Org3 & Org4)";
  struct PolicyCase {
    const char* label;
    const char* text;
    int endorsements;
  };
  const PolicyCase cases[] = {
      {"2of3", "2-outof-3 orgs", 3},
      {"3of3", "3-outof-3 orgs", 3},
      {"2of4", "2-outof-4 orgs", 4},
      {"3of4", "3-outof-4 orgs", 4},
      {"complex", kComplex, 4},
  };

  bench::title("Fig 7f - architecture adaptability: 8x2 vs 5x3 (block 150)");
  std::printf("%-10s %6s %12s %12s %12s %14s\n", "policy", "ends", "bmac 8x2",
              "bmac 5x3", "8x2/5x3", "sw_validator");
  std::printf("%-10s %6s %12s %12s %12s %14s\n", "", "", "(tps)", "(tps)",
              "(x)", "(tps, 8vcpu)");
  bench::rule();

  for (const auto& c : cases) {
    auto spec = bench::standard_spec();
    spec.policy_text = c.text;
    spec.ends_attached = c.endorsements;

    spec.hw = {.tx_validators = 8, .engines_per_vscc = 2};
    const double tps_8x2 =
        obs.run(spec, std::string("8x2 ") + c.label).tps;
    spec.hw = {.tx_validators = 5, .engines_per_vscc = 3};
    const double tps_5x3 =
        obs.run(spec, std::string("5x3 ") + c.label).tps;
    const double sw = workload::run_sw_model(spec, 8).validator_tps;
    std::printf("%-10s %6d %12.0f %12.0f %12.2f %14.0f\n", c.label,
                c.endorsements, tps_8x2, tps_5x3, tps_8x2 / tps_5x3, sw);
  }
  bench::rule();
  std::printf("paper: 8x2 outperforms by 52%% for 2of3; 5x3 outperforms by "
              "25%% for 3of3/3of4;\n"
              "       complex policy: sw ~2,700 tps, bmac ~= 2of4 "
              "(combinational circuits evaluate sub-expressions in parallel)\n");
  return obs.finish();
}

// Microbenchmarks for the wire-format and transaction marshaling paths —
// the "unmarshaling of many protobufs" bottleneck (§2.3, observation 1).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fabric/transaction.hpp"
#include "wire/varint.hpp"

namespace {

using namespace bm;

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) v = rng.next_u64() >> rng.uniform(64);
  Bytes out;
  for (auto _ : state) {
    out.clear();
    for (const auto v : values) wire::put_varint(out, v);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  Rng rng(1);
  Bytes encoded;
  for (int i = 0; i < 1024; ++i)
    wire::put_varint(encoded, rng.next_u64() >> rng.uniform(64));
  for (auto _ : state) {
    std::size_t pos = 0;
    std::uint64_t sum = 0;
    while (pos < encoded.size()) sum += *wire::get_varint(encoded, pos);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintDecode);

struct TxFixture {
  TxFixture() {
    auto& org1 = msp.add_org("Org1");
    auto& org2 = msp.add_org("Org2");
    client = org1.issue(fabric::Role::kClient, 0, "c0");
    peer1 = org1.issue(fabric::Role::kPeer, 0, "p1");
    peer2 = org2.issue(fabric::Role::kPeer, 0, "p2");
    fabric::TxProposal proposal;
    proposal.channel_id = "ch";
    proposal.chaincode_id = "smallbank";
    proposal.tx_id = "bench";
    proposal.rwset.reads.push_back({"checking_1", fabric::Version{1, 0}});
    proposal.rwset.writes.push_back({"checking_1", to_bytes("100")});
    envelope = fabric::build_envelope(proposal, client, {&peer1, &peer2});
  }
  fabric::Msp msp;
  fabric::Identity client, peer1, peer2;
  Bytes envelope;
};

void BM_EnvelopeParse(benchmark::State& state) {
  static TxFixture fixture;  // endorsing once; parse is the hot path
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric::parse_envelope(fixture.envelope));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(fixture.envelope.size()));
}
BENCHMARK(BM_EnvelopeParse);

void BM_CertificateUnmarshal(benchmark::State& state) {
  static TxFixture fixture;
  const Bytes cert = fixture.peer1.cert.marshal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric::Certificate::unmarshal(cert));
  }
}
BENCHMARK(BM_CertificateUnmarshal);

}  // namespace

BENCHMARK_MAIN();

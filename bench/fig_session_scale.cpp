// Session-count scaling of the serving front end (docs/SERVING.md).
//
// The paper's deployment model is one network-attached peer absorbing the
// traffic of a whole Fabric client population; this bench checks that the
// session layer holds up when that population grows from 10^3 to 10^6
// concurrent sessions. The offered rate is FIXED (the traffic generator's
// schedule is seed-identical across points), so every difference between
// rows is session-layer overhead: handshakes at preconnect, per-request
// sequence checks, rate-class fan-out, and the idle-eviction storm the
// mostly-idle long tail throws at the O(1) timer wheel (a 10^6-session
// point arms, evicts and purges ~10^6 timers).
//
// Acceptance gates (exit non-zero on failure):
//   - goodput at every population >= 85% of the peak across the sweep
//     (session bookkeeping must not eat throughput);
//   - committed p99.9 latency within 2x of the 10^3-session baseline
//     (no per-event cost growing with table size);
//   - byte-identical ServeReport::to_text() on a rerun of the heaviest
//     point (determinism at full scale).
//
// --quick caps the sweep at 10^5 sessions for CI smoke runs; --out FILE
// additionally writes the sweep artifact JSON.
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "serve/pipeline.hpp"

namespace {

using namespace bm;

serve::ServeOptions scenario(std::size_t population) {
  serve::ServeOptions options;
  options.name = "session_scale";
  options.network.seed = 7;
  options.traffic.seed = 7 ^ 0x9E3779B97F4A7C15ull;
  options.traffic.rate_tps = 2000;
  options.duration = 300 * sim::kMillisecond;
  options.admission.queue_capacity = 256;
  options.admission.classes = 4;
  options.endorse.workers = 8;
  options.endorse.deadline = 50 * sim::kMillisecond;
  options.ingress.max_batch = 100;
  options.ingress.batch_timeout = 25 * sim::kMillisecond;

  options.sessions.enabled = true;
  options.sessions.population = population;
  options.sessions.zipf_s = 1.1;   // hot-key skew: few clients, most requests
  options.sessions.rate_classes = 4;
  options.sessions.idle_timeout = 60 * sim::kMillisecond;
  options.sessions.grace = 20 * sim::kMillisecond;
  options.sessions.wheel_granularity = sim::kMillisecond;
  options.sessions.preconnect = true;  // the 10^6 handshake storm at t = 0
  options.sessions.cert_pool = 64;
  return options;
}

std::string point_json(std::size_t population, const serve::ServeReport& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"population\": %zu, \"goodput_tps\": %.1f, \"offered\": %llu, "
      "\"committed\": %llu, \"rejected_session\": %llu, \"shed\": %llu, "
      "\"opened\": %llu, \"evicted\": %llu, \"reconnected\": %llu, "
      "\"purged\": %llu, \"table\": %zu, "
      "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"p999_ms\": %.2f}",
      population, r.goodput_tps, static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.committed_txs),
      static_cast<unsigned long long>(r.rejected_session),
      static_cast<unsigned long long>(r.shed_total()),
      static_cast<unsigned long long>(r.session_stats.opened),
      static_cast<unsigned long long>(r.session_stats.evicted),
      static_cast<unsigned long long>(r.session_stats.reconnected),
      static_cast<unsigned long long>(r.session_stats.purged),
      r.session_table, r.total_ms.p50, r.total_ms.p99, r.total_ms.p999);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool quick = false;
  cli::ArgParser parser(cli::ArgParser::Unknown::kIgnore);
  parser.add_string("--out", &out_path, "write the sweep JSON here too");
  parser.add_flag("--quick", &quick, "cap the sweep at 10^5 sessions (CI)");
  parser.parse(argc, argv);

  std::vector<std::size_t> populations = {1000, 10000, 100000};
  if (!quick) populations.push_back(1000000);

  bench::title("serve: session-count scaling at a fixed 2000 tps offered");
  std::printf("%-10s | %9s %9s %9s | %9s %9s %7s | %8s %9s\n", "sessions",
              "goodput", "committed", "shed", "evicted", "purged", "reconn",
              "p99 ms", "p99.9 ms");
  bench::rule(96);

  std::vector<serve::ServeReport> reports;
  bool all_ok = true;
  for (const std::size_t population : populations) {
    reports.push_back(serve::run_serve(scenario(population)));
    const serve::ServeReport& r = reports.back();
    all_ok = all_ok && r.ok();
    std::printf("%-10zu | %9.1f %9llu %9llu | %9llu %9llu %7llu | %8.2f "
                "%9.2f\n",
                population, r.goodput_tps,
                static_cast<unsigned long long>(r.committed_txs),
                static_cast<unsigned long long>(r.shed_total()),
                static_cast<unsigned long long>(r.session_stats.evicted),
                static_cast<unsigned long long>(r.session_stats.purged),
                static_cast<unsigned long long>(r.session_stats.reconnected),
                r.total_ms.p99, r.total_ms.p999);
  }
  bench::rule(96);

  double peak_goodput = 0;
  for (const auto& r : reports)
    peak_goodput = std::max(peak_goodput, r.goodput_tps);
  bool goodput_flat = true;
  for (const auto& r : reports)
    if (r.goodput_tps < 0.85 * peak_goodput) goodput_flat = false;

  const double baseline_p999 = reports.front().total_ms.p999;
  bool latency_flat = true;
  for (const auto& r : reports)
    if (r.total_ms.p999 > 2.0 * baseline_p999) latency_flat = false;

  // Determinism at the heaviest point: the full human-readable report must
  // reproduce byte for byte (covers every counter, percentile and the
  // per-class table in one comparison).
  const serve::ServeReport rerun = serve::run_serve(scenario(populations.back()));
  const bool deterministic = rerun.to_text() == reports.back().to_text();

  std::printf(
      "peak goodput %.0f tps | goodput held >= 85%% of peak at every "
      "population: %s\np99.9 baseline (10^3) %.2f ms | within 2x at every "
      "population: %s\nbyte-identical rerun of the %zu-session point: %s | "
      "all points drained: %s\n",
      peak_goodput, goodput_flat ? "PASS" : "FAIL", baseline_p999,
      latency_flat ? "PASS" : "FAIL", populations.back(),
      deterministic ? "PASS" : "FAIL", all_ok ? "yes" : "NO");

  std::ostringstream json;
  json << "{\n"
       << bench::artifact_meta(
              "fig_session_scale", scenario(populations[0]).network.seed,
              quick ? "{\"rate_tps\": 2000, \"duration_ms\": 300, "
                      "\"quick\": true}"
                    : "{\"rate_tps\": 2000, \"duration_ms\": 300, "
                      "\"quick\": false}")
       << "  \"peak_goodput_tps\": " << peak_goodput << ",\n"
       << "  \"goodput_flat\": " << (goodput_flat ? "true" : "false") << ",\n"
       << "  \"latency_flat\": " << (latency_flat ? "true" : "false") << ",\n"
       << "  \"deterministic_rerun\": " << (deterministic ? "true" : "false")
       << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i)
    json << "    " << point_json(populations[i], reports[i])
         << (i + 1 < reports.size() ? "," : "") << "\n";
  json << "  ]\n}\n";

  std::printf("\n%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }

  return (goodput_flat && latency_flat && deterministic && all_ok) ? 0 : 1;
}

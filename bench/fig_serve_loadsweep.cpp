// Goodput vs offered load for the client-serving front end
// (docs/SERVING.md).
//
// The closed-loop benches measure capacity; this one measures what happens
// when clients do not wait for it. A fixed serving configuration (2
// endorser lanes at ~1 ms/tx => ~2000 tps of endorsement capacity) is
// swept with open-loop Poisson traffic from well below to 3x above the
// knee. Below the knee goodput tracks offered load; past it the admission
// queue sheds explicitly (kOverloaded) and goodput holds near capacity
// instead of collapsing — the hockey stick lives in the p99 latency
// column, not the goodput column. That non-collapse is the acceptance
// check, alongside a deterministic rerun of the heaviest point.
//
// Emits the full sweep as JSON (stdout, and --out FILE when given).
#include <cmath>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "serve/pipeline.hpp"

namespace {

using namespace bm;

serve::ServeOptions scenario(double offered_tps) {
  serve::ServeOptions options;
  options.name = "loadsweep";
  options.network.seed = 7;
  options.traffic.seed = 7 ^ 0x9E3779B97F4A7C15ull;
  options.traffic.rate_tps = offered_tps;
  options.duration = 300 * sim::kMillisecond;
  options.admission.queue_capacity = 128;
  options.endorse.workers = 2;
  options.endorse.service_base = sim::kMillisecond;
  options.endorse.per_endorsement = 0;
  options.endorse.deadline = 50 * sim::kMillisecond;
  options.ingress.max_batch = 50;
  // A long batch timeout keeps low-load blocks from shrinking to a few
  // transactions each — the commit stage's fixed ~6 ms/block cost would
  // otherwise saturate it long before the endorsement stage does.
  options.ingress.batch_timeout = 25 * sim::kMillisecond;
  return options;
}

std::string point_json(const serve::ServeReport& r) {
  std::ostringstream out;
  char buf[360];
  std::snprintf(
      buf, sizeof(buf),
      "{\"offered_tps\": %.0f, \"goodput_tps\": %.1f, \"offered\": %llu, "
      "\"admitted\": %llu, \"shed\": %llu, \"timed_out\": %llu, "
      "\"committed\": %llu, \"valid\": %llu, "
      "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"p999_ms\": %.2f}",
      r.offered_tps, r.goodput_tps,
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.shed_total()),
      static_cast<unsigned long long>(r.timed_out),
      static_cast<unsigned long long>(r.committed_txs),
      static_cast<unsigned long long>(r.valid_txs), r.total_ms.p50,
      r.total_ms.p99, r.total_ms.p999);
  return out.str() + buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  cli::ArgParser parser(cli::ArgParser::Unknown::kIgnore);
  parser.add_string("--out", &out_path, "write the sweep JSON here too");
  parser.parse(argc, argv);

  const double offered[] = {500, 1000, 1500, 2000, 3000, 4000, 6000};

  bench::title(
      "serve: goodput vs offered load (open loop, ~2000 tps capacity)");
  std::printf("%-11s | %9s %9s %9s %9s | %8s %8s %9s\n", "offered tps",
              "goodput", "admitted", "shed", "timedout", "p50 ms", "p99 ms",
              "p99.9 ms");
  bench::rule(86);

  std::vector<serve::ServeReport> reports;
  bool all_drained = true;
  for (const double rate : offered) {
    reports.push_back(serve::run_serve(scenario(rate)));
    const serve::ServeReport& r = reports.back();
    all_drained = all_drained && r.ok();
    std::printf("%-11.0f | %9.1f %9llu %9llu %9llu | %8.2f %8.2f %9.2f\n",
                rate, r.goodput_tps,
                static_cast<unsigned long long>(r.admitted),
                static_cast<unsigned long long>(r.shed_total()),
                static_cast<unsigned long long>(r.timed_out), r.total_ms.p50,
                r.total_ms.p99, r.total_ms.p999);
  }
  bench::rule(86);

  // The knee: the highest offered rate whose goodput still tracks the
  // *realized* arrival rate (the nominal rate has Poisson sampling noise
  // at these durations).
  double knee = offered[0], max_goodput = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].goodput_tps >= 0.85 * reports[i].offered_tps)
      knee = offered[i];
    max_goodput = std::max(max_goodput, reports[i].goodput_tps);
  }

  // Past the knee goodput must hold — shedding, not collapsing.
  bool non_collapse = true;
  for (std::size_t i = 0; i < reports.size(); ++i)
    if (offered[i] > knee && reports[i].goodput_tps < 0.85 * max_goodput)
      non_collapse = false;

  // Determinism: the heaviest point rerun must reproduce its admission and
  // shed counts exactly.
  const serve::ServeReport rerun =
      serve::run_serve(scenario(offered[std::size(offered) - 1]));
  const serve::ServeReport& heaviest = reports.back();
  const bool deterministic = rerun.offered == heaviest.offered &&
                             rerun.admitted == heaviest.admitted &&
                             rerun.shed_queue_full ==
                                 heaviest.shed_queue_full &&
                             rerun.shed_rate_limited ==
                                 heaviest.shed_rate_limited &&
                             rerun.timed_out == heaviest.timed_out &&
                             rerun.valid_txs == heaviest.valid_txs;

  std::printf("knee ~%.0f tps | peak goodput %.0f tps | past-knee goodput "
              "held >= 85%% of peak: %s\ndeterministic rerun of %0.f tps "
              "point: %s | all points drained: %s\n",
              knee, max_goodput, non_collapse ? "PASS" : "FAIL",
              offered[std::size(offered) - 1],
              deterministic ? "PASS" : "FAIL", all_drained ? "yes" : "NO");

  std::ostringstream json;
  json << "{\n"
       << bench::artifact_meta(
              "fig_serve_loadsweep", scenario(offered[0]).network.seed,
              "{\"duration_ms\": 300, \"endorse_workers\": 2, "
              "\"queue_capacity\": 128, \"offered_tps\": "
              "[500, 1000, 1500, 2000, 3000, 4000, 6000]}")
       << "  \"knee_offered_tps\": " << knee << ",\n"
       << "  \"peak_goodput_tps\": " << max_goodput << ",\n"
       << "  \"non_collapse\": " << (non_collapse ? "true" : "false")
       << ",\n"
       << "  \"deterministic_rerun\": "
       << (deterministic ? "true" : "false") << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i)
    json << "    " << point_json(reports[i])
         << (i + 1 < reports.size() ? "," : "") << "\n";
  json << "  ]\n}\n";

  std::printf("\n%s", json.str().c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return (non_collapse && deterministic && all_drained) ? 0 : 1;
}

// Table 1: hardware resource utilization of BMac architectures on the
// Xilinx Alveo U250 (4x2, 5x3, 8x2, 12x2, 16x2), from the analytic resource
// model fit to the paper's numbers, plus the per-module breakdown and the
// policy-circuit ablation.
#include <cstdio>

#include "bench_common.hpp"
#include "bmac/peer.hpp"
#include "bmac/resource_model.hpp"

int main() {
  using namespace bm;
  using bmac::HwConfig;
  using bmac::ResourceModel;

  const ResourceModel model;

  bench::title("Table 1 - BMac hardware utilization on Alveo U250");
  struct Arch { int v; int e; double paper_lut, paper_ff; };
  const Arch archs[] = {{4, 2, 20.9, 6.9}, {5, 3, 25.4, 7.3},
                        {8, 2, 28.5, 8.0}, {12, 2, 35.8, 9.1},
                        {16, 2, 43.3, 10.3}};

  std::printf("%-14s", "Resource");
  for (const auto& a : archs) {
    HwConfig config{.tx_validators = a.v, .engines_per_vscc = a.e};
    std::printf("%9s", config.name().c_str());
  }
  std::printf("\n");
  bench::rule(60);

  std::printf("%-14s", "LUT/LUTRAM");
  for (const auto& a : archs) {
    HwConfig config{.tx_validators = a.v, .engines_per_vscc = a.e};
    std::printf("%8.1f%%", model.estimate(config).lut_pct());
  }
  std::printf("\n%-14s", "  (paper)");
  for (const auto& a : archs) std::printf("%8.1f%%", a.paper_lut);

  std::printf("\n%-14s", "FF");
  for (const auto& a : archs) {
    HwConfig config{.tx_validators = a.v, .engines_per_vscc = a.e};
    std::printf("%8.1f%%", model.estimate(config).ff_pct());
  }
  std::printf("\n%-14s", "  (paper)");
  for (const auto& a : archs) std::printf("%8.1f%%", a.paper_ff);

  std::printf("\n%-14s", "BRAM/URAM");
  for (const auto& a : archs) {
    HwConfig config{.tx_validators = a.v, .engines_per_vscc = a.e};
    std::printf("%8.1f%%", model.estimate(config).bram_pct());
  }
  std::printf("\n%-14s", "  (paper)");
  for (std::size_t i = 0; i < 5; ++i) std::printf("%8.1f%%", 13.1);
  std::printf("\n");
  bench::rule(60);
  const auto fixed = model.fixed();
  std::printf("Fixed: GT %.1f%%, BUFG %.1f%%, MMCM %.1f%%, PCIe %.1f%% "
              "(same for all architectures)\n",
              fixed.gt_pct, fixed.bufg_pct, fixed.mmcm_pct, fixed.pcie_pct);

  bench::title("Per-module breakdown (8x2, with smallbank+drm policies)");
  fabric::Msp msp;
  for (int i = 1; i <= 4; ++i) msp.add_org("Org" + std::to_string(i));
  std::map<std::string, fabric::EndorsementPolicy> policies;
  policies.emplace("smallbank", fabric::parse_policy_or_throw(
                                    "2-outof-2 orgs", msp.org_names()));
  policies.emplace("drm", fabric::parse_policy_or_throw("2-outof-4 orgs",
                                                        msp.org_names()));
  const auto circuits = bmac::compile_policies(policies, msp);
  HwConfig config;
  std::printf("%-64s %9s %9s %6s %6s\n", "module", "LUT", "FF", "BRAM",
              "URAM");
  bench::rule(98);
  for (const auto& module : model.breakdown(config, circuits)) {
    std::printf("%-64s %9llu %9llu %6llu %6llu\n", module.name.c_str(),
                static_cast<unsigned long long>(module.lut),
                static_cast<unsigned long long>(module.ff),
                static_cast<unsigned long long>(module.bram36),
                static_cast<unsigned long long>(module.uram));
  }
  return 0;
}

// Endorsement policies as hardware: parse policy expressions, compile them
// to the combinational circuits of the ends_policy_evaluator (§3.3), and
// show how short-circuit evaluation changes the number of ECDSA engine
// invocations — the adaptability story of Figs. 7e/7f.
//
// Also demonstrates the YAML configuration flow of §3.5: the same file that
// describes the network regenerates the evaluator circuits.
//
//   $ ./policy_circuits
#include <cstdio>

#include "bmac/config.hpp"
#include "bmac/policy_circuit.hpp"

int main() {
  using namespace bm;

  // §3.5: a YAML configuration defines the network and chaincode policies.
  constexpr const char* kConfig = R"yaml(
network:
  orgs: [Org1, Org2, Org3, Org4]
chaincodes:
  - name: smallbank
    policy: "2-outof-3 orgs"
  - name: drm
    policy: "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)"
hardware:
  tx_validators: 8
  engines_per_vscc: 2
)yaml";
  const auto parsed = bmac::parse_config(kConfig);
  const auto& config = std::get<bmac::BmacConfig>(parsed);

  fabric::Msp msp;
  config.populate_msp(msp);
  const auto policies = config.parse_policies();

  std::printf("== ends_policy_evaluator generation ==\n");
  for (const auto& [chaincode, policy] : policies) {
    const auto circuit = bmac::PolicyCircuit::compile(policy, msp);
    const auto stats = circuit.stats();
    std::printf("\nchaincode '%s': policy \"%s\"\n", chaincode.c_str(),
                policy.text().c_str());
    std::printf("  compiled circuit: %zu inputs, %zu AND, %zu OR, %zu "
                "threshold gates (%zu gate inputs total)\n",
                stats.inputs, stats.and_gates, stats.or_gates,
                stats.threshold_gates, stats.total_gate_inputs);
    std::printf("  minimum endorsements to satisfy: %d (of %zu attached)\n",
                policy.min_endorsements_to_satisfy(),
                policy.principals().size());

    // Truth-table corner: evaluate the circuit for a few endorsement sets.
    struct Scenario {
      const char* label;
      std::vector<int> orgs;
    };
    const Scenario scenarios[] = {
        {"Org1+Org2 valid", {1, 2}},
        {"Org1+Org3 valid", {1, 3}},
        {"only Org1 valid", {1}},
        {"all four valid", {1, 2, 3, 4}},
    };
    for (const auto& scenario : scenarios) {
      bmac::RegisterFile regs(16);
      for (const int org : scenario.orgs)
        regs.set(fabric::EncodedId::make(static_cast<std::uint8_t>(org),
                                         fabric::Role::kPeer, 0),
                 true);
      std::printf("    %-18s -> %s\n", scenario.label,
                  circuit.evaluate(regs) ? "SATISFIED" : "not satisfied");
    }
  }

  // Short-circuit evaluation: with a 2-outof-3 policy and 2 engines, the
  // ends_scheduler verifies endorsements in rounds of 2 and stops as soon
  // as the circuit reports satisfied.
  std::printf("\n== short-circuit evaluation (2 engines, 2-outof-3) ==\n");
  const auto circuit =
      bmac::PolicyCircuit::compile(policies.at("smallbank"), msp);
  bmac::RegisterFile regs(16);
  int executed = 0;
  const int endorsement_orgs[] = {1, 2, 3};
  for (int round = 0; round * 2 < 3; ++round) {
    for (int i = round * 2; i < std::min(3, round * 2 + 2); ++i) {
      regs.set(fabric::EncodedId::make(
                   static_cast<std::uint8_t>(endorsement_orgs[i]),
                   fabric::Role::kPeer, 0),
               true);
      ++executed;
    }
    std::printf("  after round %d (%d verifications): circuit = %s\n",
                round + 1, executed,
                circuit.evaluate(regs) ? "SATISFIED -> drop the rest"
                                       : "not yet satisfied");
    if (circuit.evaluate(regs)) break;
  }
  std::printf("  engines used: %d of 3 endorsements (Fabric software always "
              "verifies all 3 — the Fig. 7e gap)\n", executed);
  return 0;
}

// Digital rights management (drm) on the full functional pipeline: create /
// update / transfer digital assets through real endorsement, ordering, the
// BMac protocol and the hardware validation pipeline — with fault injection
// to show every validation outcome, and the history database tracking which
// block/transaction touched each asset.
//
//   $ ./drm_pipeline
#include <cstdio>
#include <map>

#include "bmac/peer.hpp"
#include "fabric/validator.hpp"
#include "workload/caliper.hpp"
#include "workload/network_harness.hpp"

int main() {
  using namespace bm;

  std::printf("== drm asset pipeline ==\n\n");

  workload::NetworkOptions options;
  options.orgs = 2;
  options.chaincode = workload::ChaincodeKind::kDrm;
  options.policy_text = "Org1 & Org2";
  options.block_size = 12;
  options.seed = 2024;
  // Inject realistic faults: stale reads (concurrent clients), a rogue
  // client, under-endorsed transactions.
  options.bad_signature_rate = 0.1;
  options.missing_endorsement_rate = 0.1;
  options.conflicting_read_rate = 0.15;
  workload::FabricNetworkHarness network(options);

  sim::Simulation sim;
  bmac::HwConfig hw;
  hw.tx_validators = 4;
  bmac::BmacPeer peer(sim, network.msp(), hw, network.policies());
  peer.start();
  bmac::ProtocolSender protocol(network.msp());

  fabric::StateDb sw_state;
  fabric::Ledger sw_ledger;
  fabric::HistoryDb history;
  fabric::SoftwareValidator sw_validator(network.msp(), network.policies());

  std::map<fabric::TxValidationCode, int> outcomes;
  for (int b = 0; b < 6; ++b) {
    const fabric::Block block = network.next_block();
    const auto result =
        sw_validator.validate_and_commit(block, sw_state, sw_ledger, &history);
    for (const auto flag : result.flags) outcomes[flag]++;

    for (const auto& packet : protocol.send(block).packets)
      peer.deliver_packet(packet);
    peer.deliver_block(block);
    sim.run();
  }

  std::printf("validation outcomes over %llu transactions:\n",
              static_cast<unsigned long long>(6 * options.block_size));
  for (const auto& [code, count] : outcomes)
    std::printf("  %-28s %d\n", fabric::tx_validation_code_name(code), count);

  // Cross-check the hardware peer agreed on every flag.
  bool match = true;
  for (std::uint64_t i = 0; i < sw_ledger.height(); ++i)
    match = match && sw_ledger.at(i).block.metadata.tx_flags ==
                         peer.ledger().at(i).block.metadata.tx_flags;
  std::printf("\nhw/sw flag agreement across %llu blocks: %s\n",
              static_cast<unsigned long long>(sw_ledger.height()),
              match ? "PASS" : "FAIL");

  // The history database (validation step 5): who wrote asset_7?
  std::printf("\nhistory of drm assets (key -> writers):\n");
  int shown = 0;
  for (int a = 0; a < 2000 && shown < 5; ++a) {
    const std::string key = fabric::StateDb::namespaced(
        "drm", "asset_" + std::to_string(a));
    if (const auto* writers = history.history(key)) {
      std::printf("  asset_%-4d written by", a);
      for (const auto& version : *writers)
        std::printf(" (block %llu, tx %u)",
                    static_cast<unsigned long long>(version.block_num),
                    version.tx_num);
      std::printf("\n");
      ++shown;
    }
  }

  // Caliper-style block-level report from the hardware monitor's stats
  // (the paper reads these from reg_map instead of software timestamps).
  workload::CaliperReport report("bmac-peer(drm)");
  for (const auto& result : peer.results()) {
    workload::BlockObservation obs;
    obs.block_num = result.block_num;
    obs.tx_count = static_cast<std::uint32_t>(result.flags.size());
    for (const auto flag : result.flags)
      if (flag == fabric::TxValidationCode::kValid) ++obs.valid_tx_count;
    obs.received_at = result.stats.received_at;
    obs.validated_at = result.stats.validate_end;
    obs.committed_at = result.stats.validate_end;  // ledger commit excluded
    report.record(obs);
  }
  std::printf("\n%s", report.render().c_str());

  std::printf("\nfinal state: %zu assets in the world state, ledger height "
              "%llu, %llu bytes on disk\n",
              sw_state.size(),
              static_cast<unsigned long long>(sw_ledger.height()),
              static_cast<unsigned long long>(sw_ledger.bytes_written()));
  return match ? 0 : 1;
}

// Quickstart: stand up a two-org Fabric network, push one block of real
// endorsed transactions through BOTH validator implementations — the
// software-only peer and the BMac hardware-accelerated peer — and check
// they agree (the paper's §4.1 consistency check).
//
//   $ ./quickstart
//
// Walks through: identities/MSP -> chaincode policy -> client endorsement ->
// ordering -> BMac protocol packets -> hardware pipeline -> ledger commit.
#include <cstdio>

#include "bmac/peer.hpp"
#include "common/hex.hpp"
#include "fabric/validator.hpp"
#include "workload/network_harness.hpp"

int main() {
  using namespace bm;

  std::printf("== Blockchain Machine quickstart ==\n\n");

  // 1. A Fabric network: two orgs, smallbank chaincode, "Org1 & Org2"
  //    endorsement policy. The harness creates CAs, peers, a client and an
  //    orderer, and executes chaincode against committed state.
  workload::NetworkOptions options;
  options.orgs = 2;
  options.policy_text = "2-outof-2 orgs";
  options.block_size = 10;
  workload::FabricNetworkHarness network(options);
  std::printf("network: %zu orgs, chaincode '%s', policy \"%s\"\n",
              network.msp().org_count(), network.chaincode_name().c_str(),
              options.policy_text.c_str());

  // 2. The software-only validator peer.
  fabric::StateDb sw_state;
  fabric::Ledger sw_ledger;
  fabric::SoftwareValidator sw_validator(network.msp(), network.policies());

  // 3. The BMac peer: an 8x2 hardware architecture in the discrete-event
  //    simulator, fed through the BMac protocol.
  sim::Simulation sim;
  bmac::HwConfig hw;  // 8 tx_validators x 2 ecdsa_engines (the paper default)
  bmac::BmacPeer bmac_peer(sim, network.msp(), hw, network.policies());
  bmac_peer.start();
  bmac::ProtocolSender protocol(network.msp());

  // 4. Create three blocks of endorsed transactions and deliver them to
  //    both peers.
  for (int i = 0; i < 3; ++i) {
    fabric::Block block = network.next_block();
    std::printf("\nblock %llu: %zu transactions, %zu bytes marshaled\n",
                static_cast<unsigned long long>(block.header.number),
                block.tx_count(), block.marshaled_size());

    // Software path: Gossip delivers the marshaled block; validate+commit.
    const auto sw_result =
        sw_validator.validate_and_commit(block, sw_state, sw_ledger);
    std::printf("  sw_validator : block %s, %u/%zu txs valid\n",
                sw_result.block_valid ? "valid" : "INVALID",
                sw_result.valid_tx_count, block.tx_count());

    // BMac path: the orderer calls Send() right before Gossip (§3.5) —
    // sections, identity removal, annotations, UDP packets.
    const bmac::SendResult send = protocol.send(block);
    std::printf("  bmac protocol: %zu packets, %zu B (gossip: %zu B, %.1fx "
                "smaller)\n",
                send.packets.size(), send.bmac_size, send.gossip_size,
                static_cast<double>(send.gossip_size) / send.bmac_size);
    for (const auto& packet : send.packets) bmac_peer.deliver_packet(packet);
    bmac_peer.deliver_block(block);
    sim.run();  // hardware validates; host merges flags and commits

    const auto& hw_result = bmac_peer.results().back();
    std::printf("  bmac peer    : block %s, validated in %.0f us of "
                "simulated time (%u signatures checked, %u skipped)\n",
                hw_result.block_valid ? "valid" : "INVALID",
                static_cast<double>(hw_result.stats.validate_end -
                                    hw_result.stats.validate_start) /
                    sim::kMicrosecond,
                hw_result.stats.ecdsa_executed, hw_result.stats.ecdsa_skipped);
  }

  // 5. The consistency check: flags and commit hashes must be identical.
  bool match = sw_ledger.height() == bmac_peer.ledger().height();
  for (std::uint64_t i = 0; match && i < sw_ledger.height(); ++i) {
    match = sw_ledger.at(i).block.metadata.tx_flags ==
                bmac_peer.ledger().at(i).block.metadata.tx_flags &&
            sw_ledger.at(i).commit_hash == bmac_peer.ledger().at(i).commit_hash;
  }
  std::printf("\ncommit hash (sw)  : %s\n",
              hex_encode(crypto::digest_view(sw_ledger.last().commit_hash))
                  .c_str());
  std::printf("commit hash (bmac): %s\n",
              hex_encode(crypto::digest_view(
                             bmac_peer.ledger().last().commit_hash))
                  .c_str());
  std::printf("consistency check : %s\n", match ? "PASS" : "FAIL");
  return match ? 0 : 1;
}

// Ordering-service failover: a 3-node Raft cluster orders transactions
// while the BMac peer validates. Mid-run the lead orderer crashes; a new
// leader is elected and — per §3.5, "only the lead orderer sends the block
// through our protocol" — the BMac protocol sender follows the leadership
// change. The BMac peer's chain continues seamlessly.
//
//   $ ./raft_failover
#include <cstdio>

#include "bmac/peer.hpp"
#include "fabric/raft.hpp"
#include "fabric/transaction.hpp"
#include "workload/chaincode.hpp"

int main() {
  using namespace bm;
  using namespace bm::fabric;

  std::printf("== Raft ordering service failover ==\n\n");

  Msp msp;
  auto& org1 = msp.add_org("Org1");
  auto& org2 = msp.add_org("Org2");
  const Identity client = org1.issue(Role::kClient, 0, "client0.org1");
  const Identity endorser1 = org1.issue(Role::kPeer, 0, "peer0.org1");
  const Identity endorser2 = org2.issue(Role::kPeer, 0, "peer0.org2");
  std::vector<Identity> orderer_ids;
  for (int i = 0; i < 3; ++i)
    orderer_ids.push_back(org1.issue(
        Role::kOrderer, static_cast<std::uint8_t>(i),
        "orderer" + std::to_string(i) + ".org1"));

  std::map<std::string, EndorsementPolicy> policies;
  policies.emplace("smallbank",
                   parse_policy_or_throw("2-outof-2 orgs", msp.org_names()));

  sim::Simulation sim;
  RaftOrderingService::Config raft_config;
  raft_config.nodes = 3;
  raft_config.max_tx_per_block = 4;
  RaftOrderingService ordering(sim, raft_config, orderer_ids);

  bmac::BmacPeer peer(sim, msp, bmac::HwConfig{}, policies);
  peer.start();
  bmac::ProtocolSender protocol(msp);

  ordering.set_block_callback([&](Block block) {
    std::printf("  [t=%6.0f ms] leader orderer%d emits block %llu (%zu txs)\n",
                static_cast<double>(sim.now()) / sim::kMillisecond,
                ordering.leader(),
                static_cast<unsigned long long>(block.header.number),
                block.tx_count());
    for (const auto& packet : protocol.send(block).packets)
      peer.deliver_packet(packet);
    peer.deliver_block(std::move(block));
  });
  ordering.start();

  auto wait_for_leader = [&] {
    while (ordering.leader() < 0)
      sim.run_until(sim.now() + 50 * sim::kMillisecond);
    return ordering.leader();
  };

  const int first_leader = wait_for_leader();
  std::printf("leader elected: orderer%d (term %llu)\n\n", first_leader,
              static_cast<unsigned long long>(
                  ordering.node(first_leader).term()));

  // Drive transactions through the cluster.
  StateDb endorsement_state;
  workload::SmallbankChaincode chaincode({.accounts = 32});
  Rng rng(7);
  int tx_id = 0;
  auto submit_txs = [&](int count) {
    for (int i = 0; i < count; ++i) {
      auto executed = chaincode.execute(rng, endorsement_state);
      TxProposal proposal;
      proposal.channel_id = "mychannel";
      proposal.chaincode_id = "smallbank";
      proposal.tx_id = "tx" + std::to_string(tx_id++);
      proposal.rwset = std::move(executed.rwset);
      while (!ordering.submit(
          build_envelope(proposal, client, {&endorser1, &endorser2}))) {
        sim.run_until(sim.now() + 100 * sim::kMillisecond);  // re-election
      }
      sim.run_until(sim.now() + 10 * sim::kMillisecond);
    }
  };

  submit_txs(8);  // blocks 0 and 1
  sim.run_until(sim.now() + sim::kSecond);

  std::printf("\n!! crashing the lead orderer (orderer%d)\n", first_leader);
  ordering.stop_node(first_leader);
  const int second_leader = wait_for_leader();
  std::printf("new leader elected: orderer%d (term %llu)\n\n", second_leader,
              static_cast<unsigned long long>(
                  ordering.node(second_leader).term()));

  submit_txs(8);  // blocks 2 and 3, emitted by the new leader
  sim.run_until(sim.now() + sim::kSecond);

  std::printf("\nBMac peer committed %llu blocks / %llu transactions "
              "(%llu valid) across the failover\n",
              static_cast<unsigned long long>(peer.ledger().height()),
              static_cast<unsigned long long>(
                  peer.host_metrics().transactions_committed),
              static_cast<unsigned long long>(
                  peer.host_metrics().valid_transactions));
  const bool ok =
      peer.ledger().height() == 4 && second_leader != first_leader;
  std::printf("failover %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

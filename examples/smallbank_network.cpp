// The paper's experimental setup (Fig. 5) as a runnable scenario: a
// single-channel network with two organizations, each with an endorser and
// a software-only validator peer, plus a BMac peer in Org1, driven by a
// Caliper-style smallbank workload at saturation.
//
//   $ ./smallbank_network [block_size] [tx_validators]
//
// Reports commit throughput and block validation latency for all three peer
// types — the measurement behind Figs. 7a/7b.
#include <cstdio>
#include <cstdlib>

#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bm;
  const int block_size = argc > 1 ? std::atoi(argv[1]) : 150;
  const int tx_validators = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("== smallbank network (Fig. 5 setup) ==\n");
  std::printf("channel 'mychannel', Org1 + Org2, policy 2-outof-2, block "
              "size %d\n\n", block_size);

  workload::SyntheticSpec spec;
  spec.blocks = 50;
  spec.block_size = block_size;
  spec.ends_attached = 2;
  spec.chaincode = "smallbank";
  spec.policy_text = "2-outof-2 orgs";
  spec.org_count = 2;
  spec.reads_per_tx = 2.0;   // smallbank average (send_payment, amalgamate..)
  spec.writes_per_tx = 2.0;
  spec.hw.tx_validators = tx_validators;
  spec.hw.engines_per_vscc = 2;

  // Software peers (endorser and validator) on `tx_validators` vCPUs, from
  // the calibrated timing model.
  const auto sw = workload::run_sw_model(spec, tx_validators);
  std::printf("endorser peer  (Org1, %2d vCPUs): %8.0f tps\n", tx_validators,
              sw.endorser_tps);
  std::printf("sw_validator   (Org1, %2d vCPUs): %8.0f tps, block latency "
              "%.1f ms\n", tx_validators, sw.validator_tps,
              sw.block_latency_ms);

  // The BMac peer: full pipeline model in the discrete-event simulator.
  const auto hw = workload::run_hw_workload(spec);
  std::printf("BMac peer      (%2dx%d architecture): %8.0f tps, block latency "
              "%.2f ms, tx latency %.0f us\n",
              spec.hw.tx_validators, spec.hw.engines_per_vscc, hw.tps,
              hw.block_latency_ms, hw.tx_latency_us);

  std::printf("\nBMac vs sw_validator speedup: %.1fx\n",
              hw.tps / sw.validator_tps);
  std::printf("signature checks in hardware: %llu executed, %llu skipped\n",
              static_cast<unsigned long long>(hw.ecdsa_executed),
              static_cast<unsigned long long>(hw.ecdsa_skipped));
  std::printf("simulated run: %llu transactions in %.2f s of simulated "
              "time\n",
              static_cast<unsigned long long>(hw.total_txs), hw.sim_seconds);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/fig7g_db_accesses.dir/fig7g_db_accesses.cpp.o"
  "CMakeFiles/fig7g_db_accesses.dir/fig7g_db_accesses.cpp.o.d"
  "fig7g_db_accesses"
  "fig7g_db_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7g_db_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

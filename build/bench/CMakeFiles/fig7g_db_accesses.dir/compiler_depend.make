# Empty compiler generated dependencies file for fig7g_db_accesses.
# This may be replaced when dependencies are built.

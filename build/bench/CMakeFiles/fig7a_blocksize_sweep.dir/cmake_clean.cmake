file(REMOVE_RECURSE
  "CMakeFiles/fig7a_blocksize_sweep.dir/fig7a_blocksize_sweep.cpp.o"
  "CMakeFiles/fig7a_blocksize_sweep.dir/fig7a_blocksize_sweep.cpp.o.d"
  "fig7a_blocksize_sweep"
  "fig7a_blocksize_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_blocksize_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7a_blocksize_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7b_scaling.dir/fig7b_scaling.cpp.o"
  "CMakeFiles/fig7b_scaling.dir/fig7b_scaling.cpp.o.d"
  "fig7b_scaling"
  "fig7b_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7b_scaling.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig8_drm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_drm.dir/fig8_drm.cpp.o"
  "CMakeFiles/fig8_drm.dir/fig8_drm.cpp.o.d"
  "fig8_drm"
  "fig8_drm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_drm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

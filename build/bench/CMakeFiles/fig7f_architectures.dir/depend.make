# Empty dependencies file for fig7f_architectures.
# This may be replaced when dependencies are built.

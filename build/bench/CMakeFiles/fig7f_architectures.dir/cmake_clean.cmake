file(REMOVE_RECURSE
  "CMakeFiles/fig7f_architectures.dir/fig7f_architectures.cpp.o"
  "CMakeFiles/fig7f_architectures.dir/fig7f_architectures.cpp.o.d"
  "fig7f_architectures"
  "fig7f_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7f_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

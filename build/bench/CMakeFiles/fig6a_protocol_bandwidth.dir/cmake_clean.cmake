file(REMOVE_RECURSE
  "CMakeFiles/fig6a_protocol_bandwidth.dir/fig6a_protocol_bandwidth.cpp.o"
  "CMakeFiles/fig6a_protocol_bandwidth.dir/fig6a_protocol_bandwidth.cpp.o.d"
  "fig6a_protocol_bandwidth"
  "fig6a_protocol_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_protocol_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

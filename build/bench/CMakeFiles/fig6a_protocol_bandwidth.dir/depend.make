# Empty dependencies file for fig6a_protocol_bandwidth.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_short_circuit.dir/ablation_short_circuit.cpp.o"
  "CMakeFiles/ablation_short_circuit.dir/ablation_short_circuit.cpp.o.d"
  "ablation_short_circuit"
  "ablation_short_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_short_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

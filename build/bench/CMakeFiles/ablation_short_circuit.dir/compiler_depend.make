# Empty compiler generated dependencies file for ablation_short_circuit.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig7e_policies.
# This may be replaced when dependencies are built.

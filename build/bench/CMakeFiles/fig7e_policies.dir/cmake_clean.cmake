file(REMOVE_RECURSE
  "CMakeFiles/fig7e_policies.dir/fig7e_policies.cpp.o"
  "CMakeFiles/fig7e_policies.dir/fig7e_policies.cpp.o.d"
  "fig7e_policies"
  "fig7e_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7e_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig6b_transmission_cdf.dir/fig6b_transmission_cdf.cpp.o"
  "CMakeFiles/fig6b_transmission_cdf.dir/fig6b_transmission_cdf.cpp.o.d"
  "fig6b_transmission_cdf"
  "fig6b_transmission_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_transmission_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6b_transmission_cdf.
# This may be replaced when dependencies are built.

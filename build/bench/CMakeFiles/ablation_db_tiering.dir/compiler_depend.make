# Empty compiler generated dependencies file for ablation_db_tiering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_db_tiering.dir/ablation_db_tiering.cpp.o"
  "CMakeFiles/ablation_db_tiering.dir/ablation_db_tiering.cpp.o.d"
  "ablation_db_tiering"
  "ablation_db_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_db_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7cd_grid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7cd_grid.dir/fig7cd_grid.cpp.o"
  "CMakeFiles/fig7cd_grid.dir/fig7cd_grid.cpp.o.d"
  "fig7cd_grid"
  "fig7cd_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7cd_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_resources.cpp" "bench/CMakeFiles/table1_resources.dir/table1_resources.cpp.o" "gcc" "bench/CMakeFiles/table1_resources.dir/table1_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bmac/CMakeFiles/bm_bmac.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/bm_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/bm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/bm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/policy_circuits.dir/policy_circuits.cpp.o"
  "CMakeFiles/policy_circuits.dir/policy_circuits.cpp.o.d"
  "policy_circuits"
  "policy_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for policy_circuits.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for drm_pipeline.
# This may be replaced when dependencies are built.

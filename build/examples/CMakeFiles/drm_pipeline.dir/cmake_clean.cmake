file(REMOVE_RECURSE
  "CMakeFiles/drm_pipeline.dir/drm_pipeline.cpp.o"
  "CMakeFiles/drm_pipeline.dir/drm_pipeline.cpp.o.d"
  "drm_pipeline"
  "drm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

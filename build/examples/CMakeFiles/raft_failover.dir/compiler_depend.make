# Empty compiler generated dependencies file for raft_failover.
# This may be replaced when dependencies are built.

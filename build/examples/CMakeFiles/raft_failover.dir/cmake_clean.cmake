file(REMOVE_RECURSE
  "CMakeFiles/raft_failover.dir/raft_failover.cpp.o"
  "CMakeFiles/raft_failover.dir/raft_failover.cpp.o.d"
  "raft_failover"
  "raft_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for smallbank_network.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smallbank_network.dir/smallbank_network.cpp.o"
  "CMakeFiles/smallbank_network.dir/smallbank_network.cpp.o.d"
  "smallbank_network"
  "smallbank_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smallbank_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

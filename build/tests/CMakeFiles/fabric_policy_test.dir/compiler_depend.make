# Empty compiler generated dependencies file for fabric_policy_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fabric_policy_test.dir/fabric_policy_test.cpp.o"
  "CMakeFiles/fabric_policy_test.dir/fabric_policy_test.cpp.o.d"
  "fabric_policy_test"
  "fabric_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fabric_private_data_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fabric_private_data_test.dir/fabric_private_data_test.cpp.o"
  "CMakeFiles/fabric_private_data_test.dir/fabric_private_data_test.cpp.o.d"
  "fabric_private_data_test"
  "fabric_private_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_private_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bmac_config_test.
# This may be replaced when dependencies are built.

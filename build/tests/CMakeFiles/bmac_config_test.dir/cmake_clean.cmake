file(REMOVE_RECURSE
  "CMakeFiles/bmac_config_test.dir/bmac_config_test.cpp.o"
  "CMakeFiles/bmac_config_test.dir/bmac_config_test.cpp.o.d"
  "bmac_config_test"
  "bmac_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bmac_hw_test.dir/bmac_hw_test.cpp.o"
  "CMakeFiles/bmac_hw_test.dir/bmac_hw_test.cpp.o.d"
  "bmac_hw_test"
  "bmac_hw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_hw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bmac_hw_test.
# This may be replaced when dependencies are built.

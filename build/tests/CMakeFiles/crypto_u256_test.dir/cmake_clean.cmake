file(REMOVE_RECURSE
  "CMakeFiles/crypto_u256_test.dir/crypto_u256_test.cpp.o"
  "CMakeFiles/crypto_u256_test.dir/crypto_u256_test.cpp.o.d"
  "crypto_u256_test"
  "crypto_u256_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_u256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

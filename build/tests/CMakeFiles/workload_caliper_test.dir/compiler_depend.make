# Empty compiler generated dependencies file for workload_caliper_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workload_caliper_test.dir/workload_caliper_test.cpp.o"
  "CMakeFiles/workload_caliper_test.dir/workload_caliper_test.cpp.o.d"
  "workload_caliper_test"
  "workload_caliper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_caliper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

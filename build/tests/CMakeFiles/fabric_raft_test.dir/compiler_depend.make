# Empty compiler generated dependencies file for fabric_raft_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fabric_raft_test.dir/fabric_raft_test.cpp.o"
  "CMakeFiles/fabric_raft_test.dir/fabric_raft_test.cpp.o.d"
  "fabric_raft_test"
  "fabric_raft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_raft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

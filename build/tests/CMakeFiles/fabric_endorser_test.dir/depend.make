# Empty dependencies file for fabric_endorser_test.
# This may be replaced when dependencies are built.

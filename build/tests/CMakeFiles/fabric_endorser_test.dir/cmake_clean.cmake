file(REMOVE_RECURSE
  "CMakeFiles/fabric_endorser_test.dir/fabric_endorser_test.cpp.o"
  "CMakeFiles/fabric_endorser_test.dir/fabric_endorser_test.cpp.o.d"
  "fabric_endorser_test"
  "fabric_endorser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_endorser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fabric_data_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fabric_data_test.dir/fabric_data_test.cpp.o"
  "CMakeFiles/fabric_data_test.dir/fabric_data_test.cpp.o.d"
  "fabric_data_test"
  "fabric_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bmac_packet_test.dir/bmac_packet_test.cpp.o"
  "CMakeFiles/bmac_packet_test.dir/bmac_packet_test.cpp.o.d"
  "bmac_packet_test"
  "bmac_packet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

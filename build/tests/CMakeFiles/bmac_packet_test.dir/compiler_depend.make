# Empty compiler generated dependencies file for bmac_packet_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmac_reliable_test.dir/bmac_reliable_test.cpp.o"
  "CMakeFiles/bmac_reliable_test.dir/bmac_reliable_test.cpp.o.d"
  "bmac_reliable_test"
  "bmac_reliable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_reliable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bmac_reliable_test.
# This may be replaced when dependencies are built.

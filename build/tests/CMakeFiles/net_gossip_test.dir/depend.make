# Empty dependencies file for net_gossip_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/net_gossip_test.dir/net_gossip_test.cpp.o"
  "CMakeFiles/net_gossip_test.dir/net_gossip_test.cpp.o.d"
  "net_gossip_test"
  "net_gossip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/integration_network_test.dir/integration_network_test.cpp.o"
  "CMakeFiles/integration_network_test.dir/integration_network_test.cpp.o.d"
  "integration_network_test"
  "integration_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

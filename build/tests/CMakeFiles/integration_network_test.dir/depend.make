# Empty dependencies file for integration_network_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for bmac_protocol_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmac_protocol_test.dir/bmac_protocol_test.cpp.o"
  "CMakeFiles/bmac_protocol_test.dir/bmac_protocol_test.cpp.o.d"
  "bmac_protocol_test"
  "bmac_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fabric_identity_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fabric_identity_test.dir/fabric_identity_test.cpp.o"
  "CMakeFiles/fabric_identity_test.dir/fabric_identity_test.cpp.o.d"
  "fabric_identity_test"
  "fabric_identity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

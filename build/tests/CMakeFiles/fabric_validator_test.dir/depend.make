# Empty dependencies file for fabric_validator_test.
# This may be replaced when dependencies are built.

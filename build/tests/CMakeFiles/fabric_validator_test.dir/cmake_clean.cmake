file(REMOVE_RECURSE
  "CMakeFiles/fabric_validator_test.dir/fabric_validator_test.cpp.o"
  "CMakeFiles/fabric_validator_test.dir/fabric_validator_test.cpp.o.d"
  "fabric_validator_test"
  "fabric_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bmac_policy_circuit_test.dir/bmac_policy_circuit_test.cpp.o"
  "CMakeFiles/bmac_policy_circuit_test.dir/bmac_policy_circuit_test.cpp.o.d"
  "bmac_policy_circuit_test"
  "bmac_policy_circuit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_policy_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

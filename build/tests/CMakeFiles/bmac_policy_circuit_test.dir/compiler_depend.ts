# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bmac_policy_circuit_test.

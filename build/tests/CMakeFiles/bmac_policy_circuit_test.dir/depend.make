# Empty dependencies file for bmac_policy_circuit_test.
# This may be replaced when dependencies are built.

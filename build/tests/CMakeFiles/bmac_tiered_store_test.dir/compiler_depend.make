# Empty compiler generated dependencies file for bmac_tiered_store_test.
# This may be replaced when dependencies are built.

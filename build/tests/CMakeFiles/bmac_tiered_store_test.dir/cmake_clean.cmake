file(REMOVE_RECURSE
  "CMakeFiles/bmac_tiered_store_test.dir/bmac_tiered_store_test.cpp.o"
  "CMakeFiles/bmac_tiered_store_test.dir/bmac_tiered_store_test.cpp.o.d"
  "bmac_tiered_store_test"
  "bmac_tiered_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_tiered_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

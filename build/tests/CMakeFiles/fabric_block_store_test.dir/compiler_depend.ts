# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fabric_block_store_test.

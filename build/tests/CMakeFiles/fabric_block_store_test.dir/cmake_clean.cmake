file(REMOVE_RECURSE
  "CMakeFiles/fabric_block_store_test.dir/fabric_block_store_test.cpp.o"
  "CMakeFiles/fabric_block_store_test.dir/fabric_block_store_test.cpp.o.d"
  "fabric_block_store_test"
  "fabric_block_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_block_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bmac_equivalence_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmac_equivalence_test.dir/bmac_equivalence_test.cpp.o"
  "CMakeFiles/bmac_equivalence_test.dir/bmac_equivalence_test.cpp.o.d"
  "bmac_equivalence_test"
  "bmac_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

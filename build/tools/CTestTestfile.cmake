# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(obs_selfcheck "/root/repo/build/tools/obs_selfcheck" "/root/repo/build/tools/bmac_sim" "/root/repo/build/tools")
set_tests_properties(obs_selfcheck PROPERTIES  LABELS "obs" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/bmac_sim.dir/bmac_sim.cpp.o"
  "CMakeFiles/bmac_sim.dir/bmac_sim.cpp.o.d"
  "bmac_sim"
  "bmac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

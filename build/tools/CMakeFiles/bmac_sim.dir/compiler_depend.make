# Empty compiler generated dependencies file for bmac_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/obs_selfcheck.dir/obs_selfcheck.cpp.o"
  "CMakeFiles/obs_selfcheck.dir/obs_selfcheck.cpp.o.d"
  "obs_selfcheck"
  "obs_selfcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_selfcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for obs_selfcheck.
# This may be replaced when dependencies are built.

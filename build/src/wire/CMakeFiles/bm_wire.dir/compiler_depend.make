# Empty compiler generated dependencies file for bm_wire.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbm_wire.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bm_wire.dir/proto.cpp.o"
  "CMakeFiles/bm_wire.dir/proto.cpp.o.d"
  "CMakeFiles/bm_wire.dir/varint.cpp.o"
  "CMakeFiles/bm_wire.dir/varint.cpp.o.d"
  "libbm_wire.a"
  "libbm_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

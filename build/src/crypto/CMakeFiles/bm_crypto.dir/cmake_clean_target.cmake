file(REMOVE_RECURSE
  "libbm_crypto.a"
)

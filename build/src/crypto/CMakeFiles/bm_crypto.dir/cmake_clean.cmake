file(REMOVE_RECURSE
  "CMakeFiles/bm_crypto.dir/der.cpp.o"
  "CMakeFiles/bm_crypto.dir/der.cpp.o.d"
  "CMakeFiles/bm_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/bm_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/bm_crypto.dir/hmac.cpp.o"
  "CMakeFiles/bm_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/bm_crypto.dir/p256.cpp.o"
  "CMakeFiles/bm_crypto.dir/p256.cpp.o.d"
  "CMakeFiles/bm_crypto.dir/sha256.cpp.o"
  "CMakeFiles/bm_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/bm_crypto.dir/u256.cpp.o"
  "CMakeFiles/bm_crypto.dir/u256.cpp.o.d"
  "libbm_crypto.a"
  "libbm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bm_crypto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbm_bmac.a"
)

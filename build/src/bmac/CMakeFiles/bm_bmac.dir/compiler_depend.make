# Empty compiler generated dependencies file for bm_bmac.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmac/block_processor.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/block_processor.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/block_processor.cpp.o.d"
  "/root/repo/src/bmac/config.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/config.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/config.cpp.o.d"
  "/root/repo/src/bmac/hw_kvstore.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/hw_kvstore.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/hw_kvstore.cpp.o.d"
  "/root/repo/src/bmac/identity_cache.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/identity_cache.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/identity_cache.cpp.o.d"
  "/root/repo/src/bmac/packet.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/packet.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/packet.cpp.o.d"
  "/root/repo/src/bmac/peer.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/peer.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/peer.cpp.o.d"
  "/root/repo/src/bmac/policy_circuit.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/policy_circuit.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/policy_circuit.cpp.o.d"
  "/root/repo/src/bmac/protocol.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/protocol.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/protocol.cpp.o.d"
  "/root/repo/src/bmac/reliable.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/reliable.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/reliable.cpp.o.d"
  "/root/repo/src/bmac/resource_model.cpp" "src/bmac/CMakeFiles/bm_bmac.dir/resource_model.cpp.o" "gcc" "src/bmac/CMakeFiles/bm_bmac.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/bm_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/bm_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/bm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bm_bmac.dir/block_processor.cpp.o"
  "CMakeFiles/bm_bmac.dir/block_processor.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/config.cpp.o"
  "CMakeFiles/bm_bmac.dir/config.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/hw_kvstore.cpp.o"
  "CMakeFiles/bm_bmac.dir/hw_kvstore.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/identity_cache.cpp.o"
  "CMakeFiles/bm_bmac.dir/identity_cache.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/packet.cpp.o"
  "CMakeFiles/bm_bmac.dir/packet.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/peer.cpp.o"
  "CMakeFiles/bm_bmac.dir/peer.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/policy_circuit.cpp.o"
  "CMakeFiles/bm_bmac.dir/policy_circuit.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/protocol.cpp.o"
  "CMakeFiles/bm_bmac.dir/protocol.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/reliable.cpp.o"
  "CMakeFiles/bm_bmac.dir/reliable.cpp.o.d"
  "CMakeFiles/bm_bmac.dir/resource_model.cpp.o"
  "CMakeFiles/bm_bmac.dir/resource_model.cpp.o.d"
  "libbm_bmac.a"
  "libbm_bmac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_bmac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

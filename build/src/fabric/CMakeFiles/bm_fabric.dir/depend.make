# Empty dependencies file for bm_fabric.
# This may be replaced when dependencies are built.

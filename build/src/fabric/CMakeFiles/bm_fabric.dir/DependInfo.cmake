
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/block.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/block.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/block.cpp.o.d"
  "/root/repo/src/fabric/block_store.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/block_store.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/block_store.cpp.o.d"
  "/root/repo/src/fabric/endorser.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/endorser.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/endorser.cpp.o.d"
  "/root/repo/src/fabric/identity.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/identity.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/identity.cpp.o.d"
  "/root/repo/src/fabric/ledger.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/ledger.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/ledger.cpp.o.d"
  "/root/repo/src/fabric/orderer.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/orderer.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/orderer.cpp.o.d"
  "/root/repo/src/fabric/policy.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/policy.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/policy.cpp.o.d"
  "/root/repo/src/fabric/private_data.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/private_data.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/private_data.cpp.o.d"
  "/root/repo/src/fabric/raft.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/raft.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/raft.cpp.o.d"
  "/root/repo/src/fabric/rwset.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/rwset.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/rwset.cpp.o.d"
  "/root/repo/src/fabric/statedb.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/statedb.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/statedb.cpp.o.d"
  "/root/repo/src/fabric/transaction.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/transaction.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/transaction.cpp.o.d"
  "/root/repo/src/fabric/validator.cpp" "src/fabric/CMakeFiles/bm_fabric.dir/validator.cpp.o" "gcc" "src/fabric/CMakeFiles/bm_fabric.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/bm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/bm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

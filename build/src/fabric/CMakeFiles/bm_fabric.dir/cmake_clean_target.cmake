file(REMOVE_RECURSE
  "libbm_fabric.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bm_fabric.dir/block.cpp.o"
  "CMakeFiles/bm_fabric.dir/block.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/block_store.cpp.o"
  "CMakeFiles/bm_fabric.dir/block_store.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/endorser.cpp.o"
  "CMakeFiles/bm_fabric.dir/endorser.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/identity.cpp.o"
  "CMakeFiles/bm_fabric.dir/identity.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/ledger.cpp.o"
  "CMakeFiles/bm_fabric.dir/ledger.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/orderer.cpp.o"
  "CMakeFiles/bm_fabric.dir/orderer.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/policy.cpp.o"
  "CMakeFiles/bm_fabric.dir/policy.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/private_data.cpp.o"
  "CMakeFiles/bm_fabric.dir/private_data.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/raft.cpp.o"
  "CMakeFiles/bm_fabric.dir/raft.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/rwset.cpp.o"
  "CMakeFiles/bm_fabric.dir/rwset.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/statedb.cpp.o"
  "CMakeFiles/bm_fabric.dir/statedb.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/transaction.cpp.o"
  "CMakeFiles/bm_fabric.dir/transaction.cpp.o.d"
  "CMakeFiles/bm_fabric.dir/validator.cpp.o"
  "CMakeFiles/bm_fabric.dir/validator.cpp.o.d"
  "libbm_fabric.a"
  "libbm_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bm_sim.dir/simulation.cpp.o"
  "CMakeFiles/bm_sim.dir/simulation.cpp.o.d"
  "libbm_sim.a"
  "libbm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bm_obs.
# This may be replaced when dependencies are built.

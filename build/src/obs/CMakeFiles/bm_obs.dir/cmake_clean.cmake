file(REMOVE_RECURSE
  "CMakeFiles/bm_obs.dir/json.cpp.o"
  "CMakeFiles/bm_obs.dir/json.cpp.o.d"
  "CMakeFiles/bm_obs.dir/metrics.cpp.o"
  "CMakeFiles/bm_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/bm_obs.dir/trace.cpp.o"
  "CMakeFiles/bm_obs.dir/trace.cpp.o.d"
  "libbm_obs.a"
  "libbm_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbm_obs.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bm_net.dir/gossip.cpp.o"
  "CMakeFiles/bm_net.dir/gossip.cpp.o.d"
  "CMakeFiles/bm_net.dir/link.cpp.o"
  "CMakeFiles/bm_net.dir/link.cpp.o.d"
  "CMakeFiles/bm_net.dir/transport.cpp.o"
  "CMakeFiles/bm_net.dir/transport.cpp.o.d"
  "libbm_net.a"
  "libbm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bm_net.
# This may be replaced when dependencies are built.

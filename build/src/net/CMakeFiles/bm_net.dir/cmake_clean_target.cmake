file(REMOVE_RECURSE
  "libbm_net.a"
)

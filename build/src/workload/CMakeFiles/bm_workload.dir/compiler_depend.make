# Empty compiler generated dependencies file for bm_workload.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/caliper.cpp" "src/workload/CMakeFiles/bm_workload.dir/caliper.cpp.o" "gcc" "src/workload/CMakeFiles/bm_workload.dir/caliper.cpp.o.d"
  "/root/repo/src/workload/chaincode.cpp" "src/workload/CMakeFiles/bm_workload.dir/chaincode.cpp.o" "gcc" "src/workload/CMakeFiles/bm_workload.dir/chaincode.cpp.o.d"
  "/root/repo/src/workload/metrics.cpp" "src/workload/CMakeFiles/bm_workload.dir/metrics.cpp.o" "gcc" "src/workload/CMakeFiles/bm_workload.dir/metrics.cpp.o.d"
  "/root/repo/src/workload/network_harness.cpp" "src/workload/CMakeFiles/bm_workload.dir/network_harness.cpp.o" "gcc" "src/workload/CMakeFiles/bm_workload.dir/network_harness.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/bm_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/bm_workload.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/bm_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/bmac/CMakeFiles/bm_bmac.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/bm_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/bm_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bm_workload.dir/caliper.cpp.o"
  "CMakeFiles/bm_workload.dir/caliper.cpp.o.d"
  "CMakeFiles/bm_workload.dir/chaincode.cpp.o"
  "CMakeFiles/bm_workload.dir/chaincode.cpp.o.d"
  "CMakeFiles/bm_workload.dir/metrics.cpp.o"
  "CMakeFiles/bm_workload.dir/metrics.cpp.o.d"
  "CMakeFiles/bm_workload.dir/network_harness.cpp.o"
  "CMakeFiles/bm_workload.dir/network_harness.cpp.o.d"
  "CMakeFiles/bm_workload.dir/synthetic.cpp.o"
  "CMakeFiles/bm_workload.dir/synthetic.cpp.o.d"
  "libbm_workload.a"
  "libbm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

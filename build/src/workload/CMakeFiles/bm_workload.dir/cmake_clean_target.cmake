file(REMOVE_RECURSE
  "libbm_workload.a"
)

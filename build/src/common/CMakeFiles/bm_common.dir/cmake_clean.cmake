file(REMOVE_RECURSE
  "CMakeFiles/bm_common.dir/bytes.cpp.o"
  "CMakeFiles/bm_common.dir/bytes.cpp.o.d"
  "CMakeFiles/bm_common.dir/crc32.cpp.o"
  "CMakeFiles/bm_common.dir/crc32.cpp.o.d"
  "CMakeFiles/bm_common.dir/hex.cpp.o"
  "CMakeFiles/bm_common.dir/hex.cpp.o.d"
  "CMakeFiles/bm_common.dir/log.cpp.o"
  "CMakeFiles/bm_common.dir/log.cpp.o.d"
  "CMakeFiles/bm_common.dir/rng.cpp.o"
  "CMakeFiles/bm_common.dir/rng.cpp.o.d"
  "libbm_common.a"
  "libbm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

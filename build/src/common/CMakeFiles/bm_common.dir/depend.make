# Empty dependencies file for bm_common.
# This may be replaced when dependencies are built.

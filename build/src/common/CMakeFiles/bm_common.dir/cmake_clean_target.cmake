file(REMOVE_RECURSE
  "libbm_common.a"
)

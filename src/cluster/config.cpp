#include "cluster/config.hpp"

namespace bm::cluster::detail {

ClusterConfig parse_cluster_section(const bm::config::Section& root) {
  ClusterConfig config;
  root.read_string("name", &config.name);

  root.read_int("orgs", &config.orgs, config::at_least(1));
  root.read_int("peers_per_org", &config.peers_per_org, config::at_least(1));
  root.read_int("orderers", &config.orderers, config::at_least(1));

  root.read_size("block_size", &config.block_size, config::positive());
  root.read_u64("seed", &config.seed);
  root.read_string("policy", &config.policy_text);
  root.read_time_ms("submit_interval_ms", &config.submit_interval,
                    config::positive());
  root.read_time_us("delivery_delay_us", &config.delivery_delay,
                    config::non_negative());

  const config::Section raft = root.object("raft");
  raft.read_time_ms("election_timeout_min_ms",
                    &config.ordering.raft.election_timeout_min,
                    config::positive());
  raft.read_time_ms("election_timeout_max_ms",
                    &config.ordering.raft.election_timeout_max,
                    config::positive());
  raft.read_time_ms("heartbeat_ms", &config.ordering.raft.heartbeat_interval,
                    config::positive());
  raft.read_time_us("message_delay_us", &config.ordering.message_delay,
                    config::non_negative());
  raft.read_time_us("message_jitter_us", &config.ordering.message_jitter,
                    config::non_negative());
  raft.read_number("message_loss", &config.ordering.message_loss,
                   config::unit_interval());
  if (raft.present() &&
      config.ordering.raft.election_timeout_max <
          config.ordering.raft.election_timeout_min)
    raft.fail_key("election_timeout_max_ms",
                  "must be >= election_timeout_min_ms");

  const config::Section gossip = root.object("gossip");
  gossip.read_int("fanout", &config.gossip.fanout, config::at_least(1));
  gossip.read_number("gbps", &config.gossip.gbps, config::positive());
  gossip.read_time_us("hop_delay_us", &config.gossip.hop_delay,
                      config::non_negative());
  gossip.read_time_us("hop_jitter_us", &config.gossip.hop_jitter,
                      config::non_negative());
  gossip.read_time_ms("anti_entropy_ms", &config.gossip.anti_entropy_interval,
                      config::positive());
  double gossip_loss = 0.0;
  gossip.read_number("loss", &gossip_loss, config::unit_interval());
  if (gossip_loss > 0.0)
    config.gossip.faults =
        net::FaultConfig::uniform_loss(gossip_loss, config.seed ^ 0xC0551Full);

  root.read_string("data_dir", &config.data_dir);
  root.read_u64("snapshot_interval", &config.snapshot_interval);
  root.read_u64("catch_up_threshold", &config.catch_up_threshold,
                config::at_least(1));
  root.read_number("transfer_gbps", &config.transfer_gbps, config::positive());
  root.read_time_ms("transfer_rtt_ms", &config.transfer_rtt,
                    config::non_negative());
  return config;
}

}  // namespace bm::cluster::detail

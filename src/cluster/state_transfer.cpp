#include "cluster/state_transfer.hpp"

#include <algorithm>
#include <filesystem>

namespace bm::cluster {

namespace {

crypto::Digest digest_from(const Bytes& bytes) {
  crypto::Digest digest{};
  std::copy_n(bytes.begin(), std::min(bytes.size(), digest.size()),
              digest.begin());
  return digest;
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

}  // namespace

TransferResult transfer_state(const TransferSource& source,
                              const std::string& scratch_dir, int dest_peer,
                              fabric::Ledger& ledger, fabric::StateDb& state) {
  TransferResult result;
  if (source.ledger == nullptr || source.state == nullptr) {
    result.error = "no transfer source";
    return result;
  }

  // Pick the snapshot to ship: the source's newest on-disk cut when it has
  // one, else an on-demand dump of its current tip into the scratch dir.
  std::string snapshot_file;
  if (source.durable != nullptr && source.durable->last_snapshot_height() > 0) {
    snapshot_file = fabric::DurableLedger::snapshot_path(
        source.durable->config(), source.durable->last_snapshot_height());
    result.used_disk_snapshot = true;
  } else if (source.ledger->height() > 0) {
    if (scratch_dir.empty()) {
      result.error = "source has no snapshot and no scratch dir is configured";
      return result;
    }
    snapshot_file = scratch_dir + "/transfer.peer" +
                    std::to_string(dest_peer) + ".snap";
    fabric::StateSnapshotMeta meta;
    meta.height = source.ledger->height();
    const crypto::Digest& commit = source.ledger->last_commit_hash();
    meta.commit_hash.assign(commit.begin(), commit.end());
    const crypto::Digest header = source.ledger->last().block.block_hash();
    meta.header_hash.assign(header.begin(), header.end());
    if (!source.state->snapshot(snapshot_file, meta)) {
      result.error = "on-demand snapshot failed: " + snapshot_file;
      return result;
    }
  }

  if (!snapshot_file.empty()) {
    const auto meta = state.restore(snapshot_file);
    if (!meta) {
      state.clear();
      result.error = "snapshot restore failed: " + snapshot_file;
      return result;
    }
    if (meta->height > 0)
      ledger.open_at(meta->height, digest_from(meta->commit_hash),
                     digest_from(meta->header_hash));
    result.snapshot_height = meta->height;
    result.bytes += file_size(snapshot_file);
  }

  // Replay the source log tail past the snapshot through the same
  // re-validation path crash recovery uses; chain breaks are fatal here.
  if (source.durable != nullptr &&
      source.durable->store().height() > result.snapshot_height) {
    const auto chain = fabric::FileBlockStore::recover_from(
        source.durable->store().path(), result.snapshot_height,
        ledger.last_commit_hash());
    if (!fabric::replay_chain(chain, ledger, &state)) {
      state.clear();
      result.error = "log-tail replay failed past height " +
                     std::to_string(result.snapshot_height);
      return result;
    }
    result.replayed = chain.blocks.size();
    if (chain.record_offsets.size() >= 2)
      result.bytes += chain.record_offsets.back() - chain.record_offsets.front();
  }

  result.height = ledger.height();
  result.ok = true;
  return result;
}

}  // namespace bm::cluster

// ClusterDeployment: an N-org × M-peer Fabric network on the shared DES.
//
// The paper's experiments run one peer against one orderer; this subsystem
// scales the same building blocks out to a cluster (docs/CLUSTER.md):
//
//   clients -> Raft ordering cluster (K nodes, fabric/raft.hpp)
//           -> leader emits each cut block once (canonical chain)
//           -> gossip mesh (net/gossip.hpp) carries the marshaled bytes
//           -> every peer validates + commits through its own
//              ValidatorBackend / StateDb / Ledger (+ DurableLedger)
//
// The equivalence oracle is the §4.1 divergence check at cluster scale: a
// FabricNetworkHarness runs the single-peer reference pipeline over the
// exact emitted block stream, and every peer must reproduce its commit-hash
// chain byte for byte — across gossip loss, leader re-elections and peers
// restarted from a snapshot fetched off a healthy neighbour
// (cluster/state_transfer.hpp).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/state_transfer.hpp"
#include "workload/network_harness.hpp"

namespace bm::cluster {

class ClusterDeployment {
 public:
  ClusterDeployment(sim::Simulation& sim, ClusterConfig config);
  ~ClusterDeployment();

  /// Arm the ordering cluster's election timers and the gossip anti-entropy
  /// schedule. Call once before driving the simulation.
  void start();

  /// Drive an open-loop client (one endorsed envelope per submit_interval,
  /// retrying while the ordering cluster has no leader) until `target`
  /// blocks have been emitted or the simulated deadline passes. Returns
  /// true when the target was reached. Callable repeatedly.
  bool run_until_blocks(std::uint64_t target, sim::Time deadline);

  /// Let in-flight gossip, validation and catch-up settle with no new load.
  void settle(sim::Time duration);

  // --- fault controls --------------------------------------------------------

  int leader() const { return ordering_->leader(); }
  void kill_orderer(int id) { ordering_->stop_node(id); }
  void restart_orderer(int id) { ordering_->restart_node(id); }

  /// Crash a peer cold: it drops offline, loses its world state, ledger and
  /// local disk (log + snapshots). Restart decides how it comes back.
  void crash_peer(int peer);

  /// Bring a crashed peer back online. When it is `catch_up_threshold` or
  /// more blocks behind the reference tip and a healthy durable peer
  /// exists, it state-transfers (snapshot + log-tail replay) and only then
  /// resumes gossip delivery; otherwise gossip anti-entropy repairs it
  /// block by block. A restarted peer runs without its own durable log (its
  /// disk is gone; re-provisioning is an operator action, docs/CLUSTER.md).
  void restart_peer(int peer);

  // --- equivalence oracle ----------------------------------------------------

  /// True iff every online peer stands at the reference tip with a
  /// byte-identical commit-hash chain and no peer ever diverged.
  bool converged() const;
  /// First divergence observed ("" when none): peer, block, hashes.
  const std::string& divergence() const { return divergence_; }

  // --- introspection ---------------------------------------------------------

  const ClusterConfig& config() const { return config_; }
  workload::FabricNetworkHarness& harness() { return *harness_; }
  fabric::RaftOrderingService& ordering() { return *ordering_; }
  net::GossipNetwork& gossip() { return *gossip_; }

  int peer_count() const { return config_.peer_count(); }
  int org_of(int peer) const { return peer / config_.peers_per_org + 1; }
  bool peer_online(int peer) const;
  std::uint64_t peer_height(int peer) const;
  const fabric::Ledger& peer_ledger(int peer) const;

  std::uint64_t blocks_emitted() const { return ordering_->blocks_emitted(); }
  /// Simulated emission instant of every block, in order — the failover
  /// bench derives the ordering-stall time from the gaps.
  const std::vector<sim::Time>& emission_times() const {
    return emission_times_;
  }
  std::uint64_t blocks_validated() const { return blocks_validated_; }
  std::uint64_t state_transfers() const { return state_transfers_; }
  std::uint64_t transfer_bytes() const { return transfer_bytes_; }
  /// Blocks a restarted peer recovered via snapshot + log-tail replay
  /// (i.e. without waiting on gossip).
  std::uint64_t catch_up_blocks() const { return catch_up_blocks_; }
  const TransferResult& last_transfer() const { return last_transfer_; }

  /// Cluster counters/gauges under "<prefix>_..." (snapshot-style).
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

 private:
  struct Peer {
    int id = 0;
    bool online = true;
    fabric::StateDb db;
    fabric::Ledger ledger;
    std::unique_ptr<fabric::ValidatorBackend> backend;
    std::unique_ptr<fabric::DurableLedger> durable;  ///< null without data_dir
    /// Delivered-but-not-yet-applied payloads (out-of-order gossip arrivals
    /// and blocks held back while a state transfer is in flight).
    std::map<std::uint64_t, Bytes> pending;
    /// Gossip deliveries apply only once sim time passes this (state
    /// transfer link occupancy).
    sim::Time apply_after = 0;
    std::uint64_t blocks_committed = 0;
  };

  std::unique_ptr<fabric::ValidatorBackend> make_backend();
  std::string peer_log_path(int peer) const;
  void remove_peer_files(int peer);
  void on_block_emitted(fabric::Block block);
  void on_payload(int peer, std::uint64_t block_num, const Bytes& payload);
  void drain(Peer& peer);
  void submit_one();
  /// Healthiest transfer source: an online durable peer at the highest
  /// chain height (nullptr when none qualifies).
  const Peer* pick_source(int exclude) const;

  sim::Simulation& sim_;
  ClusterConfig config_;
  std::unique_ptr<workload::FabricNetworkHarness> harness_;
  std::unique_ptr<fabric::RaftOrderingService> ordering_;
  std::unique_ptr<net::GossipNetwork> gossip_;
  std::vector<std::unique_ptr<Peer>> peers_;  ///< StateDb pins the address

  std::vector<sim::Time> emission_times_;
  std::string divergence_;
  std::uint64_t blocks_validated_ = 0;
  std::uint64_t state_transfers_ = 0;
  std::uint64_t transfer_bytes_ = 0;
  std::uint64_t catch_up_blocks_ = 0;
  TransferResult last_transfer_;
  bool started_ = false;
};

}  // namespace bm::cluster

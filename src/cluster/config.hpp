// Cluster topology + protocol configuration (docs/CLUSTER.md).
//
// One struct drives a whole N-org × M-peer deployment: the Raft ordering
// cluster, the gossip mesh, the per-peer durable ledgers and the catch-up
// protocol. The same knobs are loadable from the composed `--scenario`
// file's "cluster" section (detail::parse_cluster_section), so a cluster
// experiment is one JSON document like every other scenario in the repo.
#pragma once

#include <string>

#include "common/config.hpp"
#include "fabric/raft.hpp"
#include "fabric/validator_backend.hpp"
#include "net/gossip.hpp"

namespace bm::cluster {

struct ClusterConfig {
  std::string name = "cluster";

  // --- topology --------------------------------------------------------------
  int orgs = 2;
  int peers_per_org = 2;
  int orderers = 3;  ///< Raft ordering-cluster size

  // --- workload --------------------------------------------------------------
  std::size_t block_size = 8;  ///< transactions per cut block
  std::uint64_t seed = 7;
  /// Endorsement policy; empty derives "<orgs>-outof-<orgs> orgs".
  std::string policy_text;
  /// Open-loop client cadence: one endorsed envelope per tick.
  sim::Time submit_interval = 2 * sim::kMillisecond;

  // --- protocols -------------------------------------------------------------
  /// Raft ordering cluster; nodes / max_tx_per_block / seed are overwritten
  /// from the topology above at deployment time.
  fabric::RaftOrderingService::Config ordering;
  /// Gossip mesh across all orgs*peers_per_org peers; seed is derived.
  net::GossipNetwork::Config gossip;
  /// Leader-orderer -> org-lead-peer delivery latency.
  sim::Time delivery_delay = 300 * sim::kMicrosecond;

  // --- durability + state transfer -------------------------------------------
  /// Directory for per-peer block logs and snapshots; empty runs every peer
  /// in memory (state transfer then has no source and catch-up falls back
  /// to gossip anti-entropy).
  std::string data_dir;
  /// Per-peer StateDb snapshot cadence in blocks (0 = never).
  std::uint64_t snapshot_interval = 4;
  /// A restarted peer this many blocks (or more) behind fetches a snapshot
  /// from a healthy peer instead of waiting for gossip repair.
  std::uint64_t catch_up_threshold = 4;
  /// State-transfer link model: bytes/8 / (gbps*1e9) + rtt of stall.
  double transfer_gbps = 1.0;
  sim::Time transfer_rtt = 1 * sim::kMillisecond;

  /// Per-peer validation engine; null = the default software backend.
  fabric::ValidatorBackendFactory backend_factory;

  int peer_count() const { return orgs * peers_per_org; }
};

namespace detail {
/// Parse a "cluster" scenario section onto the defaults above. Shares the
/// config facility's diagnostics ("scenario.cluster.orgs: expected number
/// >= 1"); errors land in the section's sink, checked by the caller.
ClusterConfig parse_cluster_section(const bm::config::Section& root);
}  // namespace detail

}  // namespace bm::cluster

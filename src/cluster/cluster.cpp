#include "cluster/cluster.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace bm::cluster {

namespace {

std::string hex_of(const crypto::Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace

ClusterDeployment::ClusterDeployment(sim::Simulation& sim, ClusterConfig config)
    : sim_(sim), config_(std::move(config)) {
  workload::NetworkOptions options;
  options.orgs = config_.orgs;
  options.block_size = config_.block_size;
  options.seed = config_.seed;
  options.policy_text =
      config_.policy_text.empty()
          ? std::to_string(config_.orgs) + "-outof-" +
                std::to_string(config_.orgs) + " orgs"
          : config_.policy_text;
  harness_ = std::make_unique<workload::FabricNetworkHarness>(options);

  // Ordering-cluster identities: round-robin across the orgs' CAs, with
  // per-org sequence numbers starting at 1 — seq 0 is the harness's own
  // reference orderer and encoded ids (org, role, seq) must stay unique.
  std::vector<fabric::Identity> identities;
  for (int i = 0; i < config_.orderers; ++i) {
    const int org = i % config_.orgs + 1;
    const int seq = 1 + i / config_.orgs;
    if (seq > 15)
      throw std::invalid_argument(
          "ClusterDeployment: too many orderers per org (sequence is 4 bits)");
    const fabric::CertificateAuthority* ca =
        harness_->msp().find_org("Org" + std::to_string(org));
    identities.push_back(
        ca->issue(fabric::Role::kOrderer, static_cast<std::uint8_t>(seq),
                  "orderer" + std::to_string(i) + ".org" +
                      std::to_string(org) + ".example.com"));
  }

  fabric::RaftOrderingService::Config ordering = config_.ordering;
  ordering.nodes = config_.orderers;
  ordering.max_tx_per_block = config_.block_size;
  ordering.seed = config_.seed ^ 0x0DDE12ull;
  ordering_ = std::make_unique<fabric::RaftOrderingService>(
      sim_, ordering, std::move(identities));
  ordering_->set_block_callback(
      [this](fabric::Block block) { on_block_emitted(std::move(block)); });

  net::GossipNetwork::Config gossip = config_.gossip;
  gossip.seed = config_.seed ^ 0x905517ull;
  gossip_ = std::make_unique<net::GossipNetwork>(sim_, peer_count(), gossip);
  gossip_->set_payload_callback(
      [this](int peer, std::uint64_t block_num, const Bytes& payload) {
        on_payload(peer, block_num, payload);
      });

  if (!config_.data_dir.empty())
    std::filesystem::create_directories(config_.data_dir);
  for (int i = 0; i < peer_count(); ++i) {
    auto peer = std::make_unique<Peer>();
    peer->id = i;
    peer->backend = make_backend();
    if (!config_.data_dir.empty()) {
      remove_peer_files(i);  // a fresh deployment never resumes stale logs
      fabric::DurabilityConfig durability;
      durability.ledger_path = peer_log_path(i);
      durability.snapshot_interval = config_.snapshot_interval;
      peer->durable = std::make_unique<fabric::DurableLedger>(durability);
    }
    peers_.push_back(std::move(peer));
  }
}

ClusterDeployment::~ClusterDeployment() = default;

std::unique_ptr<fabric::ValidatorBackend> ClusterDeployment::make_backend() {
  if (config_.backend_factory)
    return config_.backend_factory(harness_->msp(), harness_->policies());
  return fabric::make_software_backend(harness_->msp(), harness_->policies());
}

std::string ClusterDeployment::peer_log_path(int peer) const {
  return config_.data_dir + "/peer" + std::to_string(peer) + ".log";
}

void ClusterDeployment::remove_peer_files(int peer) {
  const std::filesystem::path log(peer_log_path(peer));
  std::error_code ec;
  std::filesystem::remove(log, ec);
  std::filesystem::path dir = log.parent_path();
  if (dir.empty()) dir = ".";
  const std::string snap_prefix = log.filename().string() + ".snap.";
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(snap_prefix, 0) == 0) std::filesystem::remove(entry.path(), ec);
  }
  std::filesystem::remove(
      dir / ("transfer.peer" + std::to_string(peer) + ".snap"), ec);
}

void ClusterDeployment::start() {
  if (started_) return;
  started_ = true;
  ordering_->start();
  gossip_->start_anti_entropy();
}

void ClusterDeployment::submit_one() {
  // Like a Fabric client: nothing to send to while there is no leader —
  // retry next tick. Skipping prepare_tx keeps the endorsement rng aligned
  // with the envelopes that actually entered the system.
  if (ordering_->leader() < 0) return;
  const workload::TxDraft draft = harness_->prepare_tx();
  ordering_->submit(harness_->sign_envelope(draft));
}

bool ClusterDeployment::run_until_blocks(std::uint64_t target,
                                         sim::Time deadline) {
  start();
  while (ordering_->blocks_emitted() < target && sim_.now() < deadline) {
    submit_one();
    sim_.run_until(sim_.now() + config_.submit_interval);
  }
  return ordering_->blocks_emitted() >= target;
}

void ClusterDeployment::settle(sim::Time duration) {
  start();
  sim_.run_until(sim_.now() + duration);
}

void ClusterDeployment::on_block_emitted(fabric::Block block) {
  emission_times_.push_back(sim_.now());
  const std::uint64_t number = block.header.number;
  Bytes payload = block.marshal();
  // Reference pipeline first (in emission order): peers later compare their
  // own commit hash against this block's reference result.
  harness_->commit_block(block);
  // The ordering service delivers to each org's lead peer, which injects
  // the marshaled bytes into the mesh (§2.2's Gossip dissemination).
  for (int org = 0; org < config_.orgs; ++org) {
    const int lead = org * config_.peers_per_org;
    sim_.schedule(config_.delivery_delay, [this, lead, number, payload] {
      gossip_->publish(lead, number, payload);
    });
  }
}

void ClusterDeployment::on_payload(int peer, std::uint64_t block_num,
                                   const Bytes& payload) {
  Peer& state = *peers_[static_cast<std::size_t>(peer)];
  if (!state.online) return;
  if (block_num < state.ledger.height()) return;  // already committed
  state.pending.emplace(block_num, payload);
  drain(state);
}

void ClusterDeployment::drain(Peer& peer) {
  while (peer.online) {
    if (sim_.now() < peer.apply_after) {
      // State transfer still occupies the peer's link; re-drain when done.
      const int id = peer.id;
      sim_.schedule(peer.apply_after - sim_.now(), [this, id] {
        drain(*peers_[static_cast<std::size_t>(id)]);
      });
      return;
    }
    const std::uint64_t next = peer.ledger.height();
    peer.pending.erase(peer.pending.begin(), peer.pending.lower_bound(next));
    const auto it = peer.pending.find(next);
    if (it == peer.pending.end()) return;
    const std::optional<fabric::Block> block =
        fabric::Block::unmarshal(it->second);
    if (!block) {
      if (divergence_.empty())
        divergence_ = "peer " + std::to_string(peer.id) + ": block " +
                      std::to_string(next) + " failed to unmarshal";
      peer.pending.erase(it);
      continue;
    }
    const fabric::BlockValidationResult result =
        peer.backend->validate_and_commit(*block, peer.db, peer.ledger);
    ++peer.blocks_committed;
    ++blocks_validated_;
    const fabric::BlockValidationResult& reference =
        harness_->reference_result(next);
    if (result.commit_hash != reference.commit_hash && divergence_.empty())
      divergence_ = "peer " + std::to_string(peer.id) + ": block " +
                    std::to_string(next) + " commit hash " +
                    hex_of(result.commit_hash) + " != reference " +
                    hex_of(reference.commit_hash);
    if (peer.durable) peer.durable->on_commit(peer.ledger, peer.db);
    peer.pending.erase(it);
  }
}

void ClusterDeployment::crash_peer(int peer) {
  Peer& state = *peers_[static_cast<std::size_t>(peer)];
  state.online = false;
  gossip_->set_peer_online(peer, false);
  gossip_->reset_peer(peer);
  state.pending.clear();
  state.apply_after = 0;
  state.db.clear();
  state.ledger = fabric::Ledger{};
  state.backend = make_backend();
  state.durable.reset();     // the crash takes the local disk with it
  if (!config_.data_dir.empty()) remove_peer_files(peer);
}

void ClusterDeployment::restart_peer(int peer) {
  Peer& state = *peers_[static_cast<std::size_t>(peer)];
  state.online = true;
  gossip_->set_peer_online(peer, true);

  const std::uint64_t tip = harness_->reference_ledger().height();
  const std::uint64_t gap = tip - state.ledger.height();
  if (config_.data_dir.empty() || gap < config_.catch_up_threshold) return;
  const Peer* source = pick_source(peer);
  if (source == nullptr) return;  // gossip anti-entropy is the fallback

  const TransferSource view{&source->ledger, &source->db,
                            source->durable.get()};
  TransferResult result =
      transfer_state(view, config_.data_dir, peer, state.ledger, state.db);
  last_transfer_ = result;
  if (!result.ok) {
    state.ledger = fabric::Ledger{};
    state.db.clear();
    return;
  }
  ++state_transfers_;
  transfer_bytes_ += result.bytes;
  catch_up_blocks_ += result.height;
  // The fetched bytes occupy the peer's link before gossip deliveries may
  // apply; gossip itself already knows everything the transfer carried.
  const double seconds = static_cast<double>(result.bytes) * 8.0 /
                         (config_.transfer_gbps * 1e9);
  state.apply_after = sim_.now() + config_.transfer_rtt +
                      static_cast<sim::Time>(seconds * sim::kSecond);
  for (std::uint64_t n = 0; n < state.ledger.height(); ++n)
    gossip_->mark_known(peer, n);
  const sim::Time wait = state.apply_after - sim_.now();
  sim_.schedule(wait, [this, peer] {
    drain(*peers_[static_cast<std::size_t>(peer)]);
  });
}

const ClusterDeployment::Peer* ClusterDeployment::pick_source(
    int exclude) const {
  const Peer* best = nullptr;
  for (const auto& peer : peers_) {
    if (peer->id == exclude || !peer->online || peer->ledger.height() == 0)
      continue;
    if (best == nullptr || peer->ledger.height() > best->ledger.height() ||
        (peer->ledger.height() == best->ledger.height() &&
         best->durable == nullptr && peer->durable != nullptr))
      best = peer.get();
  }
  return best;
}

bool ClusterDeployment::peer_online(int peer) const {
  return peers_.at(static_cast<std::size_t>(peer))->online;
}

std::uint64_t ClusterDeployment::peer_height(int peer) const {
  return peers_.at(static_cast<std::size_t>(peer))->ledger.height();
}

const fabric::Ledger& ClusterDeployment::peer_ledger(int peer) const {
  return peers_.at(static_cast<std::size_t>(peer))->ledger;
}

bool ClusterDeployment::converged() const {
  if (!divergence_.empty()) return false;
  const fabric::Ledger& reference = harness_->reference_ledger();
  for (const auto& peer : peers_) {
    if (!peer->online) continue;
    if (peer->ledger.height() != reference.height()) return false;
    if (reference.height() == 0) continue;
    // The tail commit hash chains over everything, including a snapshot
    // prefix the peer does not hold block-by-block.
    if (peer->ledger.last_commit_hash() != reference.last_commit_hash())
      return false;
    for (std::uint64_t n = peer->ledger.base_height(); n < reference.height();
         ++n)
      if (peer->ledger.at(n).commit_hash != reference.at(n).commit_hash)
        return false;
  }
  return true;
}

void ClusterDeployment::publish_metrics(obs::Registry& registry,
                                        const std::string& prefix) const {
  registry
      .counter(prefix + "_blocks_emitted_total",
               "blocks emitted by the ordering cluster")
      .set(ordering_->blocks_emitted());
  registry
      .counter(prefix + "_blocks_validated_total",
               "peer validate-and-commit executions")
      .set(blocks_validated_);
  registry
      .counter(prefix + "_duplicates_suppressed_total",
               "re-cut blocks suppressed by the canonical chain")
      .set(ordering_->duplicates_suppressed());
  registry
      .counter(prefix + "_forks_detected_total",
               "emission-chain forks (must stay 0)")
      .set(ordering_->forks_detected());
  registry
      .counter(prefix + "_state_transfers_total",
               "peer catch-ups served by snapshot transfer")
      .set(state_transfers_);
  registry
      .counter(prefix + "_transfer_bytes_total",
               "snapshot + log-tail bytes shipped by state transfer")
      .set(transfer_bytes_);
  registry
      .counter(prefix + "_catch_up_blocks_total",
               "blocks recovered via state transfer instead of gossip")
      .set(catch_up_blocks_);
  registry.gauge(prefix + "_peers", "peers in the deployment")
      .set(static_cast<double>(peer_count()));
  int online = 0;
  std::uint64_t min_height = harness_->reference_ledger().height();
  for (const auto& peer : peers_) {
    if (!peer->online) continue;
    ++online;
    min_height = std::min(min_height, peer->ledger.height());
  }
  registry.gauge(prefix + "_peers_online", "peers currently online")
      .set(static_cast<double>(online));
  registry
      .gauge(prefix + "_reference_height",
             "reference pipeline chain height")
      .set(static_cast<double>(harness_->reference_ledger().height()));
  registry
      .gauge(prefix + "_min_peer_height",
             "chain height of the furthest-behind online peer")
      .set(static_cast<double>(min_height));
}

}  // namespace bm::cluster

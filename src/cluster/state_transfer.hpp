// Peer state-transfer protocol (docs/CLUSTER.md §catch-up).
//
// A lagging or freshly restarted peer that is more than a threshold behind
// the network does not wait for gossip anti-entropy to re-push every block;
// it fetches a StateDb snapshot from a healthy peer and replays only the
// block-log tail past it — the cluster-scale version of the single-peer
// crash recovery in fabric/durability.hpp, built from the same parts
// (StateDb::snapshot/restore, Ledger::open_at, FileBlockStore::recover_from,
// replay_chain). The caller charges simulated link time for the reported
// byte count; this module does the data-plane work and the accounting.
#pragma once

#include <string>

#include "fabric/durability.hpp"

namespace bm::cluster {

/// What a healthy peer exposes to a fetcher. `durable` may be null (an
/// in-memory source can still serve an on-demand snapshot of its tip, it
/// just has no log tail to replay past it).
struct TransferSource {
  const fabric::Ledger* ledger = nullptr;
  const fabric::StateDb* state = nullptr;
  const fabric::DurableLedger* durable = nullptr;
};

struct TransferResult {
  bool ok = false;
  bool used_disk_snapshot = false;  ///< served from the source's snapshot file
  std::uint64_t snapshot_height = 0;
  std::uint64_t replayed = 0;  ///< log-tail blocks re-validated past it
  std::uint64_t height = 0;    ///< destination chain height afterwards
  std::uint64_t bytes = 0;     ///< snapshot + log-tail bytes shipped
  std::string error;           ///< when !ok
};

/// Rebuild `ledger` + `state` (both must be empty) from `source`. Prefers
/// the source's newest on-disk snapshot + log-tail replay; an in-memory
/// source (or one that never cut a snapshot) is dumped on demand into
/// `scratch_dir`, which must then be non-empty. On failure the destination
/// is left cleared — the caller falls back to gossip repair.
TransferResult transfer_state(const TransferSource& source,
                              const std::string& scratch_dir, int dest_peer,
                              fabric::Ledger& ledger, fabric::StateDb& state);

}  // namespace bm::cluster

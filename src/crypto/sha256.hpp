// SHA-256 (FIPS 180-4), implemented from scratch.
//
// A streaming interface mirrors the paper's HashCalculator module (§3.2),
// which computes block/transaction/endorsement hashes over byte streams as
// packet payloads arrive.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bm::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Absorb more message bytes; may be called any number of times.
  void update(ByteView data);

  /// Finish and return the digest. The object must not be reused afterwards
  /// without calling reset().
  Digest finish();

  /// Reinitialize to the empty-message state.
  void reset();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest sha256(ByteView data);

/// Digest as an owned byte buffer (handy for wire-format fields).
Bytes digest_bytes(const Digest& d);

/// View over a digest's storage.
ByteView digest_view(const Digest& d);

}  // namespace bm::crypto

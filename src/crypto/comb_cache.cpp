#include "crypto/comb_cache.hpp"

namespace bm::crypto {

namespace {

std::string encode_key(const PublicKey& key) {
  const Bytes encoded = key.encode();
  return std::string(encoded.begin(), encoded.end());
}

}  // namespace

CombCache::CombCache(std::size_t max_tables)
    : capacity_(max_tables == 0 ? 1 : max_tables) {}

std::shared_ptr<const PointCombTable> CombCache::table_for(
    const PublicKey& key) {
  const std::string k = encode_key(key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(k);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.table;
    }
    ++misses_;
  }
  // Build outside the lock: table construction is the expensive part, and
  // workers building tables for distinct keys must not serialize.
  auto table =
      std::make_shared<const PointCombTable>(PointCombTable::build(key.point));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(k);
    if (it != entries_.end()) {
      // Another worker built the same table while we did; both are
      // identical — keep the incumbent.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.table;
    }
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(k);
    entries_.emplace(k, Entry{table, lru_.begin()});
  }
  return table;
}

bool CombCache::verify(const PublicKey& key, const Digest& digest,
                       const Signature& sig) {
  // Invalid keys are rejected by the prechecks either way; skip them here so
  // they never cost a table build or an eviction.
  if (key.point.infinity || !on_curve(key.point))
    return crypto::verify(key, digest, sig);
  return verify_comb(key, digest, sig, *table_for(key));
}

std::size_t CombCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t CombCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t CombCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t CombCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void CombCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace bm::crypto

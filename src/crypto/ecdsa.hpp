// ECDSA over P-256 with SHA-256, matching Fabric's default signature scheme.
//
// Nonces are derived deterministically per RFC 6979 so that signing is
// reproducible (no entropy source needed in tests or simulations).
#pragma once

#include <optional>

#include "crypto/p256.hpp"
#include "crypto/sha256.hpp"

namespace bm::crypto {

struct Signature {
  U256 r;
  U256 s;

  friend bool operator==(const Signature&, const Signature&) = default;
};

struct PublicKey {
  AffinePoint point;

  /// Uncompressed SEC1 encoding: 0x04 || X (32) || Y (32).
  Bytes encode() const;
  static std::optional<PublicKey> decode(ByteView b);

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

struct PrivateKey {
  U256 d;  ///< Scalar in [1, n-1].

  PublicKey public_key() const;
};

/// Derive a key pair from an arbitrary seed (hashed into the scalar field).
/// Deterministic: the same seed always yields the same key.
PrivateKey key_from_seed(ByteView seed);

/// Sign a 32-byte message digest.
Signature sign(const PrivateKey& key, const Digest& digest);

/// Verify a signature over a 32-byte message digest.
bool verify(const PublicKey& key, const Digest& digest, const Signature& sig);

/// verify() with the u1*G + u2*Q combine evaluated over a prebuilt
/// per-identity comb table for the public key (two comb lookups per column
/// on one shared doubling chain instead of the generic joint-wNAF walk).
/// `table` must have been built from `key.point`; outcomes are identical to
/// verify() bit for bit.
bool verify_comb(const PublicKey& key, const Digest& digest,
                 const Signature& sig, const PointCombTable& table);

/// RFC 6979 deterministic nonce (exposed for the known-answer tests).
U256 rfc6979_nonce(const U256& d, const Digest& digest, std::uint32_t attempt);

}  // namespace bm::crypto

// Memoizing ECDSA verification cache (the software mirror of the BMac
// identity cache's "parse once, reuse" semantics, applied to whole
// signature checks).
//
// Real Fabric workloads are dominated by repeated endorsement checks: the
// same endorser signs the same (chaincode, rwset) digest for many
// transactions — deterministic RFC 6979 signing then produces bit-identical
// signatures — and every committing peer re-runs the full double-scalar
// multiplication each time ("Performance Characterization and Bottleneck
// Analysis of Hyperledger Fabric" pins this as a dominant commit-path
// cost). The cache memoizes verify() outcomes keyed by the full triple
// (public key, digest, signature bytes), so a repeat costs one SHA-256 and
// a hash-table probe instead of ~300 us of point arithmetic.
//
// Correctness: the key commits to every input of the verification — a
// matching signature over a DIFFERENT digest, or the same digest under a
// different key, hashes to a different entry and misses. Both positive and
// negative outcomes are cached (a forged signature stays forged). Bounded
// LRU capacity; thread-safe so the parallel vscc workers of one validator
// can share it.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "crypto/ecdsa.hpp"

namespace bm::crypto {

class CombCache;

class VerifyCache {
 public:
  /// Paper-scale default: comfortably holds a few hundred blocks' worth of
  /// distinct endorsements while bounding memory like the 8192-entry
  /// in-hardware stores.
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit VerifyCache(std::size_t capacity = kDefaultCapacity);

  /// Memoized crypto::verify. `sig_bytes` is the signature as it appeared
  /// on the wire (DER); `sig` the already-decoded form used on a miss.
  /// When `comb` is given, misses compute through its per-identity comb
  /// tables instead of the generic double-scalar multiply — same outcome,
  /// cheaper miss.
  bool verify(const PublicKey& key, const Digest& digest, ByteView sig_bytes,
              const Signature& sig, CombCache* comb = nullptr);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  void clear();

 private:
  struct Entry {
    bool valid;
    std::list<Digest>::iterator lru;
  };

  struct DigestHash {
    std::size_t operator()(const Digest& d) const;
  };
  struct DigestEq {
    bool operator()(const Digest& a, const Digest& b) const;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<Digest, Entry, DigestHash, DigestEq> entries_;
  std::list<Digest> lru_;  ///< front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bm::crypto

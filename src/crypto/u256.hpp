// Fixed-width 256-bit unsigned arithmetic for the P-256 implementation.
//
// Little-endian 64-bit limbs (w[0] is least significant). Wide products use
// a 512-bit struct; modular reduction is either the generic shift-subtract
// division (used on the scalar field, where it runs rarely) or the dedicated
// fast reduction for the NIST P-256 prime in p256.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bm::crypto {

struct U256 {
  std::array<std::uint64_t, 4> w{};

  static U256 from_u64(std::uint64_t v);
  /// Parse exactly 32 big-endian bytes.
  static U256 from_bytes_be(ByteView b);
  /// Parse a hex string of up to 64 digits (no 0x prefix).
  static U256 from_hex(std::string_view hex);

  Bytes to_bytes_be() const;  ///< Always 32 bytes.
  bool is_zero() const;
  bool bit(int i) const;  ///< i in [0, 255].
  /// Index of the highest set bit, or -1 if zero.
  int top_bit() const;

  friend bool operator==(const U256&, const U256&) = default;
};

struct U512 {
  std::array<std::uint64_t, 8> w{};
};

/// a < b, a == b, a > b  =>  -1, 0, 1.
int cmp(const U256& a, const U256& b);

/// r = a + b; returns the carry out (0 or 1).
std::uint64_t add(U256& r, const U256& a, const U256& b);

/// r = a - b; returns the borrow out (0 or 1).
std::uint64_t sub(U256& r, const U256& a, const U256& b);

/// Full 512-bit product.
U512 mul_wide(const U256& a, const U256& b);

/// Generic a mod m via limb-wise long division (Knuth TAOCP 4.3.1 Alg. D
/// with 64-bit digits); m must be non-zero.
U256 mod(const U512& a, const U256& m);

/// Reference bit-by-bit long division. ~60x slower than mod(); retained as
/// the differential-testing oracle for the limb-wise path.
U256 mod_bitwise(const U512& a, const U256& m);

/// Reduce a 256-bit value mod m (single conditional subtract path).
U256 mod(const U256& a, const U256& m);

/// (a + b) mod m; inputs must already be < m.
U256 add_mod(const U256& a, const U256& b, const U256& m);

/// (a - b) mod m; inputs must already be < m.
U256 sub_mod(const U256& a, const U256& b, const U256& m);

/// (a * b) mod m via wide product + generic division.
U256 mul_mod(const U256& a, const U256& b, const U256& m);

/// a^e mod m by square-and-multiply.
U256 pow_mod(const U256& a, const U256& e, const U256& m);

/// a^(m-2) mod m — modular inverse when m is prime and a != 0.
U256 inv_mod_prime(const U256& a, const U256& m);

}  // namespace bm::crypto

// ASN.1 DER encoding of ECDSA signatures (ITU-T X.690), as used by Fabric.
//
// A signature is SEQUENCE { INTEGER r, INTEGER s } with minimal two's
// complement integer encodings. The paper's DataProcessor (§3.2) decodes
// this format in hardware to recover the raw (r, s) pair for the
// ecdsa_engine; decode() mirrors that post-processor.
#pragma once

#include <optional>

#include "crypto/ecdsa.hpp"

namespace bm::crypto {

/// Serialize (r, s) as a DER SEQUENCE of two INTEGERs.
Bytes der_encode_signature(const Signature& sig);

/// Strict DER parse; rejects non-minimal encodings, trailing bytes and
/// integers wider than 256 bits.
std::optional<Signature> der_decode_signature(ByteView der);

}  // namespace bm::crypto

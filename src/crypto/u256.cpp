#include "crypto/u256.hpp"

#include <cassert>
#include <stdexcept>

namespace bm::crypto {

U256 U256::from_u64(std::uint64_t v) {
  U256 r;
  r.w[0] = v;
  return r;
}

U256 U256::from_bytes_be(ByteView b) {
  assert(b.size() == 32);
  U256 r;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | b[(3 - limb) * 8 + i];
    r.w[limb] = v;
  }
  return r;
}

U256 U256::from_hex(std::string_view hex) {
  if (hex.size() > 64) throw std::invalid_argument("hex too long for U256");
  U256 r;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw std::invalid_argument("bad hex digit");
    // r = r*16 + d
    std::uint64_t carry = static_cast<std::uint64_t>(d);
    for (auto& limb : r.w) {
      const std::uint64_t hi = limb >> 60;
      limb = (limb << 4) | carry;
      carry = hi;
    }
  }
  return r;
}

Bytes U256::to_bytes_be() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb)
    for (int i = 0; i < 8; ++i)
      out[(3 - limb) * 8 + i] =
          static_cast<std::uint8_t>(w[limb] >> (56 - 8 * i));
  return out;
}

bool U256::is_zero() const {
  return (w[0] | w[1] | w[2] | w[3]) == 0;
}

bool U256::bit(int i) const {
  return (w[i / 64] >> (i % 64)) & 1;
}

int U256::top_bit() const {
  for (int limb = 3; limb >= 0; --limb) {
    if (w[limb] != 0) return limb * 64 + 63 - __builtin_clzll(w[limb]);
  }
  return -1;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] < b.w[i]) return -1;
    if (a.w[i] > b.w[i]) return 1;
  }
  return 0;
}

std::uint64_t add(U256& r, const U256& a, const U256& b) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += a.w[i];
    carry += b.w[i];
    r.w[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t sub(U256& r, const U256& a, const U256& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 lhs = a.w[i];
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(b.w[i]) + borrow;
    r.w[i] = static_cast<std::uint64_t>(lhs - rhs);
    borrow = lhs < rhs ? 1 : 0;
  }
  return borrow;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      carry += static_cast<unsigned __int128>(a.w[i]) * b.w[j];
      carry += r.w[i + j];
      r.w[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    r.w[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return r;
}

namespace {

bool u512_bit(const U512& a, int i) {
  return (a.w[i / 64] >> (i % 64)) & 1;
}

int u512_top_bit(const U512& a) {
  for (int limb = 7; limb >= 0; --limb)
    if (a.w[limb] != 0) return limb * 64 + 63 - __builtin_clzll(a.w[limb]);
  return -1;
}

}  // namespace

U256 mod_bitwise(const U512& a, const U256& m) {
  assert(!m.is_zero());
  U256 r;
  const int top = u512_top_bit(a);
  for (int i = top; i >= 0; --i) {
    // r = 2r + bit; the transient value fits in 257 bits tracked by `hi`.
    const bool hi = (r.w[3] >> 63) & 1;
    for (int limb = 3; limb > 0; --limb)
      r.w[limb] = (r.w[limb] << 1) | (r.w[limb - 1] >> 63);
    r.w[0] = (r.w[0] << 1) | (u512_bit(a, i) ? 1u : 0u);
    if (hi || cmp(r, m) >= 0) sub(r, r, m);
  }
  return r;
}

U256 mod(const U512& a, const U256& m) {
  assert(!m.is_zero());
  int k = 4;
  while (k > 1 && m.w[k - 1] == 0) --k;

  if (k == 1) {
    // Single-limb modulus: stream the eight dividend limbs through a
    // 128-by-64 remainder.
    const std::uint64_t d = m.w[0];
    std::uint64_t rem = 0;
    for (int i = 7; i >= 0; --i) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(rem) << 64) | a.w[i];
      rem = static_cast<std::uint64_t>(cur % d);
    }
    return U256::from_u64(rem);
  }

  // Knuth Algorithm D, remainder only. Normalize so the divisor's top limb
  // has its most significant bit set; the dividend gains one spill limb.
  const int shift = __builtin_clzll(m.w[k - 1]);
  std::uint64_t vn[4];
  for (int i = k - 1; i >= 0; --i) {
    vn[i] = m.w[i] << shift;
    if (shift != 0 && i > 0) vn[i] |= m.w[i - 1] >> (64 - shift);
  }
  std::uint64_t un[9];
  un[8] = shift == 0 ? 0 : a.w[7] >> (64 - shift);
  for (int i = 7; i >= 0; --i) {
    un[i] = a.w[i] << shift;
    if (shift != 0 && i > 0) un[i] |= a.w[i - 1] >> (64 - shift);
  }

  for (int j = 8 - k; j >= 0; --j) {
    // Estimate the quotient digit from the top two dividend limbs, then
    // correct it (at most twice) against the next limb down.
    const unsigned __int128 top =
        (static_cast<unsigned __int128>(un[j + k]) << 64) | un[j + k - 1];
    unsigned __int128 qhat = top / vn[k - 1];
    unsigned __int128 rhat = top % vn[k - 1];
    while ((qhat >> 64) != 0 ||
           static_cast<unsigned __int128>(static_cast<std::uint64_t>(qhat)) *
                   vn[k - 2] >
               ((rhat << 64) | un[j + k - 2])) {
      --qhat;
      rhat += vn[k - 1];
      if ((rhat >> 64) != 0) break;
    }
    const std::uint64_t q = static_cast<std::uint64_t>(qhat);

    // Multiply-subtract q * vn from un[j .. j+k].
    __int128 borrow = 0;
    __int128 t = 0;
    for (int i = 0; i < k; ++i) {
      const unsigned __int128 p = static_cast<unsigned __int128>(q) * vn[i];
      t = static_cast<__int128>(un[i + j]) - borrow -
          static_cast<std::uint64_t>(p);
      un[i + j] = static_cast<std::uint64_t>(t);
      borrow = static_cast<__int128>(static_cast<std::uint64_t>(p >> 64)) -
               (t >> 64);
    }
    t = static_cast<__int128>(un[j + k]) - borrow;
    un[j + k] = static_cast<std::uint64_t>(t);

    if (t < 0) {
      // Estimate was one too large: add the divisor back.
      unsigned __int128 carry = 0;
      for (int i = 0; i < k; ++i) {
        carry += static_cast<unsigned __int128>(un[i + j]) + vn[i];
        un[i + j] = static_cast<std::uint64_t>(carry);
        carry >>= 64;
      }
      un[j + k] += static_cast<std::uint64_t>(carry);
    }
  }

  // Denormalize: the remainder sits in un[0 .. k-1].
  U256 r;
  for (int i = 0; i < k; ++i) {
    r.w[i] = un[i] >> shift;
    if (shift != 0) r.w[i] |= un[i + 1] << (64 - shift);
  }
  return r;
}

U256 mod(const U256& a, const U256& m) {
  U512 wide;
  for (int i = 0; i < 4; ++i) wide.w[i] = a.w[i];
  return mod(wide, m);
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 r;
  const std::uint64_t carry = add(r, a, b);
  if (carry || cmp(r, m) >= 0) sub(r, r, m);
  return r;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 r;
  if (sub(r, a, b)) add(r, r, m);
  return r;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) {
  return mod(mul_wide(a, b), m);
}

U256 pow_mod(const U256& a, const U256& e, const U256& m) {
  U256 result = U256::from_u64(1);
  const int top = e.top_bit();
  for (int i = top; i >= 0; --i) {
    result = mul_mod(result, result, m);
    if (e.bit(i)) result = mul_mod(result, a, m);
  }
  return result;
}

U256 inv_mod_prime(const U256& a, const U256& m) {
  U256 e = m;
  const U256 two = U256::from_u64(2);
  sub(e, e, two);
  return pow_mod(a, e, m);
}

}  // namespace bm::crypto

#include "crypto/der.hpp"

namespace bm::crypto {

namespace {

/// Minimal DER INTEGER body for an unsigned 256-bit value: strip leading
/// zero bytes, then prepend 0x00 if the top bit is set.
Bytes integer_body(const U256& v) {
  const Bytes be = v.to_bytes_be();
  std::size_t start = 0;
  while (start < be.size() - 1 && be[start] == 0) ++start;
  Bytes body;
  if (be[start] & 0x80) body.push_back(0x00);
  body.insert(body.end(), be.begin() + static_cast<std::ptrdiff_t>(start),
              be.end());
  return body;
}

struct Reader {
  ByteView data;
  std::size_t pos = 0;

  bool read_byte(std::uint8_t& out) {
    if (pos >= data.size()) return false;
    out = data[pos++];
    return true;
  }

  /// Short-form and 1-byte long-form lengths only (enough for signatures).
  bool read_length(std::size_t& out) {
    std::uint8_t first;
    if (!read_byte(first)) return false;
    if (first < 0x80) {
      out = first;
      return true;
    }
    if (first == 0x81) {
      std::uint8_t next;
      if (!read_byte(next)) return false;
      if (next < 0x80) return false;  // non-minimal long form
      out = next;
      return true;
    }
    return false;
  }

  bool read_integer(U256& out) {
    std::uint8_t tag;
    if (!read_byte(tag) || tag != 0x02) return false;
    std::size_t len;
    if (!read_length(len) || len == 0 || pos + len > data.size()) return false;
    ByteView body = data.subspan(pos, len);
    pos += len;
    if (body[0] & 0x80) return false;  // negative integers never valid here
    if (len > 1 && body[0] == 0x00 && !(body[1] & 0x80))
      return false;  // non-minimal
    if (body[0] == 0x00) body = body.subspan(1);
    if (body.size() > 32) return false;
    Bytes padded(32, 0);
    std::copy(body.begin(), body.end(),
              padded.begin() + static_cast<std::ptrdiff_t>(32 - body.size()));
    out = U256::from_bytes_be(padded);
    return true;
  }
};

void write_length(Bytes& out, std::size_t len) {
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
  } else {
    out.push_back(0x81);
    out.push_back(static_cast<std::uint8_t>(len));
  }
}

}  // namespace

Bytes der_encode_signature(const Signature& sig) {
  const Bytes r_body = integer_body(sig.r);
  const Bytes s_body = integer_body(sig.s);
  Bytes inner;
  inner.push_back(0x02);
  write_length(inner, r_body.size());
  append(inner, r_body);
  inner.push_back(0x02);
  write_length(inner, s_body.size());
  append(inner, s_body);

  Bytes out;
  out.push_back(0x30);
  write_length(out, inner.size());
  append(out, inner);
  return out;
}

std::optional<Signature> der_decode_signature(ByteView der) {
  Reader reader{der};
  std::uint8_t tag;
  if (!reader.read_byte(tag) || tag != 0x30) return std::nullopt;
  std::size_t seq_len;
  if (!reader.read_length(seq_len)) return std::nullopt;
  if (reader.pos + seq_len != der.size()) return std::nullopt;

  Signature sig;
  if (!reader.read_integer(sig.r)) return std::nullopt;
  if (!reader.read_integer(sig.s)) return std::nullopt;
  if (reader.pos != der.size()) return std::nullopt;
  return sig;
}

}  // namespace bm::crypto

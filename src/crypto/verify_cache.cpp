#include "crypto/verify_cache.hpp"

#include "crypto/comb_cache.hpp"

namespace bm::crypto {

namespace {

/// The cache key: SHA-256 over the full verification input — uncompressed
/// public key, message digest, and the signature's wire bytes. Any single
/// differing bit lands in a different entry.
Digest cache_key(const PublicKey& key, const Digest& digest,
                 ByteView sig_bytes) {
  Sha256 h;
  const Bytes encoded = key.encode();
  h.update(encoded);
  h.update(digest_view(digest));
  h.update(sig_bytes);
  return h.finish();
}

}  // namespace

std::size_t VerifyCache::DigestHash::operator()(const Digest& d) const {
  // The key is already a cryptographic hash; fold the first 8 bytes.
  std::size_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | d[static_cast<std::size_t>(i)];
  return out;
}

bool VerifyCache::DigestEq::operator()(const Digest& a, const Digest& b) const {
  return a == b;
}

VerifyCache::VerifyCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool VerifyCache::verify(const PublicKey& key, const Digest& digest,
                         ByteView sig_bytes, const Signature& sig,
                         CombCache* comb) {
  const Digest k = cache_key(key, digest, sig_bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(k);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.valid;
    }
    ++misses_;
  }
  // The expensive check runs outside the lock so parallel vscc workers
  // verifying distinct signatures never serialize on the cache.
  const bool valid = comb != nullptr ? comb->verify(key, digest, sig)
                                     : crypto::verify(key, digest, sig);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(k);
    if (it != entries_.end()) {
      // Another worker inserted the same triple while we verified; both
      // computed the same deterministic outcome.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.valid;
    }
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(k);
    entries_.emplace(k, Entry{valid, lru_.begin()});
  }
  return valid;
}

std::size_t VerifyCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t VerifyCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t VerifyCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t VerifyCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void VerifyCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace bm::crypto

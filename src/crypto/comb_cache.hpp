// Per-identity fixed-base comb tables for ECDSA verification.
//
// Endorser populations are small and stable: the same few public keys sign
// the overwhelming majority of endorsements a committing peer ever checks.
// Agrawal et al.'s FPGA ECDSA verification engine wins by amortizing
// per-public-key precomputation across many verifies; this is the software
// mirror of that trick. The first verification under a key builds a Lim–Lee
// comb table for its point (~2 generic multiplies of one-time work, ~16 KiB)
// and every later verification under the same key runs the u1*G + u2*Q
// combine as two comb lookups per column on ONE shared 31-doubling chain —
// ~4x fewer field operations than the generic joint-wNAF walk.
//
// Correctness: the combine is algebraically the same sum, so outcomes are
// bit-identical to crypto::verify for every input (differential-tested).
// Tables are cached under a bounded LRU budget keyed by the encoded public
// key; eviction only costs the rebuild on next sight. Thread-safe: table
// construction runs outside the lock so parallel vscc workers verifying
// under distinct keys never serialize, and entries are handed out as
// shared_ptr so an eviction never invalidates an in-flight verify.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "crypto/ecdsa.hpp"

namespace bm::crypto {

class CombCache {
 public:
  /// Default budget: 64 tables x ~16 KiB = ~1 MiB, comfortably above any
  /// realistic endorser population (a few orgs x a few peers).
  static constexpr std::size_t kDefaultTables = 64;

  explicit CombCache(std::size_t max_tables = kDefaultTables);

  /// crypto::verify with the double-scalar multiply run over this key's
  /// cached comb table (built and inserted on first sight). Outcomes are
  /// identical to crypto::verify for every input.
  bool verify(const PublicKey& key, const Digest& digest, const Signature& sig);

  /// The cached table for a key, building + caching on a miss. Never null.
  std::shared_ptr<const PointCombTable> table_for(const PublicKey& key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  void clear();

 private:
  struct Entry {
    std::shared_ptr<const PointCombTable> table;
    std::list<std::string>::iterator lru;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Keyed by the 65-byte uncompressed SEC1 encoding of the public key.
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bm::crypto

#include "crypto/hmac.hpp"

#include <cstring>

namespace bm::crypto {

namespace {

struct PaddedKey {
  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
};

PaddedKey pad_key(ByteView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest d = sha256(key);
    std::memcpy(block.data(), d.data(), d.size());
  } else if (!key.empty()) {
    std::memcpy(block.data(), key.data(), key.size());
  }
  PaddedKey out;
  for (std::size_t i = 0; i < 64; ++i) {
    out.ipad[i] = block[i] ^ 0x36;
    out.opad[i] = block[i] ^ 0x5c;
  }
  return out;
}

}  // namespace

Digest hmac_sha256_parts(ByteView key, std::initializer_list<ByteView> parts) {
  const PaddedKey pk = pad_key(key);
  Sha256 inner;
  inner.update(ByteView(pk.ipad.data(), pk.ipad.size()));
  for (const auto& p : parts) inner.update(p);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView(pk.opad.data(), pk.opad.size()));
  outer.update(digest_view(inner_digest));
  return outer.finish();
}

Digest hmac_sha256(ByteView key, ByteView message) {
  return hmac_sha256_parts(key, {message});
}

}  // namespace bm::crypto

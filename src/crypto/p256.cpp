#include "crypto/p256.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdlib>

namespace bm::crypto {

namespace {

const U256 kP = U256::from_hex(
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
const U256 kN = U256::from_hex(
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
const U256 kB = U256::from_hex(
    "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
const AffinePoint kG = {
    U256::from_hex(
        "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
    U256::from_hex(
        "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
    false};

}  // namespace

const U256& p256_p() { return kP; }
const U256& p256_n() { return kN; }
const U256& p256_b() { return kB; }
const AffinePoint& p256_generator() { return kG; }

U256 fp_add(const U256& a, const U256& b) { return add_mod(a, b, kP); }
U256 fp_sub(const U256& a, const U256& b) { return sub_mod(a, b, kP); }

U256 fp_reduce(const U512& a) {
  // Split the 512-bit input into sixteen 32-bit words c[0..15] (little
  // endian) and combine per Hankerson Alg. 2.29:
  //   r = s1 + 2*s2 + 2*s3 + s4 + s5 - s6 - s7 - s8 - s9 (mod p).
  std::uint32_t c[16];
  for (int i = 0; i < 8; ++i) {
    c[2 * i] = static_cast<std::uint32_t>(a.w[i]);
    c[2 * i + 1] = static_cast<std::uint32_t>(a.w[i] >> 32);
  }

  // Per-lane signed accumulation (each lane sums at most 9 32-bit words, so
  // an int64 cannot overflow).
  std::int64_t acc[8] = {};
  auto lane = [&](int j) -> std::int64_t& { return acc[j]; };

  // s1
  for (int j = 0; j < 8; ++j) lane(j) += c[j];
  // 2*s2 = 2*(c15,c14,c13,c12,c11,0,0,0)
  for (int j = 3; j < 8; ++j) lane(j) += 2 * static_cast<std::int64_t>(c[j + 8]);
  // 2*s3 = 2*(0,c15,c14,c13,c12,0,0,0)
  for (int j = 3; j < 7; ++j) lane(j) += 2 * static_cast<std::int64_t>(c[j + 9]);
  // s4 = (c15,c14,0,0,0,c10,c9,c8)
  lane(0) += c[8]; lane(1) += c[9]; lane(2) += c[10];
  lane(6) += c[14]; lane(7) += c[15];
  // s5 = (c8,c13,c15,c14,c13,c11,c10,c9)
  lane(0) += c[9]; lane(1) += c[10]; lane(2) += c[11]; lane(3) += c[13];
  lane(4) += c[14]; lane(5) += c[15]; lane(6) += c[13]; lane(7) += c[8];
  // s6 = (c10,c8,0,0,0,c13,c12,c11)
  lane(0) -= c[11]; lane(1) -= c[12]; lane(2) -= c[13];
  lane(6) -= c[8]; lane(7) -= c[10];
  // s7 = (c11,c9,0,0,c15,c14,c13,c12)
  lane(0) -= c[12]; lane(1) -= c[13]; lane(2) -= c[14]; lane(3) -= c[15];
  lane(6) -= c[9]; lane(7) -= c[11];
  // s8 = (c12,0,c10,c9,c8,c15,c14,c13)
  lane(0) -= c[13]; lane(1) -= c[14]; lane(2) -= c[15]; lane(3) -= c[8];
  lane(4) -= c[9]; lane(5) -= c[10]; lane(7) -= c[12];
  // s9 = (c13,0,c11,c10,c9,0,c15,c14)
  lane(0) -= c[14]; lane(1) -= c[15]; lane(3) -= c[9]; lane(4) -= c[10];
  lane(5) -= c[11]; lane(7) -= c[13];

  // Carry-propagate the signed lanes into a 256-bit value plus a signed
  // overflow word.
  U256 r;
  std::int64_t carry = 0;
  for (int j = 0; j < 8; ++j) {
    const std::int64_t t = acc[j] + carry;
    const auto low = static_cast<std::uint32_t>(t & 0xffffffff);
    carry = (t - low) >> 32;
    if (j % 2 == 0) {
      r.w[j / 2] = low;
    } else {
      r.w[j / 2] |= static_cast<std::uint64_t>(low) << 32;
    }
  }

  // Fold the overflow word: total value = carry * 2^256 + r. |carry| is tiny
  // (< 8), so a short loop of +/- p suffices.
  while (carry < 0) {
    carry += static_cast<std::int64_t>(add(r, r, kP));
  }
  while (carry > 0) {
    carry -= static_cast<std::int64_t>(sub(r, r, kP));
  }
  while (cmp(r, kP) >= 0) sub(r, r, kP);
  return r;
}

U256 fp_mul(const U256& a, const U256& b) {
  return fp_reduce(mul_wide(a, b));
}

U256 fp_sqr(const U256& a) { return fp_mul(a, a); }

U256 fp_inv(const U256& a) {
  // Fermat: a^(p-2) by square-and-multiply over the fast P-256 reduction.
  // p - 2 = ffffffff00000001000000000000000000000000fffffffffffffffffffffffd.
  static const U256 kPMinus2 = U256::from_hex(
      "ffffffff00000001000000000000000000000000fffffffffffffffffffffffd");
  U256 result = U256::from_u64(1);
  for (int i = kPMinus2.top_bit(); i >= 0; --i) {
    result = fp_sqr(result);
    if (kPMinus2.bit(i)) result = fp_mul(result, a);
  }
  return result;
}

JacobianPoint to_jacobian(const AffinePoint& p) {
  if (p.infinity) return JacobianPoint{};
  return JacobianPoint{p.x, p.y, U256::from_u64(1)};
}

AffinePoint to_affine(const JacobianPoint& p) {
  if (p.is_infinity()) return AffinePoint{{}, {}, true};
  const U256 zinv = fp_inv(p.z);
  const U256 zinv2 = fp_sqr(zinv);
  const U256 zinv3 = fp_mul(zinv2, zinv);
  return AffinePoint{fp_mul(p.x, zinv2), fp_mul(p.y, zinv3), false};
}

JacobianPoint point_double(const JacobianPoint& p) {
  if (p.is_infinity() || p.y.is_zero()) return JacobianPoint{};
  // dbl-2001-b formulas for a = -3.
  const U256 delta = fp_sqr(p.z);
  const U256 gamma = fp_sqr(p.y);
  const U256 beta = fp_mul(p.x, gamma);
  const U256 alpha =
      fp_mul(fp_add(fp_add(fp_sub(p.x, delta), fp_sub(p.x, delta)),
                    fp_sub(p.x, delta)),
             fp_add(p.x, delta));
  const U256 beta8 = fp_add(fp_add(fp_add(beta, beta), fp_add(beta, beta)),
                            fp_add(fp_add(beta, beta), fp_add(beta, beta)));
  JacobianPoint r;
  r.x = fp_sub(fp_sqr(alpha), beta8);
  const U256 ypz = fp_add(p.y, p.z);
  r.z = fp_sub(fp_sub(fp_sqr(ypz), gamma), delta);
  const U256 beta4 = fp_add(fp_add(beta, beta), fp_add(beta, beta));
  const U256 gamma2 = fp_sqr(gamma);
  const U256 gamma2_8 =
      fp_add(fp_add(fp_add(gamma2, gamma2), fp_add(gamma2, gamma2)),
             fp_add(fp_add(gamma2, gamma2), fp_add(gamma2, gamma2)));
  r.y = fp_sub(fp_mul(alpha, fp_sub(beta4, r.x)), gamma2_8);
  return r;
}

JacobianPoint point_add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const U256 z1z1 = fp_sqr(p.z);
  const U256 z2z2 = fp_sqr(q.z);
  const U256 u1 = fp_mul(p.x, z2z2);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s1 = fp_mul(p.y, fp_mul(z2z2, q.z));
  const U256 s2 = fp_mul(q.y, fp_mul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 == s2) return point_double(p);
    return JacobianPoint{};  // p + (-p)
  }
  const U256 h = fp_sub(u2, u1);
  const U256 r = fp_sub(s2, s1);
  const U256 h2 = fp_sqr(h);
  const U256 h3 = fp_mul(h2, h);
  const U256 u1h2 = fp_mul(u1, h2);
  JacobianPoint out;
  out.x = fp_sub(fp_sub(fp_sqr(r), h3), fp_add(u1h2, u1h2));
  out.y = fp_sub(fp_mul(r, fp_sub(u1h2, out.x)), fp_mul(s1, h3));
  out.z = fp_mul(fp_mul(p.z, q.z), h);
  return out;
}

JacobianPoint point_add_affine(const JacobianPoint& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.is_infinity()) return to_jacobian(q);
  // Mixed addition (madd-2007-bl shape, Z2 = 1).
  const U256 z1z1 = fp_sqr(p.z);
  const U256 u2 = fp_mul(q.x, z1z1);
  const U256 s2 = fp_mul(q.y, fp_mul(z1z1, p.z));
  if (p.x == u2) {
    if (p.y == s2) return point_double(p);
    return JacobianPoint{};  // p + (-p)
  }
  const U256 h = fp_sub(u2, p.x);
  const U256 r = fp_sub(s2, p.y);
  const U256 h2 = fp_sqr(h);
  const U256 h3 = fp_mul(h2, h);
  const U256 v = fp_mul(p.x, h2);
  JacobianPoint out;
  out.x = fp_sub(fp_sub(fp_sqr(r), h3), fp_add(v, v));
  out.y = fp_sub(fp_mul(r, fp_sub(v, out.x)), fp_mul(p.y, h3));
  out.z = fp_mul(p.z, h);
  return out;
}

std::vector<AffinePoint> batch_to_affine(const std::vector<JacobianPoint>& pts) {
  // Montgomery's trick: one inversion plus 3(n-1) multiplications inverts
  // every Z at once; infinities pass through with Z treated as 1.
  std::vector<AffinePoint> out(pts.size());
  std::vector<U256> prefix(pts.size());
  U256 acc = U256::from_u64(1);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    prefix[i] = acc;
    if (!pts[i].is_infinity()) acc = fp_mul(acc, pts[i].z);
  }
  U256 inv = fp_inv(acc);
  for (std::size_t i = pts.size(); i-- > 0;) {
    if (pts[i].is_infinity()) {
      out[i] = AffinePoint{{}, {}, true};
      continue;
    }
    const U256 zinv = fp_mul(inv, prefix[i]);
    inv = fp_mul(inv, pts[i].z);
    const U256 zinv2 = fp_sqr(zinv);
    out[i] = AffinePoint{fp_mul(pts[i].x, zinv2),
                         fp_mul(pts[i].y, fp_mul(zinv2, zinv)), false};
  }
  return out;
}

namespace {

JacobianPoint jac_negate(const JacobianPoint& p) {
  if (p.is_infinity() || p.y.is_zero()) return p;
  return JacobianPoint{p.x, sub_mod(U256{}, p.y, kP), p.z};
}

AffinePoint affine_negate(const AffinePoint& p) {
  if (p.infinity || p.y.is_zero()) return p;
  return AffinePoint{p.x, sub_mod(U256{}, p.y, kP), false};
}

/// Width-w NAF digits of k, least significant first. Digits are zero or odd
/// in [-(2^(w-1) - 1), 2^(w-1) - 1]; at most 257 are produced.
int wnaf_digits(const U256& k, int w, std::int8_t* digits) {
  U256 v = k;
  const std::uint64_t mask = (1u << w) - 1;
  const std::int64_t half = std::int64_t{1} << (w - 1);
  int len = 0;
  while (!v.is_zero()) {
    std::int8_t d = 0;
    if (v.w[0] & 1) {
      std::int64_t low = static_cast<std::int64_t>(v.w[0] & mask);
      if (low >= half) low -= 2 * half;
      d = static_cast<std::int8_t>(low);
      // v -= d (d odd, |d| < 2^(w-1); callers pass k < n so no overflow).
      U256 delta = U256::from_u64(static_cast<std::uint64_t>(low < 0 ? -low : low));
      if (low > 0) sub(v, v, delta);
      else add(v, v, delta);
    }
    digits[len++] = d;
    // v >>= 1.
    for (int i = 0; i < 3; ++i) v.w[i] = (v.w[i] >> 1) | (v.w[i + 1] << 63);
    v.w[3] >>= 1;
  }
  return len;
}

constexpr int kWnafWidth = 5;            ///< arbitrary-point tables: 8 entries
constexpr int kWnafWidthBase = 7;        ///< generator table: 32 entries
constexpr int kCombTeeth = 8;            ///< comb rows
constexpr int kCombSpacing = 32;         ///< comb columns (256 / kCombTeeth)

/// Odd multiples {P, 3P, 5P, ..., (2^(w-1) - 1)P} in Jacobian coordinates.
std::vector<JacobianPoint> odd_multiples(const AffinePoint& p, int w) {
  const int count = 1 << (w - 2);
  std::vector<JacobianPoint> tbl(static_cast<std::size_t>(count));
  tbl[0] = to_jacobian(p);
  const JacobianPoint p2 = point_double(tbl[0]);
  for (int i = 1; i < count; ++i) tbl[i] = point_add(tbl[i - 1], p2);
  return tbl;
}

/// Precomputed affine odd multiples of G for the joint-wNAF verify path.
const std::vector<AffinePoint>& base_wnaf_table() {
  static const std::vector<AffinePoint> tbl =
      batch_to_affine(odd_multiples(kG, kWnafWidthBase));
  return tbl;
}

/// Lim–Lee comb entries for P: entry d (1..255) is sum_{t in bits(d)}
/// 2^(32t) * P, stored affine. 255 entries, ~16 KiB.
std::vector<AffinePoint> build_comb_entries(const AffinePoint& p) {
  std::array<JacobianPoint, kCombTeeth> spine;
  spine[0] = to_jacobian(p);
  for (int t = 1; t < kCombTeeth; ++t) {
    spine[t] = spine[t - 1];
    for (int i = 0; i < kCombSpacing; ++i) spine[t] = point_double(spine[t]);
  }
  std::vector<JacobianPoint> entries(1u << kCombTeeth);  // entry 0 unused
  for (unsigned d = 1; d < entries.size(); ++d) {
    const unsigned t = static_cast<unsigned>(__builtin_ctz(d));
    entries[d] =
        d == (1u << t) ? spine[t] : point_add(entries[d & (d - 1)], spine[t]);
  }
  return batch_to_affine(entries);
}

const std::vector<AffinePoint>& base_comb_table() {
  static const std::vector<AffinePoint> tbl = build_comb_entries(kG);
  return tbl;
}

/// Column digit of the comb decomposition: bit t*32+col of k selects tooth t.
unsigned comb_digit(const U256& k, int col) {
  unsigned d = 0;
  for (int t = 0; t < kCombTeeth; ++t)
    d |= static_cast<unsigned>(k.bit(t * kCombSpacing + col)) << t;
  return d;
}

U256 reduce_mod_n(const U256& k) {
  U256 r = k;
  while (cmp(r, kN) >= 0) sub(r, r, kN);
  return r;
}

}  // namespace

JacobianPoint scalar_mult_naive(const U256& k, const AffinePoint& p) {
  JacobianPoint acc{};
  const JacobianPoint base = to_jacobian(p);
  const int top = k.top_bit();
  for (int i = top; i >= 0; --i) {
    acc = point_double(acc);
    if (k.bit(i)) acc = point_add(acc, base);
  }
  return acc;
}

JacobianPoint scalar_mult_wnaf(const U256& k, const AffinePoint& p) {
  const U256 kr = reduce_mod_n(k);
  if (kr.is_zero() || p.infinity) return JacobianPoint{};
  std::int8_t digits[257];
  const int len = wnaf_digits(kr, kWnafWidth, digits);
  const std::vector<JacobianPoint> tbl = odd_multiples(p, kWnafWidth);
  JacobianPoint acc{};
  for (int i = len - 1; i >= 0; --i) {
    acc = point_double(acc);
    const int d = digits[i];
    if (d > 0) acc = point_add(acc, tbl[static_cast<std::size_t>(d / 2)]);
    else if (d < 0)
      acc = point_add(acc, jac_negate(tbl[static_cast<std::size_t>(-d / 2)]));
  }
  return acc;
}

JacobianPoint base_mult(const U256& k) {
  const U256 kr = reduce_mod_n(k);
  if (kr.is_zero()) return JacobianPoint{};
  const std::vector<AffinePoint>& tbl = base_comb_table();
  JacobianPoint acc{};
  for (int col = kCombSpacing - 1; col >= 0; --col) {
    acc = point_double(acc);
    const unsigned d = comb_digit(kr, col);
    if (d != 0) acc = point_add_affine(acc, tbl[d]);
  }
  return acc;
}

PointCombTable PointCombTable::build(const AffinePoint& p) {
  PointCombTable tbl;
  tbl.point_ = p;
  if (!p.infinity) tbl.entries_ = build_comb_entries(p);
  return tbl;
}

JacobianPoint PointCombTable::mult(const U256& k) const {
  const U256 kr = reduce_mod_n(k);
  if (kr.is_zero() || point_.infinity) return JacobianPoint{};
  JacobianPoint acc{};
  for (int col = kCombSpacing - 1; col >= 0; --col) {
    acc = point_double(acc);
    const unsigned d = comb_digit(kr, col);
    if (d != 0) acc = point_add_affine(acc, entries_[d]);
  }
  return acc;
}

JacobianPoint double_scalar_mult_comb(const U256& u1, const U256& u2,
                                      const PointCombTable& q) {
  const U256 u1r = reduce_mod_n(u1);
  const U256 u2r = q.point().infinity ? U256{} : reduce_mod_n(u2);
  if (u2r.is_zero()) return base_mult(u1r);
  if (u1r.is_zero()) return q.mult(u2r);
  const std::vector<AffinePoint>& gtbl = base_comb_table();
  JacobianPoint acc{};
  for (int col = kCombSpacing - 1; col >= 0; --col) {
    acc = point_double(acc);
    const unsigned d1 = comb_digit(u1r, col);
    if (d1 != 0) acc = point_add_affine(acc, gtbl[d1]);
    const unsigned d2 = comb_digit(u2r, col);
    if (d2 != 0) acc = point_add_affine(acc, q.entry(d2));
  }
  return acc;
}

JacobianPoint scalar_mult(const U256& k, const AffinePoint& p) {
  if (!p.infinity && p.x == kG.x && p.y == kG.y) return base_mult(k);
  return scalar_mult_wnaf(k, p);
}

JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q) {
  const U256 u1r = reduce_mod_n(u1);
  const U256 u2r = q.infinity ? U256{} : reduce_mod_n(u2);
  std::int8_t d1[257], d2[257];
  const int len1 = u1r.is_zero() ? 0 : wnaf_digits(u1r, kWnafWidthBase, d1);
  const int len2 = u2r.is_zero() ? 0 : wnaf_digits(u2r, kWnafWidth, d2);
  const std::vector<AffinePoint>& gtbl = base_wnaf_table();
  const std::vector<JacobianPoint> qtbl =
      len2 != 0 ? odd_multiples(q, kWnafWidth) : std::vector<JacobianPoint>{};
  JacobianPoint acc{};
  for (int i = std::max(len1, len2) - 1; i >= 0; --i) {
    acc = point_double(acc);
    if (i < len1 && d1[i] != 0) {
      const int d = d1[i];
      const AffinePoint& g = gtbl[static_cast<std::size_t>(std::abs(d) / 2)];
      acc = point_add_affine(acc, d > 0 ? g : affine_negate(g));
    }
    if (i < len2 && d2[i] != 0) {
      const int d = d2[i];
      const JacobianPoint& t = qtbl[static_cast<std::size_t>(std::abs(d) / 2)];
      acc = point_add(acc, d > 0 ? t : jac_negate(t));
    }
  }
  return acc;
}

bool on_curve(const AffinePoint& p) {
  if (p.infinity) return true;
  if (cmp(p.x, kP) >= 0 || cmp(p.y, kP) >= 0) return false;
  const U256 y2 = fp_sqr(p.y);
  const U256 x3 = fp_mul(fp_sqr(p.x), p.x);
  // x^3 - 3x + b
  const U256 three_x = fp_add(fp_add(p.x, p.x), p.x);
  const U256 rhs = fp_add(fp_sub(x3, three_x), kB);
  return y2 == rhs;
}

}  // namespace bm::crypto

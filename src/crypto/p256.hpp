// NIST P-256 (secp256r1) curve arithmetic.
//
// Field elements are U256 values < p with a dedicated fast reduction for the
// NIST prime (Hankerson et al., Alg. 2.29). Points use Jacobian projective
// coordinates; the point at infinity is represented by Z = 0.
#pragma once

#include <vector>

#include "crypto/u256.hpp"

namespace bm::crypto {

/// Curve parameters (y^2 = x^3 - 3x + b over F_p, group order n).
const U256& p256_p();
const U256& p256_n();
const U256& p256_b();

/// Field arithmetic mod p (inputs must be < p).
U256 fp_add(const U256& a, const U256& b);
U256 fp_sub(const U256& a, const U256& b);
U256 fp_mul(const U256& a, const U256& b);
U256 fp_sqr(const U256& a);
U256 fp_inv(const U256& a);
/// Fast reduction of a 512-bit product modulo the P-256 prime.
U256 fp_reduce(const U512& a);

struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;  ///< Zero limbs mean the point at infinity.

  bool is_infinity() const { return z.is_zero(); }
};

/// The group generator G.
const AffinePoint& p256_generator();

JacobianPoint to_jacobian(const AffinePoint& p);
AffinePoint to_affine(const JacobianPoint& p);

JacobianPoint point_double(const JacobianPoint& p);
JacobianPoint point_add(const JacobianPoint& p, const JacobianPoint& q);
/// Mixed Jacobian + affine addition (Z2 = 1), ~30% cheaper than the general
/// formulas; used with the precomputed affine tables.
JacobianPoint point_add_affine(const JacobianPoint& p, const AffinePoint& q);

/// Convert many Jacobian points with one field inversion (Montgomery's
/// simultaneous-inversion trick); used to build the fixed-base tables.
std::vector<AffinePoint> batch_to_affine(const std::vector<JacobianPoint>& pts);

/// k * P. Dispatches to the fixed-base comb when P is the generator and to
/// width-5 wNAF otherwise. Since every finite curve point has order n
/// (cofactor 1), k is first reduced mod n; the result equals the naive
/// double-and-add for any k.
JacobianPoint scalar_mult(const U256& k, const AffinePoint& p);

/// k * P by left-to-right double-and-add; retained as the differential
/// oracle for the fast paths.
JacobianPoint scalar_mult_naive(const U256& k, const AffinePoint& p);

/// k * P by width-5 wNAF with a per-call odd-multiples table.
JacobianPoint scalar_mult_wnaf(const U256& k, const AffinePoint& p);

/// k * G via the precomputed fixed-base comb table (8 teeth x 32 columns):
/// 31 doublings + <= 32 mixed additions. The signing hot path.
JacobianPoint base_mult(const U256& k);

/// u1*G + u2*Q by joint wNAF (Shamir's trick): one shared doubling chain,
/// G digits resolved against a precomputed affine odd-multiples table and Q
/// digits against a per-call table; the generic ECDSA verification path.
JacobianPoint double_scalar_mult(const U256& u1, const U256& u2,
                                 const AffinePoint& q);

/// Per-point Lim–Lee comb table, the same 8-teeth x 32-column layout the
/// generator's fixed-base table uses: 255 affine entries (~16 KiB). Building
/// one costs a few hundred point operations — roughly two generic scalar
/// multiplications — which amortizes whenever the same point is multiplied
/// more than a handful of times (hot endorser public keys).
class PointCombTable {
 public:
  /// Precompute the table for P. An infinity P yields a table whose
  /// multiplies all return infinity.
  static PointCombTable build(const AffinePoint& p);

  const AffinePoint& point() const { return point_; }

  /// k * P via the comb: 31 doublings + <= 32 mixed additions (reduces k
  /// mod n first, like scalar_mult).
  JacobianPoint mult(const U256& k) const;

  /// Comb entry d (1..255): sum over set bits t of d of 2^(32t) * P.
  const AffinePoint& entry(unsigned d) const { return entries_[d]; }

 private:
  PointCombTable() = default;

  AffinePoint point_{{}, {}, true};
  std::vector<AffinePoint> entries_;  ///< 256 entries; entry 0 unused
};

/// u1*G + u2*Q with Q on a prebuilt comb table: ONE shared 31-doubling
/// chain with both comb lookups folded per column, <= 64 mixed additions
/// total. The generic joint-wNAF path pays ~256 doublings, so a table hit
/// makes verification ~4x cheaper — the per-identity ECDSA hot path.
JacobianPoint double_scalar_mult_comb(const U256& u1, const U256& u2,
                                      const PointCombTable& q);

/// True iff (x, y) satisfies the curve equation and both are < p.
bool on_curve(const AffinePoint& p);

}  // namespace bm::crypto

#include "crypto/ecdsa.hpp"

#include "crypto/hmac.hpp"

namespace bm::crypto {

namespace {

/// bits2int for SHA-256 digests with the 256-bit group order: interpret the
/// digest as a big-endian integer (no truncation needed) and reduce mod n
/// where required by the signing equation.
U256 digest_to_scalar(const Digest& digest) {
  return U256::from_bytes_be(digest_view(digest));
}

U256 reduce_n(const U256& v) {
  const U256& n = p256_n();
  U256 r = v;
  if (cmp(r, n) >= 0) sub(r, r, n);
  return r;
}

}  // namespace

Bytes PublicKey::encode() const {
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  append(out, point.x.to_bytes_be());
  append(out, point.y.to_bytes_be());
  return out;
}

std::optional<PublicKey> PublicKey::decode(ByteView b) {
  if (b.size() != 65 || b[0] != 0x04) return std::nullopt;
  PublicKey key;
  key.point.x = U256::from_bytes_be(slice(b, 1, 32));
  key.point.y = U256::from_bytes_be(slice(b, 33, 32));
  key.point.infinity = false;
  if (!on_curve(key.point)) return std::nullopt;
  return key;
}

PublicKey PrivateKey::public_key() const {
  return PublicKey{to_affine(base_mult(d))};
}

PrivateKey key_from_seed(ByteView seed) {
  // Hash the seed with a counter until the scalar lands in [1, n-1]; the
  // first attempt succeeds with overwhelming probability.
  for (std::uint32_t counter = 0;; ++counter) {
    Sha256 h;
    h.update(to_bytes("bmac-p256-key"));
    h.update(seed);
    std::uint8_t c[4] = {
        static_cast<std::uint8_t>(counter >> 24),
        static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8),
        static_cast<std::uint8_t>(counter)};
    h.update(ByteView(c, 4));
    const U256 d = U256::from_bytes_be(digest_view(h.finish()));
    if (!d.is_zero() && cmp(d, p256_n()) < 0) return PrivateKey{d};
  }
}

U256 rfc6979_nonce(const U256& d, const Digest& digest,
                   std::uint32_t attempt) {
  const U256& n = p256_n();
  const Bytes x = d.to_bytes_be();
  // bits2octets(H(m)) = int2octets(bits2int(H(m)) mod n).
  const Bytes h1 = reduce_n(digest_to_scalar(digest)).to_bytes_be();

  Bytes v(32, 0x01);
  Bytes k(32, 0x00);
  const std::uint8_t zero = 0x00;
  const std::uint8_t one = 0x01;

  Digest t = hmac_sha256_parts(k, {v, ByteView(&zero, 1), x, h1});
  k.assign(t.begin(), t.end());
  t = hmac_sha256(k, v);
  v.assign(t.begin(), t.end());
  t = hmac_sha256_parts(k, {v, ByteView(&one, 1), x, h1});
  k.assign(t.begin(), t.end());
  t = hmac_sha256(k, v);
  v.assign(t.begin(), t.end());

  std::uint32_t produced = 0;
  for (;;) {
    t = hmac_sha256(k, v);
    v.assign(t.begin(), t.end());
    const U256 candidate = U256::from_bytes_be(v);
    if (!candidate.is_zero() && cmp(candidate, n) < 0) {
      if (produced == attempt) return candidate;
      ++produced;
    }
    t = hmac_sha256_parts(k, {v, ByteView(&zero, 1)});
    k.assign(t.begin(), t.end());
    t = hmac_sha256(k, v);
    v.assign(t.begin(), t.end());
  }
}

Signature sign(const PrivateKey& key, const Digest& digest) {
  const U256& n = p256_n();
  const U256 e = reduce_n(digest_to_scalar(digest));
  for (std::uint32_t attempt = 0;; ++attempt) {
    const U256 k = rfc6979_nonce(key.d, digest, attempt);
    const AffinePoint kg = to_affine(base_mult(k));
    const U256 r = mod(kg.x, n);
    if (r.is_zero()) continue;
    const U256 kinv = inv_mod_prime(k, n);
    const U256 rd = mul_mod(r, key.d, n);
    const U256 s = mul_mod(kinv, add_mod(e, rd, n), n);
    if (s.is_zero()) continue;
    return Signature{r, s};
  }
}

namespace {

/// Shared ECDSA verification skeleton; `mul` evaluates u1*G + u2*Q for the
/// public key's point Q. Every range/curve check runs before `mul`, so the
/// comb and generic paths agree on all malformed inputs.
template <typename Mul>
bool verify_impl(const PublicKey& key, const Digest& digest,
                 const Signature& sig, Mul&& mul) {
  const U256& n = p256_n();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (cmp(sig.r, n) >= 0 || cmp(sig.s, n) >= 0) return false;
  if (key.point.infinity || !on_curve(key.point)) return false;

  const U256 e = reduce_n(digest_to_scalar(digest));
  const U256 w = inv_mod_prime(sig.s, n);
  const U256 u1 = mul_mod(e, w, n);
  const U256 u2 = mul_mod(sig.r, w, n);
  const JacobianPoint p = mul(u1, u2);
  if (p.is_infinity()) return false;
  const AffinePoint pa = to_affine(p);
  return mod(pa.x, n) == sig.r;
}

}  // namespace

bool verify(const PublicKey& key, const Digest& digest, const Signature& sig) {
  return verify_impl(key, digest, sig, [&](const U256& u1, const U256& u2) {
    return double_scalar_mult(u1, u2, key.point);
  });
}

bool verify_comb(const PublicKey& key, const Digest& digest,
                 const Signature& sig, const PointCombTable& table) {
  return verify_impl(key, digest, sig, [&](const U256& u1, const U256& u2) {
    return double_scalar_mult_comb(u1, u2, table);
  });
}

}  // namespace bm::crypto

// HMAC-SHA256 (RFC 2104), used by the deterministic ECDSA nonce derivation.
#pragma once

#include "crypto/sha256.hpp"

namespace bm::crypto {

Digest hmac_sha256(ByteView key, ByteView message);

/// HMAC over the concatenation of several fragments (avoids copies in the
/// RFC 6979 inner loop).
Digest hmac_sha256_parts(ByteView key, std::initializer_list<ByteView> parts);

}  // namespace bm::crypto

// Per-transaction flight recorder: a bounded ring buffer of lifecycle
// events, dumped as a post-mortem JSON artifact when something goes wrong.
//
// Probe sites across the pipeline append one event per lifecycle edge
// (admitted -> dispatched -> endorsed -> ordered -> committed, or the sad
// paths: shed, timed out, watchdog fire, fallback commit, stream abort).
// The ring holds only the most recent `capacity` events, so steady state
// costs O(1) per transaction and a dump shows the window leading up to the
// trigger — exactly what a human asks for first in an incident review.
//
// Triggers are first-wins: the first SLO alert / watchdog fire / drain
// failure freezes the story and writes the dump; later triggers are
// counted but do not overwrite the post-mortem. Recording keeps going, so
// in-memory inspection after the run still sees the full tail.
//
// Like the rest of obs/, everything is keyed to simulated time: same seed,
// byte-identical dump.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"

namespace bm::obs {

enum class FlightStage : std::uint8_t {
  kSubmitted,      ///< client draft entered the system
  kAdmitted,       ///< passed admission control
  kShed,           ///< rejected by admission (queue full / rate limited)
  kDispatched,     ///< handed to an endorser worker
  kEndorsed,       ///< endorsement latency paid
  kOrdered,        ///< sealed into a block by the ingress batcher
  kValidated,      ///< block-level validation finished
  kCommitted,      ///< transaction durably committed
  kTimedOut,       ///< exceeded its client deadline
  kWatchdog,       ///< hardware watchdog fired (block-scoped)
  kFallback,       ///< block committed via software fallback path
  kAborted,        ///< stream / block abandoned (fault path)
};

/// Stable name used in dump artifacts.
std::string_view flight_stage_name(FlightStage stage);

struct FlightEvent {
  sim::Time at = 0;
  FlightStage stage = FlightStage::kSubmitted;
  std::uint64_t id = 0;  ///< transaction id, or block id for block stages
  std::string note;      ///< optional context ("queue_full", rule name, ...)
};

struct FlightConfig {
  std::size_t capacity = 4096;  ///< events retained; older ones evicted
};

class FlightRecorder {
 public:
  explicit FlightRecorder(sim::Simulation& sim, FlightConfig config = {});

  /// Set the dump destination. Without a path, triggers still latch (for
  /// tests and in-memory inspection) but nothing is written.
  void arm(std::string path);

  /// Append one lifecycle event at the current sim time.
  void record(FlightStage stage, std::uint64_t id, std::string note = "");

  /// Fire a trigger. The first trigger freezes `reason` and writes the
  /// post-mortem dump (when armed); later calls only bump trigger_count().
  /// Returns true when this call performed the dump.
  bool trigger(const std::string& reason);

  bool triggered() const { return trigger_count_ > 0; }
  std::uint64_t trigger_count() const { return trigger_count_; }
  const std::string& trigger_reason() const { return trigger_reason_; }
  sim::Time trigger_at() const { return trigger_at_; }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return config_.capacity; }
  /// Events evicted to make room (total recorded = size + dropped).
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t recorded() const { return recorded_; }

  /// Buffered events, oldest first.
  std::vector<FlightEvent> events() const;

  /// Post-mortem JSON (schema_version, trigger, ring oldest-first).
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  sim::Simulation& sim_;
  FlightConfig config_;
  std::vector<FlightEvent> ring_;  ///< circular once full
  std::size_t head_ = 0;           ///< next write slot when full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::string dump_path_;
  std::uint64_t trigger_count_ = 0;
  std::string trigger_reason_;
  sim::Time trigger_at_ = 0;
};

}  // namespace bm::obs

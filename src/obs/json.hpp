// Compatibility shim: the JSON parser moved to common/json.hpp so the
// scenario-config facility (common/config.hpp) can use it without a layering
// cycle. Existing includes of obs/json.hpp and uses of bm::obs::json::*
// keep compiling unchanged.
#pragma once

#include "common/json.hpp"

namespace bm::obs::json {

using bm::json::Value;
using bm::json::parse;

}  // namespace bm::obs::json

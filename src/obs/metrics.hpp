// Metrics registry: counters, gauges and fixed-bucket histograms registered
// by name, snapshotable at any simulated time.
//
// The registry is the machine-readable counterpart of the paper's
// block_monitor counters (§4.1): every layer of the reproduction publishes
// into one Registry, and a snapshot can be rendered as Prometheus
// text-exposition format or JSON at any sim::Time. All values are driven by
// simulated time and deterministic event counts — two runs with the same
// seed serialize byte-identically. Instrumented code holds plain pointers
// (null by default), so an unattached registry costs one branch per probe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace bm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// Snapshot-style publication: overwrite with an externally tracked
  /// cumulative value (used when converting pre-existing stat structs).
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram (Prometheus semantics: cumulative buckets over
/// `le` upper bounds, with an implicit +Inf bucket).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
  }
  /// Population standard deviation over the observed values.
  double stddev() const;

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket (non-cumulative) counts; size = upper_bounds() + 1 (+Inf).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Sensible default bucket sets for the pipeline's two latency scales.
  static std::vector<double> latency_ms_buckets();
  static std::vector<double> latency_us_buckets();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;  ///< one per bound, plus +Inf
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named metric store. register-or-get semantics: calling counter("x")
/// twice returns the same object, so layers can share totals.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// Register-or-get, with one sharp edge: re-registering an existing name
  /// with *different* bucket bounds throws std::invalid_argument instead of
  /// silently handing back the first entry's buckets (which would make two
  /// call sites disagree about what the histogram measures).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& help = "");

  // Lookups (null when the name was never registered) — used by tests.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Visit every metric in name order (counters, then gauges, then
  /// histograms). Read-only: the continuous-telemetry sampler is built on
  /// this, so visiting must not register or mutate anything.
  void for_each(
      const std::function<void(const std::string&, const Counter&)>& counter_fn,
      const std::function<void(const std::string&, const Gauge&)>& gauge_fn,
      const std::function<void(const std::string&, const Histogram&)>&
          histogram_fn) const;

  /// Prometheus text exposition format, annotated with the snapshot time.
  std::string render_text(sim::Time at) const;
  /// JSON snapshot: {"at_ns":..,"counters":{..},"gauges":{..},
  /// "histograms":{..}} with names in sorted order (deterministic).
  std::string render_json(sim::Time at) const;

  bool write_text(const std::string& path, sim::Time at) const;
  bool write_json(const std::string& path, sim::Time at) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> metric;
    std::string help;
  };

  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

namespace detail {
/// Deterministic number formatting shared by the serializers: integers are
/// printed exactly, non-integers with enough digits to round-trip.
std::string format_number(double v);
}  // namespace detail

}  // namespace bm::obs

// Continuous sim-time sampling of a metrics Registry into columnar series.
//
// PR 1's Registry answers "what were the totals at the end of the run"; the
// sampler answers "when did they move". A TimeSeriesSampler is scheduled on
// the discrete-event simulation and, every `interval` of simulated time,
// snapshots the selected counters, gauges and histogram count/sum pairs
// into aligned columns — the software analogue of reading the paper's
// block_monitor registers (§4.1) on a fixed poll loop. Counters additionally
// get a derived per-second rate column at serialization time, so a plot of
// goodput or shed rate needs no post-processing.
//
// Determinism: ticks are simulated-time events (never wall clock), series
// serialize in name order, and numbers use the registry's round-trip
// formatter — two same-seed runs emit byte-identical JSON/CSV artifacts.
// Metrics that first appear mid-run are backfilled with zeros so every
// column has exactly one value per sample.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace bm::obs {

struct TimeSeriesConfig {
  /// Simulated time between samples.
  sim::Time interval = 10 * sim::kMillisecond;
  /// Metric-name prefixes to sample; empty = every metric in the registry.
  std::vector<std::string> include_prefixes;
  /// Sample histograms as two derived counter columns (<name>_count and
  /// <name>_sum) so latency activity shows up between snapshots.
  bool sample_histograms = true;
};

class TimeSeriesSampler {
 public:
  /// The registry is read-only from the sampler's point of view; the
  /// simulation drives the tick schedule.
  TimeSeriesSampler(sim::Simulation& sim, const Registry& registry,
                    TimeSeriesConfig config);

  /// Take a baseline sample now and schedule a tick every `interval` until
  /// stop(). Call before running the simulation.
  void start();

  /// Cancel the pending tick. Safe to call repeatedly; must be called
  /// before the bound Simulation is destroyed.
  void stop();

  /// Take one sample at the current simulated time (also used for the
  /// final "end of run" column). Duplicate timestamps are collapsed: a
  /// second sample at the same sim time overwrites nothing and is skipped.
  void sample_now();

  std::size_t sample_count() const { return at_.size(); }
  std::size_t series_count() const { return series_.size(); }
  const std::vector<sim::Time>& sample_times() const { return at_; }

  /// Raw column for one metric (empty when never sampled); values align
  /// with sample_times().
  std::vector<double> values(const std::string& name) const;

  /// Derived per-second rate column for a counter-kind series: element i is
  /// (v[i] - v[i-1]) / dt_seconds, with element 0 measured from (t=0, v=0).
  std::vector<double> rates(const std::string& name) const;

  /// Columnar JSON artifact: schema_version, interval, at_ns plus one
  /// entry per series with values (and rate_per_s for counters).
  std::string to_json() const;
  /// CSV artifact: header "at_ns,<names...>" (sorted), one row per sample.
  std::string to_csv() const;

  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge };
  struct Series {
    Kind kind = Kind::kGauge;
    std::vector<double> values;
  };

  bool included(const std::string& name) const;
  void record(const std::string& name, Kind kind, double value);
  void tick();

  sim::Simulation& sim_;
  const Registry& registry_;
  TimeSeriesConfig config_;
  std::vector<sim::Time> at_;
  std::map<std::string, Series> series_;  ///< sorted => deterministic output
  sim::EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace bm::obs

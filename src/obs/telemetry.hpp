// Continuous-telemetry bundle: one object that wires the time-series
// sampler, SLO burn-rate monitor and flight recorder into a run.
//
// The tool/bench binaries configure a Telemetry from cli::CommonFlags
// (--sample-interval / --timeseries-out / --slo-config / --slo-out /
// --flight-out), attach() it to the run's Simulation + Registry before the
// clock starts, finish() it before the Simulation is destroyed (the sampler
// and monitor hold recurring events on the sim), and write() the artifacts
// afterwards. The SLO monitor's first fire automatically triggers the
// flight-recorder post-mortem, so an alert always comes with the event
// window that led up to it.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace bm::obs {

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Read the telemetry flags (loads --slo-config from disk). Returns false
  /// with `error` filled on a malformed config. A flag set that requests no
  /// telemetry leaves the bundle disabled; attach() is then a no-op.
  bool configure(const cli::CommonFlags& flags, std::string* error = nullptr);

  /// Programmatic configuration (benches/tests): enable with an in-memory
  /// SLO config and sampling interval, writing no artifact files. Read the
  /// results back through sampler()/slo()/flight() after finish().
  void configure(TimeSeriesConfig sampler_config,
                 std::optional<SloConfig> slo_config);

  /// Install (or clear) an in-memory SLO rule set on top of whatever
  /// configure() decided — the composed --scenario path, where the rules
  /// arrive inline in the scenario file rather than via --slo-config.
  /// A non-empty rule set enables the bundle. Call before attach().
  void set_slo_config(std::optional<SloConfig> slo_config);

  bool enabled() const { return enabled_; }

  /// Create the instruments for this run and start the recurring sampling /
  /// evaluation events. Call before the simulation runs. Re-attaching
  /// replaces the previous run's instruments.
  void attach(sim::Simulation& sim, Registry& registry, Tracer* tracer);

  /// Take one final sample + evaluation at the current sim time and cancel
  /// the recurring events. MUST be called while the Simulation attached to
  /// is still alive; idempotent.
  void finish();

  /// Write the requested artifacts (time-series JSON/CSV, SLO alert log,
  /// flight ring when it was never trigger-dumped). Returns 0 on success,
  /// 1 on any write failure. Prints one confirmation line per file.
  int write() const;

  // Null when disabled / not attached.
  TimeSeriesSampler* sampler() { return sampler_.get(); }
  SloMonitor* slo() { return slo_.get(); }
  FlightRecorder* flight() { return flight_.get(); }

 private:
  bool enabled_ = false;
  TimeSeriesConfig sampler_config_;
  std::optional<SloConfig> slo_config_;
  std::string timeseries_out_, timeseries_csv_;
  std::string slo_out_, flight_out_;

  std::unique_ptr<TimeSeriesSampler> sampler_;
  std::unique_ptr<SloMonitor> slo_;
  std::unique_ptr<FlightRecorder> flight_;
  bool finished_ = true;
};

}  // namespace bm::obs

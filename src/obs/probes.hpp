// Probe adapters gluing sim-layer hooks to the observability sinks.
//
// sim::Fifo deliberately knows nothing about obs; it exposes cheap
// std::function hooks (depth changes, producer stalls). These helpers bind
// those hooks to a Tracer — a depth counter track plus "stall" spans in the
// "fifo" category showing back-pressure — and publish the FIFO's lifetime
// statistics into a Registry.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fifo.hpp"

namespace bm::obs {

/// Attach trace probes to a FIFO: a counter track named "<name> depth" and
/// one span per blocked put (back-pressure visualization). `lane` should be
/// a dedicated lane for this FIFO so stall spans never overlap. No-op when
/// `tracer` is null.
template <typename T>
void attach_fifo_trace(sim::Simulation& sim, sim::Fifo<T>& fifo,
                       Tracer* tracer, int lane) {
  if (tracer == nullptr) return;
  const std::string track = fifo.name() + " depth";
  fifo.set_depth_probe([&sim, tracer, lane, track](std::size_t depth) {
    tracer->counter(lane, track, "fifo", sim.now(),
                    static_cast<std::int64_t>(depth));
  });
  const std::string stall = fifo.name() + " stall";
  fifo.set_stall_probe([tracer, lane, stall](sim::Time start, sim::Time end) {
    tracer->complete(lane, stall, "fifo", start, end);
  });
}

/// Publish a FIFO's lifetime statistics as gauges/counters under
/// "<prefix>_<fifo name>_...". Idempotent — safe to call repeatedly.
template <typename T>
void publish_fifo_metrics(Registry& registry, const sim::Fifo<T>& fifo,
                          const std::string& prefix) {
  const std::string base = prefix + "_" + fifo.name();
  registry.counter(base + "_pushed_total", "entries pushed into the FIFO")
      .set(fifo.total_pushed());
  registry.counter(base + "_popped_total", "entries popped from the FIFO")
      .set(fifo.total_popped());
  registry
      .counter(base + "_blocked_puts_total",
               "producer stalls due to back-pressure")
      .set(fifo.blocked_put_events());
  registry.gauge(base + "_peak_depth", "maximum occupancy reached")
      .set(static_cast<double>(fifo.max_occupancy()));
  registry.gauge(base + "_capacity", "configured capacity")
      .set(static_cast<double>(fifo.capacity()));
}

}  // namespace bm::obs

#include "obs/telemetry.hpp"

#include <cstdio>

namespace bm::obs {

bool Telemetry::configure(const cli::CommonFlags& flags, std::string* error) {
  enabled_ = flags.wants_telemetry();
  if (!enabled_) return true;

  sampler_config_ = TimeSeriesConfig{};
  if (flags.sample_interval_ms > 0)
    sampler_config_.interval = static_cast<sim::Time>(
        flags.sample_interval_ms * static_cast<double>(sim::kMillisecond));
  timeseries_out_ = flags.timeseries_out;
  timeseries_csv_ = flags.timeseries_csv;
  slo_out_ = flags.slo_out;
  flight_out_ = flags.flight_out;

  slo_config_.reset();
  if (!flags.slo_config.empty()) {
    slo_config_ = load_slo_config(flags.slo_config, error);
    if (!slo_config_) {
      enabled_ = false;
      return false;
    }
  }
  return true;
}

void Telemetry::configure(TimeSeriesConfig sampler_config,
                          std::optional<SloConfig> slo_config) {
  enabled_ = true;
  sampler_config_ = std::move(sampler_config);
  slo_config_ = std::move(slo_config);
  timeseries_out_.clear();
  timeseries_csv_.clear();
  slo_out_.clear();
  flight_out_.clear();
}

void Telemetry::set_slo_config(std::optional<SloConfig> slo_config) {
  slo_config_ = std::move(slo_config);
  if (slo_config_) enabled_ = true;
}

void Telemetry::attach(sim::Simulation& sim, Registry& registry,
                       Tracer* tracer) {
  if (!enabled_) return;
  finish();  // stop a previous run's instruments before replacing them

  flight_ = std::make_unique<FlightRecorder>(sim);
  if (!flight_out_.empty()) flight_->arm(flight_out_);

  sampler_ = std::make_unique<TimeSeriesSampler>(sim, registry,
                                                 sampler_config_);
  if (slo_config_) {
    slo_ = std::make_unique<SloMonitor>(sim, registry, *slo_config_);
    if (tracer != nullptr) {
      const int lane = tracer->lane("slo_monitor");
      slo_->set_tracer(tracer, lane);
    }
    // First SLO fire freezes the flight recorder: the post-mortem shows the
    // transaction lifecycle window that preceded the alert.
    FlightRecorder* flight = flight_.get();
    slo_->set_alert_hook([flight](const SloAlert& alert) {
      if (alert.firing) flight->trigger("slo:" + alert.rule);
    });
    slo_->start();
  } else {
    slo_.reset();
  }
  sampler_->start();
  finished_ = false;
}

void Telemetry::finish() {
  if (finished_) return;
  finished_ = true;
  if (sampler_) {
    sampler_->sample_now();
    sampler_->stop();
  }
  if (slo_) {
    slo_->evaluate_now();
    slo_->stop();
  }
}

int Telemetry::write() const {
  if (!enabled_) return 0;
  if (sampler_ && !timeseries_out_.empty()) {
    if (!sampler_->write_json(timeseries_out_)) {
      std::fprintf(stderr, "cannot write %s\n", timeseries_out_.c_str());
      return 1;
    }
    std::printf("timeseries: %s (%zu samples, %zu series)\n",
                timeseries_out_.c_str(), sampler_->sample_count(),
                sampler_->series_count());
  }
  if (sampler_ && !timeseries_csv_.empty()) {
    if (!sampler_->write_csv(timeseries_csv_)) {
      std::fprintf(stderr, "cannot write %s\n", timeseries_csv_.c_str());
      return 1;
    }
    std::printf("timeseries (csv): %s\n", timeseries_csv_.c_str());
  }
  if (slo_ && !slo_out_.empty()) {
    if (!slo_->write_json(slo_out_)) {
      std::fprintf(stderr, "cannot write %s\n", slo_out_.c_str());
      return 1;
    }
    std::printf("slo alerts: %s (%llu fires, %llu clears)\n", slo_out_.c_str(),
                static_cast<unsigned long long>(slo_->fires()),
                static_cast<unsigned long long>(slo_->clears()));
  }
  if (flight_ && !flight_out_.empty()) {
    if (flight_->triggered()) {
      // The post-mortem was frozen and written at first trigger; leave it.
      std::printf("flight: %s (triggered: %s)\n", flight_out_.c_str(),
                  flight_->trigger_reason().c_str());
    } else {
      if (!flight_->write_json(flight_out_)) {
        std::fprintf(stderr, "cannot write %s\n", flight_out_.c_str());
        return 1;
      }
      std::printf("flight: %s (no trigger, %zu events buffered)\n",
                  flight_out_.c_str(), flight_->size());
    }
  }
  return 0;
}

}  // namespace bm::obs

#include "obs/slo.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/config.hpp"

namespace bm::obs {

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

std::string_view slo_rule_kind_name(SloRuleKind kind) {
  switch (kind) {
    case SloRuleKind::kRatio: return "ratio";
    case SloRuleKind::kRateAbove: return "rate_above";
    case SloRuleKind::kGaugeAbove: return "gauge_above";
    case SloRuleKind::kGaugeBelow: return "gauge_below";
    case SloRuleKind::kLatencyQuantile: return "latency_quantile";
  }
  return "unknown";
}

// --- config parsing ---------------------------------------------------------
//
// Built on the shared scenario-config facility (common/config.hpp):
// diagnostics name the file (when loaded from disk) and the JSON path of
// the offending key, e.g. `slo.rules[1].burn_rate: expected number > 0`.

namespace {

bool parse_rule(const config::Section& node, SloRule* rule) {
  if (!node.is_object()) return node.fail("expected an object");
  bool ok = true;
  ok &= node.require_string("name", &rule->name);
  if (node.member("kind").present()) {
    ok &= node.read_enum<SloRuleKind>(
        "kind", &rule->kind,
        {{"ratio", SloRuleKind::kRatio},
         {"rate_above", SloRuleKind::kRateAbove},
         {"gauge_above", SloRuleKind::kGaugeAbove},
         {"gauge_below", SloRuleKind::kGaugeBelow},
         {"latency_quantile", SloRuleKind::kLatencyQuantile}});
  } else {
    ok &= node.fail_key("kind", "missing required string");
  }
  ok &= node.require_string("metric", &rule->metric);
  ok &= node.read_string("denominator", &rule->denominator);
  if (rule->kind == SloRuleKind::kRatio && rule->denominator.empty())
    ok &= node.fail_key("denominator", "ratio rules need a denominator counter");

  // "objective" (ratio) and "threshold" are the same slot; accept either.
  const config::Range bound = rule->kind == SloRuleKind::kRatio
                                  ? config::positive()
                                  : config::Range{};
  if (node.member("objective").present())
    ok &= node.read_number("objective", &rule->threshold, bound);
  else if (node.member("threshold").present())
    ok &= node.read_number("threshold", &rule->threshold, bound);
  else
    ok &= node.fail_key("objective",
                        "missing required number (or \"threshold\")");

  ok &= node.read_number("quantile", &rule->quantile, config::open_unit());
  ok &= node.read_number("burn_rate", &rule->burn_rate, config::positive());
  ok &= node.read_u64("min_count", &rule->min_count, config::non_negative());

  const config::Section windows = node.require_array("windows_ms");
  if (!windows.present()) ok = false;
  if (windows.present() && windows.array_size() == 0)
    ok &= windows.fail("expected a non-empty array");
  for (std::size_t i = 0; i < windows.array_size(); ++i) {
    double ms = 0;
    if (!windows.element(i).value_number(&ms, config::positive()))
      return false;
    rule->windows.push_back(
        static_cast<sim::Time>(ms * static_cast<double>(sim::kMillisecond)));
  }
  std::sort(rule->windows.begin(), rule->windows.end());
  return ok;
}

}  // namespace

namespace detail {

SloConfig parse_slo_section(const bm::config::Section& s) {
  SloConfig config;
  s.read_string("name", &config.name);
  s.read_time_ms("evaluation_interval_ms", &config.evaluation_interval,
                 config::positive());
  const config::Section rules = s.require_array("rules");
  for (std::size_t i = 0; i < rules.array_size(); ++i) {
    SloRule rule;
    if (!parse_rule(rules.element(i), &rule)) break;
    config.rules.push_back(std::move(rule));
  }
  return config;
}

}  // namespace detail

namespace {

std::optional<SloConfig> slo_from_root(const config::Root& root,
                                       std::string* error) {
  SloConfig config = detail::parse_slo_section(root.section());
  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  return config;
}

}  // namespace

std::optional<SloConfig> parse_slo_config(std::string_view text,
                                          std::string* error) {
  return slo_from_root(config::Root::parse(text, "slo"), error);
}

std::optional<SloConfig> load_slo_config(const std::string& path,
                                         std::string* error) {
  return slo_from_root(config::Root::load(path, "slo"), error);
}

// --- monitor ----------------------------------------------------------------

SloMonitor::SloMonitor(sim::Simulation& sim, Registry& registry,
                       SloConfig config)
    : sim_(sim), registry_(registry), config_(std::move(config)) {
  fires_total_ =
      &registry_.counter("slo_alerts_fired_total", "SLO rule fire transitions");
  active_gauge_ =
      &registry_.gauge("slo_alerts_active", "SLO rules currently firing");
  for (const SloRule& rule : config_.rules) {
    RuleState state;
    state.rule = rule;
    state.horizon = rule.windows.empty() ? 0 : rule.windows.back();
    state.fired_counter =
        &registry_.counter("slo_alert_" + rule.name + "_fired_total",
                           "fire transitions of SLO rule " + rule.name);
    states_.push_back(std::move(state));
  }
}

void SloMonitor::set_tracer(Tracer* tracer, int lane) {
  tracer_ = tracer;
  lane_ = lane;
}

void SloMonitor::set_alert_hook(std::function<void(const SloAlert&)> hook) {
  hook_ = std::move(hook);
}

void SloMonitor::observe(RuleState& state) {
  const SloRule& rule = state.rule;
  Sample sample;
  sample.at = sim_.now();
  switch (rule.kind) {
    case SloRuleKind::kRatio: {
      const Counter* a = registry_.find_counter(rule.metric);
      const Counter* b = registry_.find_counter(rule.denominator);
      sample.a = a != nullptr ? static_cast<double>(a->value()) : 0;
      sample.b = b != nullptr ? static_cast<double>(b->value()) : 0;
      break;
    }
    case SloRuleKind::kRateAbove: {
      const Counter* a = registry_.find_counter(rule.metric);
      sample.a = a != nullptr ? static_cast<double>(a->value()) : 0;
      break;
    }
    case SloRuleKind::kGaugeAbove:
    case SloRuleKind::kGaugeBelow: {
      const Gauge* g = registry_.find_gauge(rule.metric);
      sample.a = g != nullptr ? g->value() : 0;
      break;
    }
    case SloRuleKind::kLatencyQuantile: {
      const Histogram* h = registry_.find_histogram(rule.metric);
      if (h != nullptr) {
        sample.buckets = h->bucket_counts();
        sample.count = h->count();
      }
      break;
    }
  }
  // Deduplicate same-instant samples (baseline + first tick).
  if (!state.samples.empty() && state.samples.back().at == sample.at)
    state.samples.back() = std::move(sample);
  else
    state.samples.push_back(std::move(sample));
  // Retain one sample at or before the horizon edge so every window delta
  // has a base; everything older is dead weight.
  const sim::Time edge = sim_.now() - state.horizon;
  while (state.samples.size() >= 2 && state.samples[1].at <= edge)
    state.samples.pop_front();
}

std::optional<double> SloMonitor::window_value(const RuleState& state,
                                               sim::Time window) const {
  if (state.samples.size() < 2) return std::nullopt;
  const Sample& now = state.samples.back();
  const sim::Time start = now.at - window;

  // Base = the latest sample at or before the window start. Delta-based
  // rules tolerate a partial window early in the run (the detection-latency
  // clock should not wait for the long window to fill); sustained gauge
  // rules require full coverage.
  std::size_t base = 0;
  bool full = false;
  for (std::size_t i = 0; i + 1 < state.samples.size(); ++i) {
    if (state.samples[i].at <= start) {
      base = i;
      full = true;
    }
  }
  const Sample& from = state.samples[base];
  const SloRule& rule = state.rule;

  switch (rule.kind) {
    case SloRuleKind::kRatio: {
      const double db = now.b - from.b;
      if (db < static_cast<double>(rule.min_count)) return 0.0;
      const double da = now.a - from.a;
      return (da / db) / rule.threshold;  // error-budget burn rate
    }
    case SloRuleKind::kRateAbove: {
      const sim::Time dt = now.at - from.at;
      if (dt <= 0) return std::nullopt;
      return (now.a - from.a) /
             (static_cast<double>(dt) / static_cast<double>(sim::kSecond));
    }
    case SloRuleKind::kGaugeAbove:
    case SloRuleKind::kGaugeBelow: {
      if (!full) return std::nullopt;  // "sustained" needs the whole window
      double extreme = now.a;
      for (std::size_t i = base; i < state.samples.size(); ++i) {
        const Sample& s = state.samples[i];
        if (s.at < start) continue;
        extreme = rule.kind == SloRuleKind::kGaugeAbove
                      ? std::min(extreme, s.a)
                      : std::max(extreme, s.a);
      }
      return extreme;
    }
    case SloRuleKind::kLatencyQuantile: {
      const std::uint64_t dcount =
          now.count >= from.count ? now.count - from.count : 0;
      if (dcount < std::max<std::uint64_t>(1, rule.min_count)) return 0.0;
      const Histogram* h = registry_.find_histogram(rule.metric);
      if (h == nullptr) return 0.0;
      const std::vector<double>& bounds = h->upper_bounds();
      const double target = rule.quantile * static_cast<double>(dcount);
      double cumulative = 0;
      for (std::size_t i = 0; i < now.buckets.size(); ++i) {
        const double in_bucket =
            static_cast<double>(now.buckets[i]) -
            (i < from.buckets.size() ? static_cast<double>(from.buckets[i])
                                     : 0.0);
        if (in_bucket <= 0) continue;
        if (cumulative + in_bucket >= target) {
          if (i >= bounds.size())  // +Inf bucket: clamp to the last bound
            return bounds.empty() ? 0.0 : bounds.back();
          const double lower = i == 0 ? 0.0 : bounds[i - 1];
          return lower +
                 (bounds[i] - lower) * (target - cumulative) / in_bucket;
        }
        cumulative += in_bucket;
      }
      return bounds.empty() ? 0.0 : bounds.back();
    }
  }
  return std::nullopt;
}

bool SloMonitor::condition_met(const RuleState& state, double value) const {
  switch (state.rule.kind) {
    case SloRuleKind::kRatio: return value >= state.rule.burn_rate;
    case SloRuleKind::kRateAbove: return value >= state.rule.threshold;
    case SloRuleKind::kGaugeAbove: return value >= state.rule.threshold;
    case SloRuleKind::kGaugeBelow: return value <= state.rule.threshold;
    case SloRuleKind::kLatencyQuantile: return value >= state.rule.threshold;
  }
  return false;
}

void SloMonitor::transition(RuleState& state, bool firing, double value) {
  if (firing == state.firing) return;
  state.firing = firing;
  SloAlert alert{state.rule.name, sim_.now(), firing, value};
  if (firing) {
    ++fires_;
    fires_total_->inc();
    state.fired_counter->inc();
  } else {
    ++clears_;
  }
  active_gauge_->set(static_cast<double>(active()));
  if (tracer_ != nullptr)
    tracer_->instant(lane_, std::string(firing ? "slo fire: " : "slo clear: ") +
                                state.rule.name,
                     "slo", sim_.now(),
                     {{"value", detail::format_number(value)},
                      {"rule", state.rule.name}});
  alerts_.push_back(alert);
  if (hook_) hook_(alert);
}

void SloMonitor::evaluate_now() {
  for (RuleState& state : states_) {
    observe(state);
    bool met = !state.rule.windows.empty();
    double reported = 0;
    for (std::size_t i = 0; i < state.rule.windows.size(); ++i) {
      const auto value = window_value(state, state.rule.windows[i]);
      if (!value) {
        met = false;
        break;
      }
      if (i == 0) reported = *value;  // shortest window = headline number
      if (!condition_met(state, *value)) met = false;
    }
    transition(state, met, reported);
  }
}

void SloMonitor::tick() {
  evaluate_now();
  pending_ = sim_.schedule(config_.evaluation_interval, [this] { tick(); });
}

void SloMonitor::start() {
  if (running_) return;
  running_ = true;
  // Baseline sample only: no rule can fire before one interval of history.
  for (RuleState& state : states_) observe(state);
  pending_ = sim_.schedule(config_.evaluation_interval, [this] { tick(); });
}

void SloMonitor::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

std::size_t SloMonitor::active() const {
  std::size_t n = 0;
  for (const RuleState& state : states_)
    if (state.firing) ++n;
  return n;
}

std::optional<sim::Time> SloMonitor::first_fire(const std::string& rule) const {
  for (const SloAlert& alert : alerts_)
    if (alert.firing && (rule.empty() || alert.rule == rule)) return alert.at;
  return std::nullopt;
}

std::string SloMonitor::to_json() const {
  using detail::format_number;
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"kind\": \"slo_alerts\",\n"
      << "  \"config\": \"" << config_.name << "\",\n"
      << "  \"evaluation_interval_ns\": " << config_.evaluation_interval
      << ",\n  \"rules\": [";
  for (std::size_t i = 0; i < config_.rules.size(); ++i) {
    const SloRule& rule = config_.rules[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << rule.name
        << "\", \"kind\": \"" << slo_rule_kind_name(rule.kind)
        << "\", \"metric\": \"" << rule.metric << "\", \"windows_ms\": [";
    for (std::size_t w = 0; w < rule.windows.size(); ++w)
      out << (w == 0 ? "" : ", ")
          << format_number(static_cast<double>(rule.windows[w]) /
                           static_cast<double>(sim::kMillisecond));
    out << "]}";
  }
  out << (config_.rules.empty() ? "" : "\n  ") << "],\n"
      << "  \"fires\": " << fires_ << ",\n  \"clears\": " << clears_
      << ",\n  \"events\": [";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const SloAlert& alert = alerts_[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \"" << alert.rule
        << "\", \"event\": \"" << (alert.firing ? "fire" : "clear")
        << "\", \"at_ns\": " << alert.at
        << ", \"value\": " << format_number(alert.value) << "}";
  }
  out << (alerts_.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

bool SloMonitor::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

}  // namespace bm::obs

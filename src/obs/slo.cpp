#include "obs/slo.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace bm::obs {

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::optional<SloRuleKind> kind_from_name(std::string_view name) {
  if (name == "ratio") return SloRuleKind::kRatio;
  if (name == "rate_above") return SloRuleKind::kRateAbove;
  if (name == "gauge_above") return SloRuleKind::kGaugeAbove;
  if (name == "gauge_below") return SloRuleKind::kGaugeBelow;
  if (name == "latency_quantile") return SloRuleKind::kLatencyQuantile;
  return std::nullopt;
}

}  // namespace

std::string_view slo_rule_kind_name(SloRuleKind kind) {
  switch (kind) {
    case SloRuleKind::kRatio: return "ratio";
    case SloRuleKind::kRateAbove: return "rate_above";
    case SloRuleKind::kGaugeAbove: return "gauge_above";
    case SloRuleKind::kGaugeBelow: return "gauge_below";
    case SloRuleKind::kLatencyQuantile: return "latency_quantile";
  }
  return "unknown";
}

// --- config parsing ---------------------------------------------------------

namespace {

using json::Value;

bool rule_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "slo config: " + message;
  return false;
}

bool parse_rule(const Value& node, SloRule* rule, std::string* error) {
  if (!node.is_object()) return rule_error(error, "each rule must be an object");
  const Value* name = node.find("name");
  if (name == nullptr || !name->is_string() || name->string.empty())
    return rule_error(error, "rule needs a non-empty \"name\"");
  rule->name = name->string;

  const Value* kind = node.find("kind");
  if (kind == nullptr || !kind->is_string())
    return rule_error(error, "rule \"" + rule->name + "\" needs a \"kind\"");
  const auto parsed_kind = kind_from_name(kind->string);
  if (!parsed_kind)
    return rule_error(error, "rule \"" + rule->name + "\": unknown kind \"" +
                                 kind->string +
                                 "\" (ratio | rate_above | gauge_above | "
                                 "gauge_below | latency_quantile)");
  rule->kind = *parsed_kind;

  const Value* metric = node.find("metric");
  if (metric == nullptr || !metric->is_string() || metric->string.empty())
    return rule_error(error, "rule \"" + rule->name + "\" needs a \"metric\"");
  rule->metric = metric->string;

  if (const Value* den = node.find("denominator");
      den != nullptr && den->is_string())
    rule->denominator = den->string;
  if (rule->kind == SloRuleKind::kRatio && rule->denominator.empty())
    return rule_error(error, "ratio rule \"" + rule->name +
                                 "\" needs a \"denominator\" counter");

  // "objective" (ratio) and "threshold" are the same slot; accept either.
  const Value* threshold = node.find("objective");
  if (threshold == nullptr) threshold = node.find("threshold");
  if (threshold == nullptr || !threshold->is_number())
    return rule_error(error, "rule \"" + rule->name +
                                 "\" needs an \"objective\" or \"threshold\"");
  rule->threshold = threshold->number;
  if (rule->kind == SloRuleKind::kRatio && rule->threshold <= 0)
    return rule_error(error, "ratio rule \"" + rule->name +
                                 "\": objective must be > 0");

  if (const Value* q = node.find("quantile")) {
    if (!q->is_number() || q->number <= 0 || q->number >= 1)
      return rule_error(error, "rule \"" + rule->name +
                                   "\": quantile must be in (0,1)");
    rule->quantile = q->number;
  }
  if (const Value* burn = node.find("burn_rate")) {
    if (!burn->is_number() || burn->number <= 0)
      return rule_error(error, "rule \"" + rule->name +
                                   "\": burn_rate must be > 0");
    rule->burn_rate = burn->number;
  }
  if (const Value* m = node.find("min_count")) {
    if (!m->is_number() || m->number < 0)
      return rule_error(error,
                        "rule \"" + rule->name + "\": bad min_count");
    rule->min_count = static_cast<std::uint64_t>(m->number);
  }

  const Value* windows = node.find("windows_ms");
  if (windows == nullptr || !windows->is_array() || windows->array.empty())
    return rule_error(error, "rule \"" + rule->name +
                                 "\" needs a non-empty \"windows_ms\" array");
  for (const Value& w : windows->array) {
    if (!w.is_number() || w.number <= 0)
      return rule_error(error, "rule \"" + rule->name +
                                   "\": windows_ms entries must be > 0");
    rule->windows.push_back(static_cast<sim::Time>(
        w.number * static_cast<double>(sim::kMillisecond)));
  }
  std::sort(rule->windows.begin(), rule->windows.end());
  return true;
}

}  // namespace

std::optional<SloConfig> parse_slo_config(std::string_view text,
                                          std::string* error) {
  std::string parse_error;
  const auto root = json::parse(text, &parse_error);
  if (!root) {
    rule_error(error, parse_error);
    return std::nullopt;
  }
  if (!root->is_object()) {
    rule_error(error, "root must be an object");
    return std::nullopt;
  }

  SloConfig config;
  if (const Value* name = root->find("name");
      name != nullptr && name->is_string())
    config.name = name->string;
  if (const Value* interval = root->find("evaluation_interval_ms")) {
    if (!interval->is_number() || interval->number <= 0) {
      rule_error(error, "evaluation_interval_ms must be > 0");
      return std::nullopt;
    }
    config.evaluation_interval = static_cast<sim::Time>(
        interval->number * static_cast<double>(sim::kMillisecond));
  }
  const Value* rules = root->find("rules");
  if (rules == nullptr || !rules->is_array()) {
    rule_error(error, "needs a \"rules\" array");
    return std::nullopt;
  }
  for (const Value& node : rules->array) {
    SloRule rule;
    if (!parse_rule(node, &rule, error)) return std::nullopt;
    config.rules.push_back(std::move(rule));
  }
  return config;
}

std::optional<SloConfig> load_slo_config(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    rule_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_slo_config(text.str(), error);
}

// --- monitor ----------------------------------------------------------------

SloMonitor::SloMonitor(sim::Simulation& sim, Registry& registry,
                       SloConfig config)
    : sim_(sim), registry_(registry), config_(std::move(config)) {
  fires_total_ =
      &registry_.counter("slo_alerts_fired_total", "SLO rule fire transitions");
  active_gauge_ =
      &registry_.gauge("slo_alerts_active", "SLO rules currently firing");
  for (const SloRule& rule : config_.rules) {
    RuleState state;
    state.rule = rule;
    state.horizon = rule.windows.empty() ? 0 : rule.windows.back();
    state.fired_counter =
        &registry_.counter("slo_alert_" + rule.name + "_fired_total",
                           "fire transitions of SLO rule " + rule.name);
    states_.push_back(std::move(state));
  }
}

void SloMonitor::set_tracer(Tracer* tracer, int lane) {
  tracer_ = tracer;
  lane_ = lane;
}

void SloMonitor::set_alert_hook(std::function<void(const SloAlert&)> hook) {
  hook_ = std::move(hook);
}

void SloMonitor::observe(RuleState& state) {
  const SloRule& rule = state.rule;
  Sample sample;
  sample.at = sim_.now();
  switch (rule.kind) {
    case SloRuleKind::kRatio: {
      const Counter* a = registry_.find_counter(rule.metric);
      const Counter* b = registry_.find_counter(rule.denominator);
      sample.a = a != nullptr ? static_cast<double>(a->value()) : 0;
      sample.b = b != nullptr ? static_cast<double>(b->value()) : 0;
      break;
    }
    case SloRuleKind::kRateAbove: {
      const Counter* a = registry_.find_counter(rule.metric);
      sample.a = a != nullptr ? static_cast<double>(a->value()) : 0;
      break;
    }
    case SloRuleKind::kGaugeAbove:
    case SloRuleKind::kGaugeBelow: {
      const Gauge* g = registry_.find_gauge(rule.metric);
      sample.a = g != nullptr ? g->value() : 0;
      break;
    }
    case SloRuleKind::kLatencyQuantile: {
      const Histogram* h = registry_.find_histogram(rule.metric);
      if (h != nullptr) {
        sample.buckets = h->bucket_counts();
        sample.count = h->count();
      }
      break;
    }
  }
  // Deduplicate same-instant samples (baseline + first tick).
  if (!state.samples.empty() && state.samples.back().at == sample.at)
    state.samples.back() = std::move(sample);
  else
    state.samples.push_back(std::move(sample));
  // Retain one sample at or before the horizon edge so every window delta
  // has a base; everything older is dead weight.
  const sim::Time edge = sim_.now() - state.horizon;
  while (state.samples.size() >= 2 && state.samples[1].at <= edge)
    state.samples.pop_front();
}

std::optional<double> SloMonitor::window_value(const RuleState& state,
                                               sim::Time window) const {
  if (state.samples.size() < 2) return std::nullopt;
  const Sample& now = state.samples.back();
  const sim::Time start = now.at - window;

  // Base = the latest sample at or before the window start. Delta-based
  // rules tolerate a partial window early in the run (the detection-latency
  // clock should not wait for the long window to fill); sustained gauge
  // rules require full coverage.
  std::size_t base = 0;
  bool full = false;
  for (std::size_t i = 0; i + 1 < state.samples.size(); ++i) {
    if (state.samples[i].at <= start) {
      base = i;
      full = true;
    }
  }
  const Sample& from = state.samples[base];
  const SloRule& rule = state.rule;

  switch (rule.kind) {
    case SloRuleKind::kRatio: {
      const double db = now.b - from.b;
      if (db < static_cast<double>(rule.min_count)) return 0.0;
      const double da = now.a - from.a;
      return (da / db) / rule.threshold;  // error-budget burn rate
    }
    case SloRuleKind::kRateAbove: {
      const sim::Time dt = now.at - from.at;
      if (dt <= 0) return std::nullopt;
      return (now.a - from.a) /
             (static_cast<double>(dt) / static_cast<double>(sim::kSecond));
    }
    case SloRuleKind::kGaugeAbove:
    case SloRuleKind::kGaugeBelow: {
      if (!full) return std::nullopt;  // "sustained" needs the whole window
      double extreme = now.a;
      for (std::size_t i = base; i < state.samples.size(); ++i) {
        const Sample& s = state.samples[i];
        if (s.at < start) continue;
        extreme = rule.kind == SloRuleKind::kGaugeAbove
                      ? std::min(extreme, s.a)
                      : std::max(extreme, s.a);
      }
      return extreme;
    }
    case SloRuleKind::kLatencyQuantile: {
      const std::uint64_t dcount =
          now.count >= from.count ? now.count - from.count : 0;
      if (dcount < std::max<std::uint64_t>(1, rule.min_count)) return 0.0;
      const Histogram* h = registry_.find_histogram(rule.metric);
      if (h == nullptr) return 0.0;
      const std::vector<double>& bounds = h->upper_bounds();
      const double target = rule.quantile * static_cast<double>(dcount);
      double cumulative = 0;
      for (std::size_t i = 0; i < now.buckets.size(); ++i) {
        const double in_bucket =
            static_cast<double>(now.buckets[i]) -
            (i < from.buckets.size() ? static_cast<double>(from.buckets[i])
                                     : 0.0);
        if (in_bucket <= 0) continue;
        if (cumulative + in_bucket >= target) {
          if (i >= bounds.size())  // +Inf bucket: clamp to the last bound
            return bounds.empty() ? 0.0 : bounds.back();
          const double lower = i == 0 ? 0.0 : bounds[i - 1];
          return lower +
                 (bounds[i] - lower) * (target - cumulative) / in_bucket;
        }
        cumulative += in_bucket;
      }
      return bounds.empty() ? 0.0 : bounds.back();
    }
  }
  return std::nullopt;
}

bool SloMonitor::condition_met(const RuleState& state, double value) const {
  switch (state.rule.kind) {
    case SloRuleKind::kRatio: return value >= state.rule.burn_rate;
    case SloRuleKind::kRateAbove: return value >= state.rule.threshold;
    case SloRuleKind::kGaugeAbove: return value >= state.rule.threshold;
    case SloRuleKind::kGaugeBelow: return value <= state.rule.threshold;
    case SloRuleKind::kLatencyQuantile: return value >= state.rule.threshold;
  }
  return false;
}

void SloMonitor::transition(RuleState& state, bool firing, double value) {
  if (firing == state.firing) return;
  state.firing = firing;
  SloAlert alert{state.rule.name, sim_.now(), firing, value};
  if (firing) {
    ++fires_;
    fires_total_->inc();
    state.fired_counter->inc();
  } else {
    ++clears_;
  }
  active_gauge_->set(static_cast<double>(active()));
  if (tracer_ != nullptr)
    tracer_->instant(lane_, std::string(firing ? "slo fire: " : "slo clear: ") +
                                state.rule.name,
                     "slo", sim_.now(),
                     {{"value", detail::format_number(value)},
                      {"rule", state.rule.name}});
  alerts_.push_back(alert);
  if (hook_) hook_(alert);
}

void SloMonitor::evaluate_now() {
  for (RuleState& state : states_) {
    observe(state);
    bool met = !state.rule.windows.empty();
    double reported = 0;
    for (std::size_t i = 0; i < state.rule.windows.size(); ++i) {
      const auto value = window_value(state, state.rule.windows[i]);
      if (!value) {
        met = false;
        break;
      }
      if (i == 0) reported = *value;  // shortest window = headline number
      if (!condition_met(state, *value)) met = false;
    }
    transition(state, met, reported);
  }
}

void SloMonitor::tick() {
  evaluate_now();
  pending_ = sim_.schedule(config_.evaluation_interval, [this] { tick(); });
}

void SloMonitor::start() {
  if (running_) return;
  running_ = true;
  // Baseline sample only: no rule can fire before one interval of history.
  for (RuleState& state : states_) observe(state);
  pending_ = sim_.schedule(config_.evaluation_interval, [this] { tick(); });
}

void SloMonitor::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

std::size_t SloMonitor::active() const {
  std::size_t n = 0;
  for (const RuleState& state : states_)
    if (state.firing) ++n;
  return n;
}

std::optional<sim::Time> SloMonitor::first_fire(const std::string& rule) const {
  for (const SloAlert& alert : alerts_)
    if (alert.firing && (rule.empty() || alert.rule == rule)) return alert.at;
  return std::nullopt;
}

std::string SloMonitor::to_json() const {
  using detail::format_number;
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"kind\": \"slo_alerts\",\n"
      << "  \"config\": \"" << config_.name << "\",\n"
      << "  \"evaluation_interval_ns\": " << config_.evaluation_interval
      << ",\n  \"rules\": [";
  for (std::size_t i = 0; i < config_.rules.size(); ++i) {
    const SloRule& rule = config_.rules[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << rule.name
        << "\", \"kind\": \"" << slo_rule_kind_name(rule.kind)
        << "\", \"metric\": \"" << rule.metric << "\", \"windows_ms\": [";
    for (std::size_t w = 0; w < rule.windows.size(); ++w)
      out << (w == 0 ? "" : ", ")
          << format_number(static_cast<double>(rule.windows[w]) /
                           static_cast<double>(sim::kMillisecond));
    out << "]}";
  }
  out << (config_.rules.empty() ? "" : "\n  ") << "],\n"
      << "  \"fires\": " << fires_ << ",\n  \"clears\": " << clears_
      << ",\n  \"events\": [";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const SloAlert& alert = alerts_[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \"" << alert.rule
        << "\", \"event\": \"" << (alert.firing ? "fire" : "clear")
        << "\", \"at_ns\": " << alert.at
        << ", \"value\": " << format_number(alert.value) << "}";
  }
  out << (alerts_.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

bool SloMonitor::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

}  // namespace bm::obs

// Declarative SLO rule engine with multi-window burn-rate alerting,
// evaluated continuously on simulated time.
//
// Rules are JSON-configured (configs/slo_default.json) expressions over
// metrics in a Registry, evaluated every `evaluation_interval` of sim time
// against rolling windows of prior samples:
//
//   ratio             bad/total counter-delta ratio, alarmed as an
//                     error-budget burn rate: burn = (Δbad/Δtotal)/objective.
//                     Fires when burn >= burn_rate on EVERY configured
//                     window — the classic fast+slow multi-window alert
//                     (short window catches the spike, long window keeps
//                     one noisy tick from paging).
//   rate_above        counter delta per second >= threshold on every window.
//   gauge_above/below gauge beyond threshold for an entire window
//                     (sustained, not instantaneous).
//   latency_quantile  windowed histogram-bucket deltas, interpolated
//                     quantile >= threshold on every window.
//
// Every firing (and clearing) is recorded at its sim timestamp, published
// into the Registry (slo_alerts_fired_total, slo_alert_<rule>_fired_total,
// slo_alerts_active) and emitted as a Chrome-trace instant event, so alerts
// line up against the pipeline spans in Perfetto. An alert hook lets the
// flight recorder dump a post-mortem at first fire. Everything is driven by
// simulated time: same seed, same alert log, byte for byte.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace bm::config {
class Section;
}

namespace bm::obs {

enum class SloRuleKind : std::uint8_t {
  kRatio,
  kRateAbove,
  kGaugeAbove,
  kGaugeBelow,
  kLatencyQuantile,
};

/// Stable name used in config files and artifacts.
std::string_view slo_rule_kind_name(SloRuleKind kind);

struct SloRule {
  std::string name;
  SloRuleKind kind = SloRuleKind::kRatio;
  std::string metric;       ///< counter / gauge / histogram, per kind
  std::string denominator;  ///< ratio only: the "total" counter
  /// ratio: allowed bad fraction (the SLO objective, e.g. 0.05);
  /// rate_above / gauge_*: the threshold;
  /// latency_quantile: the latency bound, in the histogram's unit.
  double threshold = 0;
  double quantile = 0.99;     ///< latency_quantile only
  double burn_rate = 1.0;     ///< ratio only: fire at this budget burn
  std::uint64_t min_count = 1;  ///< ratio/latency: ignore near-empty windows
  /// Rolling windows (sim time). Multi-window semantics: the rule fires
  /// only when the condition holds on every window simultaneously.
  std::vector<sim::Time> windows;
};

struct SloConfig {
  std::string name = "slo";
  sim::Time evaluation_interval = 10 * sim::kMillisecond;
  std::vector<SloRule> rules;
};

/// Parse an SLO config from JSON text / load one from disk. Unknown keys
/// are ignored; malformed rules fail loudly with an error message.
std::optional<SloConfig> parse_slo_config(std::string_view text,
                                          std::string* error = nullptr);
std::optional<SloConfig> load_slo_config(const std::string& path,
                                         std::string* error = nullptr);

namespace detail {
/// Section-level parser shared with the composed --scenario loader: same
/// schema whether the rules sit in their own slo_*.json file or under a
/// scenario file's "slo" section. Errors land in the section's sink; the
/// caller checks its config::Root.
SloConfig parse_slo_section(const bm::config::Section& root);
}  // namespace detail

/// One state transition of one rule. `value` is the measured quantity on
/// the shortest window at the transition (burn rate for ratio rules).
struct SloAlert {
  std::string rule;
  sim::Time at = 0;
  bool firing = false;  ///< true = fired, false = cleared
  double value = 0;
};

class SloMonitor {
 public:
  /// The monitor reads metric values from `registry` and also publishes its
  /// own alert counters back into it.
  SloMonitor(sim::Simulation& sim, Registry& registry, SloConfig config);

  /// Emit alert instants on this tracer lane (optional).
  void set_tracer(Tracer* tracer, int lane);
  /// Called on every transition, fire and clear (flight-recorder trigger).
  void set_alert_hook(std::function<void(const SloAlert&)> hook);

  /// Take a baseline sample and evaluate every `evaluation_interval` until
  /// stop(). Call before running the simulation.
  void start();
  void stop();
  /// One evaluation pass at the current sim time (also used by tests).
  void evaluate_now();

  const SloConfig& config() const { return config_; }
  const std::vector<SloAlert>& alerts() const { return alerts_; }
  std::uint64_t fires() const { return fires_; }
  std::uint64_t clears() const { return clears_; }
  std::size_t active() const;

  /// Sim time of the first fire of `rule` (any rule when empty); nullopt
  /// when it never fired — the detection-latency probe of fig_slo_detect.
  std::optional<sim::Time> first_fire(const std::string& rule = "") const;

  /// Alert-log JSON artifact (schema_version, rules, transitions).
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  struct Sample {
    sim::Time at = 0;
    double a = 0;                       ///< metric value (num / gauge / rate)
    double b = 0;                       ///< denominator value (ratio)
    std::vector<std::uint64_t> buckets; ///< cumulative (latency_quantile)
    std::uint64_t count = 0;            ///< histogram count (latency_quantile)
  };
  struct RuleState {
    SloRule rule;
    sim::Time horizon = 0;  ///< longest window; ring retention
    std::deque<Sample> samples;
    bool firing = false;
    Counter* fired_counter = nullptr;
  };

  void tick();
  void observe(RuleState& state);
  /// Condition value on one window ending now; nullopt = not enough data.
  std::optional<double> window_value(const RuleState& state,
                                     sim::Time window) const;
  bool condition_met(const RuleState& state, double value) const;
  void transition(RuleState& state, bool firing, double value);

  sim::Simulation& sim_;
  Registry& registry_;
  SloConfig config_;
  std::vector<RuleState> states_;
  std::vector<SloAlert> alerts_;
  std::uint64_t fires_ = 0, clears_ = 0;
  Counter* fires_total_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Tracer* tracer_ = nullptr;
  int lane_ = 0;
  std::function<void(const SloAlert&)> hook_;
  sim::EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace bm::obs

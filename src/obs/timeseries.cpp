#include "obs/timeseries.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace bm::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(sim::Simulation& sim,
                                     const Registry& registry,
                                     TimeSeriesConfig config)
    : sim_(sim), registry_(registry), config_(config) {
  if (config_.interval <= 0) config_.interval = 10 * sim::kMillisecond;
}

bool TimeSeriesSampler::included(const std::string& name) const {
  if (config_.include_prefixes.empty()) return true;
  for (const std::string& prefix : config_.include_prefixes)
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  return false;
}

void TimeSeriesSampler::record(const std::string& name, Kind kind,
                               double value) {
  Series& series = series_[name];
  if (series.values.empty()) series.kind = kind;
  // Backfill a series that first appeared mid-run: it was implicitly zero
  // (counters start at 0, gauges default to 0) for every earlier sample.
  while (series.values.size() + 1 < at_.size()) series.values.push_back(0);
  series.values.push_back(value);
}

void TimeSeriesSampler::sample_now() {
  if (!at_.empty() && at_.back() == sim_.now()) return;
  at_.push_back(sim_.now());
  registry_.for_each(
      [this](const std::string& name, const Counter& counter) {
        if (included(name))
          record(name, Kind::kCounter,
                 static_cast<double>(counter.value()));
      },
      [this](const std::string& name, const Gauge& gauge) {
        if (included(name)) record(name, Kind::kGauge, gauge.value());
      },
      [this](const std::string& name, const Histogram& histogram) {
        if (!config_.sample_histograms || !included(name)) return;
        record(name + "_count", Kind::kCounter,
               static_cast<double>(histogram.count()));
        record(name + "_sum", Kind::kCounter, histogram.sum());
      });
}

void TimeSeriesSampler::tick() {
  sample_now();
  pending_ = sim_.schedule(config_.interval, [this] { tick(); });
}

void TimeSeriesSampler::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void TimeSeriesSampler::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

std::vector<double> TimeSeriesSampler::values(const std::string& name) const {
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  std::vector<double> out = it->second.values;
  out.resize(at_.size(), 0);  // series may trail if registry shrank (never)
  return out;
}

std::vector<double> TimeSeriesSampler::rates(const std::string& name) const {
  const std::vector<double> v = values(name);
  std::vector<double> out(v.size(), 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const sim::Time prev_at = i == 0 ? 0 : at_[i - 1];
    const double prev_v = i == 0 ? 0 : v[i - 1];
    const sim::Time dt = at_[i] - prev_at;
    if (dt > 0)
      out[i] = (v[i] - prev_v) /
               (static_cast<double>(dt) / static_cast<double>(sim::kSecond));
  }
  return out;
}

std::string TimeSeriesSampler::to_json() const {
  using detail::format_number;
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"kind\": \"timeseries\",\n"
      << "  \"interval_ns\": " << config_.interval << ",\n"
      << "  \"samples\": " << at_.size() << ",\n  \"at_ns\": [";
  for (std::size_t i = 0; i < at_.size(); ++i)
    out << (i == 0 ? "" : ", ") << at_[i];
  out << "],\n  \"series\": {";
  bool first = true;
  for (const auto& [name, series] : series_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"type\": \""
        << (series.kind == Kind::kCounter ? "counter" : "gauge")
        << "\", \"values\": [";
    const std::vector<double> v = values(name);
    for (std::size_t i = 0; i < v.size(); ++i)
      out << (i == 0 ? "" : ", ") << format_number(v[i]);
    out << "]";
    if (series.kind == Kind::kCounter) {
      out << ", \"rate_per_s\": [";
      const std::vector<double> r = rates(name);
      for (std::size_t i = 0; i < r.size(); ++i)
        out << (i == 0 ? "" : ", ") << format_number(r[i]);
      out << "]";
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string TimeSeriesSampler::to_csv() const {
  using detail::format_number;
  std::ostringstream out;
  out << "at_ns";
  for (const auto& [name, series] : series_) out << "," << name;
  out << "\n";
  // Column-major storage, row-major emission; pull each column once.
  std::vector<std::vector<double>> columns;
  columns.reserve(series_.size());
  for (const auto& [name, series] : series_) columns.push_back(values(name));
  for (std::size_t row = 0; row < at_.size(); ++row) {
    out << at_[row];
    for (const auto& column : columns)
      out << "," << format_number(column[row]);
    out << "\n";
  }
  return out.str();
}

bool TimeSeriesSampler::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

bool TimeSeriesSampler::write_csv(const std::string& path) const {
  return write_file(path, to_csv());
}

}  // namespace bm::obs

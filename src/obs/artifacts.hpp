// Shared "write the requested observability artifacts" step for the tool
// and bench binaries: one implementation of the trace/metrics output logic
// that used to be duplicated per executable, keyed off the uniform
// cli::CommonFlags flag names.
#pragma once

#include "common/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bm::obs {

/// Write whichever artifacts `flags` requested (trace JSON, metrics JSON,
/// metrics text), printing one confirmation line per file. `at` is the
/// simulated time the metrics snapshot is taken at. Returns 0 on success
/// (including when nothing was requested), 1 on any write failure.
int write_artifacts(const cli::CommonFlags& flags, const Registry& registry,
                    const Tracer& tracer, sim::Time at);

}  // namespace bm::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bm::obs {

namespace detail {

std::string format_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  const double rounded = std::nearbyint(v);
  if (rounded == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric names cannot contain '-' or '{' from our free-form
/// names; normalize the offenders and leave the rest alone.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace detail

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - upper_bounds_.begin())] += 1;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0;
  const double n = static_cast<double>(count_);
  const double var = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
  return std::sqrt(var);
}

std::vector<double> Histogram::latency_ms_buckets() {
  return {0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 50, 100, 250, 500, 1000};
}

std::vector<double> Histogram::latency_us_buckets() {
  return {25, 50, 100, 150, 200, 300, 500, 750, 1000, 2000, 5000, 10000};
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  auto& entry = counters_[name];
  if (!entry.metric) {
    entry.metric = std::make_unique<Counter>();
    entry.help = help;
  }
  return *entry.metric;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  auto& entry = gauges_[name];
  if (!entry.metric) {
    entry.metric = std::make_unique<Gauge>();
    entry.help = help;
  }
  return *entry.metric;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds,
                               const std::string& help) {
  auto& entry = histograms_[name];
  if (!entry.metric) {
    entry.metric = std::make_unique<Histogram>(std::move(upper_bounds));
    entry.help = help;
    return *entry.metric;
  }
  // register-or-get is only sound when both sites mean the same histogram;
  // different bounds silently reusing the first entry hid real bugs.
  std::sort(upper_bounds.begin(), upper_bounds.end());
  if (upper_bounds != entry.metric->upper_bounds())
    throw std::invalid_argument(
        "obs::Registry: histogram '" + name +
        "' re-registered with different bucket bounds");
  return *entry.metric;
}

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.metric.get() : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.metric.get() : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.metric.get() : nullptr;
}

void Registry::for_each(
    const std::function<void(const std::string&, const Counter&)>& counter_fn,
    const std::function<void(const std::string&, const Gauge&)>& gauge_fn,
    const std::function<void(const std::string&, const Histogram&)>&
        histogram_fn) const {
  if (counter_fn)
    for (const auto& [name, entry] : counters_) counter_fn(name, *entry.metric);
  if (gauge_fn)
    for (const auto& [name, entry] : gauges_) gauge_fn(name, *entry.metric);
  if (histogram_fn)
    for (const auto& [name, entry] : histograms_)
      histogram_fn(name, *entry.metric);
}

std::string Registry::render_text(sim::Time at) const {
  using detail::format_number;
  std::ostringstream out;
  out << "# snapshot at " << at << " ns simulated time\n";
  for (const auto& [name, entry] : counters_) {
    const std::string n = detail::prom_name(name);
    if (!entry.help.empty()) out << "# HELP " << n << " " << entry.help << "\n";
    out << "# TYPE " << n << " counter\n";
    out << n << " " << entry.metric->value() << "\n";
  }
  for (const auto& [name, entry] : gauges_) {
    const std::string n = detail::prom_name(name);
    if (!entry.help.empty()) out << "# HELP " << n << " " << entry.help << "\n";
    out << "# TYPE " << n << " gauge\n";
    out << n << " " << format_number(entry.metric->value()) << "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    const std::string n = detail::prom_name(name);
    const Histogram& h = *entry.metric;
    if (!entry.help.empty()) out << "# HELP " << n << " " << entry.help << "\n";
    out << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cumulative += h.bucket_counts()[i];
      out << n << "_bucket{le=\"" << format_number(h.upper_bounds()[i])
          << "\"} " << cumulative << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    out << n << "_sum " << format_number(h.sum()) << "\n";
    out << n << "_count " << h.count() << "\n";
  }
  return out.str();
}

std::string Registry::render_json(sim::Time at) const {
  using detail::format_number;
  using detail::json_escape;
  std::ostringstream out;
  out << "{\n  \"at_ns\": " << at << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << entry.metric->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << format_number(entry.metric->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.metric;
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
        << "\"count\": " << h.count() << ", \"sum\": "
        << format_number(h.sum()) << ", \"min\": " << format_number(h.min())
        << ", \"max\": " << format_number(h.max())
        << ", \"mean\": " << format_number(h.mean())
        << ", \"stddev\": " << format_number(h.stddev())
        << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": " << format_number(h.upper_bounds()[i])
          << ", \"count\": " << h.bucket_counts()[i] << "}";
    }
    if (!h.upper_bounds().empty()) out << ", ";
    out << "{\"le\": \"+Inf\", \"count\": "
        << h.bucket_counts().back() << "}]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool Registry::write_text(const std::string& path, sim::Time at) const {
  return detail::write_file(path, render_text(at));
}

bool Registry::write_json(const std::string& path, sim::Time at) const {
  return detail::write_file(path, render_json(at));
}

}  // namespace bm::obs

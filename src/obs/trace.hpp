// Simulated-time tracer: span records keyed to sim::Time, exported as
// Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).
//
// Every pipeline stage of the BMac model gets a lane (a Chrome "thread");
// spans are complete events ('X') with microsecond timestamps derived from
// the simulated clock, so a whole bmac_sim run opens as a flame graph of
// protocol_processor -> FIFOs -> ecdsa_engines -> block_monitor -> host
// commit. Counter events ('C') carry FIFO depth tracks.
//
// Determinism: timestamps are simulated nanoseconds (never wall clock) and
// events serialize in emission order, so two runs with the same seed
// produce byte-identical trace files. Instrumented code holds a
// Tracer* that is null by default (the "null sink"): tracing disabled costs
// one branch per probe site and schedules no simulation events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace bm::obs {

/// One key/value pair attached to a span ("args" in the trace format).
struct TraceArg {
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), quoted(true) {}
  TraceArg(std::string k, const char* v)
      : key(std::move(k)), value(v), quoted(true) {}
  TraceArg(std::string k, std::int64_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  TraceArg(std::string k, std::uint64_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  TraceArg(std::string k, std::uint32_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  TraceArg(std::string k, int v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  TraceArg(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}

  std::string key;
  std::string value;
  bool quoted;  ///< emit as JSON string vs raw literal
};

struct SpanRecord {
  std::string name;
  std::string category;
  sim::Time start = 0;  ///< ns of simulated time
  sim::Time end = 0;    ///< ns; == start for instants and counters
  int process = 0;      ///< pid in the trace
  int lane = 0;         ///< tid in the trace
  char phase = 'X';     ///< 'X' complete, 'i' instant, 'C' counter
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Register a process group (one simulated component, e.g. one peer or
  /// one bench run) and make it current; lanes created afterwards belong to
  /// it. Returns the pid.
  int begin_process(const std::string& name);

  /// Register a lane (Chrome thread) in the current process. Lanes are
  /// ordered top-to-bottom by creation. Returns the tid.
  int lane(const std::string& name);

  /// Record a complete span [start, end] on `lane`.
  void complete(int lane, std::string name, std::string category,
                sim::Time start, sim::Time end,
                std::vector<TraceArg> args = {});

  /// Record an instantaneous event.
  void instant(int lane, std::string name, std::string category, sim::Time at,
               std::vector<TraceArg> args = {});

  /// Record a counter sample (rendered as a value track, e.g. FIFO depth).
  /// The track lives in the process that owns `lane`.
  void counter(int lane, std::string track, std::string category, sim::Time at,
               std::int64_t value);

  std::size_t event_count() const { return events_.size(); }
  const std::vector<SpanRecord>& events() const { return events_; }

  /// Names of the distinct span categories recorded so far, sorted.
  std::vector<std::string> categories() const;

  /// The full trace as Chrome trace-event JSON ("traceEvents" object form).
  std::string to_chrome_json() const;

  bool write_chrome_json(const std::string& path) const;

 private:
  struct LaneInfo {
    std::string name;
    int process = 0;
    int tid = 0;
  };
  struct ProcessInfo {
    std::string name;
    int pid = 0;
  };

  std::vector<ProcessInfo> processes_;
  std::vector<LaneInfo> lanes_;
  std::vector<SpanRecord> events_;
  int current_process_ = 0;
  int next_tid_ = 1;
};

}  // namespace bm::obs

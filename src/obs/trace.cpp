#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace bm::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome trace timestamps are microseconds; emit simulated nanoseconds as
/// fixed-point "<us>.<frac>" so sub-microsecond stage times survive without
/// floating-point formatting ambiguity.
std::string ts_us(sim::Time ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

void append_args(std::ostringstream& out, const std::vector<TraceArg>& args) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(args[i].key) << "\":";
    if (args[i].quoted)
      out << "\"" << json_escape(args[i].value) << "\"";
    else
      out << args[i].value;
  }
  out << "}";
}

}  // namespace

int Tracer::begin_process(const std::string& name) {
  ProcessInfo info;
  info.name = name;
  info.pid = static_cast<int>(processes_.size()) + 1;
  processes_.push_back(info);
  current_process_ = info.pid;
  return info.pid;
}

int Tracer::lane(const std::string& name) {
  if (processes_.empty()) begin_process("sim");
  LaneInfo info;
  info.name = name;
  info.process = current_process_;
  info.tid = next_tid_++;
  lanes_.push_back(info);
  return info.tid;
}

void Tracer::complete(int lane, std::string name, std::string category,
                      sim::Time start, sim::Time end,
                      std::vector<TraceArg> args) {
  SpanRecord span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start = start;
  span.end = end;
  span.lane = lane;
  span.process = lane >= 1 && lane <= static_cast<int>(lanes_.size())
                     ? lanes_[static_cast<std::size_t>(lane - 1)].process
                     : current_process_;
  span.phase = 'X';
  span.args = std::move(args);
  events_.push_back(std::move(span));
}

void Tracer::instant(int lane, std::string name, std::string category,
                     sim::Time at, std::vector<TraceArg> args) {
  complete(lane, std::move(name), std::move(category), at, at,
           std::move(args));
  events_.back().phase = 'i';
}

void Tracer::counter(int lane, std::string track, std::string category,
                     sim::Time at, std::int64_t value) {
  SpanRecord span;
  span.name = std::move(track);
  span.category = std::move(category);
  span.start = span.end = at;
  span.lane = lane;
  span.process = lane >= 1 && lane <= static_cast<int>(lanes_.size())
                     ? lanes_[static_cast<std::size_t>(lane - 1)].process
                     : current_process_;
  span.phase = 'C';
  span.args.emplace_back("value", static_cast<std::int64_t>(value));
  events_.push_back(std::move(span));
}

std::vector<std::string> Tracer::categories() const {
  std::set<std::string> cats;
  for (const auto& e : events_)
    if (!e.category.empty()) cats.insert(e.category);
  return {cats.begin(), cats.end()};
}

std::string Tracer::to_chrome_json() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    out << (first ? "" : ",\n");
    first = false;
    return out;
  };
  // Metadata: process and thread names + stable lane ordering.
  for (const auto& p : processes_) {
    sep() << "{\"ph\":\"M\",\"pid\":" << p.pid
          << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
          << json_escape(p.name) << "\"}}";
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const LaneInfo& lane = lanes_[i];
    sep() << "{\"ph\":\"M\",\"pid\":" << lane.process
          << ",\"tid\":" << lane.tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << json_escape(lane.name) << "\"}}";
    sep() << "{\"ph\":\"M\",\"pid\":" << lane.process
          << ",\"tid\":" << lane.tid
          << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
          << i << "}}";
  }
  for (const auto& e : events_) {
    sep() << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.process
          << ",\"tid\":" << e.lane << ",\"ts\":" << ts_us(e.start);
    if (e.phase == 'X')
      out << ",\"dur\":" << ts_us(e.end - e.start);
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (!e.category.empty())
      out << ",\"cat\":\"" << json_escape(e.category) << "\"";
    out << ",\"name\":\"" << json_escape(e.name) << "\",";
    append_args(out, e.args);
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

}  // namespace bm::obs

#include "obs/artifacts.hpp"

#include <cstdio>

namespace bm::obs {

int write_artifacts(const cli::CommonFlags& flags, const Registry& registry,
                    const Tracer& tracer, sim::Time at) {
  if (!flags.trace_out.empty()) {
    if (!tracer.write_chrome_json(flags.trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", flags.trace_out.c_str());
      return 1;
    }
    std::printf("trace: %s (%zu events)\n", flags.trace_out.c_str(),
                tracer.event_count());
  }
  if (!flags.metrics_out.empty()) {
    if (!registry.write_json(flags.metrics_out, at)) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_out.c_str());
      return 1;
    }
    std::printf("metrics: %s (%zu series)\n", flags.metrics_out.c_str(),
                registry.size());
  }
  if (!flags.metrics_text.empty()) {
    if (!registry.write_text(flags.metrics_text, at)) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_text.c_str());
      return 1;
    }
    std::printf("metrics (text): %s\n", flags.metrics_text.c_str());
  }
  return 0;
}

}  // namespace bm::obs

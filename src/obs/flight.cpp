#include "obs/flight.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace bm::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

std::string_view flight_stage_name(FlightStage stage) {
  switch (stage) {
    case FlightStage::kSubmitted: return "submitted";
    case FlightStage::kAdmitted: return "admitted";
    case FlightStage::kShed: return "shed";
    case FlightStage::kDispatched: return "dispatched";
    case FlightStage::kEndorsed: return "endorsed";
    case FlightStage::kOrdered: return "ordered";
    case FlightStage::kValidated: return "validated";
    case FlightStage::kCommitted: return "committed";
    case FlightStage::kTimedOut: return "timed_out";
    case FlightStage::kWatchdog: return "watchdog";
    case FlightStage::kFallback: return "fallback";
    case FlightStage::kAborted: return "aborted";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(sim::Simulation& sim, FlightConfig config)
    : sim_(sim), config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.reserve(config_.capacity);
}

void FlightRecorder::arm(std::string path) { dump_path_ = std::move(path); }

void FlightRecorder::record(FlightStage stage, std::uint64_t id,
                            std::string note) {
  FlightEvent event{sim_.now(), stage, id, std::move(note)};
  ++recorded_;
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % config_.capacity;
  ++dropped_;
}

bool FlightRecorder::trigger(const std::string& reason) {
  ++trigger_count_;
  if (trigger_count_ > 1) return false;  // first trigger owns the story
  trigger_reason_ = reason;
  trigger_at_ = sim_.now();
  if (dump_path_.empty()) return false;
  return write_json(dump_path_);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string FlightRecorder::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"kind\": \"flight_recorder\",\n"
      << "  \"capacity\": " << config_.capacity << ",\n"
      << "  \"recorded\": " << recorded_ << ",\n"
      << "  \"dropped\": " << dropped_ << ",\n"
      << "  \"trigger\": ";
  if (trigger_count_ > 0) {
    out << "{\"reason\": \"" << json_escape(trigger_reason_)
        << "\", \"at_ns\": " << trigger_at_
        << ", \"count\": " << trigger_count_ << "}";
  } else {
    out << "null";
  }
  out << ",\n  \"events\": [";
  const std::vector<FlightEvent> ordered = events();
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const FlightEvent& event = ordered[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"at_ns\": " << event.at
        << ", \"stage\": \"" << flight_stage_name(event.stage)
        << "\", \"id\": " << event.id;
    if (!event.note.empty())
      out << ", \"note\": \"" << json_escape(event.note) << "\"";
    out << "}";
  }
  out << (ordered.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

bool FlightRecorder::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

}  // namespace bm::obs

// Protocol-buffers wire format: tagged fields, length-delimited nesting.
//
// Fabric stores every structure (blocks, envelopes, transactions,
// endorsements) as nested marshaled protobufs — §3.2 measured up to 23
// layers. ProtoWriter/ProtoReader implement the wire format exactly, so the
// fabric layer's marshal/unmarshal costs and byte sizes are realistic and
// the BMac protocol's "simplified protobuf decoder" post-processor has real
// bytes to decode.
#pragma once

#include <optional>
#include <string_view>

#include "wire/varint.hpp"

namespace bm::wire {

enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

/// Appends fields to an internal buffer. Nested messages are written by
/// marshaling the inner message first and emitting it as a bytes field.
class ProtoWriter {
 public:
  void varint_field(std::uint32_t field, std::uint64_t value);
  void sint_field(std::uint32_t field, std::int64_t value);  ///< zigzag
  void bool_field(std::uint32_t field, bool value);
  void bytes_field(std::uint32_t field, ByteView value);
  void string_field(std::uint32_t field, std::string_view value);
  void message_field(std::uint32_t field, const ProtoWriter& inner);
  void fixed32_field(std::uint32_t field, std::uint32_t value);
  void fixed64_field(std::uint32_t field, std::uint64_t value);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void tag(std::uint32_t field, WireType type);
  Bytes buf_;
};

/// Streaming field iterator over a marshaled message. Unknown fields are
/// surfaced to the caller (Fabric skips them); malformed input sets a sticky
/// error flag and stops iteration.
class ProtoReader {
 public:
  explicit ProtoReader(ByteView data) : data_(data) {}

  struct Field {
    std::uint32_t number = 0;
    WireType type = WireType::kVarint;
    std::uint64_t varint = 0;  ///< kVarint / kFixed32 / kFixed64 payload
    ByteView bytes;            ///< kLengthDelimited payload
  };

  /// Next field, or nullopt at end-of-message / on error.
  std::optional<Field> next();

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Find the first occurrence of a length-delimited field in a message.
/// Returns nullopt if missing or the message is malformed.
std::optional<ByteView> find_bytes_field(ByteView message, std::uint32_t field);

/// Find the first varint field value.
std::optional<std::uint64_t> find_varint_field(ByteView message,
                                               std::uint32_t field);

/// All occurrences of a repeated length-delimited field, in order.
std::vector<ByteView> find_repeated_bytes(ByteView message,
                                          std::uint32_t field);

}  // namespace bm::wire

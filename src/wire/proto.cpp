#include "wire/proto.hpp"

namespace bm::wire {

void ProtoWriter::tag(std::uint32_t field, WireType type) {
  put_varint(buf_, (static_cast<std::uint64_t>(field) << 3) |
                       static_cast<std::uint64_t>(type));
}

void ProtoWriter::varint_field(std::uint32_t field, std::uint64_t value) {
  tag(field, WireType::kVarint);
  put_varint(buf_, value);
}

void ProtoWriter::sint_field(std::uint32_t field, std::int64_t value) {
  varint_field(field, zigzag_encode(value));
}

void ProtoWriter::bool_field(std::uint32_t field, bool value) {
  varint_field(field, value ? 1 : 0);
}

void ProtoWriter::bytes_field(std::uint32_t field, ByteView value) {
  tag(field, WireType::kLengthDelimited);
  put_varint(buf_, value.size());
  append(buf_, value);
}

void ProtoWriter::string_field(std::uint32_t field, std::string_view value) {
  bytes_field(field, ByteView(reinterpret_cast<const std::uint8_t*>(
                                  value.data()),
                              value.size()));
}

void ProtoWriter::message_field(std::uint32_t field, const ProtoWriter& inner) {
  bytes_field(field, inner.bytes());
}

void ProtoWriter::fixed32_field(std::uint32_t field, std::uint32_t value) {
  tag(field, WireType::kFixed32);
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void ProtoWriter::fixed64_field(std::uint32_t field, std::uint64_t value) {
  tag(field, WireType::kFixed64);
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

std::optional<ProtoReader::Field> ProtoReader::next() {
  if (!ok_ || pos_ >= data_.size()) return std::nullopt;

  const auto key = get_varint(data_, pos_);
  if (!key) {
    ok_ = false;
    return std::nullopt;
  }
  Field f;
  f.number = static_cast<std::uint32_t>(*key >> 3);
  const auto type_bits = static_cast<std::uint8_t>(*key & 0x7);
  if (f.number == 0) {
    ok_ = false;
    return std::nullopt;
  }

  switch (type_bits) {
    case 0: {
      f.type = WireType::kVarint;
      const auto v = get_varint(data_, pos_);
      if (!v) break;
      f.varint = *v;
      return f;
    }
    case 1: {
      f.type = WireType::kFixed64;
      if (pos_ + 8 > data_.size()) break;
      std::uint64_t v = 0;
      for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
      pos_ += 8;
      f.varint = v;
      return f;
    }
    case 2: {
      f.type = WireType::kLengthDelimited;
      const auto len = get_varint(data_, pos_);
      if (!len || pos_ + *len > data_.size()) break;
      f.bytes = data_.subspan(pos_, *len);
      pos_ += *len;
      return f;
    }
    case 5: {
      f.type = WireType::kFixed32;
      if (pos_ + 4 > data_.size()) break;
      std::uint32_t v = 0;
      for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
      pos_ += 4;
      f.varint = v;
      return f;
    }
    default:
      break;
  }
  ok_ = false;
  return std::nullopt;
}

std::optional<ByteView> find_bytes_field(ByteView message,
                                         std::uint32_t field) {
  ProtoReader reader(message);
  while (auto f = reader.next()) {
    if (f->number == field && f->type == WireType::kLengthDelimited)
      return f->bytes;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> find_varint_field(ByteView message,
                                               std::uint32_t field) {
  ProtoReader reader(message);
  while (auto f = reader.next()) {
    if (f->number == field && f->type == WireType::kVarint) return f->varint;
  }
  return std::nullopt;
}

std::vector<ByteView> find_repeated_bytes(ByteView message,
                                          std::uint32_t field) {
  std::vector<ByteView> out;
  ProtoReader reader(message);
  while (auto f = reader.next()) {
    if (f->number == field && f->type == WireType::kLengthDelimited)
      out.push_back(f->bytes);
  }
  return out;
}

}  // namespace bm::wire

// Protocol-buffers base-128 varints and zigzag transform, from scratch.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace bm::wire {

/// Append the varint encoding of v (1-10 bytes).
void put_varint(Bytes& out, std::uint64_t v);

/// Decode a varint at `pos`, advancing it. nullopt on truncation or an
/// encoding longer than 10 bytes.
std::optional<std::uint64_t> get_varint(ByteView b, std::size_t& pos);

/// Number of bytes put_varint would emit.
std::size_t varint_size(std::uint64_t v);

std::uint64_t zigzag_encode(std::int64_t v);
std::int64_t zigzag_decode(std::uint64_t v);

}  // namespace bm::wire

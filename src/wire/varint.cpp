#include "wire/varint.hpp"

namespace bm::wire {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<std::uint64_t> get_varint(ByteView b, std::size_t& pos) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= b.size()) return std::nullopt;
    const std::uint8_t byte = b[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      // Reject a 10th byte carrying bits beyond 64.
      if (shift == 63 && (byte >> 1) != 0) return std::nullopt;
      return v;
    }
  }
  return std::nullopt;
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace bm::wire

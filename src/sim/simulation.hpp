// Discrete-event simulation kernel.
//
// The BMac hardware model (§3.2-3.3) and the network model are expressed as
// communicating sequential processes: each hardware module is a C++20
// coroutine that blocks on bounded FIFOs (sim::Fifo) and advances simulated
// time with sim::Simulation::delay(). The kernel is single-threaded and
// fully deterministic: events at equal timestamps run in schedule order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

namespace bm::sim {

/// Simulated time in nanoseconds.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

class Simulation;

/// Fire-and-forget coroutine type for simulation processes. Created by
/// calling a coroutine function and handed to Simulation::spawn(), which
/// takes ownership of the frame.
class [[nodiscard]] Process {
 public:
  struct promise_type {
    Simulation* sim = nullptr;

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// On completion, hand the frame back to the Simulation for destruction
    /// (the coroutine is suspended here, so destroying it is legal).
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process(Process&& other) noexcept : handle_(other.handle_) {
    other.handle_ = {};
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;
  ~Process() {
    if (handle_) handle_.destroy();  // never spawned
  }

 private:
  friend class Simulation;
  explicit Process(Handle h) : handle_(h) {}
  Handle handle_;
};

/// Identifier for a scheduled event; used for cancellation.
using EventId = std::uint64_t;

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedule a callback `delay` ns from now. Returns an id for cancel().
  EventId schedule(Time delay, std::function<void()> fn);

  /// Cancel a pending event; a no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Start a process; it first runs at the current time, after the caller
  /// returns to the event loop (or at run() start).
  void spawn(Process process);

  /// Run one event. Returns false when the queue is empty.
  bool step();

  /// Run until no events remain. With processes blocked only on empty
  /// FIFOs, this means "until the system drains".
  void run();

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still run).
  void run_until(Time deadline);

  /// Awaitable that resumes the calling process after `d` ns.
  auto delay(Time d) {
    struct Awaiter {
      Simulation* sim;
      Time d;
      bool await_ready() const noexcept { return d <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Number of events executed so far (for tests / statistics).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Most entries the event queue ever held at once (cheap counter kept by
  /// schedule(); cancelled-but-unpopped events count while queued).
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Internal: resume a coroutine through the event queue at the current
  /// time (keeps resumption ordering deterministic and stacks shallow).
  void resume_later(std::coroutine_handle<> h) {
    schedule(0, [h] { h.resume(); });
  }

  /// Internal: called by process frames when they finish.
  void retire(Process::Handle h);

 private:
  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<void*> live_processes_;
};

/// Route bm::log lines through this simulation's clock: every line is
/// prefixed with the simulated time, so log output orders against trace
/// spans. Call detach_log_clock() before the Simulation is destroyed.
void attach_log_clock(Simulation& sim);
void detach_log_clock();

/// Awaitable one-shot signal carrying a small enum-like payload. One waiter
/// at a time; fire() before wait() completes immediately.
class Trigger {
 public:
  explicit Trigger(Simulation& sim) : sim_(sim) {}

  /// Fire with a code; resumes the waiter (now, via the event queue).
  void fire(int code);

  bool fired() const { return fired_; }

  auto wait() {
    struct Awaiter {
      Trigger* t;
      bool await_ready() const noexcept { return t->fired_; }
      void await_suspend(std::coroutine_handle<> h) { t->waiter_ = h; }
      int await_resume() noexcept {
        t->fired_ = false;  // auto-reset for reuse
        return t->code_;
      }
    };
    return Awaiter{this};
  }

 private:
  Simulation& sim_;
  std::coroutine_handle<> waiter_;
  bool fired_ = false;
  int code_ = 0;
};

}  // namespace bm::sim

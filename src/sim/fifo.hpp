// Bounded FIFO channel between simulation processes.
//
// Models the hardware FIFO buffers between BMac modules (block_fifo,
// tx_fifo, ends_fifo, rdset_fifo, wrset_fifo, res_fifo — §3.1). Producers
// block when the buffer is full (back-pressure), consumers block when it is
// empty. Occupancy statistics feed the block_monitor model.
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "sim/simulation.hpp"

namespace bm::sim {

template <typename T>
class Fifo {
 public:
  Fifo(Simulation& sim, std::size_t capacity, std::string name = "fifo")
      : sim_(sim), capacity_(capacity), name_(std::move(name)) {
    assert(capacity_ >= 1);
  }
  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return buffer_.empty(); }
  const std::string& name() const { return name_; }

  /// Awaitable pop: suspends while the buffer is empty.
  ///
  /// NOTE: the awaiter types have user-declared constructors on purpose —
  /// as aggregates, GCC 12 fails to promote the co_await operand temporary
  /// into the coroutine frame, leaving registered awaiter pointers dangling
  /// across suspension.
  struct GetAwaiter {
    explicit GetAwaiter(Fifo* f) : fifo(f) {}

    Fifo* fifo;
    std::optional<T> slot;  ///< filled on direct producer-to-consumer handoff
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept { return !fifo->buffer_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      fifo->waiting_getters_.push_back(this);
    }
    T await_resume() {
      if (slot.has_value()) return std::move(*slot);
      assert(!fifo->buffer_.empty());
      T value = std::move(fifo->buffer_.front());
      fifo->buffer_.pop_front();
      fifo->note_pop();
      fifo->admit_waiting_putter();
      return value;
    }
  };

  /// Awaitable push: suspends while the buffer is full (back-pressure).
  struct PutAwaiter {
    PutAwaiter(Fifo* f, T v) : fifo(f), value(std::move(v)) {}

    Fifo* fifo;
    T value;
    std::coroutine_handle<> handle;
    Time blocked_at = 0;  ///< when back-pressure suspended this producer

    bool await_ready() {
      if (!fifo->waiting_getters_.empty()) {
        fifo->deliver_to_getter(std::move(value));
        return true;
      }
      if (fifo->buffer_.size() < fifo->capacity_) {
        fifo->push(std::move(value));
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      blocked_at = fifo->sim_.now();
      fifo->waiting_putters_.push_back(this);
      fifo->blocked_put_events_++;
    }
    void await_resume() const noexcept {}
  };

  GetAwaiter get() { return GetAwaiter(this); }
  PutAwaiter put(T value) { return PutAwaiter(this, std::move(value)); }

  /// Non-blocking pop; also admits one waiting producer.
  std::optional<T> try_get() {
    if (buffer_.empty()) return std::nullopt;
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    note_pop();
    admit_waiting_putter();
    return value;
  }

  /// Non-blocking push; false when full and no consumer is waiting.
  bool try_put(T value) {
    if (!waiting_getters_.empty()) {
      deliver_to_getter(std::move(value));
      return true;
    }
    if (buffer_.size() < capacity_) {
      push(std::move(value));
      return true;
    }
    return false;
  }

  // --- statistics (read by monitors) ---
  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t total_popped() const { return total_popped_; }
  std::size_t max_occupancy() const { return max_occupancy_; }
  std::uint64_t blocked_put_events() const { return blocked_put_events_; }

  // --- observability hooks (null by default: one branch per event) ---
  /// Called with the new buffered depth after every push/pop that changes
  /// it. Direct producer-to-consumer handoffs keep depth 0 and do not fire.
  using DepthProbe = std::function<void(std::size_t depth)>;
  /// Called when a producer blocked by back-pressure is admitted, with the
  /// simulated [start, end] of the stall.
  using StallProbe = std::function<void(Time start, Time end)>;
  void set_depth_probe(DepthProbe probe) { depth_probe_ = std::move(probe); }
  void set_stall_probe(StallProbe probe) { stall_probe_ = std::move(probe); }

 private:
  friend struct GetAwaiter;
  friend struct PutAwaiter;

  void push(T value) {
    buffer_.push_back(std::move(value));
    ++total_pushed_;
    max_occupancy_ = std::max(max_occupancy_, buffer_.size());
    if (depth_probe_) depth_probe_(buffer_.size());
  }

  void note_pop() {
    ++total_popped_;
    if (depth_probe_) depth_probe_(buffer_.size());
  }

  /// A consumer freed a slot: move one blocked producer's value in.
  void admit_waiting_putter() {
    if (waiting_putters_.empty()) return;
    PutAwaiter* putter = waiting_putters_.front();
    waiting_putters_.pop_front();
    push(std::move(putter->value));
    if (stall_probe_) stall_probe_(putter->blocked_at, sim_.now());
    sim_.resume_later(putter->handle);
  }

  /// A producer arrived while consumers were blocked on an empty buffer:
  /// hand the value straight to the oldest one.
  void deliver_to_getter(T value) {
    assert(buffer_.empty());
    GetAwaiter* getter = waiting_getters_.front();
    waiting_getters_.pop_front();
    getter->slot = std::move(value);
    ++total_pushed_;
    ++total_popped_;
    sim_.resume_later(getter->handle);
  }

  Simulation& sim_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> buffer_;
  std::deque<GetAwaiter*> waiting_getters_;
  std::deque<PutAwaiter*> waiting_putters_;

  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_popped_ = 0;
  std::size_t max_occupancy_ = 0;
  std::uint64_t blocked_put_events_ = 0;
  DepthProbe depth_probe_;
  StallProbe stall_probe_;
};

}  // namespace bm::sim

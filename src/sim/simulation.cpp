#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace bm::sim {

void attach_log_clock(Simulation& sim) {
  set_log_clock([&sim] { return static_cast<std::int64_t>(sim.now()); });
}

void detach_log_clock() { set_log_clock({}); }

void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<Process::promise_type> h) noexcept {
  Simulation* sim = h.promise().sim;
  if (sim != nullptr) {
    sim->retire(h);
  }
  // If the process was never spawned it is still owned by its Process
  // wrapper, which will destroy it.
}

Simulation::~Simulation() {
  // Destroy any processes still suspended mid-simulation.
  for (void* address : live_processes_) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

EventId Simulation::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0);
  const EventId id = next_id_++;
  queue_.push(Event{now_ + delay, id, std::move(fn)});
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  return id;
}

void Simulation::cancel(EventId id) { cancelled_.insert(id); }

void Simulation::spawn(Process process) {
  Process::Handle h = process.handle_;
  process.handle_ = {};  // ownership moves to the simulation
  h.promise().sim = this;
  live_processes_.insert(h.address());
  schedule(0, [h] { h.resume(); });
}

void Simulation::retire(Process::Handle h) {
  live_processes_.erase(h.address());
  h.destroy();
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.at >= now_);
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time deadline) {
  for (;;) {
    // Peek (skipping cancelled events) to respect the deadline.
    while (!queue_.empty() && cancelled_.count(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > deadline) break;
    step();
  }
  // Advance the clock to the deadline even when idle, so repeated
  // run_until(now() + dt) calls make progress toward future timers.
  now_ = std::max(now_, deadline);
}

void Trigger::fire(int code) {
  code_ = code;
  if (waiter_) {
    auto h = waiter_;
    waiter_ = {};
    sim_.resume_later(h);
  } else {
    fired_ = true;  // latch for a future wait()
  }
}

}  // namespace bm::sim

// The endorsement phase: execute, of execute-order-validate (§2.1).
//
// A client signs a proposal and sends it to the endorser peers named by the
// chaincode's policy. Each endorser verifies the client, executes the
// installed chaincode against its own committed state (producing the
// read/write sets with observed versions) and returns a signed endorsement.
// The client verifies every response, checks that all endorsers computed
// identical rwsets (divergent peers mean inconsistent state — the
// transaction cannot be assembled) and builds the envelope for ordering.
//
// EndorserPeer is also a committing peer: it validates/commits blocks like
// the validator peers, which is precisely why the paper measures it slower
// (endorsement competes with validation for the same cores — Fig. 7a).
#pragma once

#include <functional>

#include "fabric/validator.hpp"

namespace bm::fabric {

/// A signed chaincode invocation request.
struct Proposal {
  std::string channel_id;
  std::string chaincode_id;
  std::string tx_id;
  Bytes args;          ///< opaque chaincode arguments
  Bytes creator_cert;  ///< marshaled client certificate
  Bytes signature;     ///< DER over the proposal digest

  crypto::Digest digest() const;
};

/// Build and sign a proposal as `client`.
Proposal make_proposal(const Identity& client, std::string channel_id,
                       std::string chaincode_id, std::string tx_id,
                       Bytes args);

/// A chaincode implementation: execute the invocation against committed
/// state, producing the rwset (versions observed from `state`).
using ChaincodeHandler =
    std::function<ReadWriteSet(ByteView args, const StateDb& state)>;

struct ProposalResponse {
  bool ok = false;
  std::string message;     ///< error text when !ok
  ReadWriteSet rwset;
  Bytes rwset_bytes;       ///< marshaled (what the endorsement signs over)
  Bytes endorser_cert;     ///< marshaled certificate
  Bytes signature;         ///< DER over endorsement_digest(...)
};

class EndorserPeer {
 public:
  EndorserPeer(Identity identity, const Msp& msp,
               std::map<std::string, EndorsementPolicy> policies);

  /// Install (or upgrade) a chaincode.
  void install_chaincode(const std::string& name, ChaincodeHandler handler);
  bool has_chaincode(const std::string& name) const {
    return chaincodes_.count(name) > 0;
  }

  /// The endorsement path: verify the client, execute, sign.
  ProposalResponse endorse(const Proposal& proposal);

  /// The committing path (endorsers also validate/commit every block).
  BlockValidationResult deliver_block(const Block& block);

  const StateDb& state() const { return state_; }
  const Ledger& ledger() const { return ledger_; }
  const Identity& identity() const { return identity_; }
  std::uint64_t proposals_endorsed() const { return proposals_endorsed_; }
  std::uint64_t proposals_rejected() const { return proposals_rejected_; }

 private:
  Identity identity_;
  const Msp& msp_;
  std::map<std::string, ChaincodeHandler> chaincodes_;
  StateDb state_;
  Ledger ledger_;
  SoftwareValidator validator_;
  std::uint64_t proposals_endorsed_ = 0;
  std::uint64_t proposals_rejected_ = 0;
};

/// Client-side assembly: verify every response signature, require all
/// endorsers to have produced identical rwsets, and build the envelope.
/// Returns nullopt (with `error` filled) when the endorsements do not
/// support a valid transaction.
std::optional<Bytes> assemble_envelope(
    const Proposal& proposal, const Identity& client, const Msp& msp,
    const std::vector<ProposalResponse>& responses, std::string* error);

}  // namespace bm::fabric

// Identities, X.509-style certificates and the membership service provider.
//
// Every Fabric node owns a certificate issued by its organization's CA.
// Certificates dominate block size (~860 bytes each, ≥73% of a block per
// §3.2), which is exactly what the BMac protocol's DataRemover exploits by
// replacing them with 16-bit encoded ids:
//   [15:8] organization index, [7:4] role, [3:0] node sequence in its org.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ecdsa.hpp"

namespace bm::fabric {

enum class Role : std::uint8_t {
  kOrderer = 0,
  kAdmin = 1,
  kPeer = 2,
  kClient = 3,
};

const char* role_name(Role role);

/// The 16-bit encoded identity used on the wire by the BMac protocol.
struct EncodedId {
  std::uint16_t value = 0;

  static EncodedId make(std::uint8_t org, Role role, std::uint8_t seq);
  std::uint8_t org() const { return static_cast<std::uint8_t>(value >> 8); }
  Role role() const { return static_cast<Role>((value >> 4) & 0xF); }
  std::uint8_t seq() const { return static_cast<std::uint8_t>(value & 0xF); }

  auto operator<=>(const EncodedId&) const = default;
};

/// X.509-like certificate. Marshaled size is calibrated to ~860 bytes to
/// match the paper's measurement of real Fabric identities.
struct Certificate {
  std::uint32_t version = 3;
  Bytes serial;               ///< 16 bytes
  std::string issuer_cn;      ///< e.g. "ca.org1.example.com"
  std::string subject_cn;     ///< e.g. "peer0.org1.example.com"
  std::string org_name;       ///< e.g. "Org1"
  Role role = Role::kPeer;
  std::uint8_t sequence = 0;  ///< node index within its org and role
  std::uint64_t not_before = 0;
  std::uint64_t not_after = 0;
  crypto::PublicKey public_key;
  Bytes subject_key_id;    ///< 20 bytes
  Bytes authority_key_id;  ///< 20 bytes
  std::string crl_url;
  Bytes extensions;  ///< representative extension payload (SANs, OIDs, ...)
  Bytes ca_signature;  ///< CA's ECDSA signature over the TBS bytes (DER)

  /// Marshal to the canonical wire encoding (used for hashing, signing and
  /// as the map key in identity caches).
  Bytes marshal() const;
  static std::optional<Certificate> unmarshal(ByteView data);

  /// The to-be-signed portion (everything except ca_signature).
  Bytes tbs_bytes() const;
};

/// A node identity: certificate plus its private key.
struct Identity {
  Certificate cert;
  crypto::PrivateKey key;

  crypto::Signature sign(const crypto::Digest& digest) const {
    return crypto::sign(key, digest);
  }
};

/// Per-organization certificate authority. Issues node certificates and is
/// itself identified by a self-signed root.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string org_name, std::uint8_t org_index);

  /// Issue a certificate for a node; `seq` is the per-role node index.
  Identity issue(Role role, std::uint8_t seq, const std::string& host) const;

  const Certificate& root_cert() const { return root_.cert; }
  const std::string& org_name() const { return org_.first; }
  std::uint8_t org_index() const { return org_.second; }

  /// Verify a certificate chains to this CA.
  bool verify_cert(const Certificate& cert) const;

 private:
  std::pair<std::string, std::uint8_t> org_;
  Identity root_;
};

/// Membership service provider: the network-wide registry of organizations
/// and certificates. Maps certificates to encoded ids and validates
/// signature chains — the trust anchor both peers and the BMac identity
/// cache are initialized from.
class Msp {
 public:
  Msp() = default;

  // Movable (setup-time only: must not race with concurrent validate()).
  // The cache mutex is not moved; the destination starts with its own.
  Msp(Msp&& other) noexcept
      : orgs_(std::move(other.orgs_)),
        by_name_(std::move(other.by_name_)),
        validation_cache_(std::move(other.validation_cache_)) {}
  Msp& operator=(Msp&& other) noexcept {
    orgs_ = std::move(other.orgs_);
    by_name_ = std::move(other.by_name_);
    validation_cache_ = std::move(other.validation_cache_);
    return *this;
  }

  /// Register an organization; returns its CA. Org indices are assigned in
  /// registration order starting at 1.
  CertificateAuthority& add_org(const std::string& name);

  const CertificateAuthority* find_org(const std::string& name) const;
  const CertificateAuthority* find_org(std::uint8_t index) const;
  std::size_t org_count() const { return orgs_.size(); }
  std::vector<std::string> org_names() const;

  /// Validate that a certificate was issued by a registered CA. Safe to call
  /// concurrently (the parallel vscc path does); the result cache is
  /// mutex-guarded and chain verification itself is pure.
  bool validate(const Certificate& cert) const;

  /// Encoded id for a certificate (derived from its org/role/sequence).
  std::optional<EncodedId> encode(const Certificate& cert) const;

 private:
  std::vector<std::unique_ptr<CertificateAuthority>> orgs_;
  std::map<std::string, std::size_t> by_name_;
  /// Validation results keyed by (issuer, subject, serial) — Fabric peers
  /// likewise cache deserialized/validated identities. Guarded by
  /// cache_mutex_; concurrent misses may verify the same chain twice, which
  /// is deterministic (both compute the same value).
  mutable std::mutex cache_mutex_;
  mutable std::map<std::string, bool> validation_cache_;
};

}  // namespace bm::fabric

#include "fabric/raft.hpp"

#include <algorithm>
#include <cassert>

namespace bm::fabric {

RaftNode::RaftNode(sim::Simulation& sim, int id, int cluster_size,
                   Config config, RaftSendFn send, std::uint64_t seed)
    : sim_(sim),
      id_(id),
      cluster_size_(cluster_size),
      config_(config),
      send_(std::move(send)),
      rng_(seed),
      next_index_(static_cast<std::size_t>(cluster_size), 1),
      match_index_(static_cast<std::size_t>(cluster_size), 0) {}

void RaftNode::start() {
  running_ = true;
  reset_election_timer();
}

void RaftNode::stop() {
  running_ = false;
  cancel_election_timer();
  if (heartbeat_timer_armed_) {
    sim_.cancel(heartbeat_timer_);
    heartbeat_timer_armed_ = false;
  }
}

void RaftNode::restart() {
  // Persistent state (term, vote, log) survives; volatile state resets.
  role_ = RaftRole::kFollower;
  votes_received_ = 0;
  start();
}

void RaftNode::reset_election_timer() {
  cancel_election_timer();
  const auto span = static_cast<std::uint64_t>(
      config_.election_timeout_max - config_.election_timeout_min);
  const sim::Time timeout =
      config_.election_timeout_min +
      static_cast<sim::Time>(span == 0 ? 0 : rng_.uniform(span));
  election_timer_armed_ = true;
  election_timer_ = sim_.schedule(timeout, [this] {
    election_timer_armed_ = false;
    if (running_ && role_ != RaftRole::kLeader) become_candidate();
  });
}

void RaftNode::cancel_election_timer() {
  if (election_timer_armed_) {
    sim_.cancel(election_timer_);
    election_timer_armed_ = false;
  }
}

void RaftNode::become_follower(std::uint64_t term) {
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = -1;
  }
  role_ = RaftRole::kFollower;
  votes_received_ = 0;
  if (heartbeat_timer_armed_) {
    sim_.cancel(heartbeat_timer_);
    heartbeat_timer_armed_ = false;
  }
  reset_election_timer();
}

void RaftNode::become_candidate() {
  ++current_term_;
  role_ = RaftRole::kCandidate;
  voted_for_ = id_;
  votes_received_ = 1;  // own vote
  reset_election_timer();

  RequestVote request;
  request.term = current_term_;
  request.candidate = id_;
  request.last_log_index = last_log_index();
  request.last_log_term = last_log_term();
  for (int peer = 0; peer < cluster_size_; ++peer)
    if (peer != id_) send_(id_, peer, request);

  if (cluster_size_ == 1) become_leader();
}

void RaftNode::become_leader() {
  role_ = RaftRole::kLeader;
  cancel_election_timer();
  for (int peer = 0; peer < cluster_size_; ++peer) {
    next_index_[static_cast<std::size_t>(peer)] = last_log_index() + 1;
    match_index_[static_cast<std::size_t>(peer)] = 0;
  }
  match_index_[static_cast<std::size_t>(id_)] = last_log_index();
  send_heartbeats();
  if (on_leader_) on_leader_();
}

void RaftNode::send_heartbeats() {
  if (!running_ || role_ != RaftRole::kLeader) return;
  for (int peer = 0; peer < cluster_size_; ++peer)
    if (peer != id_) replicate_to(peer);
  heartbeat_timer_armed_ = true;
  heartbeat_timer_ = sim_.schedule(config_.heartbeat_interval, [this] {
    heartbeat_timer_armed_ = false;
    send_heartbeats();
  });
}

void RaftNode::replicate_to(int peer) {
  const auto peer_index = static_cast<std::size_t>(peer);
  AppendEntries append;
  append.term = current_term_;
  append.leader = id_;
  append.prev_log_index = next_index_[peer_index] - 1;
  append.prev_log_term =
      append.prev_log_index == 0
          ? 0
          : log_[append.prev_log_index - 1].term;
  const std::uint64_t from = next_index_[peer_index];
  const std::uint64_t to =
      std::min<std::uint64_t>(last_log_index(),
                              from + config_.max_entries_per_append - 1);
  for (std::uint64_t i = from; i <= to; ++i)
    append.entries.push_back(log_[i - 1]);
  append.leader_commit = commit_index_;
  send_(id_, peer, std::move(append));
}

bool RaftNode::propose(Bytes payload) {
  if (!running_ || role_ != RaftRole::kLeader) return false;
  log_.push_back(RaftLogEntry{current_term_, std::move(payload)});
  match_index_[static_cast<std::size_t>(id_)] = last_log_index();
  for (int peer = 0; peer < cluster_size_; ++peer)
    if (peer != id_) replicate_to(peer);
  if (cluster_size_ == 1) {
    advance_commit_index();
  }
  return true;
}

void RaftNode::on_message(int from, RaftMessage message) {
  if (!running_) return;  // crashed nodes drop traffic
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, RequestVote>) handle(msg, from);
        else if constexpr (std::is_same_v<T, RequestVoteReply>) handle(msg);
        else if constexpr (std::is_same_v<T, AppendEntries>) handle(msg, from);
        else handle(msg);
      },
      message);
}

void RaftNode::handle(const RequestVote& msg, int from) {
  if (msg.term > current_term_) become_follower(msg.term);

  RequestVoteReply reply;
  reply.term = current_term_;
  reply.voter = id_;
  // §5.4.1 election restriction: candidate's log must be at least as
  // up-to-date as ours.
  const bool log_ok =
      msg.last_log_term > last_log_term() ||
      (msg.last_log_term == last_log_term() &&
       msg.last_log_index >= last_log_index());
  if (msg.term == current_term_ &&
      (voted_for_ == -1 || voted_for_ == msg.candidate) && log_ok) {
    voted_for_ = msg.candidate;
    reply.granted = true;
    reset_election_timer();
  }
  send_(id_, from, reply);
}

void RaftNode::handle(const RequestVoteReply& msg) {
  if (msg.term > current_term_) {
    become_follower(msg.term);
    return;
  }
  if (role_ != RaftRole::kCandidate || msg.term != current_term_ ||
      !msg.granted)
    return;
  if (++votes_received_ > cluster_size_ / 2) become_leader();
}

void RaftNode::handle(const AppendEntries& msg, int from) {
  AppendEntriesReply reply;
  reply.follower = id_;

  if (msg.term < current_term_) {
    reply.term = current_term_;
    reply.success = false;
    send_(id_, from, reply);
    return;
  }
  become_follower(msg.term);  // also resets the election timer
  reply.term = current_term_;

  // Log consistency check.
  if (msg.prev_log_index > last_log_index() ||
      (msg.prev_log_index > 0 &&
       log_[msg.prev_log_index - 1].term != msg.prev_log_term)) {
    reply.success = false;
    send_(id_, from, reply);
    return;
  }

  // Append, truncating any conflicting suffix.
  std::uint64_t index = msg.prev_log_index;
  for (const RaftLogEntry& entry : msg.entries) {
    ++index;
    if (index <= last_log_index()) {
      if (log_[index - 1].term == entry.term) continue;
      log_.resize(index - 1);  // conflict: truncate
    }
    log_.push_back(entry);
  }

  if (msg.leader_commit > commit_index_) {
    commit_index_ = std::min(msg.leader_commit, last_log_index());
    apply_committed();
  }
  reply.success = true;
  reply.match_index = index;
  send_(id_, from, reply);
}

void RaftNode::handle(const AppendEntriesReply& msg) {
  if (msg.term > current_term_) {
    become_follower(msg.term);
    return;
  }
  if (role_ != RaftRole::kLeader || msg.term != current_term_) return;
  const auto peer = static_cast<std::size_t>(msg.follower);
  if (msg.success) {
    match_index_[peer] = std::max(match_index_[peer], msg.match_index);
    next_index_[peer] = match_index_[peer] + 1;
    advance_commit_index();
    // More to replicate?
    if (next_index_[peer] <= last_log_index()) replicate_to(msg.follower);
  } else {
    // Back up and retry (linear backoff suffices at this scale).
    if (next_index_[peer] > 1) --next_index_[peer];
    replicate_to(msg.follower);
  }
}

void RaftNode::advance_commit_index() {
  // Find the highest index replicated on a majority, restricted to the
  // current term (§5.4.2).
  for (std::uint64_t n = last_log_index(); n > commit_index_; --n) {
    if (log_[n - 1].term != current_term_) break;
    int count = 0;
    for (int peer = 0; peer < cluster_size_; ++peer)
      if (match_index_[static_cast<std::size_t>(peer)] >= n) ++count;
    if (count > cluster_size_ / 2) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (on_commit_) on_commit_(log_[last_applied_ - 1]);
  }
}

// ---------------------------------------------------------------------------

RaftOrderingService::RaftOrderingService(sim::Simulation& sim, Config config,
                                         std::vector<Identity> identities)
    : sim_(sim),
      config_(config),
      net_rng_(config.seed ^ 0xfeed),
      cut_backlog_(static_cast<std::size_t>(config.nodes)) {
  assert(static_cast<int>(identities.size()) == config_.nodes);
  if (config_.faults.any())
    faults_ = std::make_unique<net::FaultInjector>(config_.faults);
  for (int i = 0; i < config_.nodes; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(
        sim_, i, config_.nodes, config_.raft,
        [this](int from, int to, RaftMessage message) {
          deliver(from, to, std::move(message));
        },
        config_.seed + static_cast<std::uint64_t>(i)));
    cutters_.push_back(std::make_unique<Orderer>(
        identities[static_cast<std::size_t>(i)],
        Orderer::Config{config_.max_tx_per_block}));
    const int node_id = i;
    nodes_.back()->set_commit_callback(
        [this, node_id](const RaftLogEntry& entry) {
          on_committed(node_id, entry);
        });
    // A new leader first drains the backlog the dead leader cut but never
    // emitted, so the block stream cannot skip numbers across elections.
    nodes_.back()->set_leader_callback(
        [this, node_id] { maybe_emit(node_id); });
  }
}

void RaftOrderingService::start() {
  for (auto& node : nodes_) node->start();
}

bool RaftOrderingService::partitioned(int from, int to) const {
  const sim::Time now = sim_.now();
  for (const PartitionWindow& window : partitions_) {
    if (now < window.start || now >= window.end) continue;
    bool from_minority = false, to_minority = false;
    for (const int node : window.minority) {
      from_minority |= node == from;
      to_minority |= node == to;
    }
    if (from_minority != to_minority) return true;
  }
  return false;
}

void RaftOrderingService::add_partition(sim::Time start, sim::Time end,
                                        std::vector<int> minority) {
  partitions_.push_back(PartitionWindow{start, end, std::move(minority)});
}

void RaftOrderingService::deliver(int from, int to, RaftMessage message) {
  if (partitioned(from, to)) {
    ++partition_drops_;
    return;
  }
  sim::Time fault_delay = 0;
  if (faults_ != nullptr) {
    // Charge the injector a frame proportional to the message's payload, so
    // burst-loss state machines see realistic traffic.
    std::size_t frame_size = 64;
    if (const auto* append = std::get_if<AppendEntries>(&message))
      for (const RaftLogEntry& entry : append->entries)
        frame_size += 32 + entry.payload.size();
    const auto verdict = faults_->assess(sim_.now(), frame_size);
    if (verdict.dropped()) return;
    fault_delay = verdict.extra_delay;
  }
  if (net_rng_.chance(config_.message_loss)) return;
  sim::Time delay = config_.message_delay + fault_delay;
  if (config_.message_jitter > 0)
    delay += static_cast<sim::Time>(
        net_rng_.uniform(static_cast<std::uint64_t>(config_.message_jitter)));
  sim_.schedule(delay, [this, from, to, message = std::move(message)] {
    nodes_[static_cast<std::size_t>(to)]->on_message(from, message);
  });
}

int RaftOrderingService::leader() const {
  for (const auto& node : nodes_)
    if (node->running() && node->role() == RaftRole::kLeader)
      return node->id();
  return -1;
}

bool RaftOrderingService::submit(Bytes envelope) {
  const int lead = leader();
  if (lead < 0) return false;
  return nodes_[static_cast<std::size_t>(lead)]->propose(std::move(envelope));
}

void RaftOrderingService::stop_node(int id) {
  nodes_[static_cast<std::size_t>(id)]->stop();
}

void RaftOrderingService::restart_node(int id) {
  nodes_[static_cast<std::size_t>(id)]->restart();
}

void RaftOrderingService::on_committed(int node_id, const RaftLogEntry& entry) {
  // Every node's block cutter consumes the identical committed sequence, so
  // block headers are deterministic; only the lead orderer emits (signs and
  // sends) the block — §3.5. Emission goes through the canonical chain so a
  // leader change mid-stream can neither fork nor skip block numbers.
  auto& cutter = *cutters_[static_cast<std::size_t>(node_id)];
  auto block = cutter.submit(entry.payload);
  if (block) enqueue_cut(node_id, std::move(*block));
  maybe_emit(node_id);
}

void RaftOrderingService::enqueue_cut(int node_id, Block block) {
  cut_backlog_[static_cast<std::size_t>(node_id)].push_back(std::move(block));
}

void RaftOrderingService::maybe_emit(int node_id) {
  auto& backlog = cut_backlog_[static_cast<std::size_t>(node_id)];
  RaftNode& node = *nodes_[static_cast<std::size_t>(node_id)];
  for (;;) {
    // Numbers the canonical chain already emitted are duplicates (another
    // signer's copy won the race): verify the header matches and drop them,
    // whatever this node's role — that is the (block_number, prev_hash)
    // dedupe, and it also bounds follower backlog memory.
    while (!backlog.empty() &&
           backlog.front().header.number < emitted_hashes_.size()) {
      const Block& duplicate = backlog.front();
      if (duplicate.block_hash() !=
          emitted_hashes_[duplicate.header.number])
        ++forks_detected_;
      ++duplicates_suppressed_;
      backlog.pop_front();
    }
    if (!node.running() || node.role() != RaftRole::kLeader ||
        backlog.empty() ||
        backlog.front().header.number != emitted_hashes_.size())
      return;

    Block block = std::move(backlog.front());
    backlog.pop_front();
    // prev_hash must chain onto the canonical tail (empty at genesis). Raft
    // safety makes a mismatch impossible; refuse to fork the stream anyway.
    const bool chains =
        emitted_hashes_.empty()
            ? block.header.prev_hash.empty()
            : std::equal(block.header.prev_hash.begin(),
                         block.header.prev_hash.end(),
                         emitted_hashes_.back().begin(),
                         emitted_hashes_.back().end());
    if (!chains) {
      ++forks_detected_;
      return;
    }
    emitted_hashes_.push_back(block.block_hash());
    ++blocks_emitted_;
    if (on_block_) on_block_(std::move(block));
  }
}

}  // namespace bm::fabric

// Versioned key-value state database (LevelDB-style world state).
//
// Values carry the (block, tx) version assigned at commit; mvcc validation
// compares a transaction's read-set versions against these. A separate
// history index records which blocks/transactions touched each key (the
// "miscellaneous" step 5 of the validation pipeline, §2.2).
#pragma once

#include <map>
#include <string>

#include "fabric/rwset.hpp"

namespace bm::fabric {

struct VersionedValue {
  Bytes value;
  Version version;

  friend bool operator==(const VersionedValue&, const VersionedValue&) = default;
};

class StateDb {
 public:
  /// Current value+version, or nullopt if the key was never written.
  std::optional<VersionedValue> get(const std::string& key) const;

  /// Write (insert or overwrite) with an explicit version.
  void put(const std::string& key, Bytes value, Version version);

  /// Apply a whole write set at version {block, tx}.
  void apply_writes(const std::vector<KVWrite>& writes, Version version);

  /// Remove a key (used by the tiered hardware cache when promoting an
  /// entry back on-chip). No-op if absent.
  void erase(const std::string& key) { data_.erase(key); }

  /// True iff a read-set entry's expected version matches current state.
  bool version_matches(const KVRead& read) const;

  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }

  /// Namespacing helper: Fabric stores keys as "<chaincode>\x00<key>".
  static std::string namespaced(const std::string& chaincode,
                                const std::string& key);

  // Access statistics (feed the timing models).
  std::uint64_t total_reads() const { return reads_; }
  std::uint64_t total_writes() const { return writes_; }

 private:
  std::map<std::string, VersionedValue> data_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// History database: key -> list of (block, tx) that wrote it.
class HistoryDb {
 public:
  void record(const std::string& key, Version version);
  const std::vector<Version>* history(const std::string& key) const;
  std::size_t key_count() const { return data_.size(); }

 private:
  std::map<std::string, std::vector<Version>> data_;
};

}  // namespace bm::fabric

// Versioned key-value state database (LevelDB-style world state).
//
// Values carry the (block, tx) version assigned at commit; mvcc validation
// compares a transaction's read-set versions against these. A separate
// history index records which blocks/transactions touched each key (the
// "miscellaneous" step 5 of the validation pipeline, §2.2).
//
// The store is sharded by key hash: each of N shards owns a disjoint map
// guarded by its own lock, so batched commits can apply one block's whole
// write-set with one lock acquisition per touched shard — and, when the
// caller supplies a thread pool, apply the shards in parallel. Shards are
// an implementation detail: keys are never enumerated, so every observable
// result (get/put/version_matches and the commit-hash chain built on them)
// is byte-identical at any shard count, with or without a pool.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fabric/rwset.hpp"

namespace bm {
class ThreadPool;
namespace obs {
class Registry;
}  // namespace obs
}  // namespace bm

namespace bm::fabric {

struct VersionedValue {
  Bytes value;
  Version version;

  friend bool operator==(const VersionedValue&, const VersionedValue&) = default;
};

/// Chain position a StateDb snapshot was cut at: recovery restores the
/// snapshot, seeds the ledger here (Ledger::open_at) and replays only the
/// blocks past it.
struct StateSnapshotMeta {
  std::uint64_t height = 0;  ///< blocks committed when the snapshot was cut
  Bytes commit_hash;         ///< ledger commit-hash chain tail (32 bytes)
  Bytes header_hash;         ///< block_hash of the last committed block
};

class StateDb {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  explicit StateDb(std::size_t shard_count = kDefaultShards);

  // Shards hold mutexes; the store is identity, not value.
  StateDb(const StateDb&) = delete;
  StateDb& operator=(const StateDb&) = delete;

  /// Current value+version, or nullopt if the key was never written.
  std::optional<VersionedValue> get(const std::string& key) const;

  /// Write (insert or overwrite) with an explicit version.
  void put(const std::string& key, Bytes value, Version version);

  /// Apply a whole write set at version {block, tx}.
  void apply_writes(const std::vector<KVWrite>& writes, Version version);

  /// Remove a key (used by the tiered hardware cache when promoting an
  /// entry back on-chip). No-op if absent.
  void erase(const std::string& key);

  /// True iff a read-set entry's expected version matches current state.
  bool version_matches(const KVRead& read) const;

  std::size_t size() const;
  void clear();

  // --- batched commit -------------------------------------------------------
  /// A block's write-set, pre-grouped by destination shard. Build with
  /// make_batch() (which sizes the groups to this store's shard count), add
  /// writes in transaction order, then hand it to commit_batch(). Within a
  /// shard, insertion order is preserved, so a key written by two
  /// transactions of one block ends at the later value — identical to the
  /// equivalent sequence of put() calls.
  class WriteBatch {
   public:
    void add(std::string key, Bytes value, Version version);
    std::size_t size() const { return total_; }
    bool empty() const { return total_ == 0; }

   private:
    friend class StateDb;
    struct Write {
      std::string key;
      Bytes value;
      Version version;
    };
    explicit WriteBatch(std::size_t shard_count) : per_shard_(shard_count) {}

    std::vector<std::vector<Write>> per_shard_;
    std::size_t total_ = 0;
  };

  WriteBatch make_batch() const { return WriteBatch(shards_.size()); }

  /// Apply a whole batch: one version-stamped grouped pass per touched
  /// shard, each under a single lock acquisition. With a pool, shards are
  /// applied in parallel (they are disjoint, so the final state is
  /// schedule-independent); without one, in shard order.
  void commit_batch(WriteBatch&& batch, ThreadPool* pool = nullptr);

  // --- snapshots ------------------------------------------------------------
  /// Write a versioned snapshot file: a CRC-framed header (format version,
  /// chain position, shard count, key count) followed by one CRC-framed
  /// key/value/version dump per non-empty shard — the same framing as the
  /// block log, so torn or corrupt snapshots are detected, not trusted.
  /// Written to "<path>.tmp" and renamed, so a crash mid-cut never leaves a
  /// half snapshot under the real name. Returns false on I/O failure.
  bool snapshot(const std::string& path, const StateSnapshotMeta& meta) const;

  /// Replace this store's contents from a snapshot file. Returns the chain
  /// position it was cut at, or nullopt if the file is missing, torn or
  /// corrupt (the store is left cleared — fall back to full replay).
  /// Entries re-route by key hash, so the shard count may differ from the
  /// writer's.
  std::optional<StateSnapshotMeta> restore(const std::string& path);

  /// Namespacing helper: Fabric stores keys as "<chaincode>\x00<key>".
  static std::string namespaced(const std::string& chaincode,
                                const std::string& key);

  /// Shard index for a key (exposed for tests and contention metrics).
  std::size_t shard_of(const std::string& key) const;
  std::size_t shard_count() const { return shards_.size(); }

  // Access statistics (feed the timing models).
  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;
  std::uint64_t batch_commits() const { return batch_commits_; }
  /// Lock acquisitions made by commit_batch (== touched shards, summed).
  std::uint64_t batch_shard_grabs() const { return batch_shard_grabs_; }

  /// Publish size/reads/writes plus per-shard keyspace balance under
  /// "<prefix>_..." (snapshot-style, idempotent).
  void publish_metrics(obs::Registry& registry, const std::string& prefix) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, VersionedValue> data;
    mutable std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t batch_commits_ = 0;
  std::uint64_t batch_shard_grabs_ = 0;
};

/// History database: key -> list of (block, tx) that wrote it.
class HistoryDb {
 public:
  void record(const std::string& key, Version version);
  const std::vector<Version>* history(const std::string& key) const;
  std::size_t key_count() const { return data_.size(); }

 private:
  std::map<std::string, std::vector<Version>> data_;
};

}  // namespace bm::fabric

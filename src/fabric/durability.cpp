#include "fabric/durability.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "obs/metrics.hpp"

namespace bm::fabric {

namespace {

/// Snapshot heights found next to the log, newest first.
std::vector<std::uint64_t> list_snapshots(const DurabilityConfig& config) {
  std::vector<std::uint64_t> heights;
  const std::filesystem::path log(config.ledger_path);
  const std::string prefix = log.filename().string() + ".snap.";
  std::filesystem::path dir = log.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix))
      continue;
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    heights.push_back(std::stoull(digits));
  }
  std::sort(heights.rbegin(), heights.rend());
  return heights;
}

crypto::Digest digest_from(const Bytes& bytes) {
  crypto::Digest digest{};
  if (bytes.size() == digest.size())
    std::copy(bytes.begin(), bytes.end(), digest.begin());
  return digest;
}

}  // namespace

std::string DurableLedger::snapshot_path(const DurabilityConfig& config,
                                         std::uint64_t height) {
  return config.ledger_path + ".snap." + std::to_string(height);
}

DurableLedger::DurableLedger(DurabilityConfig config)
    : config_(std::move(config)), store_(config_.ledger_path) {
  // A snapshot "above" the log can exist if the log lost a tail the
  // snapshot outlived; it cannot seed appends, so it does not count as the
  // newest one.
  for (const std::uint64_t height : list_snapshots(config_)) {
    if (height <= store_.height()) {
      last_snapshot_height_ = height;
      break;
    }
  }
}

void DurableLedger::on_commit(const Ledger& ledger, const StateDb& state) {
  // Catch-up semantics: a restarted peer replaying the chain from genesis
  // re-commits blocks that are already durable. Skip them — the log holds
  // them, and re-appending would (rightly) fail the extends-the-tail check.
  if (ledger.last().block.header.number < store_.height()) return;
  store_.append(ledger.last());
  if (config_.fsync_each_block) store_.sync();

  if (config_.snapshot_interval == 0) return;
  const std::uint64_t height = store_.height();
  if (height % config_.snapshot_interval != 0) return;

  StateSnapshotMeta meta;
  meta.height = height;
  const auto& commit = ledger.last_commit_hash();
  meta.commit_hash.assign(commit.begin(), commit.end());
  const crypto::Digest header_hash = ledger.last().block.block_hash();
  meta.header_hash.assign(header_hash.begin(), header_hash.end());
  if (!state.snapshot(snapshot_path(config_, height), meta)) return;
  store_.sync();  // a snapshot must never outrun the log it replays from
  last_snapshot_height_ = height;
  snapshots_cut_ += 1;

  // Prune: keep the newest keep_snapshots files.
  const auto heights = list_snapshots(config_);
  for (std::size_t i = std::max<std::size_t>(config_.keep_snapshots, 1);
       i < heights.size(); ++i)
    std::filesystem::remove(snapshot_path(config_, heights[i]));
}

RecoveryResult DurableLedger::recover(const DurabilityConfig& config,
                                      Ledger& ledger, StateDb& state) {
  const auto started = std::chrono::steady_clock::now();
  RecoveryResult result;

  // Newest intact snapshot wins; corrupt or stale ones fall through to the
  // next, and with none left the whole log replays from genesis.
  for (const std::uint64_t height : list_snapshots(config)) {
    const auto meta = state.restore(snapshot_path(config, height));
    if (!meta || meta->height != height ||
        meta->commit_hash.size() != crypto::Digest{}.size())
      continue;
    auto chain = FileBlockStore::recover_from(config.ledger_path, height,
                                              digest_from(meta->commit_hash));
    if (chain.first_height != height) continue;  // log shorter than snapshot
    ledger = Ledger{};
    ledger.open_at(height, digest_from(meta->commit_hash),
                   digest_from(meta->header_hash));
    if (!replay_chain(chain, ledger, &state)) {
      ledger = Ledger{};
      continue;
    }
    result.ok = true;
    result.used_snapshot = true;
    result.snapshot_height = height;
    result.blocks_replayed = chain.blocks.size();
    result.torn_bytes = chain.torn_bytes;
    break;
  }

  if (!result.ok) {
    state.clear();
    ledger = Ledger{};
    auto chain = FileBlockStore::recover(config.ledger_path);
    result.torn_bytes = chain.torn_bytes;
    result.blocks_replayed = chain.blocks.size();
    result.ok = replay_chain(chain, ledger, &state);
    if (!result.ok) result.error = "full replay failed re-validation";
  }

  result.height = ledger.height();
  result.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

void DurableLedger::publish_metrics(obs::Registry& registry,
                                    const std::string& prefix) const {
  store_.publish_metrics(registry, prefix);
  registry
      .counter(prefix + "_snapshots_total",
               "state snapshots cut by this handle")
      .set(snapshots_cut_);
  registry
      .gauge(prefix + "_snapshot_age_blocks",
             "blocks committed since the newest snapshot")
      .set(static_cast<double>(snapshot_age_blocks()));
  registry
      .gauge(prefix + "_last_snapshot_height",
             "chain height of the newest snapshot")
      .set(static_cast<double>(last_snapshot_height_));
}

void DurableLedger::publish_recovery_metrics(obs::Registry& registry,
                                             const std::string& prefix,
                                             const RecoveryResult& result) {
  registry
      .gauge(prefix + "_recovery_duration_ms",
             "wall-clock time of the last recovery")
      .set(result.duration_s * 1e3);
  registry
      .gauge(prefix + "_recovery_blocks_replayed",
             "log records re-applied by the last recovery")
      .set(static_cast<double>(result.blocks_replayed));
  registry
      .gauge(prefix + "_recovery_used_snapshot",
             "1 when the last recovery restored a snapshot")
      .set(result.used_snapshot ? 1.0 : 0.0);
  registry
      .gauge(prefix + "_recovery_torn_bytes",
             "bytes the last recovery discarded at the log tail")
      .set(static_cast<double>(result.torn_bytes));
}

}  // namespace bm::fabric

// ValidatorBackend: the seam between "something that validates and commits
// blocks" and everything that drives one.
//
// The commit path has grown several interchangeable implementations — the
// pure-software pipeline (SoftwareValidator, with or without the
// endorsement-verification cache and parallel vscc), and the BMac peer's
// shadow validator used while the accelerator is degraded. Harnesses,
// benches, and the simulator only ever need the four operations below, so
// they take this interface and a factory instead of a concrete class:
// swapping backends is a one-line change at the call site, and equivalence
// ("identical flags and commit hashes through every backend") is testable
// by construction.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "fabric/ledger.hpp"
#include "fabric/policy.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"

namespace bm::obs {
class Registry;
}  // namespace bm::obs

namespace bm::fabric {

struct ValidationStats;
struct BlockValidationResult;

class ValidatorBackend {
 public:
  virtual ~ValidatorBackend() = default;

  /// Run the full validate/commit pipeline on one block, mutating the state
  /// DB and ledger (and the history index, when given). Every backend must
  /// produce byte-identical flags and commit hashes for the same inputs.
  virtual BlockValidationResult validate_and_commit(
      const Block& block, StateDb& db, Ledger& ledger,
      HistoryDb* history = nullptr) = 0;

  /// Lifetime pipeline counters (signature checks, db traffic, ...).
  virtual const ValidationStats& stats() const = 0;
  virtual void reset_stats() = 0;

  /// Publish the stats as "<prefix>_..." counters (snapshot-style).
  virtual void publish_metrics(obs::Registry& registry,
                               const std::string& prefix) const = 0;
};

/// How a harness asks for "a validator" without naming the implementation.
/// The MSP must outlive the returned backend.
using ValidatorBackendFactory = std::function<std::unique_ptr<ValidatorBackend>(
    const Msp& msp, std::map<std::string, EndorsementPolicy> policies)>;

struct SoftwareBackendOptions {
  /// Step-2 worker threads: 1 = sequential, 0 = BM_VALIDATOR_THREADS env.
  unsigned parallelism = 0;
  /// Memoize endorsement verifications; 0 disables the cache.
  std::size_t verify_cache_capacity = 0;
  /// Per-identity comb-table budget (tables held, ~16 KiB each); 0 disables.
  /// Hot endorser/creator keys then verify through two comb lookups per
  /// column instead of the generic double-scalar multiply.
  std::size_t comb_table_capacity = 0;
  /// Dependency-aware parallel commit: decide mvcc verdicts in rw-set
  /// dependency waves across the worker pool and commit out of order.
  /// Commit hashes stay byte-identical to the sequential path.
  bool parallel_commit = false;
};

/// The default backend: a SoftwareValidator with the given options.
std::unique_ptr<ValidatorBackend> make_software_backend(
    const Msp& msp, std::map<std::string, EndorsementPolicy> policies,
    SoftwareBackendOptions options = {});

/// A factory producing make_software_backend with fixed options.
ValidatorBackendFactory software_backend_factory(
    SoftwareBackendOptions options = {});

}  // namespace bm::fabric

#include "fabric/statedb.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace bm::fabric {

namespace {

/// FNV-1a over the key bytes. Stable across runs (never seeded): the shard
/// layout is part of no observable output, but determinism keeps the
/// contention metrics reproducible.
std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

StateDb::StateDb(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t StateDb::shard_of(const std::string& key) const {
  return static_cast<std::size_t>(key_hash(key) % shards_.size());
}

std::optional<VersionedValue> StateDb::get(const std::string& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.reads;
  const auto it = shard.data.find(key);
  if (it == shard.data.end()) return std::nullopt;
  return it->second;
}

void StateDb::put(const std::string& key, Bytes value, Version version) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.writes;
  shard.data[key] = VersionedValue{std::move(value), version};
}

void StateDb::apply_writes(const std::vector<KVWrite>& writes,
                           Version version) {
  for (const KVWrite& write : writes) put(write.key, write.value, version);
}

void StateDb::erase(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.data.erase(key);
}

bool StateDb::version_matches(const KVRead& read) const {
  const Shard& shard = *shards_[shard_of(read.key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.reads;
  const auto it = shard.data.find(read.key);
  if (it == shard.data.end()) return !read.version.has_value();
  return read.version.has_value() && *read.version == it->second.version;
}

std::size_t StateDb::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->data.size();
  }
  return total;
}

void StateDb::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->data.clear();
  }
}

void StateDb::WriteBatch::add(std::string key, Bytes value, Version version) {
  const std::size_t shard =
      static_cast<std::size_t>(key_hash(key) % per_shard_.size());
  per_shard_[shard].push_back(
      Write{std::move(key), std::move(value), version});
  ++total_;
}

void StateDb::commit_batch(WriteBatch&& batch, ThreadPool* pool) {
  // A batch built against a different shard count cannot be applied: the
  // grouping would route keys to the wrong shards.
  if (batch.per_shard_.size() != shards_.size()) {
    for (auto& group : batch.per_shard_)
      for (auto& write : group)
        put(std::move(write.key), std::move(write.value), write.version);
    ++batch_commits_;
    return;
  }
  ++batch_commits_;
  const auto apply_shard = [&](std::size_t s) {
    auto& group = batch.per_shard_[s];
    if (group.empty()) return;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.writes += group.size();
    for (auto& write : group)
      shard.data[std::move(write.key)] =
          VersionedValue{std::move(write.value), write.version};
  };
  std::uint64_t touched = 0;
  for (const auto& group : batch.per_shard_)
    if (!group.empty()) ++touched;
  batch_shard_grabs_ += touched;
  if (pool != nullptr && touched > 1) {
    pool->parallel_for(shards_.size(), apply_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) apply_shard(s);
  }
}

std::string StateDb::namespaced(const std::string& chaincode,
                                const std::string& key) {
  std::string out;
  out.reserve(chaincode.size() + 1 + key.size());
  out += chaincode;
  out += '\0';
  out += key;
  return out;
}

std::uint64_t StateDb::total_reads() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->reads;
  }
  return total;
}

std::uint64_t StateDb::total_writes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->writes;
  }
  return total;
}

void StateDb::publish_metrics(obs::Registry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + "_reads_total", "state database reads")
      .set(total_reads());
  registry.counter(prefix + "_writes_total", "state database writes")
      .set(total_writes());
  registry.counter(prefix + "_batch_commits_total", "batched block commits")
      .set(batch_commits_);
  registry
      .counter(prefix + "_batch_shard_grabs_total",
               "per-shard lock acquisitions made by batched commits")
      .set(batch_shard_grabs_);
  registry.gauge(prefix + "_keys", "keys currently stored")
      .set(static_cast<double>(size()));
  registry.gauge(prefix + "_shards", "key-hash shard count")
      .set(static_cast<double>(shards_.size()));
  // Keyspace balance: max shard size / mean shard size (1.0 = even).
  std::size_t max_shard = 0, total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    max_shard = std::max(max_shard, shard->data.size());
    total += shard->data.size();
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  registry
      .gauge(prefix + "_shard_imbalance",
             "largest shard relative to the mean (1.0 = even spread)")
      .set(mean > 0 ? static_cast<double>(max_shard) / mean : 0.0);
}

void HistoryDb::record(const std::string& key, Version version) {
  data_[key].push_back(version);
}

const std::vector<Version>* HistoryDb::history(const std::string& key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second;
}

}  // namespace bm::fabric

#include "fabric/statedb.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/crc32.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace bm::fabric {

namespace {

/// FNV-1a over the key bytes. Stable across runs (never seeded): the shard
/// layout is part of no observable output, but determinism keeps the
/// contention metrics reproducible.
std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

StateDb::StateDb(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t StateDb::shard_of(const std::string& key) const {
  return static_cast<std::size_t>(key_hash(key) % shards_.size());
}

std::optional<VersionedValue> StateDb::get(const std::string& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.reads;
  const auto it = shard.data.find(key);
  if (it == shard.data.end()) return std::nullopt;
  return it->second;
}

void StateDb::put(const std::string& key, Bytes value, Version version) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.writes;
  shard.data[key] = VersionedValue{std::move(value), version};
}

void StateDb::apply_writes(const std::vector<KVWrite>& writes,
                           Version version) {
  for (const KVWrite& write : writes) put(write.key, write.value, version);
}

void StateDb::erase(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.data.erase(key);
}

bool StateDb::version_matches(const KVRead& read) const {
  const Shard& shard = *shards_[shard_of(read.key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.reads;
  const auto it = shard.data.find(read.key);
  if (it == shard.data.end()) return !read.version.has_value();
  return read.version.has_value() && *read.version == it->second.version;
}

std::size_t StateDb::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->data.size();
  }
  return total;
}

void StateDb::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->data.clear();
  }
}

void StateDb::WriteBatch::add(std::string key, Bytes value, Version version) {
  const std::size_t shard =
      static_cast<std::size_t>(key_hash(key) % per_shard_.size());
  per_shard_[shard].push_back(
      Write{std::move(key), std::move(value), version});
  ++total_;
}

void StateDb::commit_batch(WriteBatch&& batch, ThreadPool* pool) {
  // A batch built against a different shard count cannot be applied: the
  // grouping would route keys to the wrong shards.
  if (batch.per_shard_.size() != shards_.size()) {
    for (auto& group : batch.per_shard_)
      for (auto& write : group)
        put(std::move(write.key), std::move(write.value), write.version);
    ++batch_commits_;
    return;
  }
  ++batch_commits_;
  const auto apply_shard = [&](std::size_t s) {
    auto& group = batch.per_shard_[s];
    if (group.empty()) return;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.writes += group.size();
    for (auto& write : group)
      shard.data[std::move(write.key)] =
          VersionedValue{std::move(write.value), write.version};
  };
  std::uint64_t touched = 0;
  for (const auto& group : batch.per_shard_)
    if (!group.empty()) ++touched;
  batch_shard_grabs_ += touched;
  if (pool != nullptr && touched > 1) {
    pool->parallel_for(shards_.size(), apply_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) apply_shard(s);
  }
}

namespace {

constexpr std::uint32_t kSnapMagic = 0x424D5353;  // "BMSS"
constexpr std::uint32_t kSnapVersion = 1;
constexpr std::size_t kSnapHeaderSize = 12;  // magic + len + crc
constexpr std::uint32_t kSnapMaxFrame = 256u << 20;  // corrupt-length guard

void snap_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void snap_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void snap_bytes(Bytes& out, ByteView v) {
  snap_u32(out, static_cast<std::uint32_t>(v.size()));
  bm::append(out, v);
}

void snap_string(Bytes& out, const std::string& v) {
  snap_u32(out, static_cast<std::uint32_t>(v.size()));
  out.insert(out.end(), v.begin(), v.end());
}

/// Bounds-checked little-endian reader over one frame payload.
struct SnapReader {
  ByteView data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (pos + 4 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | data[pos + static_cast<std::size_t>(i)];
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (pos + 8 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) | data[pos + static_cast<std::size_t>(i)];
    pos += 8;
    return v;
  }

  ByteView bytes() {
    const std::uint32_t n = u32();
    if (!ok || pos + n > data.size()) {
      ok = false;
      return {};
    }
    const ByteView v = data.subspan(pos, n);
    pos += n;
    return v;
  }
};

bool write_snap_frame(std::FILE* f, const Bytes& payload) {
  Bytes frame;
  snap_u32(frame, kSnapMagic);
  snap_u32(frame, static_cast<std::uint32_t>(payload.size()));
  snap_u32(frame, crc32(payload));
  bm::append(frame, payload);
  return std::fwrite(frame.data(), 1, frame.size(), f) == frame.size();
}

/// Read one CRC-framed payload; false on EOF, bad magic, bad length or CRC.
bool read_snap_frame(std::FILE* f, Bytes* payload) {
  std::uint8_t header[kSnapHeaderSize];
  if (std::fread(header, 1, kSnapHeaderSize, f) != kSnapHeaderSize)
    return false;
  SnapReader reader{ByteView(header, kSnapHeaderSize)};
  if (reader.u32() != kSnapMagic) return false;
  const std::uint32_t len = reader.u32();
  const std::uint32_t crc = reader.u32();
  if (len > kSnapMaxFrame) return false;
  payload->resize(len);
  if (std::fread(payload->data(), 1, len, f) != len) return false;
  return crc32(*payload) == crc;
}

}  // namespace

bool StateDb::snapshot(const std::string& path,
                       const StateSnapshotMeta& meta) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;

  std::vector<std::uint32_t> populated;
  std::uint64_t key_count = 0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    if (shards_[s]->data.empty()) continue;
    populated.push_back(s);
    key_count += shards_[s]->data.size();
  }

  Bytes header;
  snap_u32(header, kSnapVersion);
  snap_u64(header, meta.height);
  snap_bytes(header, meta.commit_hash);
  snap_bytes(header, meta.header_hash);
  snap_u32(header, static_cast<std::uint32_t>(shards_.size()));
  snap_u32(header, static_cast<std::uint32_t>(populated.size()));
  snap_u64(header, key_count);
  bool ok = write_snap_frame(f, header);

  Bytes payload;
  for (const std::uint32_t s : populated) {
    if (!ok) break;
    payload.clear();
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    snap_u32(payload, s);
    snap_u64(payload, shards_[s]->data.size());
    for (const auto& [key, value] : shards_[s]->data) {
      snap_string(payload, key);
      snap_bytes(payload, value.value);
      snap_u64(payload, value.version.block_num);
      snap_u32(payload, value.version.tx_num);
    }
    ok = write_snap_frame(f, payload);
  }
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<StateSnapshotMeta> StateDb::restore(const std::string& path) {
  clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;

  Bytes payload;
  StateSnapshotMeta meta;
  std::uint32_t frames = 0;
  std::uint64_t key_count = 0;
  {
    if (!read_snap_frame(f, &payload)) {
      std::fclose(f);
      return std::nullopt;
    }
    SnapReader reader{payload};
    const std::uint32_t version = reader.u32();
    meta.height = reader.u64();
    const ByteView commit = reader.bytes();
    meta.commit_hash.assign(commit.begin(), commit.end());
    const ByteView header_hash = reader.bytes();
    meta.header_hash.assign(header_hash.begin(), header_hash.end());
    reader.u32();  // writer's shard count: informational only
    frames = reader.u32();
    key_count = reader.u64();
    if (!reader.ok || version != kSnapVersion ||
        reader.pos != payload.size()) {
      std::fclose(f);
      return std::nullopt;
    }
  }

  std::uint64_t restored = 0;
  for (std::uint32_t frame = 0; frame < frames; ++frame) {
    if (!read_snap_frame(f, &payload)) {
      std::fclose(f);
      clear();
      return std::nullopt;
    }
    SnapReader reader{payload};
    reader.u32();  // writer's shard index: keys re-route by hash below
    const std::uint64_t entries = reader.u64();
    for (std::uint64_t e = 0; e < entries && reader.ok; ++e) {
      const ByteView key_bytes = reader.bytes();
      std::string key(key_bytes.begin(), key_bytes.end());
      const ByteView value = reader.bytes();
      Version version;
      version.block_num = reader.u64();
      version.tx_num = reader.u32();
      if (!reader.ok) break;
      put(std::move(key), Bytes(value.begin(), value.end()), version);
      ++restored;
    }
    if (!reader.ok || reader.pos != payload.size()) {
      std::fclose(f);
      clear();
      return std::nullopt;
    }
  }
  // Exactly the promised keys, and nothing after the last frame.
  const bool trailing = std::fgetc(f) != EOF;
  std::fclose(f);
  if (restored != key_count || trailing) {
    clear();
    return std::nullopt;
  }
  return meta;
}

std::string StateDb::namespaced(const std::string& chaincode,
                                const std::string& key) {
  std::string out;
  out.reserve(chaincode.size() + 1 + key.size());
  out += chaincode;
  out += '\0';
  out += key;
  return out;
}

std::uint64_t StateDb::total_reads() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->reads;
  }
  return total;
}

std::uint64_t StateDb::total_writes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->writes;
  }
  return total;
}

void StateDb::publish_metrics(obs::Registry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + "_reads_total", "state database reads")
      .set(total_reads());
  registry.counter(prefix + "_writes_total", "state database writes")
      .set(total_writes());
  registry.counter(prefix + "_batch_commits_total", "batched block commits")
      .set(batch_commits_);
  registry
      .counter(prefix + "_batch_shard_grabs_total",
               "per-shard lock acquisitions made by batched commits")
      .set(batch_shard_grabs_);
  registry.gauge(prefix + "_keys", "keys currently stored")
      .set(static_cast<double>(size()));
  registry.gauge(prefix + "_shards", "key-hash shard count")
      .set(static_cast<double>(shards_.size()));
  // Keyspace balance: max shard size / mean shard size (1.0 = even).
  std::size_t max_shard = 0, total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    max_shard = std::max(max_shard, shard->data.size());
    total += shard->data.size();
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  registry
      .gauge(prefix + "_shard_imbalance",
             "largest shard relative to the mean (1.0 = even spread)")
      .set(mean > 0 ? static_cast<double>(max_shard) / mean : 0.0);
}

void HistoryDb::record(const std::string& key, Version version) {
  data_[key].push_back(version);
}

const std::vector<Version>* HistoryDb::history(const std::string& key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second;
}

}  // namespace bm::fabric

#include "fabric/statedb.hpp"

namespace bm::fabric {

std::optional<VersionedValue> StateDb::get(const std::string& key) const {
  ++reads_;
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void StateDb::put(const std::string& key, Bytes value, Version version) {
  ++writes_;
  data_[key] = VersionedValue{std::move(value), version};
}

void StateDb::apply_writes(const std::vector<KVWrite>& writes,
                           Version version) {
  for (const KVWrite& write : writes) put(write.key, write.value, version);
}

bool StateDb::version_matches(const KVRead& read) const {
  ++reads_;
  const auto it = data_.find(read.key);
  if (it == data_.end()) return !read.version.has_value();
  return read.version.has_value() && *read.version == it->second.version;
}

std::string StateDb::namespaced(const std::string& chaincode,
                                const std::string& key) {
  std::string out;
  out.reserve(chaincode.size() + 1 + key.size());
  out += chaincode;
  out += '\0';
  out += key;
  return out;
}

void HistoryDb::record(const std::string& key, Version version) {
  data_[key].push_back(version);
}

const std::vector<Version>* HistoryDb::history(const std::string& key) const {
  const auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second;
}

}  // namespace bm::fabric

#include "fabric/transaction.hpp"

#include "crypto/der.hpp"
#include "wire/proto.hpp"

namespace bm::fabric {

using namespace txfield;

crypto::Digest endorsement_digest(std::string_view chaincode_id,
                                  ByteView rwset_bytes,
                                  ByteView endorser_cert) {
  return EndorsementDigester(chaincode_id, rwset_bytes).digest(endorser_cert);
}

EndorsementDigester::EndorsementDigester(std::string_view chaincode_id,
                                         ByteView rwset_bytes) {
  prefix_.update(to_bytes(chaincode_id));
  prefix_.update(rwset_bytes);
}

crypto::Digest EndorsementDigester::digest(ByteView endorser_cert) const {
  crypto::Sha256 h = prefix_;  // fork the midstate; the prefix stays intact
  h.update(endorser_cert);
  return h.finish();
}

Bytes build_envelope(const TxProposal& proposal, const Identity& client,
                     const std::vector<const Identity*>& endorsers) {
  const Bytes rwset_bytes = proposal.rwset.marshal();
  const EndorsementDigester digester(proposal.chaincode_id, rwset_bytes);
  std::vector<Endorsement> ends;
  ends.reserve(endorsers.size());
  for (const Identity* endorser : endorsers) {
    Endorsement e;
    e.endorser_cert = endorser->cert.marshal();
    const crypto::Digest digest = digester.digest(e.endorser_cert);
    e.signature = crypto::der_encode_signature(endorser->sign(digest));
    ends.push_back(std::move(e));
  }
  return build_envelope_with_endorsements(proposal, client, ends);
}

Bytes build_envelope_with_endorsements(const TxProposal& proposal,
                                       const Identity& client,
                                       const std::vector<Endorsement>& ends) {
  const Bytes rwset_bytes = proposal.rwset.marshal();

  // TransactionAction
  wire::ProtoWriter action;
  action.string_field(kChaincodeId, proposal.chaincode_id);
  action.bytes_field(kRwset, rwset_bytes);
  // ProposalResponsePayload equivalent: proposal hash + chaincode events.
  // Real Fabric transactions carry this alongside the rwset; it is part of
  // the non-identity payload the BMac protocol cannot strip.
  {
    wire::ProtoWriter response;
    response.bytes_field(1, crypto::digest_bytes(crypto::sha256(rwset_bytes)));
    Bytes events;
    crypto::Digest seed = crypto::sha256(to_bytes(proposal.tx_id));
    while (events.size() < 224) {
      append(events, crypto::digest_view(seed));
      seed = crypto::sha256(crypto::digest_view(seed));
    }
    events.resize(224);
    response.bytes_field(2, events);
    response.varint_field(3, 200);  // response status
    action.message_field(kResponsePayload, response);
  }
  for (const Endorsement& endorsement : ends) {
    wire::ProtoWriter e;
    e.bytes_field(kEndorserCert, endorsement.endorser_cert);
    e.bytes_field(kEndorserSig, endorsement.signature);
    action.message_field(kEndorsement, e);
  }

  // Header
  wire::ProtoWriter channel_header;
  channel_header.string_field(kChannelId, proposal.channel_id);
  channel_header.string_field(kTxId, proposal.tx_id);
  channel_header.varint_field(kEpoch, 0);
  channel_header.varint_field(kType, 3);  // ENDORSER_TRANSACTION

  wire::ProtoWriter signature_header;
  const Bytes creator_cert = client.cert.marshal();
  signature_header.bytes_field(kCreatorCert, creator_cert);
  signature_header.bytes_field(
      kNonce, crypto::digest_bytes(crypto::sha256(to_bytes(proposal.tx_id))));

  wire::ProtoWriter header;
  header.message_field(kChannelHeader, channel_header);
  header.message_field(kSignatureHeader, signature_header);

  // Payload
  wire::ProtoWriter payload;
  payload.message_field(kHeader, header);
  payload.message_field(kAction, action);
  const Bytes payload_bytes = payload.take();

  // Envelope
  wire::ProtoWriter envelope;
  envelope.bytes_field(kPayload, payload_bytes);
  envelope.bytes_field(kSignature, crypto::der_encode_signature(client.sign(
                                       crypto::sha256(payload_bytes))));
  return envelope.take();
}

std::optional<ParsedTransaction> parse_envelope(ByteView envelope) {
  ParsedTransaction tx;

  const auto payload = wire::find_bytes_field(envelope, kPayload);
  const auto signature = wire::find_bytes_field(envelope, kSignature);
  if (!payload || !signature) return std::nullopt;
  tx.payload_bytes.assign(payload->begin(), payload->end());
  tx.signature.assign(signature->begin(), signature->end());

  const auto header = wire::find_bytes_field(*payload, kHeader);
  const auto action = wire::find_bytes_field(*payload, kAction);
  if (!header || !action) return std::nullopt;

  const auto channel_header = wire::find_bytes_field(*header, kChannelHeader);
  const auto signature_header =
      wire::find_bytes_field(*header, kSignatureHeader);
  if (!channel_header || !signature_header) return std::nullopt;

  if (const auto channel_id =
          wire::find_bytes_field(*channel_header, kChannelId))
    tx.channel_id = to_string(*channel_id);
  if (const auto tx_id = wire::find_bytes_field(*channel_header, kTxId))
    tx.tx_id = to_string(*tx_id);

  const auto creator = wire::find_bytes_field(*signature_header, kCreatorCert);
  if (!creator) return std::nullopt;
  tx.creator_cert.assign(creator->begin(), creator->end());
  auto creator_cert = Certificate::unmarshal(*creator);
  if (!creator_cert) return std::nullopt;
  tx.creator = std::move(*creator_cert);

  if (const auto chaincode = wire::find_bytes_field(*action, kChaincodeId))
    tx.chaincode_id = to_string(*chaincode);
  const auto rwset_bytes = wire::find_bytes_field(*action, kRwset);
  if (!rwset_bytes) return std::nullopt;
  tx.rwset_bytes.assign(rwset_bytes->begin(), rwset_bytes->end());
  auto rwset = ReadWriteSet::unmarshal(*rwset_bytes);
  if (!rwset) return std::nullopt;
  tx.rwset = std::move(*rwset);

  for (const ByteView endorsement_bytes :
       wire::find_repeated_bytes(*action, kEndorsement)) {
    ParsedTransaction::ParsedEndorsement endorsement;
    const auto cert = wire::find_bytes_field(endorsement_bytes, kEndorserCert);
    const auto sig = wire::find_bytes_field(endorsement_bytes, kEndorserSig);
    if (!cert || !sig) return std::nullopt;
    endorsement.cert_bytes.assign(cert->begin(), cert->end());
    auto parsed_cert = Certificate::unmarshal(*cert);
    if (!parsed_cert) return std::nullopt;
    endorsement.cert = std::move(*parsed_cert);
    endorsement.signature.assign(sig->begin(), sig->end());
    tx.endorsements.push_back(std::move(endorsement));
  }
  return tx;
}

}  // namespace bm::fabric

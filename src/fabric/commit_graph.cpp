#include "fabric/commit_graph.hpp"

#include <unordered_map>

#include "fabric/statedb.hpp"

namespace bm::fabric {

namespace {

/// Wave constraints seen so far for one key. Both are running maxima over
/// the transactions already placed: a later reader must clear every prior
/// writer (not just the last — an early writer can land in a late wave when
/// its own reads hold it back), and a later writer must not fold in before
/// any prior reader has been decided.
struct KeyWaves {
  std::uint32_t max_writer_wave = 0;  ///< valid iff has_writer
  std::uint32_t max_reader_wave = 0;  ///< valid iff has_reader
  bool has_writer = false;
  bool has_reader = false;
};

}  // namespace

CommitSchedule build_commit_schedule(
    const std::vector<ParsedTransaction>& txs,
    const std::vector<TxValidationCode>& flags) {
  CommitSchedule schedule;
  std::unordered_map<std::string, KeyWaves> keys;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> placed;  // (wave, tx)
  std::uint32_t last_wave = 0;

  for (std::uint32_t i = 0; i < txs.size(); ++i) {
    if (flags[i] != TxValidationCode::kValid) continue;
    const ParsedTransaction& tx = txs[i];

    std::uint32_t wave = 0;
    // True dependencies: this transaction's verdict inspects every key it
    // reads, so it must run strictly after any prior writer of those keys.
    for (const KVRead& read : tx.rwset.reads) {
      const auto it = keys.find(StateDb::namespaced(tx.chaincode_id, read.key));
      if (it != keys.end() && it->second.has_writer) {
        wave = std::max(wave, it->second.max_writer_wave + 1);
        ++schedule.dependencies;
      }
    }
    // Anti dependencies: this transaction's writes fold in after its wave,
    // so every prior reader of those keys must be decided no later.
    for (const KVWrite& write : tx.rwset.writes) {
      const auto it =
          keys.find(StateDb::namespaced(tx.chaincode_id, write.key));
      if (it != keys.end() && it->second.has_reader) {
        wave = std::max(wave, it->second.max_reader_wave);
        ++schedule.dependencies;
      }
    }

    for (const KVRead& read : tx.rwset.reads) {
      KeyWaves& kw = keys[StateDb::namespaced(tx.chaincode_id, read.key)];
      kw.max_reader_wave =
          kw.has_reader ? std::max(kw.max_reader_wave, wave) : wave;
      kw.has_reader = true;
    }
    for (const KVWrite& write : tx.rwset.writes) {
      KeyWaves& kw = keys[StateDb::namespaced(tx.chaincode_id, write.key)];
      kw.max_writer_wave =
          kw.has_writer ? std::max(kw.max_writer_wave, wave) : wave;
      kw.has_writer = true;
    }

    placed.emplace_back(wave, i);
    last_wave = std::max(last_wave, wave);
    ++schedule.scheduled_txs;
  }

  if (placed.empty()) return schedule;
  schedule.waves.resize(last_wave + 1);
  // `placed` is in transaction order, so each wave's indices ascend.
  for (const auto& [wave, tx] : placed) schedule.waves[wave].push_back(tx);
  return schedule;
}

}  // namespace bm::fabric

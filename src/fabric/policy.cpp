#include "fabric/policy.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace bm::fabric {

PolicyNodePtr PolicyNode::clone() const {
  auto copy = std::make_unique<PolicyNode>();
  copy->kind = kind;
  copy->principal = principal;
  copy->k = k;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->clone());
  return copy;
}

EndorsementPolicy::EndorsementPolicy(PolicyNodePtr root, std::string text)
    : root_(std::move(root)), text_(std::move(text)) {}

EndorsementPolicy::EndorsementPolicy(const EndorsementPolicy& other)
    : root_(other.root_ ? other.root_->clone() : nullptr),
      text_(other.text_) {}

EndorsementPolicy& EndorsementPolicy::operator=(
    const EndorsementPolicy& other) {
  if (this != &other) {
    root_ = other.root_ ? other.root_->clone() : nullptr;
    text_ = other.text_;
  }
  return *this;
}

namespace {

bool eval_node(const PolicyNode& node, const PrincipalPredicate& satisfied) {
  switch (node.kind) {
    case PolicyNode::Kind::kPrincipal:
      return satisfied(node.principal);
    case PolicyNode::Kind::kAnd:
      return std::all_of(node.children.begin(), node.children.end(),
                         [&](const PolicyNodePtr& c) {
                           return eval_node(*c, satisfied);
                         });
    case PolicyNode::Kind::kOr:
      return std::any_of(node.children.begin(), node.children.end(),
                         [&](const PolicyNodePtr& c) {
                           return eval_node(*c, satisfied);
                         });
    case PolicyNode::Kind::kKOutOf: {
      int count = 0;
      for (const auto& child : node.children)
        if (eval_node(*child, satisfied)) ++count;
      return count >= node.k;
    }
  }
  return false;
}

void collect_principals(const PolicyNode& node,
                        std::vector<PolicyPrincipal>& out) {
  if (node.kind == PolicyNode::Kind::kPrincipal) {
    if (std::find(out.begin(), out.end(), node.principal) == out.end())
      out.push_back(node.principal);
    return;
  }
  for (const auto& child : node.children) collect_principals(*child, out);
}

/// Minimum number of distinct satisfied principals that can make the node
/// true (assuming principals are independent).
int min_cost(const PolicyNode& node) {
  switch (node.kind) {
    case PolicyNode::Kind::kPrincipal:
      return 1;
    case PolicyNode::Kind::kAnd: {
      int total = 0;
      for (const auto& child : node.children) total += min_cost(*child);
      return total;
    }
    case PolicyNode::Kind::kOr: {
      int best = 1 << 20;
      for (const auto& child : node.children)
        best = std::min(best, min_cost(*child));
      return best;
    }
    case PolicyNode::Kind::kKOutOf: {
      std::vector<int> costs;
      costs.reserve(node.children.size());
      for (const auto& child : node.children)
        costs.push_back(min_cost(*child));
      std::sort(costs.begin(), costs.end());
      int total = 0;
      for (int i = 0; i < node.k && i < static_cast<int>(costs.size()); ++i)
        total += costs[i];
      return total;
    }
  }
  return 0;
}

}  // namespace

bool EndorsementPolicy::evaluate(const PrincipalPredicate& satisfied) const {
  return root_ != nullptr && eval_node(*root_, satisfied);
}

bool EndorsementPolicy::evaluate_ids(
    const std::vector<EncodedId>& valid_endorsers, const Msp& msp) const {
  return evaluate([&](const PolicyPrincipal& principal) {
    const CertificateAuthority* ca = msp.find_org(principal.org);
    if (ca == nullptr) return false;
    return std::any_of(valid_endorsers.begin(), valid_endorsers.end(),
                       [&](EncodedId id) {
                         return id.org() == ca->org_index() &&
                                id.role() == principal.role;
                       });
  });
}

std::vector<PolicyPrincipal> EndorsementPolicy::principals() const {
  std::vector<PolicyPrincipal> out;
  if (root_) collect_principals(*root_, out);
  return out;
}

int EndorsementPolicy::min_endorsements_to_satisfy() const {
  return root_ ? min_cost(*root_) : 0;
}

namespace {
int count_literals(const PolicyNode& node) {
  if (node.kind == PolicyNode::Kind::kPrincipal) return 1;
  int total = 0;
  for (const auto& child : node.children) total += count_literals(*child);
  return total;
}
}  // namespace

int EndorsementPolicy::literal_references() const {
  return root_ ? count_literals(*root_) : 0;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Token {
  enum class Type { kInt, kIdent, kAnd, kOr, kOf, kOrgs, kLParen, kRParen,
                    kComma, kEnd };
  Type type = Type::kEnd;
  std::string text;
  std::uint64_t number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(normalize(text)) { advance(); }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  /// Rewrite "-outof-" as " of " and split "2of3" into "2 of 3" so the
  /// simple word lexer below can handle the paper's shorthand forms.
  static std::string normalize(std::string_view in) {
    std::string s(in);
    for (std::size_t i = 0; (i = s.find("-outof-", i)) != std::string::npos;)
      s.replace(i, 7, " of ");
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == 'o' && i + 1 < s.size() && s[i + 1] == 'f' && i > 0 &&
          std::isdigit(static_cast<unsigned char>(s[i - 1])) &&
          i + 2 < s.size() &&
          (std::isdigit(static_cast<unsigned char>(s[i + 2])) ||
           s[i + 2] == '(' || s[i + 2] == ' ')) {
        out += " of ";
        ++i;  // skip 'f'
      } else {
        out += s[i];
      }
    }
    return out;
  }

  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_.type = Token::Type::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (c == '(') { current_.type = Token::Type::kLParen; ++pos_; return; }
    if (c == ')') { current_.type = Token::Type::kRParen; ++pos_; return; }
    if (c == ',') { current_.type = Token::Type::kComma; ++pos_; return; }
    if (c == '&') {
      current_.type = Token::Type::kAnd;
      pos_ += (pos_ + 1 < text_.size() && text_[pos_ + 1] == '&') ? 2 : 1;
      return;
    }
    if (c == '|') {
      current_.type = Token::Type::kOr;
      pos_ += (pos_ + 1 < text_.size() && text_[pos_ + 1] == '|') ? 2 : 1;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
      current_.type = Token::Type::kInt;
      current_.number = v;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.'))
        word += text_[pos_++];
      std::string lower = word;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (lower == "and") current_.type = Token::Type::kAnd;
      else if (lower == "or") current_.type = Token::Type::kOr;
      else if (lower == "of" || lower == "outof")
        current_.type = Token::Type::kOf;
      else if (lower == "orgs" || lower == "org")
        current_.type = Token::Type::kOrgs;
      else {
        current_.type = Token::Type::kIdent;
        current_.text = word;
      }
      return;
    }
    current_.type = Token::Type::kEnd;
    current_.text = std::string(1, c);
    error_ = true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  Token current_;
  bool error_ = false;
};

class Parser {
 public:
  Parser(std::string_view text, const std::vector<std::string>& orgs)
      : lexer_(text), orgs_(orgs) {}

  std::variant<PolicyNodePtr, PolicyParseError> parse() {
    auto node = parse_or();
    if (failed_) return error_;
    if (lexer_.peek().type != Token::Type::kEnd) {
      return PolicyParseError{"unexpected trailing input", lexer_.peek().pos};
    }
    return node;
  }

 private:
  PolicyNodePtr fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      error_ = PolicyParseError{std::move(message), lexer_.peek().pos};
    }
    return nullptr;
  }

  PolicyNodePtr parse_or() {
    auto left = parse_and();
    if (failed_) return nullptr;
    while (lexer_.peek().type == Token::Type::kOr) {
      lexer_.take();
      auto right = parse_and();
      if (failed_) return nullptr;
      auto node = std::make_unique<PolicyNode>();
      node->kind = PolicyNode::Kind::kOr;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  PolicyNodePtr parse_and() {
    auto left = parse_primary();
    if (failed_) return nullptr;
    while (lexer_.peek().type == Token::Type::kAnd) {
      lexer_.take();
      auto right = parse_primary();
      if (failed_) return nullptr;
      auto node = std::make_unique<PolicyNode>();
      node->kind = PolicyNode::Kind::kAnd;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  PolicyNodePtr parse_primary() {
    const Token& t = lexer_.peek();
    if (t.type == Token::Type::kLParen) {
      lexer_.take();
      auto inner = parse_or();
      if (failed_) return nullptr;
      if (lexer_.peek().type != Token::Type::kRParen)
        return fail("expected ')'");
      lexer_.take();
      return inner;
    }
    if (t.type == Token::Type::kInt) return parse_kofn();
    if (t.type == Token::Type::kIdent) return parse_principal();
    return fail("expected '(', number or principal");
  }

  PolicyNodePtr parse_kofn() {
    const Token k_tok = lexer_.take();
    if (lexer_.peek().type != Token::Type::kOf)
      return fail("expected 'of' / '-outof-' after threshold");
    lexer_.take();

    auto node = std::make_unique<PolicyNode>();
    node->kind = PolicyNode::Kind::kKOutOf;
    node->k = static_cast<int>(k_tok.number);

    if (lexer_.peek().type == Token::Type::kInt) {
      // "k of n [orgs]": draw the first n orgs from the universe.
      const auto n = lexer_.take().number;
      if (lexer_.peek().type == Token::Type::kOrgs) lexer_.take();
      if (n > orgs_.size())
        return fail("policy needs more orgs than the network has");
      for (std::size_t i = 0; i < n; ++i) {
        auto leaf = std::make_unique<PolicyNode>();
        leaf->kind = PolicyNode::Kind::kPrincipal;
        leaf->principal = PolicyPrincipal{orgs_[i], Role::kPeer};
        node->children.push_back(std::move(leaf));
      }
    } else if (lexer_.peek().type == Token::Type::kLParen) {
      // "k of (expr, expr, ...)"
      lexer_.take();
      for (;;) {
        auto child = parse_or();
        if (failed_) return nullptr;
        node->children.push_back(std::move(child));
        if (lexer_.peek().type == Token::Type::kComma) {
          lexer_.take();
          continue;
        }
        break;
      }
      if (lexer_.peek().type != Token::Type::kRParen)
        return fail("expected ')' closing k-of list");
      lexer_.take();
    } else {
      return fail("expected count or '(' after 'of'");
    }

    if (node->k <= 0 || node->k > static_cast<int>(node->children.size()))
      return fail("k-out-of-n threshold out of range");
    return node;
  }

  PolicyNodePtr parse_principal() {
    const Token t = lexer_.take();
    auto node = std::make_unique<PolicyNode>();
    node->kind = PolicyNode::Kind::kPrincipal;
    std::string org = t.text;
    Role role = Role::kPeer;
    if (const auto dot = org.find('.'); dot != std::string::npos) {
      std::string role_str = org.substr(dot + 1);
      org = org.substr(0, dot);
      std::transform(role_str.begin(), role_str.end(), role_str.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (role_str == "orderer") role = Role::kOrderer;
      else if (role_str == "admin") role = Role::kAdmin;
      else if (role_str == "peer") role = Role::kPeer;
      else if (role_str == "client") role = Role::kClient;
      else return fail("unknown role '" + role_str + "'");
    }
    node->principal = PolicyPrincipal{std::move(org), role};
    return node;
  }

  Lexer lexer_;
  const std::vector<std::string>& orgs_;
  bool failed_ = false;
  PolicyParseError error_;
};

}  // namespace

std::variant<EndorsementPolicy, PolicyParseError> parse_policy(
    std::string_view text, const std::vector<std::string>& org_universe) {
  Parser parser(text, org_universe);
  auto result = parser.parse();
  if (auto* err = std::get_if<PolicyParseError>(&result)) return *err;
  return EndorsementPolicy(std::move(std::get<PolicyNodePtr>(result)),
                           std::string(text));
}

EndorsementPolicy parse_policy_or_throw(
    std::string_view text, const std::vector<std::string>& org_universe) {
  auto result = parse_policy(text, org_universe);
  if (auto* err = std::get_if<PolicyParseError>(&result))
    throw std::invalid_argument("policy parse error at " +
                                std::to_string(err->position) + ": " +
                                err->message);
  return std::move(std::get<EndorsementPolicy>(result));
}

}  // namespace bm::fabric

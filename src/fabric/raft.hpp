// Raft consensus for the ordering service (§2.1 lists Raft as Fabric's
// production consensus; §3.5: "Only the lead orderer in a multi-node Raft
// ordering service sends the block through our protocol").
//
// A compact but real Raft (Ongaro & Ousterhout): randomized election
// timeouts, terms, RequestVote / AppendEntries with log-consistency checks,
// majority commit, and leader heartbeats — running on the discrete-event
// simulator with configurable message delay, jitter and loss. The
// replicated log carries opaque payloads (marshaled transaction envelopes);
// the RaftOrderingService layers Fabric's block cutter on top and lets the
// current leader cut and sign blocks.
#pragma once

#include <deque>
#include <functional>
#include <variant>

#include "common/rng.hpp"
#include "fabric/orderer.hpp"
#include "net/faults.hpp"
#include "sim/simulation.hpp"

namespace bm::fabric {

struct RaftLogEntry {
  std::uint64_t term = 0;
  Bytes payload;
};

struct RequestVote {
  std::uint64_t term = 0;
  int candidate = -1;
  std::uint64_t last_log_index = 0;  ///< 1-based; 0 = empty log
  std::uint64_t last_log_term = 0;
};

struct RequestVoteReply {
  std::uint64_t term = 0;
  bool granted = false;
  int voter = -1;
};

struct AppendEntries {
  std::uint64_t term = 0;
  int leader = -1;
  std::uint64_t prev_log_index = 0;
  std::uint64_t prev_log_term = 0;
  std::vector<RaftLogEntry> entries;
  std::uint64_t leader_commit = 0;
};

struct AppendEntriesReply {
  std::uint64_t term = 0;
  bool success = false;
  int follower = -1;
  std::uint64_t match_index = 0;
};

using RaftMessage = std::variant<RequestVote, RequestVoteReply, AppendEntries,
                                 AppendEntriesReply>;

/// Transport callback: deliver `message` from node `from` to node `to`
/// (the cluster schedules it onto the simulated network).
using RaftSendFn = std::function<void(int from, int to, RaftMessage message)>;

enum class RaftRole { kFollower, kCandidate, kLeader };

class RaftNode {
 public:
  struct Config {
    sim::Time election_timeout_min = 150 * sim::kMillisecond;
    sim::Time election_timeout_max = 300 * sim::kMillisecond;
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
    std::size_t max_entries_per_append = 16;
  };

  RaftNode(sim::Simulation& sim, int id, int cluster_size, Config config,
           RaftSendFn send, std::uint64_t seed);

  /// Arm the initial election timer.
  void start();

  /// Take the node offline (crash) / back online (recover as follower).
  void stop();
  void restart();
  bool running() const { return running_; }

  /// Leader-only: append a payload to the replicated log. Returns false if
  /// this node is not the leader.
  bool propose(Bytes payload);

  void on_message(int from, RaftMessage message);

  /// Callback fired, in order, for every newly committed entry.
  void set_commit_callback(std::function<void(const RaftLogEntry&)> cb) {
    on_commit_ = std::move(cb);
  }

  /// Callback fired whenever this node wins an election (it may fire more
  /// than once across its lifetime). The ordering service uses it to emit
  /// the cut-but-unsent backlog after a leader change.
  void set_leader_callback(std::function<void()> cb) {
    on_leader_ = std::move(cb);
  }

  int id() const { return id_; }
  RaftRole role() const { return role_; }
  std::uint64_t term() const { return current_term_; }
  std::uint64_t commit_index() const { return commit_index_; }
  std::uint64_t log_size() const { return log_.size(); }
  const RaftLogEntry& log_at(std::uint64_t index_1based) const {
    return log_.at(index_1based - 1);
  }

 private:
  void become_follower(std::uint64_t term);
  void become_candidate();
  void become_leader();
  void reset_election_timer();
  void cancel_election_timer();
  void send_heartbeats();
  void replicate_to(int peer);
  void advance_commit_index();
  void apply_committed();

  std::uint64_t last_log_index() const { return log_.size(); }
  std::uint64_t last_log_term() const {
    return log_.empty() ? 0 : log_.back().term;
  }

  void handle(const RequestVote& msg, int from);
  void handle(const RequestVoteReply& msg);
  void handle(const AppendEntries& msg, int from);
  void handle(const AppendEntriesReply& msg);

  sim::Simulation& sim_;
  int id_;
  int cluster_size_;
  Config config_;
  RaftSendFn send_;
  Rng rng_;
  bool running_ = false;

  // Persistent state.
  std::uint64_t current_term_ = 0;
  int voted_for_ = -1;
  std::vector<RaftLogEntry> log_;  ///< log_[i] has 1-based index i+1

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  std::uint64_t commit_index_ = 0;
  std::uint64_t last_applied_ = 0;
  int votes_received_ = 0;

  // Leader state.
  std::vector<std::uint64_t> next_index_;
  std::vector<std::uint64_t> match_index_;

  sim::EventId election_timer_ = 0;
  bool election_timer_armed_ = false;
  sim::EventId heartbeat_timer_ = 0;
  bool heartbeat_timer_armed_ = false;

  std::function<void(const RaftLogEntry&)> on_commit_;
  std::function<void()> on_leader_;
};

/// A Raft cluster wired over a simulated network, layered with Fabric's
/// block cutter: committed envelopes flow through each node's cutter, and
/// the current leader signs and emits the resulting blocks.
///
/// Emission is leader-change safe: every node's cutter consumes the same
/// committed log, so block *headers* are deterministic, but only one byte
/// version (one signer) may ever enter dissemination. The service keeps a
/// canonical emitted chain and dedupes by (block_number, prev_hash): a block
/// number already emitted is suppressed (its header must match the emitted
/// one — forks_detected() counts violations, and a forking block is never
/// emitted), and a freshly elected leader first emits the backlog of blocks
/// the dead leader cut but never sent, so the stream neither forks nor
/// skips numbers across re-elections.
class RaftOrderingService {
 public:
  struct Config {
    int nodes = 3;
    std::size_t max_tx_per_block = 100;
    sim::Time message_delay = 500 * sim::kMicrosecond;
    sim::Time message_jitter = 200 * sim::kMicrosecond;
    double message_loss = 0.0;
    /// Transport-level fault schedule (Gilbert–Elliott burst loss, extra
    /// delay) applied to every node-to-node message, on its own RNG stream:
    /// enabling it never reshuffles the legacy message_loss / jitter draws.
    net::FaultConfig faults;
    RaftNode::Config raft;
    std::uint64_t seed = 1;
  };

  /// `identities` holds one orderer identity per node (all sign blocks; the
  /// paper's setup verifies whichever orderer signed).
  RaftOrderingService(sim::Simulation& sim, Config config,
                      std::vector<Identity> identities);

  void start();

  /// Submit an envelope to the current leader (fails silently if there is
  /// no leader yet — callers retry, like Fabric clients do).
  bool submit(Bytes envelope);

  /// Blocks emitted by the lead orderer, in order.
  using BlockCallback = std::function<void(Block)>;
  void set_block_callback(BlockCallback cb) { on_block_ = std::move(cb); }

  int leader() const;  ///< -1 if no leader currently known
  RaftNode& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Crash / recover a node (for failover tests).
  void stop_node(int id);
  void restart_node(int id);

  /// Schedule a network partition: while sim time is in [start, end), any
  /// message between a node in `minority` and one outside it is dropped.
  /// A leader caught on the minority side loses quorum and must step down
  /// when the healed majority's higher term reaches it.
  void add_partition(sim::Time start, sim::Time end, std::vector<int> minority);

  std::uint64_t blocks_emitted() const { return blocks_emitted_; }
  /// Cut blocks whose number was already emitted (stale or duplicate
  /// leaders re-cutting the same committed prefix) — suppressed, not sent.
  std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  /// Suppressed blocks whose header did not match the canonical chain at
  /// that number. Raft safety makes this impossible; must stay 0.
  std::uint64_t forks_detected() const { return forks_detected_; }
  std::uint64_t partition_drops() const { return partition_drops_; }
  /// Transport fault counters when Config::faults is active (null otherwise).
  const net::FaultStats* fault_stats() const {
    return faults_ ? &faults_->stats() : nullptr;
  }

 private:
  struct PartitionWindow {
    sim::Time start = 0;
    sim::Time end = 0;
    std::vector<int> minority;
  };

  void deliver(int from, int to, RaftMessage message);
  bool partitioned(int from, int to) const;
  void on_committed(int node_id, const RaftLogEntry& entry);
  void enqueue_cut(int node_id, Block block);
  void maybe_emit(int node_id);

  sim::Simulation& sim_;
  Config config_;
  Rng net_rng_;
  std::unique_ptr<net::FaultInjector> faults_;  ///< null without Config::faults
  std::vector<PartitionWindow> partitions_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<std::unique_ptr<Orderer>> cutters_;  ///< one per node
  /// Per node: blocks its cutter cut that the canonical chain has not
  /// consumed yet (a follower's copies wait here until it either becomes
  /// leader or the numbers are emitted elsewhere and they drop as dupes).
  std::vector<std::deque<Block>> cut_backlog_;
  /// Canonical emitted chain: header hash per emitted block number. The
  /// next emission must carry number emitted_hashes_.size() and a prev_hash
  /// equal to the last entry.
  std::vector<crypto::Digest> emitted_hashes_;
  BlockCallback on_block_;
  std::uint64_t blocks_emitted_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t forks_detected_ = 0;
  std::uint64_t partition_drops_ = 0;
};

}  // namespace bm::fabric

#include "fabric/rwset.hpp"

#include "wire/proto.hpp"

namespace bm::fabric {

namespace {
// ReadWriteSet: repeated reads (1), repeated writes (2).
// KVRead: key (1), exists (2), block (3), tx (4).
// KVWrite: key (1), value (2).
enum : std::uint32_t {
  kReads = 1,
  kWrites = 2,
  kKey = 1,
  kExists = 2,
  kBlockNum = 3,
  kTxNum = 4,
  kValue = 2,
};
}  // namespace

Bytes ReadWriteSet::marshal() const {
  wire::ProtoWriter w;
  for (const auto& read : reads) {
    wire::ProtoWriter r;
    r.string_field(kKey, read.key);
    r.bool_field(kExists, read.version.has_value());
    if (read.version) {
      r.varint_field(kBlockNum, read.version->block_num);
      r.varint_field(kTxNum, read.version->tx_num);
    }
    w.message_field(kReads, r);
  }
  for (const auto& write : writes) {
    wire::ProtoWriter r;
    r.string_field(kKey, write.key);
    r.bytes_field(kValue, write.value);
    w.message_field(kWrites, r);
  }
  return w.take();
}

std::optional<ReadWriteSet> ReadWriteSet::unmarshal(ByteView data) {
  ReadWriteSet out;
  wire::ProtoReader reader(data);
  while (auto f = reader.next()) {
    if (f->type != wire::WireType::kLengthDelimited) continue;
    if (f->number == kReads) {
      KVRead read;
      bool exists = false;
      Version version;
      wire::ProtoReader inner(f->bytes);
      while (auto g = inner.next()) {
        switch (g->number) {
          case kKey: read.key = to_string(g->bytes); break;
          case kExists: exists = g->varint != 0; break;
          case kBlockNum: version.block_num = g->varint; break;
          case kTxNum:
            version.tx_num = static_cast<std::uint32_t>(g->varint);
            break;
          default: break;
        }
      }
      if (!inner.ok()) return std::nullopt;
      if (exists) read.version = version;
      out.reads.push_back(std::move(read));
    } else if (f->number == kWrites) {
      KVWrite write;
      wire::ProtoReader inner(f->bytes);
      while (auto g = inner.next()) {
        switch (g->number) {
          case kKey: write.key = to_string(g->bytes); break;
          case kValue: write.value.assign(g->bytes.begin(), g->bytes.end()); break;
          default: break;
        }
      }
      if (!inner.ok()) return std::nullopt;
      out.writes.push_back(std::move(write));
    }
  }
  if (!reader.ok()) return std::nullopt;
  return out;
}

}  // namespace bm::fabric

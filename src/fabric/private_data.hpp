// Private data collections (§5).
//
// Fabric keeps private data off the public ledger: the transaction's public
// read/write set carries only SHA-256 hashes of the private keys and
// values, namespaced by collection. "The validation phase does not need to
// access the contents of a private data collection, and treats its hashed
// key-value as any other key-value pair" — so once a private write is
// folded into the rwset via these helpers, both the software validator and
// the BMac hardware pipeline handle it with no changes (which is exactly
// the paper's argument that supporting collections is a simple extension).
//
// The actual private payloads travel out of band between authorized peers;
// PrivateDataStore models that side channel so endorsing organizations can
// verify a disclosed value against the on-ledger hash.
#pragma once

#include <map>

#include "crypto/sha256.hpp"
#include "fabric/rwset.hpp"

namespace bm::fabric {

/// Deterministic hashed key for a private collection entry:
/// "pvt~<collection>~H(key)" — collision-free across collections and
/// disjoint from normal keys (no real key starts with "pvt~").
std::string private_hashed_key(const std::string& collection,
                               const std::string& key);

/// H(value): what the public write set stores in place of the value.
Bytes private_value_hash(ByteView value);

/// Fold a private write into the public read/write set (hash-only).
void add_private_write(ReadWriteSet& rwset, const std::string& collection,
                       const std::string& key, ByteView value);

/// Fold a private read into the public read set: the version observed for
/// the hashed key (nullopt when the private entry did not exist).
void add_private_read(ReadWriteSet& rwset, const std::string& collection,
                      const std::string& key,
                      std::optional<Version> version);

/// The authorized-peer side store holding actual private payloads,
/// addressed by the same hashed keys that appear on the ledger.
class PrivateDataStore {
 public:
  void put(const std::string& collection, const std::string& key, Bytes value);
  std::optional<Bytes> get(const std::string& collection,
                           const std::string& key) const;

  /// Check a disclosed value against the hash committed on the ledger (in
  /// any versioned store — the world state holds H(value) under the hashed
  /// key).
  static bool matches_ledger_hash(ByteView disclosed_value,
                                  ByteView ledger_value_hash);

  std::size_t size() const { return data_.size(); }

 private:
  std::map<std::string, Bytes> data_;  ///< hashed key -> cleartext value
};

}  // namespace bm::fabric

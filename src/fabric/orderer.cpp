#include "fabric/orderer.hpp"

#include "crypto/der.hpp"

namespace bm::fabric {

Orderer::Orderer(Identity identity, Config config)
    : identity_(std::move(identity)), config_(config) {}

std::optional<Block> Orderer::submit(Bytes envelope) {
  pending_.push_back(std::move(envelope));
  if (pending_.size() >= config_.max_tx_per_block) return cut_block();
  return std::nullopt;
}

std::optional<Block> Orderer::flush() {
  if (pending_.empty()) return std::nullopt;
  return cut_block();
}

Block Orderer::cut_block() {
  Block block;
  block.envelopes = std::move(pending_);
  pending_.clear();

  block.header.number = next_number_++;
  block.header.prev_hash = prev_hash_;
  block.header.data_hash = crypto::digest_bytes(block.compute_data_hash());

  block.metadata.orderer_cert = identity_.cert.marshal();
  block.metadata.orderer_sig = crypto::der_encode_signature(
      identity_.sign(block.signing_digest()));
  block.metadata.tx_flags.assign(
      block.envelopes.size(),
      static_cast<std::uint8_t>(TxValidationCode::kNotValidated));

  prev_hash_ = crypto::digest_bytes(block.block_hash());
  return block;
}

}  // namespace bm::fabric

// Ordering service: block cutting and signing.
//
// Models the (single lead) orderer of a Raft ordering service: it collects
// endorsed envelopes, cuts a block when the batch size is reached (or on
// explicit flush), computes the data hash, links prev_hash and signs the
// block. Consensus internals are out of scope (the paper's bottleneck is
// validation, not ordering); what matters here is producing byte-exact,
// correctly signed blocks for both the Gossip and BMac delivery paths.
#pragma once

#include "fabric/block.hpp"

namespace bm::fabric {

class Orderer {
 public:
  struct Config {
    std::size_t max_tx_per_block = 100;  ///< Fabric's BatchSize.MaxMessageCount
  };

  Orderer(Identity identity, Config config);

  /// Enqueue an endorsed envelope; returns a cut block when the batch fills.
  std::optional<Block> submit(Bytes envelope);

  /// Cut whatever is pending into a block (nullopt if nothing is pending).
  std::optional<Block> flush();

  std::uint64_t next_block_number() const { return next_number_; }
  const Identity& identity() const { return identity_; }

 private:
  Block cut_block();

  Identity identity_;
  Config config_;
  std::vector<Bytes> pending_;
  std::uint64_t next_number_ = 0;
  Bytes prev_hash_;  // empty before the genesis block
};

}  // namespace bm::fabric

#include "fabric/validator_backend.hpp"

#include "fabric/validator.hpp"

namespace bm::fabric {

std::unique_ptr<ValidatorBackend> make_software_backend(
    const Msp& msp, std::map<std::string, EndorsementPolicy> policies,
    SoftwareBackendOptions options) {
  auto backend = std::make_unique<SoftwareValidator>(msp, std::move(policies),
                                                     options.parallelism);
  if (options.verify_cache_capacity > 0)
    backend->enable_verify_cache(options.verify_cache_capacity);
  if (options.comb_table_capacity > 0)
    backend->enable_comb_cache(options.comb_table_capacity);
  backend->set_parallel_commit(options.parallel_commit);
  return backend;
}

ValidatorBackendFactory software_backend_factory(
    SoftwareBackendOptions options) {
  return [options](const Msp& msp,
                   std::map<std::string, EndorsementPolicy> policies) {
    return make_software_backend(msp, std::move(policies), options);
  };
}

}  // namespace bm::fabric

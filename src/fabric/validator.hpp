// Software-only validator peer: the functional validation/commit pipeline.
//
// Implements the five steps of Fig. 1a faithfully, including Fabric's
// quirks that the paper measures against:
//   - vscc verifies EVERY endorsement signature regardless of the policy
//     ("Fabric implementation always verifies all the endorsements of a
//     transaction, irrespective of the policy", §4.3) — the contrast to the
//     hardware short-circuit evaluator in Fig. 7e;
//   - mvcc runs sequentially over transactions in order, comparing read-set
//     versions against committed state and against earlier valid
//     transactions of the same block;
//   - commit applies write sets at version {block, tx} and appends the
//     flagged block to the ledger.
// Instrumentation counters feed the calibrated timing model used by the
// performance benches.
#pragma once

#include <map>
#include <memory>

#include "common/thread_pool.hpp"
#include "crypto/comb_cache.hpp"
#include "crypto/verify_cache.hpp"
#include "fabric/ledger.hpp"
#include "fabric/policy.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"
#include "fabric/validator_backend.hpp"
#include "obs/metrics.hpp"

namespace bm::fabric {

struct ValidationStats {
  std::uint64_t blocks_processed = 0;
  std::uint64_t block_signature_checks = 0;
  std::uint64_t creator_signature_checks = 0;
  std::uint64_t endorsement_signature_checks = 0;
  std::uint64_t db_reads = 0;
  std::uint64_t db_writes = 0;
  std::uint64_t envelopes_parsed = 0;
  /// Dependency-aware commit only (zero on the sequential path): waves the
  /// scheduler emitted, and rw-set dependencies that forced ordering.
  std::uint64_t commit_waves = 0;
  std::uint64_t commit_deps = 0;

  std::uint64_t total_ecdsa_checks() const {
    return block_signature_checks + creator_signature_checks +
           endorsement_signature_checks;
  }

  ValidationStats& operator+=(const ValidationStats& o) {
    blocks_processed += o.blocks_processed;
    block_signature_checks += o.block_signature_checks;
    creator_signature_checks += o.creator_signature_checks;
    endorsement_signature_checks += o.endorsement_signature_checks;
    db_reads += o.db_reads;
    db_writes += o.db_writes;
    envelopes_parsed += o.envelopes_parsed;
    commit_waves += o.commit_waves;
    commit_deps += o.commit_deps;
    return *this;
  }
};

struct BlockValidationResult {
  bool block_valid = false;
  std::vector<TxValidationCode> flags;
  std::uint32_t valid_tx_count = 0;
  crypto::Digest commit_hash{};  ///< zero when the block was rejected
};

class SoftwareValidator final : public ValidatorBackend {
 public:
  /// `policies` maps chaincode id -> endorsement policy. Transactions whose
  /// chaincode has no registered policy are marked invalid.
  ///
  /// `parallelism` is the number of threads used for per-transaction
  /// verification + vscc (step 2): 1 = sequential, 0 = read the
  /// BM_VALIDATOR_THREADS environment variable (default 1). Validation flags,
  /// commit order, stats, and the calibrated DES timing derived from them are
  /// byte-identical to the sequential path at any setting — only wall-clock
  /// time changes.
  SoftwareValidator(const Msp& msp,
                    std::map<std::string, EndorsementPolicy> policies,
                    unsigned parallelism = 0);

  /// Reconfigure the worker pool; same semantics as the constructor arg.
  void set_parallelism(unsigned parallelism);
  unsigned parallelism() const { return pool_ ? pool_->concurrency() : 1; }

  /// Attach a fresh endorsement-verification cache (capacity 0 detaches).
  /// Flags, commit hashes, and stats are identical with or without it —
  /// only repeated verifications get cheaper.
  void enable_verify_cache(
      std::size_t capacity = crypto::VerifyCache::kDefaultCapacity);
  /// Share an existing cache (e.g. across several validators). Null detaches.
  void set_verify_cache(std::shared_ptr<crypto::VerifyCache> cache);
  const crypto::VerifyCache* verify_cache() const {
    return verify_cache_.get();
  }

  /// Attach a fresh per-identity comb-table cache holding up to `tables`
  /// tables (0 detaches). Hot endorser/creator keys then verify through two
  /// comb lookups per column instead of the generic double-scalar multiply;
  /// flags, commit hashes, and stats are identical either way.
  void enable_comb_cache(std::size_t tables = crypto::CombCache::kDefaultTables);
  /// Share an existing comb cache (endorsers repeat across validators too).
  void set_comb_cache(std::shared_ptr<crypto::CombCache> cache);
  const crypto::CombCache* comb_cache() const { return comb_cache_.get(); }

  /// Dependency-aware parallel commit: schedule mvcc verdicts by rw-set
  /// dependency waves across the worker pool and commit out of order
  /// (sequential when no pool is configured). Flags, version stamps, and
  /// the commit hash are byte-identical to the in-order path — the
  /// sequential commit hash is the equivalence oracle.
  void set_parallel_commit(bool enabled) { parallel_commit_ = enabled; }
  bool parallel_commit() const { return parallel_commit_; }

  /// Run the full pipeline on one block, mutating the state DB and ledger.
  BlockValidationResult validate_and_commit(const Block& block, StateDb& db,
                                            Ledger& ledger,
                                            HistoryDb* history = nullptr) override;

  const ValidationStats& stats() const override { return stats_; }
  void reset_stats() override { stats_ = ValidationStats{}; }

  /// Publish the lifetime ValidationStats (plus verify-cache hit/miss
  /// counters when a cache is attached) as counters under "<prefix>_..."
  /// (snapshot-style, idempotent).
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const override;

 private:
  bool verify_block_signature(const Block& block);
  /// Pure with respect to the validator: counters accumulate into `stats`
  /// so the parallel path can aggregate per-transaction deltas in tx order.
  TxValidationCode validate_transaction(const ParsedTransaction& tx,
                                        ValidationStats& stats) const;

  /// Step 3 for the parallel-commit path: wave-scheduled mvcc verdicts,
  /// byte-identical flags to the sequential walk.
  void run_mvcc_waves(const Block& block,
                      const std::vector<ParsedTransaction>& parsed,
                      StateDb& db, std::vector<TxValidationCode>& flags);

  const Msp& msp_;
  std::map<std::string, EndorsementPolicy> policies_;
  ValidationStats stats_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when sequential
  std::shared_ptr<crypto::VerifyCache> verify_cache_;  ///< null = uncached
  std::shared_ptr<crypto::CombCache> comb_cache_;  ///< null = generic mults
  bool parallel_commit_ = false;
};

}  // namespace bm::fabric

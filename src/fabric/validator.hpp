// Software-only validator peer: the functional validation/commit pipeline.
//
// Implements the five steps of Fig. 1a faithfully, including Fabric's
// quirks that the paper measures against:
//   - vscc verifies EVERY endorsement signature regardless of the policy
//     ("Fabric implementation always verifies all the endorsements of a
//     transaction, irrespective of the policy", §4.3) — the contrast to the
//     hardware short-circuit evaluator in Fig. 7e;
//   - mvcc runs sequentially over transactions in order, comparing read-set
//     versions against committed state and against earlier valid
//     transactions of the same block;
//   - commit applies write sets at version {block, tx} and appends the
//     flagged block to the ledger.
// Instrumentation counters feed the calibrated timing model used by the
// performance benches.
#pragma once

#include <map>

#include "fabric/ledger.hpp"
#include "fabric/policy.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"
#include "obs/metrics.hpp"

namespace bm::fabric {

struct ValidationStats {
  std::uint64_t blocks_processed = 0;
  std::uint64_t block_signature_checks = 0;
  std::uint64_t creator_signature_checks = 0;
  std::uint64_t endorsement_signature_checks = 0;
  std::uint64_t db_reads = 0;
  std::uint64_t db_writes = 0;
  std::uint64_t envelopes_parsed = 0;

  std::uint64_t total_ecdsa_checks() const {
    return block_signature_checks + creator_signature_checks +
           endorsement_signature_checks;
  }
};

struct BlockValidationResult {
  bool block_valid = false;
  std::vector<TxValidationCode> flags;
  std::uint32_t valid_tx_count = 0;
  crypto::Digest commit_hash{};  ///< zero when the block was rejected
};

class SoftwareValidator {
 public:
  /// `policies` maps chaincode id -> endorsement policy. Transactions whose
  /// chaincode has no registered policy are marked invalid.
  SoftwareValidator(const Msp& msp,
                    std::map<std::string, EndorsementPolicy> policies);

  /// Run the full pipeline on one block, mutating the state DB and ledger.
  BlockValidationResult validate_and_commit(const Block& block, StateDb& db,
                                            Ledger& ledger,
                                            HistoryDb* history = nullptr);

  const ValidationStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ValidationStats{}; }

  /// Publish the lifetime ValidationStats as counters under
  /// "<prefix>_..." (snapshot-style, idempotent).
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

 private:
  bool verify_block_signature(const Block& block);
  TxValidationCode validate_transaction(const ParsedTransaction& tx);

  const Msp& msp_;
  std::map<std::string, EndorsementPolicy> policies_;
  ValidationStats stats_;
};

}  // namespace bm::fabric

// Blocks: header, data (marshaled envelopes) and metadata.
//
// The orderer signs H(header bytes || orderer cert); validators check that
// signature in step 1 of the validation pipeline (§2.2). Per-transaction
// validation flags live in the metadata, filled in at commit time exactly
// like Fabric's TxValidationFlags.
#pragma once

#include "fabric/identity.hpp"

namespace bm::fabric {

/// Transaction validation codes (subset of Fabric's peer.TxValidationCode).
enum class TxValidationCode : std::uint8_t {
  kValid = 0,
  kBadPayload = 1,
  kBadCreatorSignature = 4,
  kInvalidEndorserTransaction = 5,
  kEndorsementPolicyFailure = 10,
  kMvccReadConflict = 11,
  kNotValidated = 255,
};

const char* tx_validation_code_name(TxValidationCode code);

struct BlockHeader {
  std::uint64_t number = 0;
  Bytes prev_hash;  ///< hash of the previous block's header
  Bytes data_hash;  ///< hash over all envelopes

  Bytes marshal() const;
  static std::optional<BlockHeader> unmarshal(ByteView data);

  friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

struct BlockMetadata {
  Bytes orderer_cert;  ///< marshaled Certificate of the signing orderer
  Bytes orderer_sig;   ///< DER over the block-signing digest
  std::vector<std::uint8_t> tx_flags;  ///< TxValidationCode per transaction

  friend bool operator==(const BlockMetadata&, const BlockMetadata&) = default;
};

struct Block {
  BlockHeader header;
  std::vector<Bytes> envelopes;  ///< marshaled transaction envelopes
  BlockMetadata metadata;

  std::size_t tx_count() const { return envelopes.size(); }

  /// Hash over the concatenated envelopes (header.data_hash must match).
  crypto::Digest compute_data_hash() const;

  /// Hash of the marshaled header — the chain link (prev_hash of block n+1).
  crypto::Digest block_hash() const;

  /// What the orderer signs (and block_verify checks).
  crypto::Digest signing_digest() const;

  Bytes marshal() const;
  static std::optional<Block> unmarshal(ByteView data);

  /// Total marshaled size — the Gossip-protocol transmission size that
  /// Fig. 6a compares against the BMac protocol.
  std::size_t marshaled_size() const;
};

}  // namespace bm::fabric

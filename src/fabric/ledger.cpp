#include "fabric/ledger.hpp"

#include <stdexcept>

namespace bm::fabric {

crypto::Digest Ledger::append(Block block) {
  if (block.header.number != blocks_.size())
    throw std::invalid_argument("ledger: non-sequential block number");
  if (!blocks_.empty()) {
    const crypto::Digest prev = blocks_.back().block.block_hash();
    if (!equal(block.header.prev_hash, crypto::digest_view(prev)))
      throw std::invalid_argument("ledger: prev_hash mismatch");
  }
  if (block.metadata.tx_flags.size() != block.envelopes.size())
    throw std::invalid_argument("ledger: tx_flags not filled in");

  const Bytes marshaled = block.marshal();
  bytes_written_ += marshaled.size();

  crypto::Sha256 h;
  h.update(crypto::digest_view(last_commit_hash_));
  h.update(marshaled);
  const crypto::Digest commit_hash = h.finish();

  blocks_.push_back(CommittedBlock{std::move(block), commit_hash});
  last_commit_hash_ = commit_hash;
  return commit_hash;
}

const CommittedBlock& Ledger::at(std::uint64_t index) const {
  return blocks_.at(index);
}

const CommittedBlock& Ledger::last() const {
  if (blocks_.empty()) throw std::out_of_range("ledger is empty");
  return blocks_.back();
}

}  // namespace bm::fabric

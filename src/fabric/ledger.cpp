#include "fabric/ledger.hpp"

#include <stdexcept>

namespace bm::fabric {

crypto::Digest Ledger::append(Block block) {
  if (block.header.number != height())
    throw std::invalid_argument("ledger: non-sequential block number");
  if (height() > 0) {
    if (!equal(block.header.prev_hash, crypto::digest_view(last_header_hash_)))
      throw std::invalid_argument("ledger: prev_hash mismatch");
  }
  if (block.metadata.tx_flags.size() != block.envelopes.size())
    throw std::invalid_argument("ledger: tx_flags not filled in");

  const Bytes marshaled = block.marshal();
  bytes_written_ += marshaled.size();

  crypto::Sha256 h;
  h.update(crypto::digest_view(last_commit_hash_));
  h.update(marshaled);
  const crypto::Digest commit_hash = h.finish();

  last_header_hash_ = block.block_hash();
  blocks_.push_back(CommittedBlock{std::move(block), commit_hash});
  last_commit_hash_ = commit_hash;
  return commit_hash;
}

void Ledger::open_at(std::uint64_t height,
                     const crypto::Digest& last_commit_hash,
                     const crypto::Digest& last_header_hash) {
  if (base_height_ != 0 || !blocks_.empty())
    throw std::logic_error("ledger: open_at on a non-empty ledger");
  base_height_ = height;
  last_commit_hash_ = last_commit_hash;
  last_header_hash_ = last_header_hash;
}

const CommittedBlock& Ledger::at(std::uint64_t index) const {
  if (index < base_height_)
    throw std::out_of_range("ledger: block below the recovered base height");
  return blocks_.at(index - base_height_);
}

const CommittedBlock& Ledger::last() const {
  if (blocks_.empty()) throw std::out_of_range("ledger is empty");
  return blocks_.back();
}

}  // namespace bm::fabric

#include "fabric/validator.hpp"

#include <cstdlib>

#include "crypto/der.hpp"

namespace bm::fabric {

namespace {

unsigned resolve_parallelism(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("BM_VALIDATOR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<unsigned>(v);
  }
  return 1;
}

}  // namespace

SoftwareValidator::SoftwareValidator(
    const Msp& msp, std::map<std::string, EndorsementPolicy> policies,
    unsigned parallelism)
    : msp_(msp), policies_(std::move(policies)) {
  set_parallelism(parallelism);
}

void SoftwareValidator::set_parallelism(unsigned parallelism) {
  const unsigned n = resolve_parallelism(parallelism);
  if (n > 1)
    pool_ = std::make_unique<ThreadPool>(n);
  else
    pool_.reset();
}

void SoftwareValidator::enable_verify_cache(std::size_t capacity) {
  verify_cache_ =
      capacity > 0 ? std::make_shared<crypto::VerifyCache>(capacity) : nullptr;
}

void SoftwareValidator::set_verify_cache(
    std::shared_ptr<crypto::VerifyCache> cache) {
  verify_cache_ = std::move(cache);
}

bool SoftwareValidator::verify_block_signature(const Block& block) {
  ++stats_.block_signature_checks;
  const auto cert = Certificate::unmarshal(block.metadata.orderer_cert);
  if (!cert || cert->role != Role::kOrderer || !msp_.validate(*cert))
    return false;
  const auto sig = crypto::der_decode_signature(block.metadata.orderer_sig);
  if (!sig) return false;
  if (!crypto::verify(cert->public_key, block.signing_digest(), *sig))
    return false;
  // Retrieving block data also re-checks the data hash.
  return equal(block.header.data_hash,
               crypto::digest_view(block.compute_data_hash()));
}

TxValidationCode SoftwareValidator::validate_transaction(
    const ParsedTransaction& tx, ValidationStats& stats) const {
  // Step 2a: transaction verification — creator identity and signature.
  if (!msp_.validate(tx.creator)) return TxValidationCode::kBadCreatorSignature;
  const auto creator_sig = crypto::der_decode_signature(tx.signature);
  if (!creator_sig) return TxValidationCode::kBadCreatorSignature;
  ++stats.creator_signature_checks;
  if (!crypto::verify(tx.creator.public_key, crypto::sha256(tx.payload_bytes),
                      *creator_sig))
    return TxValidationCode::kBadCreatorSignature;

  // Step 2b: vscc — verify endorsements, then evaluate the policy.
  const auto policy_it = policies_.find(tx.chaincode_id);
  if (policy_it == policies_.end())
    return TxValidationCode::kInvalidEndorserTransaction;

  // Fabric always verifies all endorsements, irrespective of the policy.
  std::vector<EncodedId> valid_endorsers;
  for (const auto& endorsement : tx.endorsements) {
    if (!msp_.validate(endorsement.cert)) continue;
    const auto sig = crypto::der_decode_signature(endorsement.signature);
    if (!sig) continue;
    ++stats.endorsement_signature_checks;
    const crypto::Digest digest = endorsement_digest(
        tx.chaincode_id, tx.rwset_bytes, endorsement.cert_bytes);
    // The memoized path keys on (public key, digest, DER bytes) — the full
    // verification input — so flags are identical with the cache attached.
    const bool ok =
        verify_cache_ != nullptr
            ? verify_cache_->verify(endorsement.cert.public_key, digest,
                                    endorsement.signature, *sig)
            : crypto::verify(endorsement.cert.public_key, digest, *sig);
    if (!ok) continue;
    if (const auto id = msp_.encode(endorsement.cert))
      valid_endorsers.push_back(*id);
  }
  if (!policy_it->second.evaluate_ids(valid_endorsers, msp_))
    return TxValidationCode::kEndorsementPolicyFailure;

  return TxValidationCode::kValid;
}

BlockValidationResult SoftwareValidator::validate_and_commit(
    const Block& block, StateDb& db, Ledger& ledger, HistoryDb* history) {
  ++stats_.blocks_processed;
  BlockValidationResult result;
  result.flags.assign(block.tx_count(), TxValidationCode::kNotValidated);

  // Step 1: block verification. A block failing verification is rejected
  // outright — nothing is committed.
  result.block_valid = verify_block_signature(block);
  if (!result.block_valid) return result;

  // Step 2: per-transaction verification + vscc. Transactions are
  // independent here (no state access until mvcc), so they fan out across
  // the worker pool when one is configured. Each index writes only its own
  // flags/parsed/stats slot, making flags and, after the in-order stats
  // merge below, every observable output identical to the sequential path.
  std::vector<ParsedTransaction> parsed(block.tx_count());
  std::vector<ValidationStats> tx_stats(block.tx_count());
  const auto run_tx = [&](std::size_t i) {
    ValidationStats& stats = tx_stats[i];
    ++stats.envelopes_parsed;
    auto tx = parse_envelope(block.envelopes[i]);
    if (!tx) {
      result.flags[i] = TxValidationCode::kBadPayload;
      return;
    }
    parsed[i] = std::move(*tx);
    result.flags[i] = validate_transaction(parsed[i], stats);
  };
  if (pool_ != nullptr && block.tx_count() > 1) {
    pool_->parallel_for(block.tx_count(), run_tx);
  } else {
    for (std::size_t i = 0; i < block.tx_count(); ++i) run_tx(i);
  }
  for (const ValidationStats& stats : tx_stats) stats_ += stats;

  // Step 3: mvcc — sequential, in transaction order. Reads must match the
  // committed state, and keys written by an earlier valid transaction of
  // this block invalidate later readers.
  std::map<std::string, Version> pending_writes;
  for (std::size_t i = 0; i < block.tx_count(); ++i) {
    if (result.flags[i] != TxValidationCode::kValid) continue;
    const ParsedTransaction& tx = parsed[i];
    bool conflict = false;
    for (const KVRead& read : tx.rwset.reads) {
      ++stats_.db_reads;
      const std::string key = StateDb::namespaced(tx.chaincode_id, read.key);
      if (pending_writes.count(key) != 0 ||
          !db.version_matches(KVRead{key, read.version})) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      result.flags[i] = TxValidationCode::kMvccReadConflict;
      continue;
    }
    const Version version{block.header.number,
                          static_cast<std::uint32_t>(i)};
    for (const KVWrite& write : tx.rwset.writes)
      pending_writes[StateDb::namespaced(tx.chaincode_id, write.key)] = version;
  }

  // Step 4: commit — the block's whole write-set goes into one shard-grouped
  // batch applied with a single lock grab per touched shard (in parallel
  // across shards when a pool is configured), then the flagged block is
  // appended to the ledger. Batch order preserves transaction order, so the
  // final state matches the equivalent sequence of put() calls exactly.
  Block committed = block;
  StateDb::WriteBatch batch = db.make_batch();
  for (std::size_t i = 0; i < block.tx_count(); ++i) {
    committed.metadata.tx_flags[i] = static_cast<std::uint8_t>(result.flags[i]);
    if (result.flags[i] != TxValidationCode::kValid) continue;
    ++result.valid_tx_count;
    const ParsedTransaction& tx = parsed[i];
    const Version version{block.header.number, static_cast<std::uint32_t>(i)};
    for (const KVWrite& write : tx.rwset.writes) {
      ++stats_.db_writes;
      std::string key = StateDb::namespaced(tx.chaincode_id, write.key);
      // Step 5: history database update — on this thread, in tx order.
      if (history != nullptr) history->record(key, version);
      batch.add(std::move(key), write.value, version);
    }
  }
  db.commit_batch(std::move(batch), pool_.get());
  result.commit_hash = ledger.append(std::move(committed));
  return result;
}

void SoftwareValidator::publish_metrics(obs::Registry& registry,
                                        const std::string& prefix) const {
  registry.counter(prefix + "_blocks_processed_total", "blocks validated")
      .set(stats_.blocks_processed);
  registry
      .counter(prefix + "_block_signature_checks_total",
               "orderer block signature verifications")
      .set(stats_.block_signature_checks);
  registry
      .counter(prefix + "_creator_signature_checks_total",
               "transaction creator signature verifications")
      .set(stats_.creator_signature_checks);
  registry
      .counter(prefix + "_endorsement_signature_checks_total",
               "endorsement signature verifications (Fabric checks all)")
      .set(stats_.endorsement_signature_checks);
  registry.counter(prefix + "_db_reads_total", "state database reads")
      .set(stats_.db_reads);
  registry.counter(prefix + "_db_writes_total", "state database writes")
      .set(stats_.db_writes);
  registry.counter(prefix + "_envelopes_parsed_total", "envelopes unmarshaled")
      .set(stats_.envelopes_parsed);
  if (verify_cache_ != nullptr) {
    registry
        .counter(prefix + "_verify_cache_hits_total",
                 "endorsement verifications answered from the cache")
        .set(verify_cache_->hits());
    registry
        .counter(prefix + "_verify_cache_misses_total",
                 "endorsement verifications computed and memoized")
        .set(verify_cache_->misses());
    registry
        .counter(prefix + "_verify_cache_evictions_total",
                 "verify-cache LRU evictions")
        .set(verify_cache_->evictions());
    registry.gauge(prefix + "_verify_cache_entries", "verify-cache fill")
        .set(static_cast<double>(verify_cache_->size()));
  }
}

}  // namespace bm::fabric

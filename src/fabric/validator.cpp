#include "fabric/validator.hpp"

#include <cstdlib>
#include <unordered_set>

#include "crypto/der.hpp"
#include "fabric/commit_graph.hpp"

namespace bm::fabric {

namespace {

unsigned resolve_parallelism(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("BM_VALIDATOR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<unsigned>(v);
  }
  return 1;
}

}  // namespace

SoftwareValidator::SoftwareValidator(
    const Msp& msp, std::map<std::string, EndorsementPolicy> policies,
    unsigned parallelism)
    : msp_(msp), policies_(std::move(policies)) {
  set_parallelism(parallelism);
}

void SoftwareValidator::set_parallelism(unsigned parallelism) {
  const unsigned n = resolve_parallelism(parallelism);
  if (n > 1)
    pool_ = std::make_unique<ThreadPool>(n);
  else
    pool_.reset();
}

void SoftwareValidator::enable_verify_cache(std::size_t capacity) {
  verify_cache_ =
      capacity > 0 ? std::make_shared<crypto::VerifyCache>(capacity) : nullptr;
}

void SoftwareValidator::set_verify_cache(
    std::shared_ptr<crypto::VerifyCache> cache) {
  verify_cache_ = std::move(cache);
}

void SoftwareValidator::enable_comb_cache(std::size_t tables) {
  comb_cache_ =
      tables > 0 ? std::make_shared<crypto::CombCache>(tables) : nullptr;
}

void SoftwareValidator::set_comb_cache(
    std::shared_ptr<crypto::CombCache> cache) {
  comb_cache_ = std::move(cache);
}

bool SoftwareValidator::verify_block_signature(const Block& block) {
  ++stats_.block_signature_checks;
  const auto cert = Certificate::unmarshal(block.metadata.orderer_cert);
  if (!cert || cert->role != Role::kOrderer || !msp_.validate(*cert))
    return false;
  const auto sig = crypto::der_decode_signature(block.metadata.orderer_sig);
  if (!sig) return false;
  const crypto::Digest digest = block.signing_digest();
  const bool ok = comb_cache_ != nullptr
                      ? comb_cache_->verify(cert->public_key, digest, *sig)
                      : crypto::verify(cert->public_key, digest, *sig);
  if (!ok) return false;
  // Retrieving block data also re-checks the data hash.
  return equal(block.header.data_hash,
               crypto::digest_view(block.compute_data_hash()));
}

TxValidationCode SoftwareValidator::validate_transaction(
    const ParsedTransaction& tx, ValidationStats& stats) const {
  // Step 2a: transaction verification — creator identity and signature.
  // Creator payloads are unique per transaction (tx id), so the verify
  // cache never hits here — but the creator's KEY repeats constantly, which
  // is exactly what the per-identity comb tables amortize.
  if (!msp_.validate(tx.creator)) return TxValidationCode::kBadCreatorSignature;
  const auto creator_sig = crypto::der_decode_signature(tx.signature);
  if (!creator_sig) return TxValidationCode::kBadCreatorSignature;
  ++stats.creator_signature_checks;
  const crypto::Digest payload_digest = crypto::sha256(tx.payload_bytes);
  const bool creator_ok =
      comb_cache_ != nullptr
          ? comb_cache_->verify(tx.creator.public_key, payload_digest,
                                *creator_sig)
          : crypto::verify(tx.creator.public_key, payload_digest,
                           *creator_sig);
  if (!creator_ok) return TxValidationCode::kBadCreatorSignature;

  // Step 2b: vscc — verify endorsements, then evaluate the policy.
  const auto policy_it = policies_.find(tx.chaincode_id);
  if (policy_it == policies_.end())
    return TxValidationCode::kInvalidEndorserTransaction;

  // Fabric always verifies all endorsements, irrespective of the policy.
  // The (chaincode, rwset) digest prefix is shared by every endorsement of
  // this transaction: hash it once and fork the midstate per certificate.
  const EndorsementDigester digester(tx.chaincode_id, tx.rwset_bytes);
  std::vector<EncodedId> valid_endorsers;
  for (const auto& endorsement : tx.endorsements) {
    if (!msp_.validate(endorsement.cert)) continue;
    const auto sig = crypto::der_decode_signature(endorsement.signature);
    if (!sig) continue;
    ++stats.endorsement_signature_checks;
    const crypto::Digest digest = digester.digest(endorsement.cert_bytes);
    // The memoized path keys on (public key, digest, DER bytes) — the full
    // verification input — so flags are identical with the cache attached;
    // cache misses (and the uncached path) run through the per-identity
    // comb tables when those are enabled.
    bool ok;
    if (verify_cache_ != nullptr) {
      ok = verify_cache_->verify(endorsement.cert.public_key, digest,
                                 endorsement.signature, *sig,
                                 comb_cache_.get());
    } else if (comb_cache_ != nullptr) {
      ok = comb_cache_->verify(endorsement.cert.public_key, digest, *sig);
    } else {
      ok = crypto::verify(endorsement.cert.public_key, digest, *sig);
    }
    if (!ok) continue;
    if (const auto id = msp_.encode(endorsement.cert))
      valid_endorsers.push_back(*id);
  }
  if (!policy_it->second.evaluate_ids(valid_endorsers, msp_))
    return TxValidationCode::kEndorsementPolicyFailure;

  return TxValidationCode::kValid;
}

void SoftwareValidator::run_mvcc_waves(
    const Block& block, const std::vector<ParsedTransaction>& parsed,
    StateDb& db, std::vector<TxValidationCode>& flags) {
  const CommitSchedule schedule = build_commit_schedule(parsed, flags);
  stats_.commit_waves += schedule.wave_count();
  stats_.commit_deps += schedule.dependencies;

  // Keys written by surviving transactions of completed waves. Read-only
  // while a wave's verdicts run; folded in between waves on this thread.
  std::unordered_set<std::string> pending_writes;
  // Per-transaction read counters, merged in transaction order below so
  // stats_.db_reads matches the sequential walk exactly.
  std::vector<std::uint64_t> mvcc_reads(block.tx_count(), 0);

  for (const std::vector<std::uint32_t>& wave : schedule.waves) {
    const auto decide = [&](std::size_t w) {
      const std::uint32_t i = wave[w];
      const ParsedTransaction& tx = parsed[i];
      bool conflict = false;
      for (const KVRead& read : tx.rwset.reads) {
        ++mvcc_reads[i];
        const std::string key = StateDb::namespaced(tx.chaincode_id, read.key);
        // The wave constraints guarantee this membership test sees exactly
        // the writes of earlier valid transactions that matter to this
        // read — never a later transaction's (anti dependency) and never
        // missing an earlier writer's (true dependency).
        if (pending_writes.count(key) != 0 ||
            !db.version_matches(KVRead{key, read.version})) {
          conflict = true;
          break;
        }
      }
      if (conflict) flags[i] = TxValidationCode::kMvccReadConflict;
    };
    if (wave.size() > 1) {
      pool_->parallel_for(wave.size(), decide);
    } else {
      for (std::size_t w = 0; w < wave.size(); ++w) decide(w);
    }
    // Fold in this wave's surviving writes, in transaction order.
    for (const std::uint32_t i : wave) {
      if (flags[i] != TxValidationCode::kValid) continue;
      for (const KVWrite& write : parsed[i].rwset.writes)
        pending_writes.insert(
            StateDb::namespaced(parsed[i].chaincode_id, write.key));
    }
  }
  for (const std::uint64_t reads : mvcc_reads) stats_.db_reads += reads;
}

BlockValidationResult SoftwareValidator::validate_and_commit(
    const Block& block, StateDb& db, Ledger& ledger, HistoryDb* history) {
  ++stats_.blocks_processed;
  BlockValidationResult result;
  result.flags.assign(block.tx_count(), TxValidationCode::kNotValidated);

  // Step 1: block verification. A block failing verification is rejected
  // outright — nothing is committed.
  result.block_valid = verify_block_signature(block);
  if (!result.block_valid) return result;

  // Step 2: per-transaction verification + vscc. Transactions are
  // independent here (no state access until mvcc), so they fan out across
  // the worker pool when one is configured. Each index writes only its own
  // flags/parsed/stats slot, making flags and, after the in-order stats
  // merge below, every observable output identical to the sequential path.
  std::vector<ParsedTransaction> parsed(block.tx_count());
  std::vector<ValidationStats> tx_stats(block.tx_count());
  const auto run_tx = [&](std::size_t i) {
    ValidationStats& stats = tx_stats[i];
    ++stats.envelopes_parsed;
    auto tx = parse_envelope(block.envelopes[i]);
    if (!tx) {
      result.flags[i] = TxValidationCode::kBadPayload;
      return;
    }
    parsed[i] = std::move(*tx);
    result.flags[i] = validate_transaction(parsed[i], stats);
  };
  if (pool_ != nullptr && block.tx_count() > 1) {
    pool_->parallel_for(block.tx_count(), run_tx);
  } else {
    for (std::size_t i = 0; i < block.tx_count(); ++i) run_tx(i);
  }
  for (const ValidationStats& stats : tx_stats) stats_ += stats;

  // Step 3: mvcc. Reads must match the committed state, and keys written by
  // an earlier valid transaction of this block invalidate later readers.
  // The dependency-aware path decides independent transactions in parallel
  // waves; the default walks transactions sequentially in order. Both
  // produce byte-identical flags (differential-tested).
  if (parallel_commit_ && pool_ != nullptr) {
    run_mvcc_waves(block, parsed, db, result.flags);
  } else {
    std::map<std::string, Version> pending_writes;
    for (std::size_t i = 0; i < block.tx_count(); ++i) {
      if (result.flags[i] != TxValidationCode::kValid) continue;
      const ParsedTransaction& tx = parsed[i];
      bool conflict = false;
      for (const KVRead& read : tx.rwset.reads) {
        ++stats_.db_reads;
        const std::string key = StateDb::namespaced(tx.chaincode_id, read.key);
        if (pending_writes.count(key) != 0 ||
            !db.version_matches(KVRead{key, read.version})) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        result.flags[i] = TxValidationCode::kMvccReadConflict;
        continue;
      }
      const Version version{block.header.number,
                            static_cast<std::uint32_t>(i)};
      for (const KVWrite& write : tx.rwset.writes)
        pending_writes[StateDb::namespaced(tx.chaincode_id, write.key)] =
            version;
    }
  }

  // Step 4: commit — the block's whole write-set goes into one shard-grouped
  // batch applied with a single lock grab per touched shard (in parallel
  // across shards when a pool is configured), then the flagged block is
  // appended to the ledger. Batch order preserves transaction order, so the
  // final state matches the equivalent sequence of put() calls exactly.
  Block committed = block;
  StateDb::WriteBatch batch = db.make_batch();
  for (std::size_t i = 0; i < block.tx_count(); ++i) {
    committed.metadata.tx_flags[i] = static_cast<std::uint8_t>(result.flags[i]);
    if (result.flags[i] != TxValidationCode::kValid) continue;
    ++result.valid_tx_count;
    const ParsedTransaction& tx = parsed[i];
    const Version version{block.header.number, static_cast<std::uint32_t>(i)};
    for (const KVWrite& write : tx.rwset.writes) {
      ++stats_.db_writes;
      std::string key = StateDb::namespaced(tx.chaincode_id, write.key);
      // Step 5: history database update — on this thread, in tx order.
      if (history != nullptr) history->record(key, version);
      batch.add(std::move(key), write.value, version);
    }
  }
  db.commit_batch(std::move(batch), pool_.get());
  result.commit_hash = ledger.append(std::move(committed));
  return result;
}

void SoftwareValidator::publish_metrics(obs::Registry& registry,
                                        const std::string& prefix) const {
  registry.counter(prefix + "_blocks_processed_total", "blocks validated")
      .set(stats_.blocks_processed);
  registry
      .counter(prefix + "_block_signature_checks_total",
               "orderer block signature verifications")
      .set(stats_.block_signature_checks);
  registry
      .counter(prefix + "_creator_signature_checks_total",
               "transaction creator signature verifications")
      .set(stats_.creator_signature_checks);
  registry
      .counter(prefix + "_endorsement_signature_checks_total",
               "endorsement signature verifications (Fabric checks all)")
      .set(stats_.endorsement_signature_checks);
  registry.counter(prefix + "_db_reads_total", "state database reads")
      .set(stats_.db_reads);
  registry.counter(prefix + "_db_writes_total", "state database writes")
      .set(stats_.db_writes);
  registry.counter(prefix + "_envelopes_parsed_total", "envelopes unmarshaled")
      .set(stats_.envelopes_parsed);
  if (parallel_commit_) {
    registry
        .counter(prefix + "_commit_waves_total",
                 "dependency waves scheduled by the parallel commit path")
        .set(stats_.commit_waves);
    registry
        .counter(prefix + "_commit_deps_total",
                 "rw-set dependencies that forced commit ordering")
        .set(stats_.commit_deps);
    registry
        .gauge(prefix + "_deps_per_block",
               "mean rw-set dependencies per processed block")
        .set(stats_.blocks_processed > 0
                 ? static_cast<double>(stats_.commit_deps) /
                       static_cast<double>(stats_.blocks_processed)
                 : 0.0);
  }
  if (comb_cache_ != nullptr) {
    registry
        .counter(prefix + "_comb_table_hits_total",
                 "verifications run over a cached per-identity comb table")
        .set(comb_cache_->hits());
    registry
        .counter(prefix + "_comb_table_misses_total",
                 "per-identity comb tables built on first sight of a key")
        .set(comb_cache_->misses());
    registry
        .counter(prefix + "_comb_table_evictions_total",
                 "comb-table LRU evictions (budget pressure)")
        .set(comb_cache_->evictions());
    registry
        .gauge(prefix + "_comb_table_capacity",
               "per-identity comb tables the cache can hold")
        .set(static_cast<double>(comb_cache_->capacity()));
    registry
        .gauge(prefix + "_comb_table_entries",
               "per-identity comb tables held")
        .set(static_cast<double>(comb_cache_->size()));
  }
  if (verify_cache_ != nullptr) {
    registry
        .counter(prefix + "_verify_cache_hits_total",
                 "endorsement verifications answered from the cache")
        .set(verify_cache_->hits());
    registry
        .counter(prefix + "_verify_cache_misses_total",
                 "endorsement verifications computed and memoized")
        .set(verify_cache_->misses());
    registry
        .counter(prefix + "_verify_cache_evictions_total",
                 "verify-cache LRU evictions")
        .set(verify_cache_->evictions());
    registry
        .gauge(prefix + "_verify_cache_capacity",
               "verify-cache entry capacity")
        .set(static_cast<double>(verify_cache_->capacity()));
    registry.gauge(prefix + "_verify_cache_entries", "verify-cache fill")
        .set(static_cast<double>(verify_cache_->size()));
  }
}

}  // namespace bm::fabric

#include "fabric/identity.hpp"

#include <memory>

#include "crypto/der.hpp"

#include "wire/proto.hpp"

namespace bm::fabric {

namespace {

// Certificate wire fields.
enum CertField : std::uint32_t {
  kVersion = 1,
  kSerial = 2,
  kIssuerCn = 3,
  kSubjectCn = 4,
  kOrgName = 5,
  kRole = 6,
  kSequence = 7,
  kNotBefore = 8,
  kNotAfter = 9,
  kPublicKey = 10,
  kSubjectKeyId = 11,
  kAuthorityKeyId = 12,
  kCrlUrl = 13,
  kExtensions = 14,
  kCaSignature = 15,
};

/// Size of the representative extensions blob. Chosen so that a marshaled
/// certificate lands at ~860 bytes, the per-identity size the paper measured
/// in real Fabric blocks (§3.2).
constexpr std::size_t kExtensionsSize = 560;

Bytes make_extensions(const crypto::PublicKey& key) {
  // Deterministic filler derived from the key so certificates differ but a
  // given identity always marshals identically.
  Bytes out;
  out.reserve(kExtensionsSize);
  crypto::Digest d = crypto::sha256(key.encode());
  while (out.size() < kExtensionsSize) {
    append(out, crypto::digest_view(d));
    d = crypto::sha256(crypto::digest_view(d));
  }
  out.resize(kExtensionsSize);
  return out;
}

}  // namespace

const char* role_name(Role role) {
  switch (role) {
    case Role::kOrderer: return "orderer";
    case Role::kAdmin: return "admin";
    case Role::kPeer: return "peer";
    case Role::kClient: return "client";
  }
  return "?";
}

EncodedId EncodedId::make(std::uint8_t org, Role role, std::uint8_t seq) {
  return EncodedId{static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(org) << 8) |
      (static_cast<std::uint16_t>(role) << 4) | (seq & 0xF))};
}

Bytes Certificate::tbs_bytes() const {
  wire::ProtoWriter w;
  w.varint_field(kVersion, version);
  w.bytes_field(kSerial, serial);
  w.string_field(kIssuerCn, issuer_cn);
  w.string_field(kSubjectCn, subject_cn);
  w.string_field(kOrgName, org_name);
  w.varint_field(kRole, static_cast<std::uint64_t>(role));
  w.varint_field(kSequence, sequence);
  w.varint_field(kNotBefore, not_before);
  w.varint_field(kNotAfter, not_after);
  w.bytes_field(kPublicKey, public_key.encode());
  w.bytes_field(kSubjectKeyId, subject_key_id);
  w.bytes_field(kAuthorityKeyId, authority_key_id);
  w.string_field(kCrlUrl, crl_url);
  w.bytes_field(kExtensions, extensions);
  return w.take();
}

Bytes Certificate::marshal() const {
  wire::ProtoWriter w;
  // The TBS fields followed by the CA signature, like DER certificates.
  Bytes tbs = tbs_bytes();
  Bytes out = std::move(tbs);
  wire::ProtoWriter sig;
  sig.bytes_field(kCaSignature, ca_signature);
  append(out, sig.bytes());
  return out;
}

std::optional<Certificate> Certificate::unmarshal(ByteView data) {
  Certificate cert;
  bool have_key = false;
  wire::ProtoReader reader(data);
  while (auto f = reader.next()) {
    switch (f->number) {
      case kVersion: cert.version = static_cast<std::uint32_t>(f->varint); break;
      case kSerial: cert.serial.assign(f->bytes.begin(), f->bytes.end()); break;
      case kIssuerCn: cert.issuer_cn = to_string(f->bytes); break;
      case kSubjectCn: cert.subject_cn = to_string(f->bytes); break;
      case kOrgName: cert.org_name = to_string(f->bytes); break;
      case kRole: cert.role = static_cast<Role>(f->varint); break;
      case kSequence: cert.sequence = static_cast<std::uint8_t>(f->varint); break;
      case kNotBefore: cert.not_before = f->varint; break;
      case kNotAfter: cert.not_after = f->varint; break;
      case kPublicKey: {
        auto key = crypto::PublicKey::decode(f->bytes);
        if (!key) return std::nullopt;
        cert.public_key = *key;
        have_key = true;
        break;
      }
      case kSubjectKeyId:
        cert.subject_key_id.assign(f->bytes.begin(), f->bytes.end());
        break;
      case kAuthorityKeyId:
        cert.authority_key_id.assign(f->bytes.begin(), f->bytes.end());
        break;
      case kCrlUrl: cert.crl_url = to_string(f->bytes); break;
      case kExtensions:
        cert.extensions.assign(f->bytes.begin(), f->bytes.end());
        break;
      case kCaSignature:
        cert.ca_signature.assign(f->bytes.begin(), f->bytes.end());
        break;
      default: break;  // unknown fields are skipped, like protobuf
    }
  }
  if (!reader.ok() || !have_key) return std::nullopt;
  return cert;
}

CertificateAuthority::CertificateAuthority(std::string org_name,
                                           std::uint8_t org_index)
    : org_{std::move(org_name), org_index},
      root_{Certificate{}, crypto::PrivateKey{}} {
  const std::string cn = "ca." + org_.first + ".example.com";
  root_.key = crypto::key_from_seed(to_bytes("ca-key:" + cn));

  Certificate& cert = root_.cert;
  cert.serial = crypto::digest_bytes(crypto::sha256(to_bytes(cn)));
  cert.serial.resize(16);
  cert.issuer_cn = cn;  // self-signed
  cert.subject_cn = cn;
  cert.org_name = org_.first;
  cert.role = Role::kAdmin;
  cert.sequence = 0;
  cert.not_before = 1'600'000'000;
  cert.not_after = 1'900'000'000;
  cert.public_key = root_.key.public_key();
  Bytes ski = crypto::digest_bytes(crypto::sha256(cert.public_key.encode()));
  ski.resize(20);
  cert.subject_key_id = ski;
  cert.authority_key_id = ski;
  cert.crl_url = "http://crl." + org_.first + ".example.com/root.crl";
  cert.extensions = make_extensions(cert.public_key);
  cert.ca_signature = crypto::der_encode_signature(
      crypto::sign(root_.key, crypto::sha256(cert.tbs_bytes())));
}

Identity CertificateAuthority::issue(Role role, std::uint8_t seq,
                                     const std::string& host) const {
  Identity id{Certificate{}, crypto::key_from_seed(to_bytes(
                                 "node-key:" + org_.first + ":" + host))};
  Certificate& cert = id.cert;
  cert.serial = crypto::digest_bytes(crypto::sha256(to_bytes(host)));
  cert.serial.resize(16);
  cert.issuer_cn = root_.cert.subject_cn;
  cert.subject_cn = host;
  cert.org_name = org_.first;
  cert.role = role;
  cert.sequence = seq;
  cert.not_before = 1'600'000'000;
  cert.not_after = 1'900'000'000;
  cert.public_key = id.key.public_key();
  Bytes ski = crypto::digest_bytes(crypto::sha256(cert.public_key.encode()));
  ski.resize(20);
  cert.subject_key_id = ski;
  cert.authority_key_id = root_.cert.subject_key_id;
  cert.crl_url = root_.cert.crl_url;
  cert.extensions = make_extensions(cert.public_key);
  cert.ca_signature = crypto::der_encode_signature(
      crypto::sign(root_.key, crypto::sha256(cert.tbs_bytes())));
  return id;
}

bool CertificateAuthority::verify_cert(const Certificate& cert) const {
  if (cert.issuer_cn != root_.cert.subject_cn) return false;
  const auto sig = crypto::der_decode_signature(cert.ca_signature);
  if (!sig) return false;
  return crypto::verify(root_.cert.public_key,
                        crypto::sha256(cert.tbs_bytes()), *sig);
}

CertificateAuthority& Msp::add_org(const std::string& name) {
  const auto index = static_cast<std::uint8_t>(orgs_.size() + 1);
  orgs_.push_back(std::make_unique<CertificateAuthority>(name, index));
  by_name_[name] = orgs_.size() - 1;
  return *orgs_.back();
}

const CertificateAuthority* Msp::find_org(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : orgs_[it->second].get();
}

const CertificateAuthority* Msp::find_org(std::uint8_t index) const {
  if (index == 0 || index > orgs_.size()) return nullptr;
  return orgs_[index - 1].get();
}

std::vector<std::string> Msp::org_names() const {
  std::vector<std::string> names;
  names.reserve(orgs_.size());
  for (const auto& org : orgs_) names.push_back(org->org_name());
  return names;
}

bool Msp::validate(const Certificate& cert) const {
  std::string key;
  key.reserve(cert.issuer_cn.size() + cert.subject_cn.size() + 20);
  key += cert.issuer_cn;
  key += '|';
  key += cert.subject_cn;
  key += '|';
  key.append(cert.serial.begin(), cert.serial.end());
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = validation_cache_.find(key);
        it != validation_cache_.end())
      return it->second;
  }
  // Verify outside the lock: chain verification is the expensive part and is
  // pure, so concurrent misses at worst duplicate work.
  const CertificateAuthority* ca = find_org(cert.org_name);
  const bool valid = ca != nullptr && ca->verify_cert(cert);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  validation_cache_[key] = valid;
  return valid;
}

std::optional<EncodedId> Msp::encode(const Certificate& cert) const {
  const CertificateAuthority* ca = find_org(cert.org_name);
  if (ca == nullptr) return std::nullopt;
  return EncodedId::make(ca->org_index(), cert.role, cert.sequence);
}

}  // namespace bm::fabric

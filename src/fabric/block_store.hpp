// Disk-based block store: the persistent half of the ledger (validation
// step 4 writes "the entire block to the ledger with its transactions'
// valid/invalid flags and a commit hash", §2.2).
//
// Append-only file of framed records:
//   magic(4) | payload_len(4, LE) | crc32(4, LE) | payload
// where the payload is commit_hash(32) || marshaled flagged block. Recovery
// scans forward and stops at the first torn/corrupt record, so a crash
// mid-append loses at most the unfinished block — standard write-ahead
// semantics.
#pragma once

#include <string>

#include "fabric/ledger.hpp"
#include "fabric/statedb.hpp"

namespace bm::fabric {

class FileBlockStore {
 public:
  /// Opens (or creates) the store for appending.
  explicit FileBlockStore(std::string path);
  ~FileBlockStore();
  FileBlockStore(const FileBlockStore&) = delete;
  FileBlockStore& operator=(const FileBlockStore&) = delete;

  /// Append one committed block; flushes to the OS before returning.
  void append(const CommittedBlock& block);

  const std::string& path() const { return path_; }
  std::uint64_t blocks_written() const { return blocks_written_; }

  struct RecoveredChain {
    std::vector<CommittedBlock> blocks;
    std::uint64_t torn_bytes = 0;  ///< trailing bytes discarded by recovery
  };

  /// Scan a store file, returning every intact block in order. Verifies the
  /// CRC, the commit-hash chain and header linkage; stops at the first
  /// inconsistency (torn tail after a crash).
  static RecoveredChain recover(const std::string& path);

 private:
  std::string path_;
  void* file_ = nullptr;  // FILE*, kept out of the header
  std::uint64_t blocks_written_ = 0;
};

/// Rebuild an in-memory Ledger (and optionally replay world state) from a
/// recovered chain. Returns false if the chain fails re-validation.
bool replay_chain(const FileBlockStore::RecoveredChain& chain, Ledger& ledger,
                  StateDb* state = nullptr);

}  // namespace bm::fabric

// Disk-based block store: the persistent half of the ledger (validation
// step 4 writes "the entire block to the ledger with its transactions'
// valid/invalid flags and a commit hash", §2.2).
//
// Append-only file of framed records:
//   magic(4) | payload_len(4, LE) | crc32(4, LE) | payload
// where the payload is commit_hash(32) || marshaled flagged block. Recovery
// scans forward one record at a time (bounded memory, never the whole file)
// and stops at the first torn/corrupt record, so a crash mid-append loses at
// most the unfinished block — standard write-ahead semantics.
//
// Opening the store for writing is crash-safe: the constructor replays the
// same scan, *truncates* the torn tail off the file and seeds the chain head
// (height + tail commit hash) from what survived. Every append must extend
// that head — an append whose commit hash does not chain onto the recovered
// tail is rejected — so a reopened store can never bury fresh blocks behind
// an inconsistency where recover() would stop and silently lose them.
#pragma once

#include <string>

#include "fabric/ledger.hpp"
#include "fabric/statedb.hpp"

namespace bm {
namespace obs {
class Registry;
}  // namespace obs
}  // namespace bm

namespace bm::fabric {

class FileBlockStore {
 public:
  /// Largest payload a well-formed record may carry. A length field beyond
  /// this is treated as corruption (the scan stops there) instead of an
  /// attempt to allocate whatever a torn header happens to spell.
  static constexpr std::uint32_t kMaxPayload = 64u << 20;  // 64 MiB

  /// Opens (or creates) the store for appending. An existing file is
  /// scanned first: the valid prefix seeds height()/tail_commit_hash() and
  /// any torn tail is truncated away, so appends continue the chain.
  explicit FileBlockStore(std::string path);
  ~FileBlockStore();
  FileBlockStore(const FileBlockStore&) = delete;
  FileBlockStore& operator=(const FileBlockStore&) = delete;

  /// Append one committed block; flushes to the OS before returning.
  /// Throws std::invalid_argument unless the block extends the tail: its
  /// number must equal height() and its commit hash must equal
  /// H(tail_commit_hash || marshaled block).
  void append(const CommittedBlock& block);

  /// fsync the file to stable storage (fflush only reaches the OS cache).
  void sync();

  const std::string& path() const { return path_; }
  /// Blocks in the file: recovered-at-open plus appended since.
  std::uint64_t height() const { return height_; }
  /// Appends made through this handle (excludes the recovered prefix).
  std::uint64_t blocks_written() const { return blocks_written_; }
  const crypto::Digest& tail_commit_hash() const { return tail_commit_hash_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t fsyncs() const { return fsyncs_; }
  /// Torn/corrupt bytes the constructor truncated off the reopened file.
  std::uint64_t truncated_bytes() const { return truncated_bytes_; }

  struct RecoveredChain {
    std::vector<CommittedBlock> blocks;
    /// Height of blocks.front() — 0 for a full scan, the snapshot height
    /// when recover_from() skipped a prefix.
    std::uint64_t first_height = 0;
    std::uint64_t torn_bytes = 0;  ///< trailing bytes discarded by recovery
    /// Byte offset of each recovered record's frame header, plus one final
    /// entry for the end of the valid prefix (crash-point arithmetic).
    std::vector<std::uint64_t> record_offsets;
  };

  /// Scan a store file, returning every intact block in order. Verifies the
  /// CRC and the commit-hash chain; stops at the first inconsistency (torn
  /// tail after a crash).
  static RecoveredChain recover(const std::string& path);

  /// Snapshot-assisted scan: records below `first_height` are skipped with a
  /// framing-only check (magic + length sanity, no CRC / unmarshal / hash),
  /// then the chain is verified from `first_height` on, seeded with the
  /// snapshot's tail commit hash. This is what makes snapshot recovery
  /// cheaper than full replay: the skipped prefix costs a seek per record.
  static RecoveredChain recover_from(const std::string& path,
                                     std::uint64_t first_height,
                                     const crypto::Digest& prev_commit);

  /// Counters under "<prefix>_..." (snapshot-style, idempotent).
  void publish_metrics(obs::Registry& registry, const std::string& prefix) const;

 private:
  std::string path_;
  void* file_ = nullptr;  // FILE*, kept out of the header
  std::uint64_t height_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  crypto::Digest tail_commit_hash_{};  // zero for the empty chain
};

/// Rebuild an in-memory Ledger (and optionally replay world state) from a
/// recovered chain. The ledger must already stand at chain.first_height
/// (Ledger::open_at for a snapshot-seeded replay; empty for a full one).
/// World state is applied through StateDb::WriteBatch/commit_batch — the
/// same batched path live commits take. Returns false if the chain fails
/// re-validation.
bool replay_chain(const FileBlockStore::RecoveredChain& chain, Ledger& ledger,
                  StateDb* state = nullptr);

}  // namespace bm::fabric

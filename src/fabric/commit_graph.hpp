// Dependency-aware commit scheduling: the read/write-set dependency graph
// of one block, collapsed into topological waves.
//
// Fabric's mvcc step walks transactions strictly in order: a transaction is
// invalidated when it reads a key that an EARLIER valid transaction of the
// same block wrote. Most transactions of a block touch disjoint keys, so
// that order is far stronger than the data actually requires. This module
// extracts the real constraints:
//
//   - true dependency  (i writes k, j>i reads k):  j's verdict depends on
//     i's, so j must be DECIDED strictly after i       -> wave(j) > wave(i)
//   - anti dependency  (i reads k, j>i writes k):  i must be decided before
//     j's write becomes visible to deciders; same-wave is safe because
//     writes only fold in between waves                -> wave(j) >= wave(i)
//   - write/write pairs constrain nothing here: verdicts never read the
//     written VALUES, and last-writer-wins ordering is restored by building
//     the commit batch in transaction order afterwards.
//
// Every transaction in a wave can then be decided concurrently against the
// committed state plus the fold-in of all earlier waves — speedex-style
// out-of-order commit with the sequential path as the equivalence oracle:
// flags, MVCC verdicts, version stamps and the commit hash are byte-equal
// by construction (and differential-tested).
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/block.hpp"
#include "fabric/transaction.hpp"

namespace bm::fabric {

struct CommitSchedule {
  /// Transaction indices grouped by wave; within a wave indices ascend.
  /// Only transactions still valid after step 2 are scheduled.
  std::vector<std::vector<std::uint32_t>> waves;
  /// True + anti dependencies discovered (the edges that forced ordering).
  std::uint64_t dependencies = 0;
  /// Transactions scheduled (== sum of wave sizes).
  std::uint64_t scheduled_txs = 0;

  std::size_t wave_count() const { return waves.size(); }
};

/// Build the wave schedule for one block. `flags[i]` must hold the step-2
/// verdict for `txs[i]`; only kValid transactions join the graph (an
/// invalid transaction neither writes nor needs a verdict). Keys compare
/// namespaced (chaincode + key), exactly as mvcc compares them.
CommitSchedule build_commit_schedule(const std::vector<ParsedTransaction>& txs,
                                     const std::vector<TxValidationCode>& flags);

}  // namespace bm::fabric

#include "fabric/block_store.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/crc32.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"

namespace bm::fabric {

namespace {
constexpr std::uint32_t kMagic = 0x424D4C47;  // "BMLG"

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32le(ByteView b, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[offset + static_cast<std::size_t>(i)];
  return v;
}
}  // namespace

FileBlockStore::FileBlockStore(std::string path) : path_(std::move(path)) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr)
    throw std::runtime_error("cannot open block store: " + path_);
  file_ = f;
}

FileBlockStore::~FileBlockStore() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void FileBlockStore::append(const CommittedBlock& block) {
  Bytes payload;
  bm::append(payload, crypto::digest_view(block.commit_hash));
  bm::append(payload, block.block.marshal());

  Bytes frame;
  put_u32le(frame, kMagic);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload));
  bm::append(frame, payload);

  auto* f = static_cast<std::FILE*>(file_);
  if (std::fwrite(frame.data(), 1, frame.size(), f) != frame.size())
    throw std::runtime_error("block store write failed: " + path_);
  std::fflush(f);
  ++blocks_written_;
}

FileBlockStore::RecoveredChain FileBlockStore::recover(
    const std::string& path) {
  RecoveredChain chain;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return chain;  // no file yet: empty chain

  Bytes contents;
  std::uint8_t buffer[65536];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    contents.insert(contents.end(), buffer, buffer + n);
  std::fclose(f);

  std::size_t pos = 0;
  crypto::Digest prev_commit{};
  while (pos + 12 <= contents.size()) {
    if (get_u32le(contents, pos) != kMagic) break;
    const std::uint32_t len = get_u32le(contents, pos + 4);
    const std::uint32_t crc = get_u32le(contents, pos + 8);
    if (pos + 12 + len > contents.size()) break;  // torn tail
    const ByteView payload = ByteView(contents).subspan(pos + 12, len);
    if (crc32(payload) != crc || len < 32) break;

    CommittedBlock committed;
    std::copy(payload.begin(), payload.begin() + 32,
              committed.commit_hash.begin());
    auto block = Block::unmarshal(payload.subspan(32));
    if (!block) break;
    committed.block = std::move(*block);

    // Verify the commit-hash chain: H(prev_commit || marshaled block).
    crypto::Sha256 h;
    h.update(crypto::digest_view(prev_commit));
    h.update(payload.subspan(32));
    if (h.finish() != committed.commit_hash) break;
    prev_commit = committed.commit_hash;

    chain.blocks.push_back(std::move(committed));
    pos += 12 + len;
  }
  chain.torn_bytes = contents.size() - pos;
  return chain;
}

bool replay_chain(const FileBlockStore::RecoveredChain& chain, Ledger& ledger,
                  StateDb* state) {
  for (const CommittedBlock& committed : chain.blocks) {
    crypto::Digest recomputed;
    try {
      recomputed = ledger.append(committed.block);
    } catch (const std::invalid_argument&) {
      return false;  // numbering / prev_hash broken
    }
    if (recomputed != committed.commit_hash) return false;

    if (state != nullptr) {
      const Block& block = committed.block;
      for (std::size_t i = 0; i < block.tx_count(); ++i) {
        if (block.metadata.tx_flags[i] !=
            static_cast<std::uint8_t>(TxValidationCode::kValid))
          continue;
        const auto tx = parse_envelope(block.envelopes[i]);
        if (!tx) return false;
        const Version version{block.header.number,
                              static_cast<std::uint32_t>(i)};
        for (const KVWrite& write : tx->rwset.writes)
          state->put(StateDb::namespaced(tx->chaincode_id, write.key),
                     write.value, version);
      }
    }
  }
  return true;
}

}  // namespace bm::fabric

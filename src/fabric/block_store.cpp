#include "fabric/block_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/crc32.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"
#include "obs/metrics.hpp"

namespace bm::fabric {

namespace {
constexpr std::uint32_t kMagic = 0x424D4C47;  // "BMLG"
constexpr std::size_t kHeaderSize = 12;       // magic + len + crc

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32le(const std::uint8_t* b) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

/// One pass over a store file, one record at a time (memory bounded by the
/// largest single record, never the file). Records below `first_height` get
/// a framing-only check and an fseek past the payload; from there on every
/// record is CRC-checked, chain-checked against `seed` and (when `collect`)
/// unmarshaled. The scan stops at the first inconsistency.
struct ScanResult {
  std::uint64_t records = 0;    ///< verified records (skipped ones included)
  std::uint64_t valid_end = 0;  ///< byte offset after the last good record
  std::uint64_t file_size = 0;
  crypto::Digest tail{};  ///< commit hash of the last verified record
  std::vector<std::uint64_t> offsets;
  std::vector<CommittedBlock> blocks;  ///< when `collect`
};

ScanResult scan_store(const std::string& path, std::uint64_t first_height,
                      const crypto::Digest& seed, bool collect) {
  ScanResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;  // no file yet: empty chain

  std::fseek(f, 0, SEEK_END);
  result.file_size = static_cast<std::uint64_t>(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);

  std::uint64_t pos = 0;
  crypto::Digest prev_commit = first_height == 0 ? crypto::Digest{} : seed;
  Bytes payload;
  std::uint8_t header[kHeaderSize];
  while (pos + kHeaderSize <= result.file_size) {
    if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize) break;
    if (get_u32le(header) != kMagic) break;
    const std::uint32_t len = get_u32le(header + 4);
    const std::uint32_t crc = get_u32le(header + 8);
    // Validate the length *before* touching the payload: a commit hash alone
    // is 32 bytes, so any shorter length (or one past the sanity bound, or
    // past end-of-file) marks a torn or corrupt record.
    if (len < 32 || len > FileBlockStore::kMaxPayload) break;
    if (pos + kHeaderSize + len > result.file_size) break;  // torn tail

    if (result.records < first_height) {
      // Skipped prefix (covered by a snapshot): framing checks only.
      if (std::fseek(f, static_cast<long>(len), SEEK_CUR) != 0) break;
    } else {
      payload.resize(len);
      if (std::fread(payload.data(), 1, len, f) != len) break;
      if (crc32(payload) != crc) break;

      // Verify the commit-hash chain: H(prev_commit || marshaled block).
      crypto::Sha256 h;
      h.update(crypto::digest_view(prev_commit));
      h.update(ByteView(payload).subspan(32));
      const crypto::Digest commit_hash = h.finish();
      if (!std::equal(payload.begin(), payload.begin() + 32,
                      commit_hash.begin()))
        break;
      prev_commit = commit_hash;
      result.tail = commit_hash;

      if (collect) {
        auto block = Block::unmarshal(ByteView(payload).subspan(32));
        if (!block) break;
        CommittedBlock committed;
        committed.commit_hash = commit_hash;
        committed.block = std::move(*block);
        result.blocks.push_back(std::move(committed));
      }
      result.offsets.push_back(pos);
    }
    pos += kHeaderSize + len;
    result.records += 1;
    result.valid_end = pos;
  }
  std::fclose(f);
  result.offsets.push_back(result.valid_end);
  return result;
}

}  // namespace

FileBlockStore::FileBlockStore(std::string path) : path_(std::move(path)) {
  // Safe reopen: find the valid prefix, cut the torn tail off the file and
  // seed the chain head from what survived. Appending blindly after a crash
  // would park every new block beyond the first inconsistency, where
  // recover() (which stops there by design) could never reach it.
  const ScanResult scan =
      scan_store(path_, 0, crypto::Digest{}, /*collect=*/false);
  height_ = scan.records;
  tail_commit_hash_ = scan.tail;
  truncated_bytes_ = scan.file_size - scan.valid_end;
  if (truncated_bytes_ > 0)
    std::filesystem::resize_file(path_, scan.valid_end);

  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr)
    throw std::runtime_error("cannot open block store: " + path_);
  file_ = f;
}

FileBlockStore::~FileBlockStore() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void FileBlockStore::append(const CommittedBlock& block) {
  if (block.block.header.number != height_)
    throw std::invalid_argument(
        "block store: append of block " +
        std::to_string(block.block.header.number) + " at height " +
        std::to_string(height_));

  Bytes payload;
  bm::append(payload, crypto::digest_view(block.commit_hash));
  bm::append(payload, block.block.marshal());

  // The append must extend the recovered tail: its commit hash re-derives
  // from our chain head. Anything else would write a record recovery stops
  // in front of, silently orphaning all of its successors.
  crypto::Sha256 h;
  h.update(crypto::digest_view(tail_commit_hash_));
  h.update(ByteView(payload).subspan(32));
  if (h.finish() != block.commit_hash)
    throw std::invalid_argument(
        "block store: commit hash does not extend the stored chain at height " +
        std::to_string(height_));

  Bytes frame;
  put_u32le(frame, kMagic);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload));
  bm::append(frame, payload);

  auto* f = static_cast<std::FILE*>(file_);
  if (std::fwrite(frame.data(), 1, frame.size(), f) != frame.size())
    throw std::runtime_error("block store write failed: " + path_);
  std::fflush(f);
  tail_commit_hash_ = block.commit_hash;
  height_ += 1;
  blocks_written_ += 1;
  bytes_written_ += frame.size();
}

void FileBlockStore::sync() {
  auto* f = static_cast<std::FILE*>(file_);
  std::fflush(f);
  ::fsync(fileno(f));
  fsyncs_ += 1;
}

FileBlockStore::RecoveredChain FileBlockStore::recover(
    const std::string& path) {
  return recover_from(path, 0, crypto::Digest{});
}

FileBlockStore::RecoveredChain FileBlockStore::recover_from(
    const std::string& path, std::uint64_t first_height,
    const crypto::Digest& prev_commit) {
  ScanResult scan = scan_store(path, first_height, prev_commit,
                               /*collect=*/true);
  RecoveredChain chain;
  chain.blocks = std::move(scan.blocks);
  chain.first_height = std::min(first_height, scan.records);
  chain.torn_bytes = scan.file_size - scan.valid_end;
  chain.record_offsets = std::move(scan.offsets);
  return chain;
}

void FileBlockStore::publish_metrics(obs::Registry& registry,
                                     const std::string& prefix) const {
  registry
      .counter(prefix + "_blocks_appended_total",
               "blocks appended through this store handle")
      .set(blocks_written_);
  registry
      .counter(prefix + "_bytes_written_total",
               "framed bytes appended to the block log")
      .set(bytes_written_);
  registry.counter(prefix + "_fsyncs_total", "fsync calls on the block log")
      .set(fsyncs_);
  registry.gauge(prefix + "_height", "blocks in the log file")
      .set(static_cast<double>(height_));
  registry
      .gauge(prefix + "_truncated_bytes",
             "torn bytes cut off the log when it was reopened")
      .set(static_cast<double>(truncated_bytes_));
}

bool replay_chain(const FileBlockStore::RecoveredChain& chain, Ledger& ledger,
                  StateDb* state) {
  if (ledger.height() != chain.first_height) return false;
  for (const CommittedBlock& committed : chain.blocks) {
    crypto::Digest recomputed;
    try {
      recomputed = ledger.append(committed.block);
    } catch (const std::invalid_argument&) {
      return false;  // numbering / prev_hash broken
    }
    if (recomputed != committed.commit_hash) return false;

    if (state != nullptr) {
      // Same batched path live commits take: one grouped, version-stamped
      // apply per block, so replayed state carries the same batch
      // accounting as the original run.
      const Block& block = committed.block;
      StateDb::WriteBatch batch = state->make_batch();
      for (std::size_t i = 0; i < block.tx_count(); ++i) {
        if (block.metadata.tx_flags[i] !=
            static_cast<std::uint8_t>(TxValidationCode::kValid))
          continue;
        const auto tx = parse_envelope(block.envelopes[i]);
        if (!tx) return false;
        const Version version{block.header.number,
                              static_cast<std::uint32_t>(i)};
        for (const KVWrite& write : tx->rwset.writes)
          batch.add(StateDb::namespaced(tx->chaincode_id, write.key),
                    write.value, version);
      }
      state->commit_batch(std::move(batch));
    }
  }
  return true;
}

}  // namespace bm::fabric

// Endorsement policy language: parsing and evaluation.
//
// Supports the forms used in the paper (§2.2, §4.3):
//   "Org1 & Org2"                      conjunction of principals
//   "Org1 | Org2"                      disjunction
//   "2-outof-3 orgs" / "2of3"          k-out-of-n over the network's orgs
//   "2of(Org1, Org2, Org3)"            k-out-of explicit sub-policies
//   "(Org1 & Org2) | (Org3 & Org4)"    arbitrary nesting
// A principal is "OrgN" (peer role implied) or "OrgN.Role". The hardware
// side compiles the same AST into a combinational circuit (bmac/policy_circuit).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "fabric/identity.hpp"

namespace bm::fabric {

struct PolicyPrincipal {
  std::string org;
  Role role = Role::kPeer;

  auto operator<=>(const PolicyPrincipal&) const = default;
};

struct PolicyNode;
using PolicyNodePtr = std::unique_ptr<PolicyNode>;

struct PolicyNode {
  enum class Kind { kPrincipal, kAnd, kOr, kKOutOf };

  Kind kind = Kind::kPrincipal;
  PolicyPrincipal principal;          ///< kPrincipal
  int k = 0;                          ///< kKOutOf threshold
  std::vector<PolicyNodePtr> children;  ///< kAnd / kOr / kKOutOf

  PolicyNodePtr clone() const;
};

/// Predicate answering "does the endorsement set satisfy this principal?".
using PrincipalPredicate = std::function<bool(const PolicyPrincipal&)>;

class EndorsementPolicy {
 public:
  EndorsementPolicy() = default;
  EndorsementPolicy(PolicyNodePtr root, std::string text);
  EndorsementPolicy(const EndorsementPolicy& other);
  EndorsementPolicy& operator=(const EndorsementPolicy& other);
  EndorsementPolicy(EndorsementPolicy&&) noexcept = default;
  EndorsementPolicy& operator=(EndorsementPolicy&&) noexcept = default;

  bool empty() const { return root_ == nullptr; }
  const PolicyNode& root() const { return *root_; }
  const std::string& text() const { return text_; }

  /// Evaluate against an arbitrary principal predicate.
  bool evaluate(const PrincipalPredicate& satisfied) const;

  /// Evaluate against a set of endorsers given by encoded id, resolving org
  /// names through the MSP.
  bool evaluate_ids(const std::vector<EncodedId>& valid_endorsers,
                    const Msp& msp) const;

  /// All distinct principals mentioned, in first-appearance order. Clients
  /// gather endorsements from exactly these peers (the paper's workloads
  /// attach one endorsement per principal, e.g. 3 for "2-outof-3").
  std::vector<PolicyPrincipal> principals() const;

  /// Minimum number of satisfied principals that can make the policy pass
  /// (2 for "2-outof-3"). Drives the short-circuit win in Fig. 7e.
  int min_endorsements_to_satisfy() const;

  /// Total principal references in the expression, with repetition (10 for
  /// the "complex policy" of Fig. 7f). Fabric's software evaluator walks
  /// every sub-expression sequentially, so its cost scales with this.
  int literal_references() const;

 private:
  PolicyNodePtr root_;
  std::string text_;
};

struct PolicyParseError {
  std::string message;
  std::size_t position = 0;
};

/// Parse a policy expression. `org_universe` supplies the org list that the
/// "k-outof-n orgs" form draws from (its first n entries).
std::variant<EndorsementPolicy, PolicyParseError> parse_policy(
    std::string_view text, const std::vector<std::string>& org_universe);

/// Convenience: parse or throw std::invalid_argument.
EndorsementPolicy parse_policy_or_throw(
    std::string_view text, const std::vector<std::string>& org_universe);

}  // namespace bm::fabric

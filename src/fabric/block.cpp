#include "fabric/block.hpp"

#include "wire/proto.hpp"

namespace bm::fabric {

namespace {
enum : std::uint32_t {
  // Block
  kHeader = 1,
  kData = 2,
  kMetadata = 3,
  // BlockHeader
  kNumber = 1,
  kPrevHash = 2,
  kDataHash = 3,
  // BlockData
  kEnvelope = 1,  // repeated
  // BlockMetadata
  kOrdererCert = 1,
  kOrdererSig = 2,
  kTxFlags = 3,
};
}  // namespace

const char* tx_validation_code_name(TxValidationCode code) {
  switch (code) {
    case TxValidationCode::kValid: return "VALID";
    case TxValidationCode::kBadPayload: return "BAD_PAYLOAD";
    case TxValidationCode::kBadCreatorSignature: return "BAD_CREATOR_SIGNATURE";
    case TxValidationCode::kInvalidEndorserTransaction:
      return "INVALID_ENDORSER_TRANSACTION";
    case TxValidationCode::kEndorsementPolicyFailure:
      return "ENDORSEMENT_POLICY_FAILURE";
    case TxValidationCode::kMvccReadConflict: return "MVCC_READ_CONFLICT";
    case TxValidationCode::kNotValidated: return "NOT_VALIDATED";
  }
  return "?";
}

Bytes BlockHeader::marshal() const {
  wire::ProtoWriter w;
  w.varint_field(kNumber, number);
  w.bytes_field(kPrevHash, prev_hash);
  w.bytes_field(kDataHash, data_hash);
  return w.take();
}

std::optional<BlockHeader> BlockHeader::unmarshal(ByteView data) {
  BlockHeader header;
  wire::ProtoReader reader(data);
  while (auto f = reader.next()) {
    switch (f->number) {
      case kNumber: header.number = f->varint; break;
      case kPrevHash:
        header.prev_hash.assign(f->bytes.begin(), f->bytes.end());
        break;
      case kDataHash:
        header.data_hash.assign(f->bytes.begin(), f->bytes.end());
        break;
      default: break;
    }
  }
  if (!reader.ok()) return std::nullopt;
  return header;
}

crypto::Digest Block::compute_data_hash() const {
  crypto::Sha256 h;
  for (const Bytes& envelope : envelopes) h.update(envelope);
  return h.finish();
}

crypto::Digest Block::block_hash() const {
  return crypto::sha256(header.marshal());
}

crypto::Digest Block::signing_digest() const {
  crypto::Sha256 h;
  h.update(header.marshal());
  h.update(metadata.orderer_cert);
  return h.finish();
}

Bytes Block::marshal() const {
  wire::ProtoWriter w;
  w.bytes_field(kHeader, header.marshal());

  wire::ProtoWriter data;
  for (const Bytes& envelope : envelopes) data.bytes_field(kEnvelope, envelope);
  w.message_field(kData, data);

  wire::ProtoWriter metadata_writer;
  metadata_writer.bytes_field(kOrdererCert, metadata.orderer_cert);
  metadata_writer.bytes_field(kOrdererSig, metadata.orderer_sig);
  metadata_writer.bytes_field(
      kTxFlags, ByteView(metadata.tx_flags.data(), metadata.tx_flags.size()));
  w.message_field(kMetadata, metadata_writer);
  return w.take();
}

std::optional<Block> Block::unmarshal(ByteView data) {
  Block block;
  const auto header_bytes = wire::find_bytes_field(data, kHeader);
  const auto data_bytes = wire::find_bytes_field(data, kData);
  const auto metadata_bytes = wire::find_bytes_field(data, kMetadata);
  if (!header_bytes || !data_bytes || !metadata_bytes) return std::nullopt;

  auto header = BlockHeader::unmarshal(*header_bytes);
  if (!header) return std::nullopt;
  block.header = std::move(*header);

  for (const ByteView envelope :
       wire::find_repeated_bytes(*data_bytes, kEnvelope))
    block.envelopes.emplace_back(envelope.begin(), envelope.end());

  if (const auto cert = wire::find_bytes_field(*metadata_bytes, kOrdererCert))
    block.metadata.orderer_cert.assign(cert->begin(), cert->end());
  if (const auto sig = wire::find_bytes_field(*metadata_bytes, kOrdererSig))
    block.metadata.orderer_sig.assign(sig->begin(), sig->end());
  if (const auto flags = wire::find_bytes_field(*metadata_bytes, kTxFlags))
    block.metadata.tx_flags.assign(flags->begin(), flags->end());
  return block;
}

std::size_t Block::marshaled_size() const { return marshal().size(); }

}  // namespace bm::fabric

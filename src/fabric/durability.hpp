// The durable-ledger subsystem (ROADMAP item 2, docs/DURABILITY.md):
// append-only block log + periodic StateDb snapshots + crash recovery.
//
// A DurableLedger sits beside a commit pipeline: every committed block is
// appended to the CRC-framed block log (FileBlockStore), and every
// `snapshot_interval` blocks the world state is dumped to a versioned
// snapshot file next to it. Recovery is then snapshot + replay-from-height:
// restore the newest intact snapshot, seed the ledger at its chain position
// and replay only the log records past it — instead of re-applying the
// whole chain. The §4.1 divergence check (commit-hash equality) is the
// recovery oracle: a recovered peer must reproduce the reference commit
// hash byte for byte.
#pragma once

#include <memory>
#include <string>

#include "fabric/block_store.hpp"

namespace bm {
namespace obs {
class Registry;
}  // namespace obs
}  // namespace bm

namespace bm::fabric {

struct DurabilityConfig {
  /// Block-log file path; empty disables durability entirely.
  std::string ledger_path;
  /// Cut a StateDb snapshot every this many committed blocks (0 = never).
  /// Snapshots land next to the log as "<ledger_path>.snap.<height>".
  std::uint64_t snapshot_interval = 0;
  /// Snapshot files kept on disk (older ones are pruned after each cut).
  std::size_t keep_snapshots = 2;
  /// fsync the log after every append (otherwise data reaches the OS cache
  /// on each append and stable storage only at sync points).
  bool fsync_each_block = false;

  bool enabled() const { return !ledger_path.empty(); }
};

struct RecoveryResult {
  bool ok = false;
  std::uint64_t height = 0;           ///< chain height after recovery
  std::uint64_t blocks_replayed = 0;  ///< log records re-applied
  bool used_snapshot = false;
  std::uint64_t snapshot_height = 0;  ///< when used_snapshot
  std::uint64_t torn_bytes = 0;       ///< bytes discarded at the log tail
  double duration_s = 0;              ///< wall clock, whole recovery
  std::string error;                  ///< when !ok
};

/// Owns the block log (safe reopen included) and the snapshot schedule.
class DurableLedger {
 public:
  /// Opens (or creates) the log at config.ledger_path, truncating any torn
  /// tail. Requires config.enabled().
  explicit DurableLedger(DurabilityConfig config);

  /// Persist the ledger's newest block; cut + prune snapshots on schedule.
  /// Call once after every successful commit. Idempotent across restarts:
  /// a commit whose block is already durable (number below the log height,
  /// e.g. a restarted peer replaying from genesis) is skipped.
  void on_commit(const Ledger& ledger, const StateDb& state);

  /// Force the log to stable storage.
  void sync() { store_.sync(); }

  const DurabilityConfig& config() const { return config_; }
  const FileBlockStore& store() const { return store_; }
  std::uint64_t last_snapshot_height() const { return last_snapshot_height_; }
  /// Blocks committed since the newest snapshot (== replay cost of a crash
  /// right now).
  std::uint64_t snapshot_age_blocks() const {
    return store_.height() - last_snapshot_height_;
  }
  std::uint64_t snapshots_cut() const { return snapshots_cut_; }

  /// Rebuild ledger + state from disk: restore the newest intact snapshot
  /// (trying older ones if it is corrupt), then replay the log past it;
  /// with no usable snapshot, replay the whole log. `ledger` and `state`
  /// must be empty.
  static RecoveryResult recover(const DurabilityConfig& config, Ledger& ledger,
                                StateDb& state);

  /// Snapshot file name for a cut at `height`.
  static std::string snapshot_path(const DurabilityConfig& config,
                                   std::uint64_t height);

  /// Log/snapshot counters and gauges under "<prefix>_..." (idempotent).
  void publish_metrics(obs::Registry& registry, const std::string& prefix) const;

  /// Publish one recovery's outcome (duration, replay size, snapshot use).
  static void publish_recovery_metrics(obs::Registry& registry,
                                       const std::string& prefix,
                                       const RecoveryResult& result);

 private:
  DurabilityConfig config_;
  FileBlockStore store_;
  std::uint64_t last_snapshot_height_ = 0;
  std::uint64_t snapshots_cut_ = 0;
};

}  // namespace bm::fabric

// Append-only block ledger with a commit-hash chain.
//
// Step 4 of the validation pipeline writes the whole block — including the
// per-transaction validity flags — to the ledger together with a commit
// hash. The commit hash chains H(prev_commit_hash || marshaled block), so
// two peers that committed the same blocks with the same flags agree on it;
// the paper uses exactly this to check that the BMac peer never diverges
// from the software-only peer (§4.1).
#pragma once

#include "fabric/block.hpp"

namespace bm::fabric {

struct CommittedBlock {
  Block block;                ///< with metadata.tx_flags filled in
  crypto::Digest commit_hash;
};

class Ledger {
 public:
  /// Append a validated block. The block's number must equal height() and
  /// its prev_hash must match the previous header hash (genesis excepted).
  /// Returns the commit hash.
  crypto::Digest append(Block block);

  /// Seed an *empty* ledger at a recovered chain position (StateDb snapshot
  /// + replay-from-height recovery): the next append must carry block number
  /// `height` and chain onto `last_commit_hash` / `last_header_hash`.
  /// Blocks below `height` are not held — at() on them throws.
  void open_at(std::uint64_t height, const crypto::Digest& last_commit_hash,
               const crypto::Digest& last_header_hash);

  std::uint64_t height() const { return base_height_ + blocks_.size(); }
  /// Lowest height this ledger holds a block for (0 unless open_at() was
  /// used).
  std::uint64_t base_height() const { return base_height_; }
  const CommittedBlock& at(std::uint64_t index) const;
  const CommittedBlock& last() const;
  const crypto::Digest& last_commit_hash() const { return last_commit_hash_; }

  /// Total marshaled bytes appended (disk-footprint proxy).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::vector<CommittedBlock> blocks_;
  std::uint64_t base_height_ = 0;      // first held block's number
  crypto::Digest last_commit_hash_{};  // zero for the empty chain
  crypto::Digest last_header_hash_{};  // block_hash of the chain tail
  std::uint64_t bytes_written_ = 0;
};

}  // namespace bm::fabric

// Read/write sets with MVCC versions (Fabric's rwset model).
//
// A transaction's read set records each key it read and the version it saw
// at endorsement time; the write set records the keys it updates. Versions
// are (block number, tx number) pairs assigned at commit — the same scheme
// the in-hardware key-value store uses (§3.3).
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace bm::fabric {

struct Version {
  std::uint64_t block_num = 0;
  std::uint32_t tx_num = 0;

  auto operator<=>(const Version&) const = default;
};

struct KVRead {
  std::string key;
  /// Version observed at endorsement; nullopt when the key did not exist.
  std::optional<Version> version;

  friend bool operator==(const KVRead&, const KVRead&) = default;
};

struct KVWrite {
  std::string key;
  Bytes value;

  friend bool operator==(const KVWrite&, const KVWrite&) = default;
};

struct ReadWriteSet {
  std::vector<KVRead> reads;
  std::vector<KVWrite> writes;

  Bytes marshal() const;
  static std::optional<ReadWriteSet> unmarshal(ByteView data);

  friend bool operator==(const ReadWriteSet&, const ReadWriteSet&) = default;
};

}  // namespace bm::fabric

// Transactions: Fabric's nested envelope structure, endorsement and parsing.
//
// The marshaled layering mirrors Fabric (§2.1/§3.2):
//   Envelope { payload, creator signature }
//     Payload { Header { ChannelHeader, SignatureHeader{creator cert} },
//               TransactionAction { chaincode id, rwset, endorsements[] } }
//       Endorsement { endorser cert, endorser signature }
// Every layer is an independently marshaled protobuf embedded as a bytes
// field in its parent — the recursive-decoding burden the BMac protocol is
// designed to avoid.
#pragma once

#include "fabric/identity.hpp"
#include "fabric/rwset.hpp"

namespace bm::fabric {

struct Endorsement {
  Bytes endorser_cert;  ///< marshaled Certificate
  Bytes signature;      ///< DER ECDSA over the endorsed-data digest

  friend bool operator==(const Endorsement&, const Endorsement&) = default;
};

/// What an endorser signs: H(chaincode id || rwset bytes || endorser cert).
crypto::Digest endorsement_digest(std::string_view chaincode_id,
                                  ByteView rwset_bytes,
                                  ByteView endorser_cert);

/// Batched endorsement digests for one transaction: the (chaincode, rwset)
/// prefix — the bulk of the hashed bytes — is absorbed into a SHA-256
/// midstate ONCE, then forked per endorser certificate. Byte-identical to
/// endorsement_digest for every input (SHA-256 streams over the same
/// concatenation); with M endorsements the rwset is hashed once, not M
/// times.
class EndorsementDigester {
 public:
  EndorsementDigester(std::string_view chaincode_id, ByteView rwset_bytes);

  crypto::Digest digest(ByteView endorser_cert) const;

 private:
  crypto::Sha256 prefix_;  ///< midstate after chaincode id + rwset bytes
};

/// A transaction proposal: the client-visible inputs before endorsement.
struct TxProposal {
  std::string channel_id;
  std::string chaincode_id;
  std::string tx_id;
  ReadWriteSet rwset;
};

/// Build a fully endorsed, client-signed envelope. `endorsers` sign the
/// proposal's rwset (simulating the execution phase having produced it).
Bytes build_envelope(const TxProposal& proposal, const Identity& client,
                     const std::vector<const Identity*>& endorsers);

/// Same, but with pre-signed endorsements (the real endorsement flow: the
/// client gathers ProposalResponses and assembles the transaction). Each
/// endorsement's signature must cover endorsement_digest(chaincode id,
/// marshaled rwset, endorser cert) or validation will reject it.
Bytes build_envelope_with_endorsements(const TxProposal& proposal,
                                       const Identity& client,
                                       const std::vector<Endorsement>& ends);

/// Everything the validator needs, parsed out of a marshaled envelope, with
/// the raw byte ranges retained for signature verification.
struct ParsedTransaction {
  std::string channel_id;
  std::string chaincode_id;
  std::string tx_id;

  Bytes payload_bytes;    ///< signed by the creator
  Bytes signature;        ///< creator's DER signature
  Bytes creator_cert;     ///< marshaled Certificate
  Certificate creator;    ///< parsed creator certificate

  ReadWriteSet rwset;
  Bytes rwset_bytes;

  struct ParsedEndorsement {
    Bytes cert_bytes;
    Certificate cert;
    Bytes signature;
  };
  std::vector<ParsedEndorsement> endorsements;
};

/// Full recursive unmarshal of an envelope (the software validator path).
std::optional<ParsedTransaction> parse_envelope(ByteView envelope);

/// Wire field numbers, shared with the BMac protocol's annotation generator
/// (which locates the same fields without recursive decoding).
namespace txfield {
enum : std::uint32_t {
  // Envelope
  kPayload = 1,
  kSignature = 2,
  // Payload
  kHeader = 1,
  kAction = 2,
  // Header
  kChannelHeader = 1,
  kSignatureHeader = 2,
  // ChannelHeader
  kChannelId = 1,
  kTxId = 2,
  kEpoch = 3,
  kType = 4,
  // SignatureHeader
  kCreatorCert = 1,
  kNonce = 2,
  // TransactionAction
  kChaincodeId = 1,
  kRwset = 2,
  kEndorsement = 3,  // repeated
  kResponsePayload = 4,
  // Endorsement
  kEndorserCert = 1,
  kEndorserSig = 2,
};
}  // namespace txfield

}  // namespace bm::fabric

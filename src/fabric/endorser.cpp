#include "fabric/endorser.hpp"

#include "crypto/der.hpp"

namespace bm::fabric {

crypto::Digest Proposal::digest() const {
  crypto::Sha256 h;
  h.update(to_bytes(channel_id));
  h.update(to_bytes(chaincode_id));
  h.update(to_bytes(tx_id));
  h.update(args);
  h.update(creator_cert);
  return h.finish();
}

Proposal make_proposal(const Identity& client, std::string channel_id,
                       std::string chaincode_id, std::string tx_id,
                       Bytes args) {
  Proposal proposal;
  proposal.channel_id = std::move(channel_id);
  proposal.chaincode_id = std::move(chaincode_id);
  proposal.tx_id = std::move(tx_id);
  proposal.args = std::move(args);
  proposal.creator_cert = client.cert.marshal();
  proposal.signature =
      crypto::der_encode_signature(client.sign(proposal.digest()));
  return proposal;
}

EndorserPeer::EndorserPeer(Identity identity, const Msp& msp,
                           std::map<std::string, EndorsementPolicy> policies)
    : identity_(std::move(identity)),
      msp_(msp),
      validator_(msp, std::move(policies)) {}

void EndorserPeer::install_chaincode(const std::string& name,
                                     ChaincodeHandler handler) {
  chaincodes_[name] = std::move(handler);
}

ProposalResponse EndorserPeer::endorse(const Proposal& proposal) {
  ProposalResponse response;
  auto reject = [&](std::string message) {
    response.ok = false;
    response.message = std::move(message);
    ++proposals_rejected_;
    return response;
  };

  // Authenticate the client: certificate chains to a registered org and
  // the proposal signature verifies against its key.
  const auto creator = Certificate::unmarshal(proposal.creator_cert);
  if (!creator || !msp_.validate(*creator))
    return reject("unknown or invalid creator identity");
  const auto signature = crypto::der_decode_signature(proposal.signature);
  if (!signature ||
      !crypto::verify(creator->public_key, proposal.digest(), *signature))
    return reject("proposal signature verification failed");

  const auto chaincode = chaincodes_.find(proposal.chaincode_id);
  if (chaincode == chaincodes_.end())
    return reject("chaincode not installed: " + proposal.chaincode_id);

  // Execute against this peer's committed state (the paper's execute step:
  // read versions observed here become the transaction's read set).
  response.rwset = chaincode->second(proposal.args, state_);
  response.rwset_bytes = response.rwset.marshal();
  response.endorser_cert = identity_.cert.marshal();
  const crypto::Digest digest = endorsement_digest(
      proposal.chaincode_id, response.rwset_bytes, response.endorser_cert);
  response.signature =
      crypto::der_encode_signature(identity_.sign(digest));
  response.ok = true;
  ++proposals_endorsed_;
  return response;
}

BlockValidationResult EndorserPeer::deliver_block(const Block& block) {
  return validator_.validate_and_commit(block, state_, ledger_);
}

std::optional<Bytes> assemble_envelope(
    const Proposal& proposal, const Identity& client, const Msp& msp,
    const std::vector<ProposalResponse>& responses, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<Bytes> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  if (responses.empty()) return fail("no endorsements gathered");

  std::vector<Endorsement> endorsements;
  for (const ProposalResponse& response : responses) {
    if (!response.ok) return fail("endorser rejected: " + response.message);
    // All endorsers must have computed the same result; a divergent rwset
    // means inconsistent peer state and an unassemblable transaction.
    if (!equal(response.rwset_bytes, responses.front().rwset_bytes))
      return fail("endorsers produced divergent read/write sets");

    // Verify the endorsement before paying for ordering.
    const auto cert = Certificate::unmarshal(response.endorser_cert);
    if (!cert || !msp.validate(*cert))
      return fail("endorser certificate invalid");
    const auto signature = crypto::der_decode_signature(response.signature);
    const crypto::Digest digest = endorsement_digest(
        proposal.chaincode_id, response.rwset_bytes, response.endorser_cert);
    if (!signature || !crypto::verify(cert->public_key, digest, *signature))
      return fail("endorsement signature verification failed");

    endorsements.push_back(
        Endorsement{response.endorser_cert, response.signature});
  }

  TxProposal tx;
  tx.channel_id = proposal.channel_id;
  tx.chaincode_id = proposal.chaincode_id;
  tx.tx_id = proposal.tx_id;
  tx.rwset = responses.front().rwset;
  return build_envelope_with_endorsements(tx, client, endorsements);
}

}  // namespace bm::fabric

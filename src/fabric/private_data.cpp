#include "fabric/private_data.hpp"

#include "common/hex.hpp"

namespace bm::fabric {

std::string private_hashed_key(const std::string& collection,
                               const std::string& key) {
  const crypto::Digest digest = crypto::sha256(to_bytes(key));
  return "pvt~" + collection + "~" +
         hex_encode(ByteView(digest.data(), 16));  // 128 bits suffice
}

Bytes private_value_hash(ByteView value) {
  return crypto::digest_bytes(crypto::sha256(value));
}

void add_private_write(ReadWriteSet& rwset, const std::string& collection,
                       const std::string& key, ByteView value) {
  rwset.writes.push_back(
      KVWrite{private_hashed_key(collection, key), private_value_hash(value)});
}

void add_private_read(ReadWriteSet& rwset, const std::string& collection,
                      const std::string& key,
                      std::optional<Version> version) {
  rwset.reads.push_back(KVRead{private_hashed_key(collection, key), version});
}

void PrivateDataStore::put(const std::string& collection,
                           const std::string& key, Bytes value) {
  data_[private_hashed_key(collection, key)] = std::move(value);
}

std::optional<Bytes> PrivateDataStore::get(const std::string& collection,
                                           const std::string& key) const {
  const auto it = data_.find(private_hashed_key(collection, key));
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

bool PrivateDataStore::matches_ledger_hash(ByteView disclosed_value,
                                           ByteView ledger_value_hash) {
  return equal(private_value_hash(disclosed_value), ledger_value_hash);
}

}  // namespace bm::fabric

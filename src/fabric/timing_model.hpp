// Calibrated service-time model of the software-only peers.
//
// The functional SoftwareValidator (validator.hpp) establishes *what* the
// peer computes; this model establishes *how long* the real Go peer takes,
// so the DES benches reproduce the paper's performance figures without the
// authors' testbed. Every constant below is fit to numbers reported in the
// paper (§4.3) — see the derivations next to each constant.
//
// Model of one block's validation latency (ledger commit excluded, §4.2):
//
//   T(nTx, E, L, R, W, v) = t_block_fixed
//                         + nTx * ( t_tx_serial
//                                 + L * t_policy_literal
//                                 + R * t_db_read + W * t_db_write )
//                         + nTx * E * t_sig_verify / v
// where
//   E = endorsement signatures verified per tx (Fabric verifies ALL
//       endorsements attached, irrespective of the policy),
//   L = literal references in the policy expression (Fabric evaluates all
//       sub-expressions sequentially),
//   R/W = state-db reads/writes per tx, v = vCPUs (= vscc threads).
//
// Calibration anchors (block size 150, smallbank, 2-outof-2):
//   * Fig 7b: 3,500 / ~4,600 / 5,300 tps at 4 / 8 / 16 vCPUs
//       => parallel work per tx = 2 * t_sig_verify, serial part 23.4 ms.
//   * §4.3: vscc latency 18.3 / 23.2 / 28.0 ms for 1of1 / 2of2 / 3of3
//       => one endorsement column = 4.85 ms per 150-tx block at 8 vCPUs
//       => t_sig_verify = 4.85ms * 8 / 150 = 259 us.
//   * §4.3: "fixed cost of policy evaluation is quite high (~13 ms)".
//   * Fig 7g: going from 3 to 13 db accesses per tx costs the software
//     peer ~16% throughput => t_db ~4.5 us per access.
//   * Fig 7a: throughput grows with block size (fixed per-block cost
//     amortized) => t_block_fixed = 6 ms reproduces the 50->250 trend.
// With these, the model lands on the paper's software numbers to within a
// few percent across Figs. 7a/7b/7e/7g (see EXPERIMENTS.md).
#pragma once

#include <algorithm>

#include "sim/simulation.hpp"

namespace bm::fabric {

struct SwBlockWorkload {
  int n_tx = 100;
  int endorsements_verified_per_tx = 2;  ///< Fabric: all attached endorsements
  int policy_literals = 2;  ///< principal references in the policy expression
  double db_reads_per_tx = 2;
  double db_writes_per_tx = 2;
  int vcpus = 8;
};

struct SwTimingModel {
  // Fixed per-block cost: gossip receipt, block unmarshal, orderer-signature
  // check, ledger bookkeeping (Fig. 7a amortization trend).
  sim::Time block_fixed = 6 * sim::kMillisecond;

  // Serial per-transaction cost: envelope unmarshal (the ~23-layer protobuf
  // nest), creator signature handling amortized across the validator pool,
  // mvcc bookkeeping. Residual after the anchors above are subtracted.
  sim::Time tx_serial = 78 * sim::kMicrosecond;

  // Per policy-literal evaluation cost; Fabric walks every sub-expression
  // sequentially (the "complex policy" collapse in Fig. 7f).
  sim::Time policy_literal = 10 * sim::kMicrosecond;

  // One software ECDSA-P256 verification (vscc worker).
  sim::Time sig_verify = 259 * sim::kMicrosecond;

  // LevelDB accesses during mvcc / commit.
  sim::Time db_read = 5 * sim::kMicrosecond;
  sim::Time db_write = 4 * sim::kMicrosecond;

  // An endorser peer also executes/endorses transactions on the same cores;
  // the paper observes the validator sustains >= 35% more throughput than
  // the endorser (Fig. 7a). Modeled as a uniform slowdown of the pipeline.
  double endorser_load_factor = 1.40;

  /// Validation+commit latency for one block (ledger commit excluded).
  sim::Time block_latency(const SwBlockWorkload& w) const {
    const double per_tx_serial =
        static_cast<double>(tx_serial) +
        static_cast<double>(policy_literal) * w.policy_literals +
        static_cast<double>(db_read) * w.db_reads_per_tx +
        static_cast<double>(db_write) * w.db_writes_per_tx;
    const double parallel = static_cast<double>(sig_verify) *
                            w.endorsements_verified_per_tx /
                            std::max(1, w.vcpus);
    return block_fixed +
           static_cast<sim::Time>(w.n_tx * (per_tx_serial + parallel));
  }

  /// Same block processed by an endorser peer (endorsement load included).
  sim::Time endorser_block_latency(const SwBlockWorkload& w) const {
    return static_cast<sim::Time>(
        static_cast<double>(block_latency(w)) * endorser_load_factor);
  }

  /// Commit throughput in transactions/second implied by block_latency.
  double throughput_tps(const SwBlockWorkload& w) const {
    return static_cast<double>(w.n_tx) /
           (static_cast<double>(block_latency(w)) / sim::kSecond);
  }
};

}  // namespace bm::fabric

#include "net/transport.hpp"

namespace bm::net {

void TcpStream::send_message(std::size_t bytes,
                             std::function<void()> on_delivery) {
  ++messages_sent_;
  // Sender-side software cost: protobuf marshal of the whole block, gRPC
  // framing, kernel copies. Scales with message size.
  sim::Time software =
      config_.software_base +
      static_cast<sim::Time>(static_cast<double>(config_.software_per_mb) *
                             (static_cast<double>(bytes) / (1024.0 * 1024.0)));
  if (config_.software_jitter_max > 0)
    software += static_cast<sim::Time>(
        rng_.uniform(static_cast<std::uint64_t>(config_.software_jitter_max)));

  // Window stalls: one RTT of dead air each time the in-flight window
  // drains before the application can push more.
  const std::size_t stalls = bytes / config_.window_bytes;
  const sim::Time stall_time =
      static_cast<sim::Time>(stalls) * config_.rtt + config_.rtt / 2;

  const std::size_t segments = (bytes + kTcpMss - 1) / kTcpMss;
  const std::size_t last_segment =
      bytes - (segments - 1) * kTcpMss + kEthIpTcpOverhead;
  segments_sent_ += segments;

  sim_.schedule(software + stall_time, [this, segments, last_segment,
                                        cb = std::move(on_delivery)]() mutable {
    // Queue every segment on the link; completion fires with the last one.
    for (std::size_t i = 0; i + 1 < segments; ++i)
      link_.send(kTcpMss + kEthIpTcpOverhead, [] {});
    link_.send(last_segment, std::move(cb));
  });
}

void TcpStream::publish_metrics(obs::Registry& registry,
                                const std::string& prefix) const {
  registry.counter(prefix + "_messages_sent_total", "gossip messages sent")
      .set(messages_sent_);
  registry.counter(prefix + "_segments_sent_total", "TCP segments queued")
      .set(segments_sent_);
}

void UdpChannel::send_datagram(std::size_t bytes,
                               std::function<void()> on_delivery) {
  ++datagrams_sent_;
  sim::Time software = config_.software_per_packet;
  if (config_.software_jitter_max > 0)
    software += static_cast<sim::Time>(
        rng_.uniform(static_cast<std::uint64_t>(config_.software_jitter_max)));

  const std::size_t fragments = (bytes + kUdpMtuPayload - 1) / kUdpMtuPayload;
  const std::size_t last_fragment =
      bytes - (fragments - 1) * kUdpMtuPayload + kEthIpUdpOverhead;
  fragments_sent_ += fragments;

  sim_.schedule(software, [this, fragments, last_fragment,
                           cb = std::move(on_delivery)]() mutable {
    for (std::size_t i = 0; i + 1 < fragments; ++i)
      link_.send(kUdpMtuPayload + kEthIpUdpOverhead, [] {});
    link_.send(last_fragment, std::move(cb));
  });
}

void UdpChannel::publish_metrics(obs::Registry& registry,
                                 const std::string& prefix) const {
  registry.counter(prefix + "_datagrams_sent_total", "BMac datagrams sent")
      .set(datagrams_sent_);
  registry.counter(prefix + "_fragments_sent_total", "IP fragments queued")
      .set(fragments_sent_);
}

}  // namespace bm::net

// Transport models: a TCP/gRPC-like reliable stream (Fabric's Gossip path)
// and a UDP datagram path (the BMac protocol).
//
// The paper contrasts the two in Fig. 1b vs Fig. 3: Gossip sends one large
// marshaled block over gRPC/HTTP2/TCP (multiple segments, sender-side
// marshaling cost, window stalls), while the BMac protocol sends small
// self-contained UDP packets that the hardware consumes as they arrive.
// These models reproduce the end-to-end block transmission CDF of Fig. 6b.
#pragma once

#include "net/link.hpp"

namespace bm::net {

/// Per-frame overheads on the wire.
constexpr std::size_t kEthIpUdpOverhead = 46;   ///< Eth+IP+UDP headers + FCS
constexpr std::size_t kEthIpTcpOverhead = 78;   ///< Eth+IP+TCP + gRPC framing
constexpr std::size_t kTcpMss = 1448;
constexpr std::size_t kUdpMtuPayload = 1452;

/// TCP/gRPC stream model for Gossip block dissemination. A message of size
/// S is segmented; the sender additionally pays a software cost (protobuf
/// marshal, gRPC, kernel stack) and stalls once per congestion window.
class TcpStream {
 public:
  struct Config {
    sim::Time software_base = 3 * sim::kMillisecond;  ///< per-message stack cost
    sim::Time software_per_mb = 9 * sim::kMillisecond;  ///< marshal/copy cost
    std::size_t window_bytes = 128 * 1024;  ///< effective in-flight window
    sim::Time rtt = 400 * sim::kMicrosecond;
    std::uint64_t seed = 7;
    sim::Time software_jitter_max = 4 * sim::kMillisecond;
  };

  TcpStream(sim::Simulation& sim, Link& link, Config config)
      : sim_(sim), link_(link), config_(config), rng_(config.seed) {}

  /// Send a message; `on_delivery` fires when the final byte has arrived.
  void send_message(std::size_t bytes, std::function<void()> on_delivery);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t segments_sent() const { return segments_sent_; }

  /// Publish message/segment counters under "<prefix>_...". Idempotent.
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

 private:
  sim::Simulation& sim_;
  Link& link_;
  Config config_;
  Rng rng_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t segments_sent_ = 0;
};

/// UDP datagram path for the BMac protocol. Each datagram is fragmented at
/// the MTU if needed; the sender's software cost is small (no marshaling —
/// sections are sliced out of the already-marshaled block).
class UdpChannel {
 public:
  struct Config {
    sim::Time software_per_packet = 8 * sim::kMicrosecond;  ///< sendto() cost
    std::uint64_t seed = 11;
    sim::Time software_jitter_max = 2 * sim::kMillisecond;  ///< OS scheduling
  };

  UdpChannel(sim::Simulation& sim, Link& link, Config config)
      : sim_(sim), link_(link), config_(config), rng_(config.seed) {}

  /// Send one datagram; `on_delivery` fires when it arrives (if not lost).
  void send_datagram(std::size_t bytes, std::function<void()> on_delivery);

  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t fragments_sent() const { return fragments_sent_; }

  /// Publish datagram/fragment counters under "<prefix>_...". Idempotent.
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

 private:
  sim::Simulation& sim_;
  Link& link_;
  Config config_;
  Rng rng_;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t fragments_sent_ = 0;
};

}  // namespace bm::net

// Peer-to-peer gossip dissemination of blocks (§2.2: Fabric's Gossip
// protocol spreads blocks from the lead peer of each org to the others).
//
// Push gossip with bounded fanout plus periodic anti-entropy pulls: a peer
// that first learns a block forwards it to `fanout` random neighbours;
// losses are repaired when a peer's periodic digest exchange reveals a gap.
// Message timing charges the block's wire size against a per-hop link rate,
// so disseminating the 4-5x smaller BMac-protocol encoding measurably beats
// full Gossip blocks — §5's "our protocol can also be used by the lead peer
// to send blocks to other peers in its own organization".
//
// Two dissemination modes share one mesh:
//   - metadata-only publish(origin, block_num, bytes): timing/coverage
//     studies, where only the wire size matters;
//   - payload publish(origin, block_num, Bytes): the cluster path, where
//     delivered blocks carry the real marshaled bytes each peer validates
//     and commits (src/cluster). The payload is registered once network-wide
//     and handed to the payload callback on each peer's first delivery.
#pragma once

#include <functional>
#include <map>
#include <set>

#include <memory>

#include "common/rng.hpp"
#include "net/faults.hpp"
#include "sim/simulation.hpp"

namespace bm::net {

class GossipNetwork {
 public:
  struct Config {
    int fanout = 2;
    double gbps = 1.0;  ///< per-hop link rate (serialization delay)
    sim::Time hop_delay = 300 * sim::kMicrosecond;  ///< propagation + stack
    sim::Time hop_jitter = 200 * sim::kMicrosecond;
    sim::Time forward_processing = 200 * sim::kMicrosecond;
    /// Hop-level fault schedule (drop/delay decisions; corruption and
    /// duplication do not apply to gossip messages). Uniform i.i.d. loss is
    /// FaultConfig::uniform_loss(p, seed); its own seed keeps the topology
    /// RNG sequence untouched, so enabling faults never reshuffles fanout.
    FaultConfig faults;
    sim::Time anti_entropy_interval = 50 * sim::kMillisecond;
    std::uint64_t seed = 1;
  };

  /// Fired exactly once per (peer, block): first delivery.
  using DeliverFn = std::function<void(int peer, std::uint64_t block_num,
                                       std::size_t bytes)>;
  /// Fired exactly once per (peer, block) when the block was published with
  /// a payload: first delivery, after the DeliverFn.
  using PayloadFn = std::function<void(int peer, std::uint64_t block_num,
                                       const Bytes& payload)>;

  GossipNetwork(sim::Simulation& sim, int peers, Config config);

  void set_deliver_callback(DeliverFn fn) { on_deliver_ = std::move(fn); }
  void set_payload_callback(PayloadFn fn) { on_payload_ = std::move(fn); }

  /// Start the anti-entropy processes (optional; push-only without it).
  void start_anti_entropy();
  void stop_anti_entropy() { anti_entropy_running_ = false; }

  /// Inject a block at `origin` (e.g. the org's lead peer), metadata only.
  /// Throws std::out_of_range unless 0 <= origin < peer_count().
  void publish(int origin, std::uint64_t block_num, std::size_t bytes);

  /// Inject a block with its marshaled bytes: the payload is registered
  /// network-wide (first publish of a block number wins) and handed to the
  /// payload callback on each peer's first delivery. Re-publishing the same
  /// block number at another origin re-injects without re-registering.
  void publish(int origin, std::uint64_t block_num, Bytes payload);

  /// Throws std::out_of_range unless 0 <= peer < peer_count().
  bool peer_has(int peer, std::uint64_t block_num) const {
    return state_of(peer, "peer_has").known.count(block_num) > 0;
  }
  int peer_count() const { return static_cast<int>(peers_.size()); }

  // --- peer lifecycle (cluster crash / restart modeling) ---------------------

  /// Take a peer off / back onto the mesh. Messages to an offline peer are
  /// dropped at delivery (they never become "known", so anti-entropy repairs
  /// them after the peer returns); an offline peer neither serves nor pulls
  /// digests.
  void set_peer_online(int peer, bool online);
  bool peer_online(int peer) const {
    return state_of(peer, "peer_online").online;
  }

  /// Forget everything a peer knows (crash with state loss). The peer's
  /// delivery history is wiped, so a later restart re-learns via catch-up.
  void reset_peer(int peer);

  /// Seed a peer's view without a delivery (state transfer: the peer now
  /// holds the block through the catch-up path, so gossip must not re-push
  /// it). The advertised size comes from the payload registry when present.
  void mark_known(int peer, std::uint64_t block_num);

  // --- statistics -------------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t duplicates_received() const { return duplicates_; }
  std::uint64_t anti_entropy_repairs() const { return repairs_; }
  std::uint64_t dropped_offline() const { return dropped_offline_; }
  /// Fault counters when Config::faults is active (null otherwise).
  const FaultStats* fault_stats() const {
    return faults_ ? &faults_->stats() : nullptr;
  }

 private:
  struct PeerState {
    std::set<std::uint64_t> known;
    std::map<std::uint64_t, std::size_t> sizes;  ///< for anti-entropy pulls
    bool online = true;
  };

  PeerState& state_of(int peer, const char* what);
  const PeerState& state_of(int peer, const char* what) const;

  void receive(int peer, std::uint64_t block_num, std::size_t bytes,
               bool from_repair);
  void push_to(int from, int to, std::uint64_t block_num, std::size_t bytes,
               bool is_repair);
  void anti_entropy_round(int peer);

  sim::Simulation& sim_;
  Config config_;
  Rng rng_;
  std::unique_ptr<FaultInjector> faults_;  ///< null on the legacy loss path
  std::vector<PeerState> peers_;
  std::map<std::uint64_t, Bytes> payloads_;  ///< network-wide payload registry
  DeliverFn on_deliver_;
  PayloadFn on_payload_;
  bool anti_entropy_running_ = false;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t dropped_offline_ = 0;
};

}  // namespace bm::net

#include "net/link.hpp"

#include <algorithm>

namespace bm::net {

sim::Time Link::serialization_delay(std::size_t bytes) const {
  const double seconds = static_cast<double>(bytes) * 8.0 /
                         (config_.gbps * 1e9);
  return static_cast<sim::Time>(seconds * sim::kSecond);
}

void Link::send(std::size_t bytes, std::function<void()> on_delivery) {
  ++frames_sent_;
  bytes_sent_ += bytes;

  // The link transmits frames back to back: a frame starts serializing when
  // the previous one finishes.
  const sim::Time start = std::max(sim_.now(), busy_until_);
  const sim::Time done = start + serialization_delay(bytes);
  busy_until_ = done;
  busy_time_ += done - start;

  if (tracer_ != nullptr) {
    tracer_->complete(lane_, "frame", "net", start, done,
                      {{"bytes", static_cast<std::uint64_t>(bytes)}});
  }
  sim::Time jitter = 0;
  if (config_.jitter_max > 0)
    jitter = static_cast<sim::Time>(
        rng_.uniform(static_cast<std::uint64_t>(config_.jitter_max)));
  sim_.schedule(done - sim_.now() + config_.propagation + jitter,
                std::move(on_delivery));
}

void Link::publish_metrics(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + "_frames_sent_total", "frames queued on the link")
      .set(frames_sent_);
  registry.counter(prefix + "_bytes_sent_total", "payload bytes queued")
      .set(bytes_sent_);
  const auto now = static_cast<double>(sim_.now());
  registry
      .gauge(prefix + "_utilization",
             "fraction of simulated time spent serializing frames")
      .set(now > 0 ? static_cast<double>(busy_time_) / now : 0.0);
}

}  // namespace bm::net

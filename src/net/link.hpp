// Point-to-point network link model.
//
// Models the 1 Gbps LAN of the paper's testbed (Fig. 5): a transmit queue
// with serialization delay (bytes / rate), propagation delay and bounded
// random jitter. Deterministic for a fixed RNG seed. The link itself is
// lossless: impairments (loss, corruption, reordering, partitions) belong
// to net::FaultyChannel (src/net/faults.hpp), layered on top.
#pragma once

#include <functional>
#include <string>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace bm::net {

class Link {
 public:
  struct Config {
    double gbps = 1.0;                           ///< line rate
    sim::Time propagation = 50 * sim::kMicrosecond;  ///< LAN + switch latency
    sim::Time jitter_max = 0;  ///< uniform [0, jitter_max) added per frame
    std::uint64_t seed = 1;
  };

  Link(sim::Simulation& sim, Config config)
      : sim_(sim), config_(config), rng_(config.seed) {}

  /// Queue a frame of `bytes` for transmission; `on_delivery` fires at
  /// arrival time.
  void send(std::size_t bytes, std::function<void()> on_delivery);

  /// Time to serialize `bytes` at line rate.
  sim::Time serialization_delay(std::size_t bytes) const;

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Total simulated time the link spent serializing frames.
  sim::Time busy_time() const { return busy_time_; }

  /// Emit one "net"-category span per frame onto `lane`. Frames serialize
  /// back to back, so spans on the lane never overlap. Null detaches.
  void set_tracer(obs::Tracer* tracer, int lane) {
    tracer_ = tracer;
    lane_ = lane;
  }

  /// Publish lifetime counters and the utilization gauge (busy fraction of
  /// the line) under "<prefix>_...". Idempotent.
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

 private:
  sim::Simulation& sim_;
  Config config_;
  Rng rng_;
  sim::Time busy_until_ = 0;
  sim::Time busy_time_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  obs::Tracer* tracer_ = nullptr;
  int lane_ = 0;
};

}  // namespace bm::net

// Deterministic, seedable network fault injection (the adversarial-network
// layer behind the §5 reliability discussion).
//
// net::Link models a clean point-to-point wire with at most uniform i.i.d.
// loss. Real degraded networks misbehave in correlated ways: losses arrive
// in bursts (modeled here with the classic two-state Gilbert–Elliott
// channel), payloads get corrupted (usually caught by the Ethernet FCS and
// dropped, occasionally slipping through silently), frames are duplicated
// or reordered by rerouting, queues add delay spikes, and whole windows of
// time are blackholed by partitions. This header provides:
//
//   - FaultConfig: the knob set for one direction of a channel, loadable
//     from configs/faults_*.json (schema in docs/FAULTS.md);
//   - FaultInjector: the deterministic decision engine — same seed + config
//     => byte-identical fault schedule, independent of observability;
//   - FaultyChannel: a payload-carrying channel composing a FaultInjector
//     onto any Link, delivering (possibly corrupted) frames to a receiver
//     callback. The Go-Back-N shim (bmac/reliable.hpp) rides on top of it
//     and turns every fault except undetected corruption back into "loss".
//
// This layer is the only source of impairments: the former
// `Link::Config::loss_probability` and `GossipNetwork::Config::message_loss`
// uniform-loss adapters have been removed. Their one-line equivalent is
// FaultConfig::uniform_loss(p, seed).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

namespace bm::config {
class Section;
}

namespace bm::net {

/// Fault schedule for ONE direction of a channel.
struct FaultConfig {
  // --- Gilbert–Elliott burst loss ---------------------------------------
  // Two-state Markov chain advanced once per frame: GOOD drops with
  // `loss_good`, BAD with `loss_bad`. Uniform i.i.d. loss is the special
  // case loss_good == loss_bad with no transitions.
  double loss_good = 0.0;
  double loss_bad = 0.0;
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;

  // --- payload corruption ------------------------------------------------
  /// Corruption the link-layer FCS catches: the frame is dropped at the
  /// receiving NIC (upper layers see it as loss).
  double corrupt_detectable = 0.0;
  /// Corruption the FCS misses: the frame is delivered with flipped bytes.
  /// Catching these is the job of an end-to-end check (the GBN frame CRC).
  double corrupt_silent = 0.0;

  // --- duplication / reordering / delay ----------------------------------
  double duplicate = 0.0;  ///< frame delivered twice
  double reorder = 0.0;    ///< frame held back so later frames overtake it
  sim::Time reorder_hold_max = 500 * sim::kMicrosecond;  ///< uniform hold
  double delay_spike = 0.0;
  sim::Time delay_spike_magnitude = 2 * sim::kMillisecond;

  // --- scheduled partitions ----------------------------------------------
  /// Blackhole windows on simulated time: every frame sent with
  /// start <= now < end is dropped.
  struct Window {
    sim::Time start = 0;
    sim::Time end = 0;
  };
  std::vector<Window> partitions;

  std::uint64_t seed = 1;

  /// True when any knob can affect a frame.
  bool any() const;

  /// Adapter for the deprecated uniform-loss fields: i.i.d. loss `p`.
  static FaultConfig uniform_loss(double p, std::uint64_t seed = 1);
};

struct FaultStats {
  std::uint64_t frames = 0;             ///< frames assessed
  std::uint64_t dropped_loss = 0;       ///< Gilbert–Elliott drops
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_corrupt = 0;    ///< FCS-detected corruption
  std::uint64_t corrupted_silent = 0;   ///< delivered with flipped bytes
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delay_spikes = 0;
  std::uint64_t bad_state_frames = 0;   ///< frames assessed in the BAD state

  std::uint64_t dropped_total() const {
    return dropped_loss + dropped_partition + dropped_corrupt;
  }
};

/// The deterministic decision engine, link-agnostic so GossipNetwork and
/// tests can reuse it without a Link. Every assess() draws the same fixed
/// number of random values regardless of outcome (partitions included), so
/// the fault schedule after any prefix is independent of what the faults
/// hit — and byte-identical across runs for a given config.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  enum class DropReason { kNone, kLoss, kPartition, kCorrupt };

  struct Verdict {
    DropReason drop = DropReason::kNone;
    bool corrupt_silent = false;
    std::size_t corrupt_offset = 0;  ///< byte to flip when corrupt_silent
    std::uint8_t corrupt_mask = 0;   ///< non-zero XOR mask
    bool duplicate = false;
    sim::Time extra_delay = 0;       ///< reorder hold + delay spike

    bool dropped() const { return drop != DropReason::kNone; }
  };

  /// Decide the fate of the next frame of `frame_size` bytes sent at `now`.
  Verdict assess(sim::Time now, std::size_t frame_size);

  bool in_partition(sim::Time now) const;
  bool bad_state() const { return bad_state_; }
  const FaultStats& stats() const { return stats_; }
  const FaultConfig& config() const { return config_; }

  /// Snapshot the counters under "<prefix>_..." (idempotent).
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

 private:
  FaultConfig config_;
  Rng rng_;
  bool bad_state_ = false;
  FaultStats stats_;
};

/// A payload-carrying unreliable channel: frames (byte vectors) sent through
/// a FaultInjector composed onto a Link. The Link charges serialization +
/// propagation for every frame (including doomed ones — the sender's NIC
/// transmits regardless); the injector decides what arrives, in what shape,
/// and when. The Link itself is lossless: all impairments belong to the
/// injector so they are scriptable and counted.
class FaultyChannel {
 public:
  using DeliverFn = std::function<void(Bytes)>;

  FaultyChannel(sim::Simulation& sim, Link& link, FaultConfig config)
      : sim_(sim), link_(link), injector_(std::move(config)) {}

  void set_receiver(DeliverFn receiver) { receiver_ = std::move(receiver); }

  /// Send one frame toward the receiver callback.
  void send(Bytes frame);

  const FaultStats& stats() const { return injector_.stats(); }
  FaultInjector& injector() { return injector_; }
  Link& link() { return link_; }

  /// Emit one "fault"-category instant per injected fault onto `lane`.
  /// Null detaches. Purely cosmetic: never schedules events.
  void set_tracer(obs::Tracer* tracer, int lane) {
    tracer_ = tracer;
    lane_ = lane;
  }

  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const {
    injector_.publish_metrics(registry, prefix);
  }

 private:
  sim::Simulation& sim_;
  Link& link_;
  FaultInjector injector_;
  DeliverFn receiver_;
  obs::Tracer* tracer_ = nullptr;
  int lane_ = 0;
};

/// A two-directional fault schedule as loaded from configs/faults_*.json:
/// `data` applies to the forward (sender -> receiver) direction, `ack` to
/// the reverse. See docs/FAULTS.md for the schema.
struct FaultScenario {
  std::string name;
  FaultConfig data;
  FaultConfig ack;
};

/// Parse a scenario from JSON text. On failure returns nullopt and, when
/// `error` is non-null, a human-readable message.
std::optional<FaultScenario> parse_fault_scenario(std::string_view text,
                                                  std::string* error = nullptr);

/// Read + parse a configs/faults_*.json file.
std::optional<FaultScenario> load_fault_scenario(const std::string& path,
                                                 std::string* error = nullptr);

namespace detail {
/// Section-level parser shared with the composed --scenario loader: same
/// schema whether the schedule sits in its own faults_*.json file or under
/// a scenario file's "faults" section. Errors land in the section's sink;
/// the caller checks its config::Root.
FaultScenario parse_faults_section(const bm::config::Section& root);
}  // namespace detail

}  // namespace bm::net

#include "net/faults.hpp"

#include <algorithm>

#include "common/config.hpp"

namespace bm::net {

bool FaultConfig::any() const {
  return loss_good > 0 || loss_bad > 0 || corrupt_detectable > 0 ||
         corrupt_silent > 0 || duplicate > 0 || reorder > 0 ||
         delay_spike > 0 || !partitions.empty();
}

FaultConfig FaultConfig::uniform_loss(double p, std::uint64_t seed) {
  FaultConfig config;
  config.loss_good = p;
  config.loss_bad = p;
  config.p_good_to_bad = 0.0;
  config.p_bad_to_good = 1.0;
  config.seed = seed;
  return config;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

bool FaultInjector::in_partition(sim::Time now) const {
  for (const FaultConfig::Window& w : config_.partitions)
    if (now >= w.start && now < w.end) return true;
  return false;
}

FaultInjector::Verdict FaultInjector::assess(sim::Time now,
                                             std::size_t frame_size) {
  ++stats_.frames;
  Verdict verdict;

  // Fixed draw schedule: the chain state and every Bernoulli below are
  // advanced for every frame, whatever happens to it, so the fault sequence
  // seen by frame N is a function of (config, seed, N) alone.
  bad_state_ = bad_state_ ? !rng_.chance(config_.p_bad_to_good)
                          : rng_.chance(config_.p_good_to_bad);
  if (bad_state_) ++stats_.bad_state_frames;
  const bool lost =
      rng_.chance(bad_state_ ? config_.loss_bad : config_.loss_good);
  const bool corrupt_detected = rng_.chance(config_.corrupt_detectable);
  const bool corrupt_silent = rng_.chance(config_.corrupt_silent);
  const bool duplicate = rng_.chance(config_.duplicate);
  const bool reorder = rng_.chance(config_.reorder);
  const bool spike = rng_.chance(config_.delay_spike);

  if (in_partition(now)) {
    verdict.drop = DropReason::kPartition;
    ++stats_.dropped_partition;
    return verdict;
  }
  if (lost) {
    verdict.drop = DropReason::kLoss;
    ++stats_.dropped_loss;
    return verdict;
  }
  if (corrupt_detected) {
    verdict.drop = DropReason::kCorrupt;
    ++stats_.dropped_corrupt;
    return verdict;
  }

  if (corrupt_silent && frame_size > 0) {
    verdict.corrupt_silent = true;
    verdict.corrupt_offset =
        static_cast<std::size_t>(rng_.uniform(frame_size));
    verdict.corrupt_mask =
        static_cast<std::uint8_t>(1 + rng_.uniform(255));  // never zero
    ++stats_.corrupted_silent;
  }
  if (duplicate) {
    verdict.duplicate = true;
    ++stats_.duplicated;
  }
  if (reorder && config_.reorder_hold_max > 0) {
    verdict.extra_delay += static_cast<sim::Time>(
        rng_.uniform(static_cast<std::uint64_t>(config_.reorder_hold_max)));
    ++stats_.reordered;
  }
  if (spike) {
    verdict.extra_delay += config_.delay_spike_magnitude;
    ++stats_.delay_spikes;
  }
  return verdict;
}

void FaultInjector::publish_metrics(obs::Registry& registry,
                                    const std::string& prefix) const {
  registry.counter(prefix + "_frames_total", "frames assessed for faults")
      .set(stats_.frames);
  registry
      .counter(prefix + "_dropped_loss_total",
               "frames dropped by Gilbert-Elliott loss")
      .set(stats_.dropped_loss);
  registry
      .counter(prefix + "_dropped_partition_total",
               "frames blackholed inside a partition window")
      .set(stats_.dropped_partition);
  registry
      .counter(prefix + "_dropped_corrupt_total",
               "frames dropped by the link FCS (detectable corruption)")
      .set(stats_.dropped_corrupt);
  registry
      .counter(prefix + "_corrupted_silent_total",
               "frames delivered with flipped bytes (FCS miss)")
      .set(stats_.corrupted_silent);
  registry.counter(prefix + "_duplicated_total", "frames delivered twice")
      .set(stats_.duplicated);
  registry
      .counter(prefix + "_reordered_total",
               "frames held back so later frames overtake")
      .set(stats_.reordered);
  registry.counter(prefix + "_delay_spikes_total", "frames hit by a delay spike")
      .set(stats_.delay_spikes);
  registry
      .counter(prefix + "_bad_state_frames_total",
               "frames assessed while the Gilbert-Elliott chain was BAD")
      .set(stats_.bad_state_frames);
}

void FaultyChannel::send(Bytes frame) {
  const std::size_t bytes = frame.size();
  FaultInjector::Verdict verdict = injector_.assess(sim_.now(), bytes);

  if (tracer_ != nullptr) {
    if (verdict.dropped()) {
      const char* reason =
          verdict.drop == FaultInjector::DropReason::kPartition ? "partition"
          : verdict.drop == FaultInjector::DropReason::kCorrupt ? "fcs_drop"
                                                                : "loss";
      tracer_->instant(lane_, reason, "fault", sim_.now(),
                       {{"bytes", static_cast<std::uint64_t>(bytes)}});
    } else if (verdict.corrupt_silent || verdict.duplicate ||
               verdict.extra_delay > 0) {
      tracer_->instant(
          lane_, "impaired", "fault", sim_.now(),
          {{"silent_corrupt", verdict.corrupt_silent},
           {"duplicate", verdict.duplicate},
           {"extra_delay_us",
            static_cast<std::uint64_t>(verdict.extra_delay / 1000)}});
    }
  }

  if (verdict.dropped()) {
    // The sender's NIC still burns wire time on a doomed frame.
    link_.send(bytes, [] {});
    return;
  }

  if (verdict.corrupt_silent) {
    frame[verdict.corrupt_offset] ^= verdict.corrupt_mask;
  }

  Bytes duplicate_copy;
  if (verdict.duplicate) duplicate_copy = frame;

  auto deliver = [this, frame = std::move(frame)]() mutable {
    if (receiver_) receiver_(std::move(frame));
  };
  if (verdict.extra_delay > 0) {
    link_.send(bytes,
               [this, d = verdict.extra_delay,
                deliver = std::move(deliver)]() mutable {
                 sim_.schedule(d, std::move(deliver));
               });
  } else {
    link_.send(bytes, std::move(deliver));
  }

  if (verdict.duplicate) {
    link_.send(bytes, [this, copy = std::move(duplicate_copy)]() mutable {
      if (receiver_) receiver_(std::move(copy));
    });
  }
}

// --- JSON scenario loading --------------------------------------------------
//
// Built on the shared scenario-config facility (common/config.hpp):
// diagnostics name the file (when loaded from disk) and the JSON path of
// the offending key, e.g. `faults.data.loss.good: expected number in [0, 1]`.

namespace {

/// One direction ("data" / "ack"). Missing object => all-defaults (clean).
void parse_direction(const config::Section& dir, FaultConfig* config) {
  if (dir.present() && !dir.is_object()) {
    dir.fail("expected an object");
    return;
  }
  const config::Section loss = dir.object("loss");
  loss.read_number("good", &config->loss_good, config::unit_interval());
  loss.read_number("bad", &config->loss_bad, config::unit_interval());
  loss.read_number("p_good_to_bad", &config->p_good_to_bad,
                   config::unit_interval());
  loss.read_number("p_bad_to_good", &config->p_bad_to_good,
                   config::unit_interval());
  const config::Section corrupt = dir.object("corrupt");
  corrupt.read_number("detectable", &config->corrupt_detectable,
                      config::unit_interval());
  corrupt.read_number("silent", &config->corrupt_silent,
                      config::unit_interval());
  dir.read_number("duplicate", &config->duplicate, config::unit_interval());
  const config::Section reorder = dir.object("reorder");
  reorder.read_number("probability", &config->reorder,
                      config::unit_interval());
  reorder.read_time_us("hold_max_us", &config->reorder_hold_max,
                       config::non_negative());
  const config::Section spike = dir.object("delay_spike");
  spike.read_number("probability", &config->delay_spike,
                    config::unit_interval());
  spike.read_time_us("magnitude_us", &config->delay_spike_magnitude,
                     config::non_negative());
  const config::Section partitions = dir.array("partitions_ms");
  for (std::size_t i = 0; i < partitions.array_size(); ++i) {
    const config::Section window = partitions.element(i);
    if (!window.is_array() || window.array_size() != 2) {
      window.fail("expected [start_ms, end_ms]");
      return;
    }
    double start_ms = 0;
    double end_ms = 0;
    if (!window.element(0).value_number(&start_ms, config::non_negative()) ||
        !window.element(1).value_number(&end_ms, config::non_negative()))
      return;
    if (start_ms > end_ms) {
      window.fail("expected start_ms <= end_ms");
      return;
    }
    FaultConfig::Window w;
    w.start = static_cast<sim::Time>(start_ms *
                                     static_cast<double>(sim::kMillisecond));
    w.end =
        static_cast<sim::Time>(end_ms * static_cast<double>(sim::kMillisecond));
    config->partitions.push_back(w);
  }
}

std::optional<FaultScenario> faults_from_root(const config::Root& root,
                                              std::string* error) {
  FaultScenario scenario = detail::parse_faults_section(root.section());
  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  return scenario;
}

}  // namespace

namespace detail {

FaultScenario parse_faults_section(const bm::config::Section& s) {
  FaultScenario scenario;
  s.read_string("name", &scenario.name);

  double seed = 1;
  s.read_number("seed", &seed, config::non_negative());
  scenario.data.seed = static_cast<std::uint64_t>(seed);
  // Decorrelate the reverse direction with a fixed odd-constant mix so one
  // top-level seed still yields two independent deterministic schedules.
  scenario.ack.seed =
      static_cast<std::uint64_t>(seed) ^ 0x9E3779B97F4A7C15ull;

  parse_direction(s.member("data"), &scenario.data);
  parse_direction(s.member("ack"), &scenario.ack);
  return scenario;
}

}  // namespace detail

std::optional<FaultScenario> parse_fault_scenario(std::string_view text,
                                                  std::string* error) {
  return faults_from_root(config::Root::parse(text, "faults"), error);
}

std::optional<FaultScenario> load_fault_scenario(const std::string& path,
                                                 std::string* error) {
  return faults_from_root(config::Root::load(path, "faults"), error);
}

}  // namespace bm::net

#include "net/faults.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace bm::net {

bool FaultConfig::any() const {
  return loss_good > 0 || loss_bad > 0 || corrupt_detectable > 0 ||
         corrupt_silent > 0 || duplicate > 0 || reorder > 0 ||
         delay_spike > 0 || !partitions.empty();
}

FaultConfig FaultConfig::uniform_loss(double p, std::uint64_t seed) {
  FaultConfig config;
  config.loss_good = p;
  config.loss_bad = p;
  config.p_good_to_bad = 0.0;
  config.p_bad_to_good = 1.0;
  config.seed = seed;
  return config;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

bool FaultInjector::in_partition(sim::Time now) const {
  for (const FaultConfig::Window& w : config_.partitions)
    if (now >= w.start && now < w.end) return true;
  return false;
}

FaultInjector::Verdict FaultInjector::assess(sim::Time now,
                                             std::size_t frame_size) {
  ++stats_.frames;
  Verdict verdict;

  // Fixed draw schedule: the chain state and every Bernoulli below are
  // advanced for every frame, whatever happens to it, so the fault sequence
  // seen by frame N is a function of (config, seed, N) alone.
  bad_state_ = bad_state_ ? !rng_.chance(config_.p_bad_to_good)
                          : rng_.chance(config_.p_good_to_bad);
  if (bad_state_) ++stats_.bad_state_frames;
  const bool lost =
      rng_.chance(bad_state_ ? config_.loss_bad : config_.loss_good);
  const bool corrupt_detected = rng_.chance(config_.corrupt_detectable);
  const bool corrupt_silent = rng_.chance(config_.corrupt_silent);
  const bool duplicate = rng_.chance(config_.duplicate);
  const bool reorder = rng_.chance(config_.reorder);
  const bool spike = rng_.chance(config_.delay_spike);

  if (in_partition(now)) {
    verdict.drop = DropReason::kPartition;
    ++stats_.dropped_partition;
    return verdict;
  }
  if (lost) {
    verdict.drop = DropReason::kLoss;
    ++stats_.dropped_loss;
    return verdict;
  }
  if (corrupt_detected) {
    verdict.drop = DropReason::kCorrupt;
    ++stats_.dropped_corrupt;
    return verdict;
  }

  if (corrupt_silent && frame_size > 0) {
    verdict.corrupt_silent = true;
    verdict.corrupt_offset =
        static_cast<std::size_t>(rng_.uniform(frame_size));
    verdict.corrupt_mask =
        static_cast<std::uint8_t>(1 + rng_.uniform(255));  // never zero
    ++stats_.corrupted_silent;
  }
  if (duplicate) {
    verdict.duplicate = true;
    ++stats_.duplicated;
  }
  if (reorder && config_.reorder_hold_max > 0) {
    verdict.extra_delay += static_cast<sim::Time>(
        rng_.uniform(static_cast<std::uint64_t>(config_.reorder_hold_max)));
    ++stats_.reordered;
  }
  if (spike) {
    verdict.extra_delay += config_.delay_spike_magnitude;
    ++stats_.delay_spikes;
  }
  return verdict;
}

void FaultInjector::publish_metrics(obs::Registry& registry,
                                    const std::string& prefix) const {
  registry.counter(prefix + "_frames_total", "frames assessed for faults")
      .set(stats_.frames);
  registry
      .counter(prefix + "_dropped_loss_total",
               "frames dropped by Gilbert-Elliott loss")
      .set(stats_.dropped_loss);
  registry
      .counter(prefix + "_dropped_partition_total",
               "frames blackholed inside a partition window")
      .set(stats_.dropped_partition);
  registry
      .counter(prefix + "_dropped_corrupt_total",
               "frames dropped by the link FCS (detectable corruption)")
      .set(stats_.dropped_corrupt);
  registry
      .counter(prefix + "_corrupted_silent_total",
               "frames delivered with flipped bytes (FCS miss)")
      .set(stats_.corrupted_silent);
  registry.counter(prefix + "_duplicated_total", "frames delivered twice")
      .set(stats_.duplicated);
  registry
      .counter(prefix + "_reordered_total",
               "frames held back so later frames overtake")
      .set(stats_.reordered);
  registry.counter(prefix + "_delay_spikes_total", "frames hit by a delay spike")
      .set(stats_.delay_spikes);
  registry
      .counter(prefix + "_bad_state_frames_total",
               "frames assessed while the Gilbert-Elliott chain was BAD")
      .set(stats_.bad_state_frames);
}

void FaultyChannel::send(Bytes frame) {
  const std::size_t bytes = frame.size();
  FaultInjector::Verdict verdict = injector_.assess(sim_.now(), bytes);

  if (tracer_ != nullptr) {
    if (verdict.dropped()) {
      const char* reason =
          verdict.drop == FaultInjector::DropReason::kPartition ? "partition"
          : verdict.drop == FaultInjector::DropReason::kCorrupt ? "fcs_drop"
                                                                : "loss";
      tracer_->instant(lane_, reason, "fault", sim_.now(),
                       {{"bytes", static_cast<std::uint64_t>(bytes)}});
    } else if (verdict.corrupt_silent || verdict.duplicate ||
               verdict.extra_delay > 0) {
      tracer_->instant(
          lane_, "impaired", "fault", sim_.now(),
          {{"silent_corrupt", verdict.corrupt_silent},
           {"duplicate", verdict.duplicate},
           {"extra_delay_us",
            static_cast<std::uint64_t>(verdict.extra_delay / 1000)}});
    }
  }

  if (verdict.dropped()) {
    // The sender's NIC still burns wire time on a doomed frame.
    link_.send(bytes, [] {});
    return;
  }

  if (verdict.corrupt_silent) {
    frame[verdict.corrupt_offset] ^= verdict.corrupt_mask;
  }

  Bytes duplicate_copy;
  if (verdict.duplicate) duplicate_copy = frame;

  auto deliver = [this, frame = std::move(frame)]() mutable {
    if (receiver_) receiver_(std::move(frame));
  };
  if (verdict.extra_delay > 0) {
    link_.send(bytes,
               [this, d = verdict.extra_delay,
                deliver = std::move(deliver)]() mutable {
                 sim_.schedule(d, std::move(deliver));
               });
  } else {
    link_.send(bytes, std::move(deliver));
  }

  if (verdict.duplicate) {
    link_.send(bytes, [this, copy = std::move(duplicate_copy)]() mutable {
      if (receiver_) receiver_(std::move(copy));
    });
  }
}

// --- JSON scenario loading --------------------------------------------------

namespace {

using obs::json::Value;

bool read_number(const Value& parent, std::string_view key, double* out,
                 std::string* error) {
  const Value* v = parent.find(key);
  if (v == nullptr) return true;  // optional: keep default
  if (!v->is_number()) {
    if (error != nullptr)
      *error = "faults config: \"" + std::string(key) + "\" must be a number";
    return false;
  }
  *out = v->number;
  return true;
}

bool read_time_us(const Value& parent, std::string_view key, sim::Time* out,
                  std::string* error) {
  double us = static_cast<double>(*out) / 1000.0;
  if (!read_number(parent, key, &us, error)) return false;
  *out = static_cast<sim::Time>(us * 1000.0);
  return true;
}

/// One direction ("data" / "ack"). Missing object => all-defaults (clean).
bool parse_direction(const Value* dir, FaultConfig* config,
                     std::string* error) {
  if (dir == nullptr) return true;
  if (!dir->is_object()) {
    if (error != nullptr) *error = "faults config: direction must be an object";
    return false;
  }
  if (const Value* loss = dir->find("loss")) {
    if (!read_number(*loss, "good", &config->loss_good, error) ||
        !read_number(*loss, "bad", &config->loss_bad, error) ||
        !read_number(*loss, "p_good_to_bad", &config->p_good_to_bad, error) ||
        !read_number(*loss, "p_bad_to_good", &config->p_bad_to_good, error))
      return false;
  }
  if (const Value* corrupt = dir->find("corrupt")) {
    if (!read_number(*corrupt, "detectable", &config->corrupt_detectable,
                     error) ||
        !read_number(*corrupt, "silent", &config->corrupt_silent, error))
      return false;
  }
  if (!read_number(*dir, "duplicate", &config->duplicate, error)) return false;
  if (const Value* reorder = dir->find("reorder")) {
    if (!read_number(*reorder, "probability", &config->reorder, error) ||
        !read_time_us(*reorder, "hold_max_us", &config->reorder_hold_max,
                      error))
      return false;
  }
  if (const Value* spike = dir->find("delay_spike")) {
    if (!read_number(*spike, "probability", &config->delay_spike, error) ||
        !read_time_us(*spike, "magnitude_us", &config->delay_spike_magnitude,
                      error))
      return false;
  }
  if (const Value* partitions = dir->find("partitions_ms")) {
    if (!partitions->is_array()) {
      if (error != nullptr)
        *error = "faults config: \"partitions_ms\" must be an array";
      return false;
    }
    for (const Value& window : partitions->array) {
      if (!window.is_array() || window.array.size() != 2 ||
          !window.array[0].is_number() || !window.array[1].is_number() ||
          window.array[0].number > window.array[1].number) {
        if (error != nullptr)
          *error =
              "faults config: each partition must be [start_ms, end_ms] "
              "with start <= end";
        return false;
      }
      FaultConfig::Window w;
      w.start = static_cast<sim::Time>(window.array[0].number *
                                       static_cast<double>(sim::kMillisecond));
      w.end = static_cast<sim::Time>(window.array[1].number *
                                     static_cast<double>(sim::kMillisecond));
      config->partitions.push_back(w);
    }
  }
  return true;
}

}  // namespace

std::optional<FaultScenario> parse_fault_scenario(std::string_view text,
                                                  std::string* error) {
  std::string parse_error;
  const auto root = obs::json::parse(text, &parse_error);
  if (!root) {
    if (error != nullptr) *error = "faults config: " + parse_error;
    return std::nullopt;
  }
  if (!root->is_object()) {
    if (error != nullptr) *error = "faults config: root must be an object";
    return std::nullopt;
  }

  FaultScenario scenario;
  if (const Value* name = root->find("name"); name != nullptr && name->is_string())
    scenario.name = name->string;

  double seed = 1;
  if (!read_number(*root, "seed", &seed, error)) return std::nullopt;
  scenario.data.seed = static_cast<std::uint64_t>(seed);
  // Decorrelate the reverse direction with a fixed odd-constant mix so one
  // top-level seed still yields two independent deterministic schedules.
  scenario.ack.seed =
      static_cast<std::uint64_t>(seed) ^ 0x9E3779B97F4A7C15ull;

  if (!parse_direction(root->find("data"), &scenario.data, error))
    return std::nullopt;
  if (!parse_direction(root->find("ack"), &scenario.ack, error))
    return std::nullopt;
  return scenario;
}

std::optional<FaultScenario> load_fault_scenario(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "faults config: cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_fault_scenario(text.str(), error);
}

}  // namespace bm::net

#include "net/gossip.hpp"

#include <stdexcept>
#include <string>

namespace bm::net {

GossipNetwork::GossipNetwork(sim::Simulation& sim, int peers, Config config)
    : sim_(sim),
      config_(config),
      rng_(config.seed ^ 0x60551Bull),
      peers_(static_cast<std::size_t>(peers)) {
  if (config_.faults.any())
    faults_ = std::make_unique<FaultInjector>(config_.faults);
}

GossipNetwork::PeerState& GossipNetwork::state_of(int peer, const char* what) {
  if (peer < 0 || peer >= peer_count())
    throw std::out_of_range(std::string("GossipNetwork::") + what + ": peer " +
                            std::to_string(peer) + " outside [0, " +
                            std::to_string(peer_count()) + ")");
  return peers_[static_cast<std::size_t>(peer)];
}

const GossipNetwork::PeerState& GossipNetwork::state_of(
    int peer, const char* what) const {
  return const_cast<GossipNetwork*>(this)->state_of(peer, what);
}

void GossipNetwork::publish(int origin, std::uint64_t block_num,
                            std::size_t bytes) {
  state_of(origin, "publish");  // validate before touching the mesh
  receive(origin, block_num, bytes, /*from_repair=*/false);
}

void GossipNetwork::publish(int origin, std::uint64_t block_num,
                            Bytes payload) {
  state_of(origin, "publish");
  const std::size_t bytes = payload.size();
  payloads_.emplace(block_num, std::move(payload));  // first publish wins
  receive(origin, block_num, bytes, /*from_repair=*/false);
}

void GossipNetwork::set_peer_online(int peer, bool online) {
  state_of(peer, "set_peer_online").online = online;
}

void GossipNetwork::reset_peer(int peer) {
  PeerState& state = state_of(peer, "reset_peer");
  state.known.clear();
  state.sizes.clear();
}

void GossipNetwork::mark_known(int peer, std::uint64_t block_num) {
  PeerState& state = state_of(peer, "mark_known");
  if (!state.known.insert(block_num).second) return;
  const auto payload = payloads_.find(block_num);
  state.sizes[block_num] = payload != payloads_.end() ? payload->second.size()
                                                      : 0;
}

void GossipNetwork::push_to(int from, int to, std::uint64_t block_num,
                            std::size_t bytes, bool is_repair) {
  ++messages_sent_;
  sim::Time fault_delay = 0;
  if (faults_ != nullptr) {
    const FaultInjector::Verdict verdict = faults_->assess(sim_.now(), bytes);
    if (verdict.dropped()) return;
    fault_delay = verdict.extra_delay;
  }
  const auto serialization = static_cast<sim::Time>(
      static_cast<double>(bytes) * 8.0 / (config_.gbps * 1e9) * sim::kSecond);
  sim::Time delay = serialization + config_.hop_delay + fault_delay;
  if (config_.hop_jitter > 0)
    delay += static_cast<sim::Time>(
        rng_.uniform(static_cast<std::uint64_t>(config_.hop_jitter)));
  sim_.schedule(delay, [this, to, block_num, bytes, is_repair] {
    if (is_repair &&
        peers_[static_cast<std::size_t>(to)].known.count(block_num) == 0 &&
        peers_[static_cast<std::size_t>(to)].online)
      ++repairs_;
    receive(to, block_num, bytes, is_repair);
  });
  (void)from;
}

void GossipNetwork::receive(int peer, std::uint64_t block_num,
                            std::size_t bytes, bool from_repair) {
  PeerState& state = peers_[static_cast<std::size_t>(peer)];
  if (!state.online) {
    ++dropped_offline_;
    return;
  }
  if (!state.known.insert(block_num).second) {
    ++duplicates_;
    return;
  }
  state.sizes[block_num] = bytes;
  if (on_deliver_) on_deliver_(peer, block_num, bytes);
  if (on_payload_) {
    const auto payload = payloads_.find(block_num);
    if (payload != payloads_.end()) on_payload_(peer, block_num,
                                                payload->second);
  }
  (void)from_repair;

  // Forward to `fanout` distinct random neighbours after local processing.
  const int n = peer_count();
  if (n <= 1) return;
  std::set<int> targets;
  while (static_cast<int>(targets.size()) <
         std::min(config_.fanout, n - 1)) {
    const int target = static_cast<int>(rng_.uniform(
        static_cast<std::uint64_t>(n)));
    if (target != peer) targets.insert(target);
  }
  for (const int target : targets) {
    sim_.schedule(config_.forward_processing, [this, peer, target, block_num,
                                               bytes] {
      push_to(peer, target, block_num, bytes, /*is_repair=*/false);
    });
  }
}

void GossipNetwork::start_anti_entropy() {
  if (anti_entropy_running_) return;
  anti_entropy_running_ = true;
  for (int peer = 0; peer < peer_count(); ++peer) {
    // Staggered periodic rounds per peer; each round re-arms itself.
    const sim::Time phase = static_cast<sim::Time>(rng_.uniform(
        static_cast<std::uint64_t>(config_.anti_entropy_interval)));
    sim_.schedule(phase, [this, peer] { anti_entropy_round(peer); });
  }
}

void GossipNetwork::anti_entropy_round(int peer) {
  if (!anti_entropy_running_) return;
  const int n = peer_count();
  if (n <= 1) return;
  int partner = peer;
  while (partner == peer)
    partner = static_cast<int>(rng_.uniform(static_cast<std::uint64_t>(n)));

  // Digest exchange: the partner pushes everything `peer` is missing (and
  // vice versa) — reliable repair path, smaller than re-gossiping. An
  // offline endpoint neither serves nor pulls; its round keeps re-arming so
  // repair resumes the moment it returns.
  const PeerState& mine = peers_[static_cast<std::size_t>(peer)];
  const PeerState& theirs = peers_[static_cast<std::size_t>(partner)];
  if (mine.online && theirs.online) {
    for (const auto& [block_num, bytes] : theirs.sizes)
      if (mine.known.count(block_num) == 0)
        push_to(partner, peer, block_num, bytes, /*is_repair=*/true);
    for (const auto& [block_num, bytes] : mine.sizes)
      if (theirs.known.count(block_num) == 0)
        push_to(peer, partner, block_num, bytes, /*is_repair=*/true);
  }

  // Re-arm.
  sim_.schedule(config_.anti_entropy_interval,
                [this, peer] { anti_entropy_round(peer); });
}

}  // namespace bm::net

#include "workload/synthetic.hpp"

#include "bmac/peer.hpp"

namespace bm::workload {

namespace {

using bmac::BlockEntry;
using bmac::BlockProcessor;
using bmac::EndsEntry;
using bmac::RdsetEntry;
using bmac::TxEntry;
using bmac::VerifyRequest;
using bmac::WrsetEntry;

/// Integer read/write counts per tx with error-diffusion dithering so the
/// block-average matches the fractional spec.
class Dither {
 public:
  explicit Dither(double per_tx) : per_tx_(per_tx) {}
  int next() {
    acc_ += per_tx_;
    const int n = static_cast<int>(acc_);
    acc_ -= n;
    return n;
  }

 private:
  double per_tx_;
  double acc_ = 0;
};

sim::Process feeder_proc(sim::Simulation& sim, BlockProcessor& proc,
                         const SyntheticSpec& spec,
                         std::vector<std::uint8_t> orgs) {
  Dither reads(spec.reads_per_tx);
  Dither writes(spec.writes_per_tx);
  std::uint64_t read_counter = 0;
  std::uint64_t write_counter = 0;
  const std::size_t write_space = spec.write_working_set != 0
                                      ? spec.write_working_set
                                      : spec.hw.db_capacity / 2;
  // Versions as the hardware will have committed them, so synthetic reads
  // carry matching expectations (every transaction stays mvcc-valid).
  std::vector<std::optional<fabric::Version>> versions(write_space);

  for (int b = 0; b < spec.blocks; ++b) {
    for (int i = 0; i < spec.block_size; ++i) {
      const int n_reads = reads.next();
      const int n_writes = writes.next();
      for (int j = 0; j < spec.ends_attached; ++j) {
        EndsEntry end;
        end.endorser = fabric::EncodedId::make(
            orgs[static_cast<std::size_t>(j) % orgs.size()],
            fabric::Role::kPeer, 0);
        end.verify = VerifyRequest::assumed(true);
        co_await proc.ends_fifo().put(std::move(end));
      }
      for (int j = 0; j < n_reads; ++j) {
        // Read a key from the write working set with the exact version the
        // hardware committed (or "absent" if never written): mvcc passes
        // while paying the real database access, on-chip or host tier.
        const std::size_t idx =
            static_cast<std::size_t>(read_counter * 7 + 13) % write_space;
        ++read_counter;
        co_await proc.rdset_fifo().put(
            RdsetEntry{"w" + std::to_string(idx), versions[idx]});
      }
      for (int j = 0; j < n_writes; ++j) {
        const std::size_t idx =
            static_cast<std::size_t>(write_counter++) % write_space;
        versions[idx] = fabric::Version{static_cast<std::uint64_t>(b),
                                        static_cast<std::uint32_t>(i)};
        co_await proc.wrset_fifo().put(
            WrsetEntry{"w" + std::to_string(idx), to_bytes("v")});
      }
      TxEntry tx;
      tx.block_num = static_cast<std::uint64_t>(b);
      tx.tx_seq = static_cast<std::uint32_t>(i);
      tx.chaincode_id = spec.chaincode;
      tx.verify = VerifyRequest::assumed(true);
      tx.endorsement_count = static_cast<std::uint16_t>(spec.ends_attached);
      tx.read_count = static_cast<std::uint16_t>(n_reads);
      tx.write_count = static_cast<std::uint16_t>(n_writes);
      co_await proc.tx_fifo().put(std::move(tx));
    }
    // Like the real protocol_processor, the block entry completes last
    // (after the metadata section).
    BlockEntry block;
    block.block_num = static_cast<std::uint64_t>(b);
    block.tx_count = static_cast<std::uint32_t>(spec.block_size);
    block.verify = VerifyRequest::assumed(true);
    co_await proc.block_fifo().put(std::move(block));
    (void)sim;
  }
}

struct DrainState {
  sim::Time last_result_at = 0;
  sim::Time block_latency_sum = 0;
  sim::Time tx_latency_sum = 0;
  std::uint64_t blocks = 0;
  std::uint64_t txs = 0;
};

sim::Process host_drain_proc(sim::Simulation& sim, BlockProcessor& proc,
                             int blocks, DrainState* state,
                             obs::Tracer* tracer, int lane) {
  const bmac::HwTimingModel& t = proc.config().timing;
  for (int b = 0; b < blocks; ++b) {
    bmac::ResultEntry result = co_await proc.reg_map().get();
    const sim::Time commit_start = sim.now();
    co_await sim.delay(t.host_result_read);
    state->last_result_at = sim.now();
    state->block_latency_sum +=
        result.stats.validate_end - result.stats.validate_start;
    state->tx_latency_sum += result.stats.tx_latency_sum;
    state->blocks += 1;
    state->txs += result.flags.size();
    // Ledger commit overlaps hardware validation of the next block.
    co_await sim.delay(t.ledger_commit_fixed +
                       t.ledger_commit_per_tx *
                           static_cast<sim::Time>(result.flags.size()));
    if (tracer != nullptr) {
      tracer->complete(
          lane, "host_commit", "host-commit", commit_start, sim.now(),
          {{"block", result.block_num},
           {"txs", static_cast<std::uint64_t>(result.flags.size())}});
    }
  }
}

}  // namespace

HwRunResult run_hw_workload(const SyntheticSpec& spec) {
  fabric::Msp msp;
  std::vector<std::string> org_names;
  for (int i = 1; i <= spec.org_count; ++i) {
    org_names.push_back("Org" + std::to_string(i));
    msp.add_org(org_names.back());
  }
  std::map<std::string, fabric::EndorsementPolicy> policies;
  policies.emplace(spec.chaincode,
                   fabric::parse_policy_or_throw(spec.policy_text, org_names));

  std::vector<std::uint8_t> orgs = spec.endorser_orgs;
  if (orgs.empty())
    for (int i = 0; i < spec.ends_attached; ++i)
      orgs.push_back(static_cast<std::uint8_t>(1 + i % spec.org_count));

  sim::Simulation sim;
  BlockProcessor processor(sim, spec.hw,
                           bmac::compile_policies(policies, msp));
  fabric::StateDb host_state;
  if (spec.host_backed_db) processor.statedb().attach_host_store(&host_state);
  // Lanes land in the tracer's current process — callers that run several
  // configurations call begin_process() with a label before each run.
  int host_lane = 0;
  processor.attach_observability(spec.registry, spec.tracer);
  if (spec.tracer != nullptr) host_lane = spec.tracer->lane("host_commit");
  processor.start();

  DrainState drain;
  sim.spawn(feeder_proc(sim, processor, spec, std::move(orgs)));
  sim.spawn(host_drain_proc(sim, processor, spec.blocks, &drain, spec.tracer,
                            host_lane));
  sim.run();
  processor.publish_metrics();

  HwRunResult result;
  result.sim_seconds =
      static_cast<double>(drain.last_result_at) / sim::kSecond;
  result.total_txs = drain.txs;
  result.valid_txs = processor.monitor().valid_transactions;
  result.tps = result.sim_seconds > 0
                   ? static_cast<double>(drain.txs) / result.sim_seconds
                   : 0;
  if (drain.blocks > 0)
    result.block_latency_ms = static_cast<double>(drain.block_latency_sum) /
                              static_cast<double>(drain.blocks) /
                              sim::kMillisecond;
  if (drain.txs > 0)
    result.tx_latency_us = static_cast<double>(drain.tx_latency_sum) /
                           static_cast<double>(drain.txs) / sim::kMicrosecond;
  result.ecdsa_executed = processor.monitor().ecdsa_executed;
  result.ecdsa_skipped = processor.monitor().ecdsa_skipped;
  result.db_overflows = processor.statedb().overflows();
  result.db_evictions = processor.statedb().evictions();
  result.db_host_accesses = processor.statedb().host_accesses();
  result.events_executed = sim.events_executed();
  return result;
}

SwRunResult run_sw_model(const SyntheticSpec& spec, int vcpus) {
  std::vector<std::string> org_names;
  for (int i = 1; i <= spec.org_count; ++i)
    org_names.push_back("Org" + std::to_string(i));
  const fabric::EndorsementPolicy policy =
      fabric::parse_policy_or_throw(spec.policy_text, org_names);

  fabric::SwBlockWorkload workload;
  workload.n_tx = spec.block_size;
  // Fabric verifies every attached endorsement, irrespective of the policy.
  workload.endorsements_verified_per_tx = spec.ends_attached;
  workload.policy_literals = policy.literal_references();
  workload.db_reads_per_tx = spec.reads_per_tx;
  workload.db_writes_per_tx = spec.writes_per_tx;
  workload.vcpus = vcpus;

  const fabric::SwTimingModel model;
  SwRunResult result;
  result.validator_tps = model.throughput_tps(workload);
  result.block_latency_ms =
      static_cast<double>(model.block_latency(workload)) / sim::kMillisecond;
  result.endorser_tps =
      static_cast<double>(workload.n_tx) /
      (static_cast<double>(model.endorser_block_latency(workload)) /
       sim::kSecond);
  return result;
}

}  // namespace bm::workload

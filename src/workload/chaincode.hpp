// Chaincode workload models: smallbank and drm (Hyperledger Caliper
// benchmarks [19], the applications evaluated in §4).
//
// A chaincode here is an endorsement-phase executor: given an operation, it
// reads the endorser's committed state (recording versions into the read
// set) and produces the write set — the execute step of execute-order-
// validate. The smallbank model implements the classic banking operations
// (create account, deposit, withdraw, send payment, amalgamate); drm models
// digital-asset management (create asset, update asset, transfer rights).
// The modified smallbank "split payment to n accounts" of Fig. 7g is
// exposed through SmallbankChaincode::Config::split_payment_accounts.
#pragma once

#include "common/rng.hpp"
#include "fabric/statedb.hpp"

namespace bm::workload {

/// A generated operation: the rwset produced by endorsement-time execution.
struct ChaincodeResult {
  std::string op;
  fabric::ReadWriteSet rwset;
};

class SmallbankChaincode {
 public:
  struct Config {
    std::uint32_t accounts = 2000;
    /// 0 = standard smallbank. Otherwise every op is a split payment that
    /// debits one account and credits `split_payment_accounts` accounts
    /// (Fig. 7g's variable database-request workload).
    std::uint32_t split_payment_accounts = 0;
    /// Zipf exponent over account ids (hot-key skew); 0 keeps the classic
    /// uniform pick and is draw-for-draw identical to the pre-knob model.
    double zipf_s = 0.0;
  };

  explicit SmallbankChaincode(Config config)
      : config_(config),
        account_pick_(config.accounts > 0 ? config.accounts : 1,
                      config.zipf_s) {}

  static constexpr const char* kName = "smallbank";

  /// Execute a random operation against committed state.
  ChaincodeResult execute(Rng& rng, const fabric::StateDb& state) const;

  /// Average db accesses per op (feeds the software timing model).
  double avg_reads() const;
  double avg_writes() const;

 private:
  ChaincodeResult create_account(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult transact_savings(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult deposit_checking(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult send_payment(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult amalgamate(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult write_check(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult split_payment(Rng& rng, const fabric::StateDb& s) const;

  /// Account id draw: Zipf(zipf_s) over [0, accounts); uniform at s = 0.
  std::uint64_t pick_account(Rng& rng) const;

  Config config_;
  Zipf account_pick_;
};

class DrmChaincode {
 public:
  struct Config {
    std::uint32_t assets = 2000;
  };

  explicit DrmChaincode(Config config) : config_(config) {}

  static constexpr const char* kName = "drm";

  ChaincodeResult execute(Rng& rng, const fabric::StateDb& state) const;

  double avg_reads() const;
  double avg_writes() const;

 private:
  ChaincodeResult create_asset(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult update_asset(Rng& rng, const fabric::StateDb& s) const;
  ChaincodeResult transfer_rights(Rng& rng, const fabric::StateDb& s) const;

  Config config_;
};

}  // namespace bm::workload

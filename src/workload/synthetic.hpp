// Synthetic workload runners for the performance benches.
//
// The hardware runner drives the full block_processor pipeline model in the
// discrete-event simulator with a saturating stream of blocks (like the
// paper's Caliper runs at maximum send rate) and measures commit throughput
// and block validation latency from the block_monitor. Verification results
// are precomputed (the signatures would be valid), which changes only the
// host's wall-clock cost of running the simulation — simulated timing is
// identical because the engine model charges the same 145 us either way.
//
// The software peer numbers come from the calibrated timing model
// (fabric/timing_model.hpp); see DESIGN.md for the substitution rationale.
#pragma once

#include "bmac/block_processor.hpp"
#include "fabric/timing_model.hpp"
#include "workload/chaincode.hpp"

namespace bm::workload {

struct SyntheticSpec {
  int blocks = 40;
  int block_size = 150;

  /// Endorsements attached per transaction; org of each endorsement slot is
  /// endorser_orgs[i] (1-based org index). Defaults to orgs 1..n in order.
  int ends_attached = 2;
  std::vector<std::uint8_t> endorser_orgs;

  std::string chaincode = "smallbank";
  std::string policy_text = "2-outof-2 orgs";
  int org_count = 4;

  double reads_per_tx = 2.0;
  double writes_per_tx = 2.0;

  /// Keys written rotate over this working set (0 = half the hardware
  /// database capacity, which always fits on-chip).
  std::size_t write_working_set = 0;
  /// §5 extension: back the in-hardware store with a host StateDb so a
  /// working set larger than the on-chip capacity spills instead of
  /// overflowing.
  bool host_backed_db = false;

  bm::bmac::HwConfig hw;

  /// Observability sinks (null = off, the default). When set, the run
  /// attaches them to the BlockProcessor, emits "host-commit" spans from
  /// the drain process and publishes end-of-run gauges into the registry.
  obs::Registry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct HwRunResult {
  double tps = 0;                 ///< commit throughput
  double block_latency_ms = 0;    ///< mean block validation latency
  double tx_latency_us = 0;       ///< mean per-tx validation latency
  std::uint64_t ecdsa_executed = 0;
  std::uint64_t ecdsa_skipped = 0;
  std::uint64_t valid_txs = 0;
  std::uint64_t total_txs = 0;
  std::uint64_t db_overflows = 0;
  std::uint64_t db_evictions = 0;
  std::uint64_t db_host_accesses = 0;
  double sim_seconds = 0;
  /// Total simulator events run — used by the zero-overhead test: a run
  /// with null sinks executes exactly as many events as an uninstrumented
  /// one (probes never schedule).
  std::uint64_t events_executed = 0;
};

/// Run the hardware pipeline model on a synthetic saturating workload.
HwRunResult run_hw_workload(const SyntheticSpec& spec);

struct SwRunResult {
  double validator_tps = 0;
  double endorser_tps = 0;
  double block_latency_ms = 0;  ///< validator peer
};

/// Software-only peer performance for the equivalent workload at `vcpus`.
SwRunResult run_sw_model(const SyntheticSpec& spec, int vcpus);

}  // namespace bm::workload

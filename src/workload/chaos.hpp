// Chaos harness: the BMac peer driven through a faulty network, checked
// against the fault-free software baseline (docs/FAULTS.md).
//
// Wires the full degraded-path stack end to end:
//
//   FabricNetworkHarness -> ProtocolSender -> GbnSender (CRC framing,
//   backoff RTO, retransmission cap) -> FaultyChannel (burst loss,
//   corruption, reorder, duplication, partitions) -> GbnReceiver ->
//   BmacPeer with graceful degradation enabled
//
// and verifies the paper's §4.1 equivalence invariant under faults: the
// committed per-transaction flags and the commit-hash chain must be
// byte-identical to the harness's reference (fault-free software) run, with
// any stalled block recovered by the peer's software fallback. Everything
// is deterministic: same options => same report, trace and metrics.
#pragma once

#include "bmac/peer.hpp"
#include "bmac/reliable.hpp"
#include "net/faults.hpp"
#include "workload/network_harness.hpp"

namespace bm::obs {
class Telemetry;
}

namespace bm::workload {

struct ChaosOptions {
  NetworkOptions network;        ///< workload shape (chaincode, block size)
  net::FaultScenario scenario;   ///< per-direction fault schedule
  int blocks = 12;
  bool tamper_last_block = false;

  bmac::HwConfig hw;
  bmac::GbnSender::Config gbn = default_gbn();
  bmac::BmacPeer::DegradeConfig degrade = default_degrade();
  /// Engine for the peer's software fallback (null = the peer's default
  /// sequential software backend). The equivalence check still runs against
  /// the harness reference, so any conforming backend must pass it.
  fabric::ValidatorBackendFactory fallback_factory;

  double link_gbps = 1.0;
  sim::Time block_interval = 20 * sim::kMillisecond;
  /// Hard stop: a partitioned run that cannot finish ends here.
  sim::Time time_limit = 30 * sim::kSecond;

  /// Chaos defaults: give up on a window after 6 consecutive timeouts
  /// (2+4+8+16+32+64 ms of backoff) instead of retrying forever, so a
  /// partition turns into a fallback instead of a stall.
  static bmac::GbnSender::Config default_gbn() {
    bmac::GbnSender::Config config;
    config.retransmit_cap = 6;
    return config;
  }
  static bmac::BmacPeer::DegradeConfig default_degrade() {
    return bmac::BmacPeer::DegradeConfig();
  }
};

struct ChaosReport {
  bool complete = false;      ///< every block resolved within time_limit
  bool hashes_match = false;  ///< commit-hash chain == reference ledger
  bool flags_match = false;   ///< per-tx flags == reference results
  std::string mismatch;       ///< first divergence, empty when none

  std::uint64_t blocks_produced = 0;
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_rejected = 0;
  std::uint64_t gbn_failures = 0;  ///< failure-callback firings
  sim::Time finished_at = 0;

  bmac::GbnStats sender_stats;
  bmac::GbnStats receiver_stats;
  net::FaultStats data_faults;
  net::FaultStats ack_faults;
  bmac::BmacPeer::DegradeMetrics degrade;
  bmac::BmacPeer::HostMetrics host;

  bool ok() const { return complete && hashes_match && flags_match; }

  /// Deterministic human-readable summary (one value per line).
  std::string to_text() const;
};

/// Run one scenario end to end. Observability sinks are optional; when
/// given, the peer, channels and fault counters publish into them. A
/// configured obs::Telemetry (requires `registry`) additionally samples the
/// run continuously and arms the flight recorder on the degrade path; the
/// report itself is identical with or without it.
ChaosReport run_chaos_scenario(const ChaosOptions& options,
                               obs::Registry* registry = nullptr,
                               obs::Tracer* tracer = nullptr,
                               obs::Telemetry* telemetry = nullptr);

// --- kill-and-restart: the durable-ledger crash drill ----------------------

struct CrashRecoveryOptions {
  /// Workload shape; `network.durability` is overwritten from `durability`.
  NetworkOptions network;
  /// Must be enabled(); the log + snapshots land at durability.ledger_path.
  fabric::DurabilityConfig durability;
  int blocks_before_crash = 24;  ///< committed durably, then the kill
  int blocks_after = 8;          ///< committed after restart + recovery
  /// Seeds the torn-byte draw (a random cut strictly inside the last log
  /// record). Same options => same cut => same report.
  std::uint64_t crash_seed = 7;
};

struct CrashRecoveryReport {
  bool crashed_mid_record = false;  ///< the cut actually tore the tail
  bool recovered = false;           ///< post-crash recovery succeeded
  bool hashes_match = false;        ///< recovered chain == reference prefix
  bool resumed = false;             ///< restart re-appended + extended the log
  bool final_chain_matches = false; ///< final recovery == full reference
  std::string mismatch;             ///< first divergence, empty when none

  std::uint64_t crash_offset = 0;     ///< file size after the cut
  std::uint64_t recovered_height = 0; ///< chain height right after the crash
  std::uint64_t final_height = 0;     ///< chain height after the full run
  fabric::RecoveryResult recovery;    ///< the post-crash recovery

  bool ok() const {
    return crashed_mid_record && recovered && hashes_match && resumed &&
           final_chain_matches;
  }

  /// Deterministic human-readable summary (one value per line).
  std::string to_text() const;
};

/// Kill-and-restart drill for the durable ledger (docs/DURABILITY.md):
///
///   1. commit `blocks_before_crash` blocks through a durability-enabled
///      harness, then drop it ("kill -9");
///   2. truncate the log at a random byte strictly inside the last record
///      (a torn append — the crash the reopened-store bug silently ate);
///   3. recover ledger + state from disk (snapshot + replay when the config
///      cuts snapshots) and check commit hashes byte for byte against the
///      reference chain;
///   4. restart a same-seed harness over the same log — the reopened store
///      must seed its chain head from the surviving prefix — and commit at
///      full speed through `blocks_after` extra blocks;
///   5. recover once more and check the *entire* chain, pre-crash and
///      post-restart blocks alike, against the reference.
///
/// When `registry` is given, recovery outcome and final store counters are
/// published under "chaos_recovery_..." / "chaos_durable_...".
CrashRecoveryReport run_crash_recovery(const CrashRecoveryOptions& options,
                                       obs::Registry* registry = nullptr);

}  // namespace bm::workload

// Small statistics helpers for the benchmark harnesses.
#pragma once

#include <vector>

namespace bm::workload {

double mean(const std::vector<double>& values);

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

struct Summary {
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
};

Summary summarize(const std::vector<double>& values);

}  // namespace bm::workload

// Small statistics helpers for the benchmark harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace bm::workload {

double mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& values);

/// p is clamped to [0,100]; linear interpolation between order statistics
/// (p=0 -> minimum, p=100 -> maximum). Empty input returns 0 — callers
/// that need to distinguish "no samples" should check sizes themselves.
double percentile(std::vector<double> values, double p);

struct Summary {
  std::uint64_t count = 0;
  double mean = 0;
  double stddev = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;  ///< p99.9 — the tail the load-sweep SLOs care about
  double min = 0;
  double max = 0;
};

Summary summarize(const std::vector<double>& values);

}  // namespace bm::workload

// Functional Fabric network harness: organizations, identities, clients,
// endorsers and an orderer, producing real endorsed blocks.
//
// This is the Caliper-equivalent driver for the functional experiments: it
// executes chaincode operations against committed endorsement state (so
// read-set versions are realistic), gathers endorsements from the peers
// named by the chaincode's policy, signs envelopes with real ECDSA and cuts
// real blocks. Fault-injection knobs produce transactions that must fail
// validation (bad client signature, insufficient endorsements, forced mvcc
// conflicts) — used to exercise every invalid path in both validators.
#pragma once

#include "fabric/durability.hpp"
#include "fabric/orderer.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"
#include "workload/chaincode.hpp"

namespace bm::workload {

enum class ChaincodeKind { kSmallbank, kDrm };

struct NetworkOptions {
  int orgs = 2;
  ChaincodeKind chaincode = ChaincodeKind::kSmallbank;
  std::string policy_text = "2-outof-2 orgs";
  std::size_t block_size = 100;
  std::uint64_t seed = 42;
  SmallbankChaincode::Config smallbank{};
  DrmChaincode::Config drm{};

  // Fault injection rates in [0,1].
  double bad_signature_rate = 0.0;
  double missing_endorsement_rate = 0.0;
  double conflicting_read_rate = 0.0;  ///< stale read-set versions

  /// Engine for the harness's reference pipeline. Null = the default
  /// software backend. Any conforming ValidatorBackend yields the same
  /// reference results — that is the interface's contract.
  fabric::ValidatorBackendFactory backend_factory;

  /// Durable ledger: when ledger_path is set, every reference-committed
  /// block is appended to the on-disk block log and StateDb snapshots are
  /// cut on schedule (docs/DURABILITY.md).
  fabric::DurabilityConfig durability;
};

/// One transaction's worth of endorsement work, prepared but not yet
/// signed: the executed proposal plus who endorses and who signs it (the
/// fault-injection knobs may have picked the rogue client or dropped
/// endorsers). Drafts reference the harness's identities, so they must not
/// outlive it. Splitting "decide" (prepare_tx, sequential, consumes the
/// harness rng and reads endorsement state) from "sign" (sign_envelope,
/// pure ECDSA over the draft) lets the serve layer fan the expensive
/// signing across a thread pool while keeping the schedule deterministic.
struct TxDraft {
  fabric::TxProposal proposal;
  std::vector<const fabric::Identity*> endorsers;
  const fabric::Identity* signer = nullptr;
};

class FabricNetworkHarness {
 public:
  explicit FabricNetworkHarness(NetworkOptions options);

  const fabric::Msp& msp() const { return msp_; }
  const std::map<std::string, fabric::EndorsementPolicy>& policies() const {
    return policies_;
  }
  const fabric::Identity& orderer_identity() const {
    return orderer_->identity();
  }
  const std::string& chaincode_name() const { return chaincode_name_; }

  /// Produce the next fully endorsed block. Internally commits it to the
  /// harness's endorsement state so subsequent blocks read fresh versions.
  fabric::Block next_block();

  // --- step-wise (submit/collect) path --------------------------------------
  // The open-loop serving front end (src/serve) and next_block() share this
  // one endorsement-state path: next_block() is exactly
  // submit_envelope(sign_envelope(prepare_tx())) until a block cuts,
  // followed by commit_block().

  /// Execute the chaincode against committed endorsement state and apply the
  /// per-tx fault-injection knobs. Sequential: consumes the harness rng.
  TxDraft prepare_tx();

  /// Client-sign and endorse a draft into a wire envelope. Pure function of
  /// the draft (deterministic ECDSA) — safe to call from worker threads for
  /// distinct drafts.
  Bytes sign_envelope(const TxDraft& draft) const;

  /// Enqueue an endorsed envelope with the orderer; returns a cut block when
  /// the batch fills (NetworkOptions::block_size).
  std::optional<fabric::Block> submit_envelope(Bytes envelope);

  /// Cut whatever is pending into a block (batch-timeout path); nullopt if
  /// nothing is pending.
  std::optional<fabric::Block> flush_block();

  /// Reference-commit a block this harness produced, so the endorsement
  /// state observes it and reference_result() is recorded.
  const fabric::BlockValidationResult& commit_block(const fabric::Block& block);

  /// A block whose orderer signature is corrupted (block_verify must fail).
  fabric::Block next_tampered_block();

  /// The harness's own (reference) validation result for a block it
  /// produced — what any correct validator must compute.
  const fabric::BlockValidationResult& reference_result(
      std::uint64_t block_num) const {
    return reference_results_.at(block_num);
  }

  const fabric::StateDb& endorsement_state() const { return state_; }
  const fabric::Ledger& reference_ledger() const { return ledger_; }
  /// Non-null when NetworkOptions::durability is enabled.
  const fabric::DurableLedger* durable() const { return durable_.get(); }
  fabric::DurableLedger* durable() { return durable_.get(); }

 private:
  ChaincodeResult execute_chaincode();

  NetworkOptions options_;
  Rng rng_;
  fabric::Msp msp_;
  std::string chaincode_name_;
  std::map<std::string, fabric::EndorsementPolicy> policies_;

  std::vector<fabric::Identity> endorsers_;  ///< one peer per org
  fabric::Identity client_;
  fabric::Identity rogue_client_;  ///< valid cert, signs with the wrong key
  std::unique_ptr<fabric::Orderer> orderer_;

  std::optional<SmallbankChaincode> smallbank_;
  std::optional<DrmChaincode> drm_;

  // Reference pipeline (endorsement state evolves with committed blocks).
  fabric::StateDb state_;
  fabric::Ledger ledger_;
  std::unique_ptr<fabric::DurableLedger> durable_;
  std::unique_ptr<fabric::ValidatorBackend> reference_backend_;
  std::map<std::uint64_t, fabric::BlockValidationResult> reference_results_;

  std::uint64_t next_tx_id_ = 0;
};

}  // namespace bm::workload

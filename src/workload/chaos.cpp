#include "workload/chaos.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/rng.hpp"
#include "obs/telemetry.hpp"

namespace bm::workload {

namespace {

std::string hex_digest(const crypto::Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  return out;
}

}  // namespace

std::string ChaosReport::to_text() const {
  std::ostringstream out;
  out << "complete " << complete << "\n"
      << "hashes_match " << hashes_match << "\n"
      << "flags_match " << flags_match << "\n"
      << "blocks_produced " << blocks_produced << "\n"
      << "blocks_committed " << blocks_committed << "\n"
      << "blocks_rejected " << blocks_rejected << "\n"
      << "fallback_blocks " << degrade.fallback_blocks << "\n"
      << "watchdog_fires " << degrade.watchdog_fires << "\n"
      << "watchdog_deferrals " << degrade.watchdog_deferrals << "\n"
      << "streams_aborted " << degrade.streams_aborted << "\n"
      << "late_packets " << degrade.late_packets << "\n"
      << "gbn_failures " << gbn_failures << "\n"
      << "gbn_frames_sent " << sender_stats.frames_sent << "\n"
      << "gbn_retransmissions " << sender_stats.retransmissions << "\n"
      << "gbn_timeouts " << sender_stats.timeouts << "\n"
      << "gbn_frames_abandoned " << sender_stats.frames_abandoned << "\n"
      << "gbn_stream_resyncs " << sender_stats.stream_resyncs << "\n"
      << "gbn_frames_corrupted " << receiver_stats.frames_corrupted << "\n"
      << "gbn_frames_discarded " << receiver_stats.frames_discarded << "\n"
      << "data_dropped_loss " << data_faults.dropped_loss << "\n"
      << "data_dropped_partition " << data_faults.dropped_partition << "\n"
      << "data_dropped_corrupt " << data_faults.dropped_corrupt << "\n"
      << "data_corrupted_silent " << data_faults.corrupted_silent << "\n"
      << "data_duplicated " << data_faults.duplicated << "\n"
      << "data_reordered " << data_faults.reordered << "\n"
      << "ack_dropped_total " << ack_faults.dropped_total() << "\n"
      << "finished_at_us " << finished_at / sim::kMicrosecond << "\n";
  if (!mismatch.empty()) out << "mismatch " << mismatch << "\n";
  return out.str();
}

ChaosReport run_chaos_scenario(const ChaosOptions& options,
                               obs::Registry* registry, obs::Tracer* tracer,
                               obs::Telemetry* telemetry) {
  ChaosReport report;
  FabricNetworkHarness harness(options.network);

  sim::Simulation sim;
  bmac::BmacPeer peer(sim, harness.msp(), options.hw, harness.policies());
  peer.enable_graceful_degradation(options.degrade);
  if (options.fallback_factory)
    peer.set_fallback_backend(
        options.fallback_factory(harness.msp(), harness.policies()));
  if (registry != nullptr || tracer != nullptr)
    peer.attach_observability(registry, tracer);
  if (telemetry != nullptr && telemetry->enabled() && registry != nullptr) {
    telemetry->attach(sim, *registry, tracer);
    peer.set_flight_recorder(telemetry->flight());
  }
  peer.start();
  bmac::ProtocolSender sender(harness.msp());

  // Fault-free links: every impairment belongs to the injectors, where it
  // is scriptable, counted and deterministic.
  net::Link::Config link_config;
  link_config.gbps = options.link_gbps;
  net::Link data_link(sim, link_config);
  net::Link ack_link(sim, link_config);
  net::FaultyChannel data(sim, data_link, options.scenario.data);
  net::FaultyChannel ack(sim, ack_link, options.scenario.ack);
  if (tracer != nullptr) {
    data.set_tracer(tracer, tracer->lane("faults_data"));
    ack.set_tracer(tracer, tracer->lane("faults_ack"));
  }

  std::unique_ptr<bmac::GbnSender> gbn;
  bmac::GbnReceiver receiver(
      [&](Bytes payload) {
        // The frame passed the GBN CRC, so the packet decodes unless the
        // sender emitted garbage (it does not).
        auto packet = bmac::BmacPacket::decode(payload);
        if (packet) peer.deliver_packet(std::move(*packet));
      },
      [&](std::uint64_t next) { ack.send(bmac::encode_ack(next)); });
  data.set_receiver([&](Bytes wire) { receiver.on_wire(wire); });
  ack.set_receiver([&](Bytes wire) {
    if (const auto next = bmac::decode_ack(wire)) gbn->on_ack(*next);
  });
  gbn = std::make_unique<bmac::GbnSender>(
      sim, options.gbn,
      [&](const bmac::SequencedFrame& frame) { data.send(frame.encode()); });
  gbn->set_failure_callback(
      [&](std::uint64_t, std::uint64_t) { ++report.gbn_failures; });

  // Cut all blocks up front (the harness is sim-time independent), then
  // pace them onto the wire. The host path (deliver_block) is the reliable
  // Gossip/TCP side and is delivered directly.
  std::vector<fabric::Block> produced;
  produced.reserve(static_cast<std::size_t>(options.blocks));
  for (int i = 0; i < options.blocks; ++i) {
    const bool tamper = options.tamper_last_block && i == options.blocks - 1;
    produced.push_back(tamper ? harness.next_tampered_block()
                              : harness.next_block());
  }
  report.blocks_produced = produced.size();
  for (std::size_t i = 0; i < produced.size(); ++i) {
    sim.schedule(static_cast<sim::Time>(i) * options.block_interval, [&, i] {
      for (auto& packet : sender.send(produced[i]).packets)
        gbn->send(packet.encode());
      peer.deliver_block(produced[i]);
    });
  }

  // Run until every block is resolved (committed or rejected) or the time
  // limit trips. A plain sim.run() would not return: the GBN timer re-arms
  // forever while its last SYNC frame is blackholed by a partition.
  const sim::Time step = 10 * sim::kMillisecond;
  while (sim.now() < options.time_limit &&
         peer.results().size() < produced.size())
    sim.run_until(sim.now() + step);
  report.complete = peer.results().size() == produced.size();
  report.finished_at = sim.now();

  // --- the equivalence check vs the fault-free reference run --------------
  // The harness reference ledger commits the *clean* version of a tampered
  // block (next_tampered_block corrupts the copy it hands out), so a correct
  // peer's ledger is exactly `reference height - rejected blocks` tall and
  // hash-identical over that prefix.
  const fabric::Ledger& reference = harness.reference_ledger();
  const std::uint64_t rejected = peer.host_metrics().blocks_rejected;
  report.hashes_match =
      peer.ledger().height() + rejected == reference.height();
  if (!report.hashes_match)
    report.mismatch = "ledger height " + std::to_string(peer.ledger().height()) +
                      " + rejected " + std::to_string(rejected) +
                      " != reference " + std::to_string(reference.height());
  for (std::uint64_t h = 0;
       report.hashes_match && h < peer.ledger().height(); ++h) {
    if (peer.ledger().at(h).commit_hash != reference.at(h).commit_hash) {
      report.hashes_match = false;
      report.mismatch =
          "commit hash diverged at height " + std::to_string(h) + ": " +
          hex_digest(peer.ledger().at(h).commit_hash) + " != " +
          hex_digest(reference.at(h).commit_hash);
    }
  }
  report.flags_match = report.complete;
  for (const bmac::ResultEntry& result : peer.results()) {
    const fabric::BlockValidationResult& want =
        harness.reference_result(result.block_num);
    if (result.block_valid != want.block_valid ||
        result.flags != want.flags) {
      report.flags_match = false;
      if (report.mismatch.empty())
        report.mismatch =
            "flags diverged at block " + std::to_string(result.block_num);
      break;
    }
  }

  report.blocks_committed = peer.ledger().height();
  report.blocks_rejected = peer.host_metrics().blocks_rejected;
  report.sender_stats = gbn->stats();
  report.receiver_stats = receiver.stats();
  report.data_faults = data.stats();
  report.ack_faults = ack.stats();
  report.degrade = peer.degrade_metrics();
  report.host = peer.host_metrics();

  if (registry != nullptr) {
    peer.publish_metrics();
    data.publish_metrics(*registry, "chaos_data");
    ack.publish_metrics(*registry, "chaos_ack");
    registry->counter("chaos_gbn_retransmissions_total",
                      "GBN frames retransmitted")
        .set(report.sender_stats.retransmissions);
    registry->counter("chaos_gbn_frames_abandoned_total",
                      "GBN frames given up at the retransmission cap")
        .set(report.sender_stats.frames_abandoned);
    registry->counter("chaos_gbn_stream_resyncs_total",
                      "SYNC frames emitted after cap exhaustion")
        .set(report.sender_stats.stream_resyncs);
    registry->counter("chaos_gbn_frames_corrupted_total",
                      "frames dropped by the GBN CRC check")
        .set(report.receiver_stats.frames_corrupted);
  }
  // The sampler/monitor hold recurring events on `sim`, which dies with this
  // frame — settle them (final sample + evaluation) before returning.
  if (telemetry != nullptr) telemetry->finish();
  return report;
}

// --- kill-and-restart: the durable-ledger crash drill ----------------------

namespace {

/// Start the drill from a clean slate: a stale log or snapshot left behind
/// by an earlier run would poison the equivalence check.
void remove_durability_files(const fabric::DurabilityConfig& config) {
  std::error_code ec;
  std::filesystem::remove(config.ledger_path, ec);
  const std::filesystem::path log(config.ledger_path);
  const std::string prefix = log.filename().string() + ".snap.";
  std::filesystem::path dir = log.parent_path();
  if (dir.empty()) dir = ".";
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0)
      std::filesystem::remove(entry.path(), ec);
  }
}

/// First height in [ledger.base_height(), ledger.height()) whose commit hash
/// differs from the reference, or the ledger height when none does. Heights
/// below a snapshot base are covered by the last_commit_hash check instead
/// (the chain hash commits to the whole prefix).
std::uint64_t first_hash_divergence(
    const fabric::Ledger& ledger,
    const std::vector<crypto::Digest>& reference) {
  for (std::uint64_t h = ledger.base_height(); h < ledger.height(); ++h) {
    if (h >= reference.size() ||
        ledger.at(h).commit_hash != reference[h])
      return h;
  }
  return ledger.height();
}

}  // namespace

std::string CrashRecoveryReport::to_text() const {
  // recovery.duration_s is wall clock — deliberately absent, the text must
  // be byte-identical across reruns.
  std::ostringstream out;
  out << "crashed_mid_record " << crashed_mid_record << "\n"
      << "recovered " << recovered << "\n"
      << "hashes_match " << hashes_match << "\n"
      << "resumed " << resumed << "\n"
      << "final_chain_matches " << final_chain_matches << "\n"
      << "crash_offset " << crash_offset << "\n"
      << "torn_bytes " << recovery.torn_bytes << "\n"
      << "used_snapshot " << recovery.used_snapshot << "\n"
      << "snapshot_height " << recovery.snapshot_height << "\n"
      << "blocks_replayed " << recovery.blocks_replayed << "\n"
      << "recovered_height " << recovered_height << "\n"
      << "final_height " << final_height << "\n";
  if (!mismatch.empty()) out << "mismatch " << mismatch << "\n";
  return out.str();
}

CrashRecoveryReport run_crash_recovery(const CrashRecoveryOptions& options,
                                       obs::Registry* registry) {
  CrashRecoveryReport report;
  NetworkOptions net = options.network;
  net.durability = options.durability;
  const std::string& path = options.durability.ledger_path;
  // Need a committed block *before* the torn one so the survivor prefix is
  // non-empty and the reopened store has a real chain head to defend.
  const int before = std::max(2, options.blocks_before_crash);
  const int total = before + std::max(0, options.blocks_after);

  remove_durability_files(options.durability);

  // --- 1. commit durably, then "kill -9" ---------------------------------
  {
    FabricNetworkHarness harness(net);
    for (int i = 0; i < before; ++i) harness.next_block();
    harness.durable()->sync();
  }  // dropped on the floor: no orderly shutdown, the file just closes

  // --- 2. tear the tail: truncate mid-record at a random byte ------------
  {
    const auto chain = fabric::FileBlockStore::recover(path);
    if (chain.blocks.size() != static_cast<std::size_t>(before)) {
      report.mismatch = "pre-crash log holds " +
                        std::to_string(chain.blocks.size()) + " blocks, want " +
                        std::to_string(before);
      return report;
    }
    const std::uint64_t last_start =
        chain.record_offsets[chain.blocks.size() - 1];
    const std::uint64_t end = chain.record_offsets.back();
    Rng rng(options.crash_seed);
    const std::uint64_t cut = last_start + 1 + rng.uniform(end - last_start - 1);
    std::filesystem::resize_file(path, cut);
    report.crash_offset = cut;
    report.crashed_mid_record = cut > last_start && cut < end;
  }

  // --- 3. recover from disk ----------------------------------------------
  fabric::Ledger recovered_ledger;
  fabric::StateDb recovered_state;
  report.recovery = fabric::DurableLedger::recover(options.durability,
                                                   recovered_ledger,
                                                   recovered_state);
  report.recovered = report.recovery.ok &&
                     recovered_ledger.height() ==
                         static_cast<std::uint64_t>(before) - 1;
  report.recovered_height = recovered_ledger.height();
  if (!report.recovered && report.mismatch.empty())
    report.mismatch = report.recovery.ok
                          ? "recovered height " +
                                std::to_string(recovered_ledger.height()) +
                                ", want " + std::to_string(before - 1)
                          : "recovery failed: " + report.recovery.error;

  // --- 4. restart over the same log, commit at full speed ----------------
  // Same seed => the harness regenerates the identical block stream; the
  // reopened store must seed its head from the surviving prefix, skip the
  // already-durable replay, re-append the torn-away block and then extend.
  std::uint64_t store_height = 0;
  std::vector<crypto::Digest> reference;
  {
    FabricNetworkHarness harness(net);
    for (int i = 0; i < total; ++i) harness.next_block();
    harness.durable()->sync();
    store_height = harness.durable()->store().height();
    if (registry != nullptr)
      harness.durable()->publish_metrics(*registry, "chaos_durable");
    const fabric::Ledger& ref = harness.reference_ledger();
    reference.reserve(ref.height());
    for (std::uint64_t h = 0; h < ref.height(); ++h)
      reference.push_back(ref.at(h).commit_hash);
  }
  report.resumed = store_height == static_cast<std::uint64_t>(total);
  if (!report.resumed && report.mismatch.empty())
    report.mismatch = "store height " + std::to_string(store_height) +
                      " after restart, want " + std::to_string(total);

  // --- the §4.1 oracle: byte-for-byte commit-hash equality ----------------
  const std::uint64_t diverged =
      first_hash_divergence(recovered_ledger, reference);
  report.hashes_match =
      report.recovered && diverged == recovered_ledger.height() &&
      (recovered_ledger.height() == 0 ||
       recovered_ledger.last_commit_hash() ==
           reference[recovered_ledger.height() - 1]);
  if (report.recovered && !report.hashes_match && report.mismatch.empty())
    report.mismatch =
        "recovered commit hash diverged at height " + std::to_string(diverged);

  // --- 5. recover once more: the whole chain must reproduce --------------
  fabric::Ledger final_ledger;
  fabric::StateDb final_state;
  const fabric::RecoveryResult final_recovery =
      fabric::DurableLedger::recover(options.durability, final_ledger,
                                     final_state);
  report.final_height = final_ledger.height();
  const std::uint64_t final_diverged =
      first_hash_divergence(final_ledger, reference);
  report.final_chain_matches =
      final_recovery.ok && final_ledger.height() == reference.size() &&
      final_diverged == final_ledger.height() &&
      !reference.empty() &&
      final_ledger.last_commit_hash() == reference.back();
  if (!report.final_chain_matches && report.mismatch.empty())
    report.mismatch =
        final_recovery.ok
            ? "final chain diverged at height " + std::to_string(final_diverged)
            : "final recovery failed: " + final_recovery.error;

  if (registry != nullptr)
    fabric::DurableLedger::publish_recovery_metrics(*registry,
                                                    "chaos_recovery",
                                                    report.recovery);
  return report;
}

}  // namespace bm::workload

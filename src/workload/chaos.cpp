#include "workload/chaos.hpp"

#include <sstream>

#include "obs/telemetry.hpp"

namespace bm::workload {

namespace {

std::string hex_digest(const crypto::Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  return out;
}

}  // namespace

std::string ChaosReport::to_text() const {
  std::ostringstream out;
  out << "complete " << complete << "\n"
      << "hashes_match " << hashes_match << "\n"
      << "flags_match " << flags_match << "\n"
      << "blocks_produced " << blocks_produced << "\n"
      << "blocks_committed " << blocks_committed << "\n"
      << "blocks_rejected " << blocks_rejected << "\n"
      << "fallback_blocks " << degrade.fallback_blocks << "\n"
      << "watchdog_fires " << degrade.watchdog_fires << "\n"
      << "watchdog_deferrals " << degrade.watchdog_deferrals << "\n"
      << "streams_aborted " << degrade.streams_aborted << "\n"
      << "late_packets " << degrade.late_packets << "\n"
      << "gbn_failures " << gbn_failures << "\n"
      << "gbn_frames_sent " << sender_stats.frames_sent << "\n"
      << "gbn_retransmissions " << sender_stats.retransmissions << "\n"
      << "gbn_timeouts " << sender_stats.timeouts << "\n"
      << "gbn_frames_abandoned " << sender_stats.frames_abandoned << "\n"
      << "gbn_stream_resyncs " << sender_stats.stream_resyncs << "\n"
      << "gbn_frames_corrupted " << receiver_stats.frames_corrupted << "\n"
      << "gbn_frames_discarded " << receiver_stats.frames_discarded << "\n"
      << "data_dropped_loss " << data_faults.dropped_loss << "\n"
      << "data_dropped_partition " << data_faults.dropped_partition << "\n"
      << "data_dropped_corrupt " << data_faults.dropped_corrupt << "\n"
      << "data_corrupted_silent " << data_faults.corrupted_silent << "\n"
      << "data_duplicated " << data_faults.duplicated << "\n"
      << "data_reordered " << data_faults.reordered << "\n"
      << "ack_dropped_total " << ack_faults.dropped_total() << "\n"
      << "finished_at_us " << finished_at / sim::kMicrosecond << "\n";
  if (!mismatch.empty()) out << "mismatch " << mismatch << "\n";
  return out.str();
}

ChaosReport run_chaos_scenario(const ChaosOptions& options,
                               obs::Registry* registry, obs::Tracer* tracer,
                               obs::Telemetry* telemetry) {
  ChaosReport report;
  FabricNetworkHarness harness(options.network);

  sim::Simulation sim;
  bmac::BmacPeer peer(sim, harness.msp(), options.hw, harness.policies());
  peer.enable_graceful_degradation(options.degrade);
  if (options.fallback_factory)
    peer.set_fallback_backend(
        options.fallback_factory(harness.msp(), harness.policies()));
  if (registry != nullptr || tracer != nullptr)
    peer.attach_observability(registry, tracer);
  if (telemetry != nullptr && telemetry->enabled() && registry != nullptr) {
    telemetry->attach(sim, *registry, tracer);
    peer.set_flight_recorder(telemetry->flight());
  }
  peer.start();
  bmac::ProtocolSender sender(harness.msp());

  // Fault-free links: every impairment belongs to the injectors, where it
  // is scriptable, counted and deterministic.
  net::Link::Config link_config;
  link_config.gbps = options.link_gbps;
  net::Link data_link(sim, link_config);
  net::Link ack_link(sim, link_config);
  net::FaultyChannel data(sim, data_link, options.scenario.data);
  net::FaultyChannel ack(sim, ack_link, options.scenario.ack);
  if (tracer != nullptr) {
    data.set_tracer(tracer, tracer->lane("faults_data"));
    ack.set_tracer(tracer, tracer->lane("faults_ack"));
  }

  std::unique_ptr<bmac::GbnSender> gbn;
  bmac::GbnReceiver receiver(
      [&](Bytes payload) {
        // The frame passed the GBN CRC, so the packet decodes unless the
        // sender emitted garbage (it does not).
        auto packet = bmac::BmacPacket::decode(payload);
        if (packet) peer.deliver_packet(std::move(*packet));
      },
      [&](std::uint64_t next) { ack.send(bmac::encode_ack(next)); });
  data.set_receiver([&](Bytes wire) { receiver.on_wire(wire); });
  ack.set_receiver([&](Bytes wire) {
    if (const auto next = bmac::decode_ack(wire)) gbn->on_ack(*next);
  });
  gbn = std::make_unique<bmac::GbnSender>(
      sim, options.gbn,
      [&](const bmac::SequencedFrame& frame) { data.send(frame.encode()); });
  gbn->set_failure_callback(
      [&](std::uint64_t, std::uint64_t) { ++report.gbn_failures; });

  // Cut all blocks up front (the harness is sim-time independent), then
  // pace them onto the wire. The host path (deliver_block) is the reliable
  // Gossip/TCP side and is delivered directly.
  std::vector<fabric::Block> produced;
  produced.reserve(static_cast<std::size_t>(options.blocks));
  for (int i = 0; i < options.blocks; ++i) {
    const bool tamper = options.tamper_last_block && i == options.blocks - 1;
    produced.push_back(tamper ? harness.next_tampered_block()
                              : harness.next_block());
  }
  report.blocks_produced = produced.size();
  for (std::size_t i = 0; i < produced.size(); ++i) {
    sim.schedule(static_cast<sim::Time>(i) * options.block_interval, [&, i] {
      for (auto& packet : sender.send(produced[i]).packets)
        gbn->send(packet.encode());
      peer.deliver_block(produced[i]);
    });
  }

  // Run until every block is resolved (committed or rejected) or the time
  // limit trips. A plain sim.run() would not return: the GBN timer re-arms
  // forever while its last SYNC frame is blackholed by a partition.
  const sim::Time step = 10 * sim::kMillisecond;
  while (sim.now() < options.time_limit &&
         peer.results().size() < produced.size())
    sim.run_until(sim.now() + step);
  report.complete = peer.results().size() == produced.size();
  report.finished_at = sim.now();

  // --- the equivalence check vs the fault-free reference run --------------
  // The harness reference ledger commits the *clean* version of a tampered
  // block (next_tampered_block corrupts the copy it hands out), so a correct
  // peer's ledger is exactly `reference height - rejected blocks` tall and
  // hash-identical over that prefix.
  const fabric::Ledger& reference = harness.reference_ledger();
  const std::uint64_t rejected = peer.host_metrics().blocks_rejected;
  report.hashes_match =
      peer.ledger().height() + rejected == reference.height();
  if (!report.hashes_match)
    report.mismatch = "ledger height " + std::to_string(peer.ledger().height()) +
                      " + rejected " + std::to_string(rejected) +
                      " != reference " + std::to_string(reference.height());
  for (std::uint64_t h = 0;
       report.hashes_match && h < peer.ledger().height(); ++h) {
    if (peer.ledger().at(h).commit_hash != reference.at(h).commit_hash) {
      report.hashes_match = false;
      report.mismatch =
          "commit hash diverged at height " + std::to_string(h) + ": " +
          hex_digest(peer.ledger().at(h).commit_hash) + " != " +
          hex_digest(reference.at(h).commit_hash);
    }
  }
  report.flags_match = report.complete;
  for (const bmac::ResultEntry& result : peer.results()) {
    const fabric::BlockValidationResult& want =
        harness.reference_result(result.block_num);
    if (result.block_valid != want.block_valid ||
        result.flags != want.flags) {
      report.flags_match = false;
      if (report.mismatch.empty())
        report.mismatch =
            "flags diverged at block " + std::to_string(result.block_num);
      break;
    }
  }

  report.blocks_committed = peer.ledger().height();
  report.blocks_rejected = peer.host_metrics().blocks_rejected;
  report.sender_stats = gbn->stats();
  report.receiver_stats = receiver.stats();
  report.data_faults = data.stats();
  report.ack_faults = ack.stats();
  report.degrade = peer.degrade_metrics();
  report.host = peer.host_metrics();

  if (registry != nullptr) {
    peer.publish_metrics();
    data.publish_metrics(*registry, "chaos_data");
    ack.publish_metrics(*registry, "chaos_ack");
    registry->counter("chaos_gbn_retransmissions_total",
                      "GBN frames retransmitted")
        .set(report.sender_stats.retransmissions);
    registry->counter("chaos_gbn_frames_abandoned_total",
                      "GBN frames given up at the retransmission cap")
        .set(report.sender_stats.frames_abandoned);
    registry->counter("chaos_gbn_stream_resyncs_total",
                      "SYNC frames emitted after cap exhaustion")
        .set(report.sender_stats.stream_resyncs);
    registry->counter("chaos_gbn_frames_corrupted_total",
                      "frames dropped by the GBN CRC check")
        .set(report.receiver_stats.frames_corrupted);
  }
  // The sampler/monitor hold recurring events on `sim`, which dies with this
  // frame — settle them (final sample + evaluation) before returning.
  if (telemetry != nullptr) telemetry->finish();
  return report;
}

}  // namespace bm::workload

#include "workload/chaincode.hpp"

namespace bm::workload {

namespace {

/// Read a key from committed state, recording the observed version (or
/// absence) into the read set — exactly what the endorser's GetState does.
void read_key(const fabric::StateDb& state, fabric::ReadWriteSet& rwset,
              const std::string& namespaced_key, const std::string& key) {
  fabric::KVRead read;
  read.key = key;
  if (const auto value = state.get(namespaced_key))
    read.version = value->version;
  rwset.reads.push_back(std::move(read));
}

Bytes amount_bytes(std::int64_t amount) {
  return to_bytes(std::to_string(amount));
}

}  // namespace

// --- smallbank ---------------------------------------------------------------

ChaincodeResult SmallbankChaincode::execute(
    Rng& rng, const fabric::StateDb& state) const {
  if (config_.split_payment_accounts > 0) return split_payment(rng, state);
  switch (rng.uniform(6)) {
    case 0: return create_account(rng, state);
    case 1: return transact_savings(rng, state);
    case 2: return deposit_checking(rng, state);
    case 3: return send_payment(rng, state);
    case 4: return amalgamate(rng, state);
    default: return write_check(rng, state);
  }
}

double SmallbankChaincode::avg_reads() const {
  if (config_.split_payment_accounts > 0)
    // 1 source + n destinations read before update.
    return 1.0 + config_.split_payment_accounts;
  // create(0r) savings(1r) deposit(1r) payment(2r) amalgamate(2r) check(1r)
  return (0 + 1 + 1 + 2 + 2 + 1) / 6.0;
}

double SmallbankChaincode::avg_writes() const {
  if (config_.split_payment_accounts > 0)
    return 1.0 + config_.split_payment_accounts;
  // create(2w) savings(1w) deposit(1w) payment(2w) amalgamate(2w) check(1w)
  return (2 + 1 + 1 + 2 + 2 + 1) / 6.0;
}

std::uint64_t SmallbankChaincode::pick_account(Rng& rng) const {
  return account_pick_.sample(rng);
}

namespace {
std::string account_key(const char* table, std::uint64_t id) {
  return std::string(table) + "_" + std::to_string(id);
}
}  // namespace

ChaincodeResult SmallbankChaincode::create_account(
    Rng& rng, const fabric::StateDb&) const {
  const std::uint64_t id = pick_account(rng);
  ChaincodeResult result{"create_account", {}};
  result.rwset.writes.push_back(
      {account_key("savings", id), amount_bytes(1000)});
  result.rwset.writes.push_back(
      {account_key("checking", id), amount_bytes(50)});
  return result;
}

ChaincodeResult SmallbankChaincode::transact_savings(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t id = pick_account(rng);
  const std::string key = account_key("savings", id);
  ChaincodeResult result{"transact_savings", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, key), key);
  result.rwset.writes.push_back(
      {key, amount_bytes(rng.uniform_range(1, 500))});
  return result;
}

ChaincodeResult SmallbankChaincode::deposit_checking(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t id = pick_account(rng);
  const std::string key = account_key("checking", id);
  ChaincodeResult result{"deposit_checking", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, key), key);
  result.rwset.writes.push_back(
      {key, amount_bytes(rng.uniform_range(1, 200))});
  return result;
}

ChaincodeResult SmallbankChaincode::send_payment(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t src = pick_account(rng);
  std::uint64_t dst = pick_account(rng);
  if (dst == src) dst = (dst + 1) % config_.accounts;
  const std::string src_key = account_key("checking", src);
  const std::string dst_key = account_key("checking", dst);
  ChaincodeResult result{"send_payment", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, src_key),
           src_key);
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, dst_key),
           dst_key);
  const std::int64_t amount = rng.uniform_range(1, 100);
  result.rwset.writes.push_back({src_key, amount_bytes(1000 - amount)});
  result.rwset.writes.push_back({dst_key, amount_bytes(1000 + amount)});
  return result;
}

ChaincodeResult SmallbankChaincode::amalgamate(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t id = pick_account(rng);
  const std::string savings = account_key("savings", id);
  const std::string checking = account_key("checking", id);
  ChaincodeResult result{"amalgamate", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, savings),
           savings);
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, checking),
           checking);
  result.rwset.writes.push_back({savings, amount_bytes(0)});
  result.rwset.writes.push_back({checking, amount_bytes(2000)});
  return result;
}

ChaincodeResult SmallbankChaincode::write_check(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t id = pick_account(rng);
  const std::string key = account_key("checking", id);
  ChaincodeResult result{"write_check", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, key), key);
  result.rwset.writes.push_back(
      {key, amount_bytes(rng.uniform_range(-100, 100))});
  return result;
}

ChaincodeResult SmallbankChaincode::split_payment(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t src = pick_account(rng);
  const std::string src_key = account_key("checking", src);
  ChaincodeResult result{"split_payment", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, src_key),
           src_key);
  result.rwset.writes.push_back({src_key, amount_bytes(0)});
  for (std::uint32_t i = 0; i < config_.split_payment_accounts; ++i) {
    const std::uint64_t dst =
        (src + 1 + rng.uniform(config_.accounts - 1)) % config_.accounts;
    const std::string dst_key =
        account_key("checking", dst) + "_s" + std::to_string(i);
    read_key(state, result.rwset, fabric::StateDb::namespaced(kName, dst_key),
             dst_key);
    result.rwset.writes.push_back({dst_key, amount_bytes(10)});
  }
  return result;
}

// --- drm ----------------------------------------------------------------------

ChaincodeResult DrmChaincode::execute(Rng& rng,
                                      const fabric::StateDb& state) const {
  switch (rng.uniform(3)) {
    case 0: return create_asset(rng, state);
    case 1: return update_asset(rng, state);
    default: return transfer_rights(rng, state);
  }
}

double DrmChaincode::avg_reads() const { return (0 + 1 + 1) / 3.0; }
double DrmChaincode::avg_writes() const { return (1 + 1 + 1) / 3.0; }

ChaincodeResult DrmChaincode::create_asset(Rng& rng,
                                           const fabric::StateDb&) const {
  const std::uint64_t id = rng.uniform(config_.assets);
  ChaincodeResult result{"create_asset", {}};
  result.rwset.writes.push_back(
      {"asset_" + std::to_string(id), to_bytes("owner0|rights:full")});
  return result;
}

ChaincodeResult DrmChaincode::update_asset(Rng& rng,
                                           const fabric::StateDb& state) const {
  const std::uint64_t id = rng.uniform(config_.assets);
  const std::string key = "asset_" + std::to_string(id);
  ChaincodeResult result{"update_asset", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, key), key);
  result.rwset.writes.push_back(
      {key, to_bytes("owner0|rights:updated" +
                     std::to_string(rng.uniform(1000)))});
  return result;
}

ChaincodeResult DrmChaincode::transfer_rights(
    Rng& rng, const fabric::StateDb& state) const {
  const std::uint64_t id = rng.uniform(config_.assets);
  const std::string key = "asset_" + std::to_string(id);
  ChaincodeResult result{"transfer_rights", {}};
  read_key(state, result.rwset, fabric::StateDb::namespaced(kName, key), key);
  result.rwset.writes.push_back(
      {key, to_bytes("owner" + std::to_string(rng.uniform(16)) +
                     "|rights:transferred")});
  return result;
}

}  // namespace bm::workload

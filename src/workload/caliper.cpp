#include "workload/caliper.hpp"

#include <algorithm>
#include <sstream>

namespace bm::workload {

void CaliperReport::record(const BlockObservation& observation) {
  observations_.push_back(observation);
  total_txs_ += observation.tx_count;
  valid_txs_ += observation.valid_tx_count;
}

double CaliperReport::overall_tps() const {
  if (observations_.empty()) return 0;
  sim::Time first = observations_.front().received_at;
  sim::Time last = observations_.front().committed_at;
  for (const auto& o : observations_) {
    first = std::min(first, o.received_at);
    last = std::max(last, o.committed_at);
  }
  if (last <= first) return 0;
  return static_cast<double>(total_txs_) /
         (static_cast<double>(last - first) / sim::kSecond);
}

Summary CaliperReport::validation_latency_ms() const {
  std::vector<double> latencies;
  latencies.reserve(observations_.size());
  for (const auto& o : observations_)
    latencies.push_back(static_cast<double>(o.validated_at - o.received_at) /
                        sim::kMillisecond);
  return summarize(latencies);
}

std::vector<double> CaliperReport::windowed_tps(sim::Time window) const {
  if (observations_.empty() || window <= 0) return {};
  sim::Time first = observations_.front().received_at;
  sim::Time last = observations_.front().committed_at;
  for (const auto& o : observations_) {
    first = std::min(first, o.received_at);
    last = std::max(last, o.committed_at);
  }
  const auto buckets =
      static_cast<std::size_t>((last - first) / window) + 1;
  std::vector<double> tps(buckets, 0.0);
  for (const auto& o : observations_) {
    const auto bucket =
        static_cast<std::size_t>((o.committed_at - first) / window);
    tps[bucket] += o.tx_count;
  }
  const double seconds = static_cast<double>(window) / sim::kSecond;
  for (double& v : tps) v /= seconds;
  return tps;
}

void CaliperReport::publish_metrics(obs::Registry& registry) const {
  const std::string base = "caliper_" + peer_;
  registry.counter(base + "_blocks_total", "blocks observed by the reporter")
      .set(observations_.size());
  registry.counter(base + "_txs_total", "transactions observed")
      .set(total_txs_);
  registry.counter(base + "_txs_valid_total", "transactions flagged valid")
      .set(valid_txs_);
  registry
      .counter(base + "_txs_shed_total",
               "transactions refused admission (kOverloaded)")
      .set(shed_txs_);
  registry
      .counter(base + "_txs_timed_out_total",
               "admitted transactions cancelled past their deadline")
      .set(timed_out_txs_);
  registry
      .gauge(base + "_commit_tps",
             "commit throughput over the whole run (first receive -> last "
             "commit)")
      .set(overall_tps());
  auto& latency = registry.histogram(
      base + "_validation_latency_ms", obs::Histogram::latency_ms_buckets(),
      "block validation latency (validated - received)");
  for (const auto& o : observations_)
    latency.observe(static_cast<double>(o.validated_at - o.received_at) /
                    sim::kMillisecond);
}

std::string CaliperReport::render(sim::Time window) const {
  std::ostringstream out;
  const Summary latency = validation_latency_ms();
  out << "caliper report for '" << peer_ << "': " << observations_.size()
      << " blocks, " << total_txs_ << " txs (" << valid_txs_ << " valid)\n";
  char line[200];
  if (shed_txs_ > 0 || timed_out_txs_ > 0) {
    std::snprintf(line, sizeof(line),
                  "  shed %llu  timed out %llu (not in the block counts)\n",
                  static_cast<unsigned long long>(shed_txs_),
                  static_cast<unsigned long long>(timed_out_txs_));
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "  commit throughput: %.0f tps\n"
                "  block validation latency (ms): mean %.2f  p50 %.2f  "
                "p95 %.2f  p99 %.2f  p99.9 %.2f  max %.2f\n",
                overall_tps(), latency.mean, latency.p50, latency.p95,
                latency.p99, latency.p999, latency.max);
  out << line;
  out << "  windowed tps:";
  for (const double v : windowed_tps(window)) {
    std::snprintf(line, sizeof(line), " %.0f", v);
    out << line;
  }
  out << "\n";
  return out.str();
}

}  // namespace bm::workload

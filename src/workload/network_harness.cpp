#include "workload/network_harness.hpp"

namespace bm::workload {

FabricNetworkHarness::FabricNetworkHarness(NetworkOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  for (int i = 1; i <= options_.orgs; ++i)
    msp_.add_org("Org" + std::to_string(i));

  chaincode_name_ = options_.chaincode == ChaincodeKind::kSmallbank
                        ? SmallbankChaincode::kName
                        : DrmChaincode::kName;
  policies_.emplace(chaincode_name_, fabric::parse_policy_or_throw(
                                         options_.policy_text,
                                         msp_.org_names()));

  for (int i = 1; i <= options_.orgs; ++i) {
    const auto* ca = msp_.find_org("Org" + std::to_string(i));
    endorsers_.push_back(
        ca->issue(fabric::Role::kPeer, 0,
                  "peer0.org" + std::to_string(i) + ".example.com"));
  }
  const auto* org1 = msp_.find_org("Org1");
  client_ = org1->issue(fabric::Role::kClient, 0, "client0.org1.example.com");
  // The rogue client holds client1's certificate but signs with an
  // unrelated key: its envelopes carry a valid identity and an invalid
  // signature (TxValidationCode::kBadCreatorSignature).
  rogue_client_ =
      org1->issue(fabric::Role::kClient, 1, "client1.org1.example.com");
  rogue_client_.key = crypto::key_from_seed(to_bytes("rogue-key"));

  const auto* orderer_org = msp_.find_org("Org1");
  orderer_ = std::make_unique<fabric::Orderer>(
      orderer_org->issue(fabric::Role::kOrderer, 0,
                         "orderer0.org1.example.com"),
      fabric::Orderer::Config{options_.block_size});

  if (options_.chaincode == ChaincodeKind::kSmallbank)
    smallbank_.emplace(options_.smallbank);
  else
    drm_.emplace(options_.drm);

  reference_backend_ = options_.backend_factory
                           ? options_.backend_factory(msp_, policies_)
                           : fabric::make_software_backend(msp_, policies_);

  if (options_.durability.enabled())
    durable_ = std::make_unique<fabric::DurableLedger>(options_.durability);
}

ChaincodeResult FabricNetworkHarness::execute_chaincode() {
  return smallbank_ ? smallbank_->execute(rng_, state_)
                    : drm_->execute(rng_, state_);
}

TxDraft FabricNetworkHarness::prepare_tx() {
  ChaincodeResult executed = execute_chaincode();

  TxDraft draft;
  draft.proposal.channel_id = "mychannel";
  draft.proposal.chaincode_id = chaincode_name_;
  draft.proposal.tx_id = "tx" + std::to_string(next_tx_id_++);
  draft.proposal.rwset = std::move(executed.rwset);

  if (options_.conflicting_read_rate > 0 &&
      rng_.chance(options_.conflicting_read_rate) &&
      !draft.proposal.rwset.reads.empty()) {
    // Endorsed against stale state: bump the expected version so the mvcc
    // re-read cannot match.
    auto& read = draft.proposal.rwset.reads.front();
    if (read.version) read.version->tx_num += 1;
    else read.version = fabric::Version{9999, 0};
  }

  // Endorsers named by the policy (one per principal, like the paper's
  // clients, which gather an endorsement from every org in the policy).
  for (const auto& principal : policies_.at(chaincode_name_).principals()) {
    const auto* ca = msp_.find_org(principal.org);
    if (ca == nullptr) continue;
    draft.endorsers.push_back(&endorsers_.at(ca->org_index() - 1));
  }
  if (options_.missing_endorsement_rate > 0 && draft.endorsers.size() > 1 &&
      rng_.chance(options_.missing_endorsement_rate)) {
    draft.endorsers.resize(draft.endorsers.size() -
                           (1 + rng_.uniform(draft.endorsers.size() - 1)));
  }

  const bool rogue = options_.bad_signature_rate > 0 &&
                     rng_.chance(options_.bad_signature_rate);
  draft.signer = rogue ? &rogue_client_ : &client_;
  return draft;
}

Bytes FabricNetworkHarness::sign_envelope(const TxDraft& draft) const {
  return fabric::build_envelope(draft.proposal, *draft.signer,
                                draft.endorsers);
}

std::optional<fabric::Block> FabricNetworkHarness::submit_envelope(
    Bytes envelope) {
  return orderer_->submit(std::move(envelope));
}

std::optional<fabric::Block> FabricNetworkHarness::flush_block() {
  return orderer_->flush();
}

const fabric::BlockValidationResult& FabricNetworkHarness::commit_block(
    const fabric::Block& block) {
  // Reference-commit so the endorsement state observes this block.
  const std::uint64_t height_before = ledger_.height();
  fabric::BlockValidationResult result =
      reference_backend_->validate_and_commit(block, state_, ledger_);
  // Persist exactly what the ledger accepted (a rejected block never lands
  // in the chain, so it never lands on disk either).
  if (durable_ != nullptr && ledger_.height() > height_before)
    durable_->on_commit(ledger_, state_);
  auto [it, inserted] =
      reference_results_.insert_or_assign(block.header.number,
                                          std::move(result));
  return it->second;
}

fabric::Block FabricNetworkHarness::next_block() {
  std::optional<fabric::Block> block;
  while (!block) block = submit_envelope(sign_envelope(prepare_tx()));
  commit_block(*block);
  return *block;
}

fabric::Block FabricNetworkHarness::next_tampered_block() {
  fabric::Block block = next_block();
  // Undo the reference commit's view: a tampered block is rejected by every
  // correct validator, so the reference result is "invalid block".
  if (!block.metadata.orderer_sig.empty())
    block.metadata.orderer_sig.back() ^= 0x01;
  fabric::BlockValidationResult rejected;
  rejected.block_valid = false;
  rejected.flags.assign(block.tx_count(),
                        fabric::TxValidationCode::kNotValidated);
  reference_results_[block.header.number] = rejected;
  return block;
}

}  // namespace bm::workload

#include "workload/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace bm::workload {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  const double m = mean(values);
  double sq = 0;
  for (const double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(static_cast<std::size_t>(std::ceil(rank)),
                                  values.size() - 1);
  const double frac = rank - std::floor(rank);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.p50 = percentile(values, 50);
  s.p95 = percentile(values, 95);
  s.p99 = percentile(values, 99);
  s.p999 = percentile(values, 99.9);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  return s;
}

}  // namespace bm::workload

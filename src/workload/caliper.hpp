// Caliper-style measurement (§4.1): the paper instruments the peer to log
// timestamps through the validation phase and has Hyperledger Caliper
// gather them into block-level statistics. This reporter ingests the same
// events — block received, validated, committed, with transaction counts —
// and produces the windowed throughput/latency report Caliper prints.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "workload/metrics.hpp"

namespace bm::workload {

struct BlockObservation {
  std::uint64_t block_num = 0;
  std::uint32_t tx_count = 0;
  std::uint32_t valid_tx_count = 0;
  sim::Time received_at = 0;
  sim::Time validated_at = 0;
  sim::Time committed_at = 0;
};

class CaliperReport {
 public:
  explicit CaliperReport(std::string peer_name) : peer_(std::move(peer_name)) {}

  void record(const BlockObservation& observation);

  /// Transactions the front end refused admission to (kOverloaded). They
  /// never reach a block, so they are counted beside the observations: a
  /// load sweep without them would pass off shedding as goodput.
  void record_shed(std::uint64_t n = 1) { shed_txs_ += n; }
  /// Admitted transactions cancelled because their deadline expired before
  /// endorsement could start.
  void record_timeout(std::uint64_t n = 1) { timed_out_txs_ += n; }

  std::size_t blocks() const { return observations_.size(); }
  std::uint64_t total_txs() const { return total_txs_; }
  std::uint64_t valid_txs() const { return valid_txs_; }
  std::uint64_t shed_txs() const { return shed_txs_; }
  std::uint64_t timed_out_txs() const { return timed_out_txs_; }

  /// Commit throughput over the whole run (first receive -> last commit).
  double overall_tps() const;

  /// Block validation latency summary (validated - received), in ms.
  Summary validation_latency_ms() const;

  /// Per-window throughput series (tps per `window` of simulated time) —
  /// what Caliper's round reports plot.
  std::vector<double> windowed_tps(sim::Time window) const;

  /// Render the full report as text.
  std::string render(sim::Time window = 100 * sim::kMillisecond) const;

  /// Publish the report into a metrics registry under
  /// "caliper_<peer>_...": throughput gauge, tx counters and a validation
  /// latency histogram rebuilt from the observations. Idempotent only for
  /// the counters/gauges; the histogram is freshly observed, so call once.
  void publish_metrics(obs::Registry& registry) const;

 private:
  std::string peer_;
  std::vector<BlockObservation> observations_;
  std::uint64_t total_txs_ = 0;
  std::uint64_t valid_txs_ = 0;
  std::uint64_t shed_txs_ = 0;
  std::uint64_t timed_out_txs_ = 0;
};

}  // namespace bm::workload

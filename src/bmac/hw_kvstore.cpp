#include "bmac/hw_kvstore.hpp"

namespace bm::bmac {

void HwKvStore::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

bool HwKvStore::insert_on_chip(const std::string& key, ReadResult value) {
  if (data_.size() >= capacity_) {
    if (host_ == nullptr) {
      ++overflows_;
      return false;
    }
    // Evict the least-recently-used entry to the host tier.
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = data_.find(victim);
    host_->put(victim, std::move(it->second.value.value),
               it->second.value.version);
    data_.erase(it);
    ++evictions_;
  }
  lru_.push_front(key);
  data_.emplace(key, Entry{std::move(value), lru_.begin()});
  return true;
}

HwKvStore::Entry* HwKvStore::fetch_from_host(const std::string& key) {
  if (host_ == nullptr) return nullptr;
  ++host_accesses_;
  last_tier_ = AccessTier::kHost;
  const auto host_value = host_->get(key);
  if (!host_value) return nullptr;
  // Promote the hot entry on-chip (§5: actively accessed data lives in
  // hardware).
  if (!insert_on_chip(key, ReadResult{host_value->value, host_value->version}))
    return nullptr;
  host_->erase(key);
  return &data_.find(key)->second;
}

std::optional<HwKvStore::ReadResult> HwKvStore::read(const std::string& key) {
  ++reads_;
  last_tier_ = AccessTier::kHardware;
  if (locked_.count(key) > 0) return std::nullopt;
  auto it = data_.find(key);
  if (it == data_.end()) {
    Entry* fetched = fetch_from_host(key);
    if (fetched == nullptr) return std::nullopt;
    return fetched->value;
  }
  touch(it->second);
  return it->second.value;
}

bool HwKvStore::write(const std::string& key, Bytes value,
                      fabric::Version version) {
  ++writes_;
  last_tier_ = AccessTier::kHardware;
  auto it = data_.find(key);
  if (it != data_.end()) {
    it->second.value = ReadResult{std::move(value), version};
    touch(it->second);
    return true;
  }
  // An update of a host-resident key counts as a host access (the stale
  // host copy must be superseded); the fresh value lands on-chip.
  if (host_ != nullptr && host_->get(key).has_value()) {
    ++host_accesses_;
    last_tier_ = AccessTier::kHost;
    host_->erase(key);
  }
  return insert_on_chip(key, ReadResult{std::move(value), version});
}

std::size_t HwKvStore::write_batch(std::vector<BatchWrite>&& writes) {
  std::size_t applied = 0;
  for (BatchWrite& w : writes)
    if (write(w.key, std::move(w.value), w.version)) ++applied;
  return applied;
}

bool HwKvStore::version_matches(
    const std::string& key, const std::optional<fabric::Version>& expected) {
  ++reads_;
  last_tier_ = AccessTier::kHardware;
  auto it = data_.find(key);
  if (it != data_.end()) {
    touch(it->second);
    return expected.has_value() && *expected == it->second.value.version;
  }
  if (host_ != nullptr) {
    ++host_accesses_;
    last_tier_ = AccessTier::kHost;
    if (const auto host_value = host_->get(key))
      return expected.has_value() && *expected == host_value->version;
  }
  return !expected.has_value();
}

}  // namespace bm::bmac

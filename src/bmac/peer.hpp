// BMac peer: the hardware/software co-designed validator peer (§3.1, §3.4).
//
// Hardware side (simulated): packets arrive from the network interface into
// the protocol_processor, which extracts records into the block_processor's
// FIFOs; results surface in reg_map. Host side (software): the peer also
// receives the block itself (Gossip or forwarded UDP), waits on
// GetBlockData() for the hardware verdict, merges the transaction flags
// into the block and commits it to the disk-based ledger — overlapping with
// hardware validation of the next block.
#pragma once

#include "bmac/block_processor.hpp"
#include "bmac/protocol.hpp"
#include "fabric/ledger.hpp"
#include "fabric/policy.hpp"

namespace bm::bmac {

class BmacPeer {
 public:
  BmacPeer(sim::Simulation& sim, const fabric::Msp& msp, HwConfig config,
           const std::map<std::string, fabric::EndorsementPolicy>& policies);

  /// Spawn the protocol_processor, block_processor and host processes.
  void start();

  /// Attach observability sinks (either may be null). Call before start().
  /// Creates the peer's protocol/host trace lanes, hooks the rx_queue depth
  /// probe and forwards the sinks to the BlockProcessor.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

  /// Publish/refresh host-side and pipeline gauges. Idempotent.
  void publish_metrics();

  /// Network ingress: a BMac packet arrives at the FPGA's interface.
  /// Callable from event context (network delivery callbacks).
  void deliver_packet(BmacPacket packet);

  /// Host ingress: the marshaled block as received by the peer software
  /// (needed only for the final ledger commit).
  void deliver_block(fabric::Block block);

  // --- results / inspection -------------------------------------------------
  const fabric::Ledger& ledger() const { return ledger_; }
  BlockProcessor& processor() { return processor_; }
  const BlockProcessor& processor() const { return processor_; }
  HwIdentityCache& identity_cache() { return cache_; }

  struct HostMetrics {
    std::uint64_t blocks_committed = 0;
    std::uint64_t blocks_rejected = 0;
    std::uint64_t transactions_committed = 0;  ///< valid + invalid, in blocks
    std::uint64_t valid_transactions = 0;
  };
  const HostMetrics& host_metrics() const { return host_metrics_; }

  /// All per-block results in commit order (flags + block_monitor stats).
  const std::vector<ResultEntry>& results() const { return results_; }

 private:
  sim::Process protocol_processor_proc();
  sim::Process host_commit_proc();

  sim::Simulation& sim_;
  HwConfig config_;
  sim::Fifo<BmacPacket> rx_queue_;
  HwIdentityCache cache_;
  ProtocolReceiver receiver_;
  BlockProcessor processor_;

  std::map<std::uint64_t, fabric::Block> pending_blocks_;
  fabric::Ledger ledger_;
  HostMetrics host_metrics_;
  std::vector<ResultEntry> results_;

  // --- observability -------------------------------------------------------
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int protocol_lane_ = 0;
  int host_lane_ = 0;
  obs::Counter* packets_ctr_ = nullptr;
  obs::Counter* commits_ctr_ = nullptr;
  obs::Histogram* commit_latency_us_ = nullptr;
};

/// Compile every chaincode policy into its hardware circuit (the YAML-driven
/// generation step of §3.5).
std::map<std::string, PolicyCircuit> compile_policies(
    const std::map<std::string, fabric::EndorsementPolicy>& policies,
    const fabric::Msp& msp);

}  // namespace bm::bmac

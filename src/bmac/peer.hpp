// BMac peer: the hardware/software co-designed validator peer (§3.1, §3.4).
//
// Hardware side (simulated): packets arrive from the network interface into
// the protocol_processor, which extracts records into the block_processor's
// FIFOs; results surface in reg_map. Host side (software): the peer also
// receives the block itself (Gossip or forwarded UDP), waits on
// GetBlockData() for the hardware verdict, merges the transaction flags
// into the block and commits it to the disk-based ledger — overlapping with
// hardware validation of the next block.
//
// Graceful degradation (enable_graceful_degradation(); docs/FAULTS.md):
// on a degraded network the hardware block stream can stall — GBN gives up
// at its retransmission cap, sections go missing, frames arrive corrupted.
// In degraded mode the peer:
//   - assembles each block's records NIC-side and releases them to the
//     hardware FIFOs only once the stream is complete and every earlier
//     block is resolved, so a partial stream can never wedge the pipeline
//     or let one block's records be consumed as another's;
//   - arms a per-block watchdog when the block arrives on the host path;
//     if the hardware result misses its budget because the stream is
//     incomplete, the host validates that block itself with the
//     SoftwareValidator (against a shadow state DB it keeps in sync) and
//     writes the results through to the in-hardware KV store, so later
//     hardware-validated blocks still see fresh versions;
//   - commits strictly in block order, whichever engine produced the flags.
// The committed flags and commit-hash chain are byte-identical to the
// fault-free run — the §4.1 equivalence check extended to faulty networks.
#pragma once

#include <optional>
#include <set>

#include "bmac/block_processor.hpp"
#include "bmac/protocol.hpp"
#include "fabric/ledger.hpp"
#include "fabric/policy.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"

namespace bm::obs {
class FlightRecorder;
}

namespace bm::bmac {

class BmacPeer {
 public:
  BmacPeer(sim::Simulation& sim, const fabric::Msp& msp, HwConfig config,
           const std::map<std::string, fabric::EndorsementPolicy>& policies);

  /// Spawn the protocol_processor, block_processor and host processes.
  void start();

  /// Attach observability sinks (either may be null). Call before start().
  /// Creates the peer's protocol/host trace lanes, hooks the rx_queue depth
  /// probe and forwards the sinks to the BlockProcessor.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

  /// Publish/refresh host-side and pipeline gauges. Idempotent.
  void publish_metrics();

  /// Record degrade-path lifecycle events (watchdog fires, fallback
  /// commits, stream aborts) into a flight recorder, and trigger its
  /// post-mortem dump on the first watchdog fire / fallback activation.
  /// Null detaches. Call before start().
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

  // --- graceful degradation -------------------------------------------------
  struct DegradeConfig {
    /// Host block arrival -> hardware result deadline. Past it, a block
    /// whose stream is still incomplete is validated in software. Must
    /// comfortably exceed worst-case hardware latency plus the GBN
    /// retransmission budget, or healthy-but-slow blocks fall back too.
    sim::Time result_budget = 250 * sim::kMillisecond;
    /// Simulated cost of one software fallback validation on the host CPU.
    sim::Time fallback_fixed = 2 * sim::kMillisecond;
    sim::Time fallback_per_tx = 400 * sim::kMicrosecond;
  };

  /// Counters for the degraded-mode machinery (all zero while healthy).
  struct DegradeMetrics {
    std::uint64_t fallback_blocks = 0;      ///< committed via SoftwareValidator
    std::uint64_t watchdog_fires = 0;       ///< budget expired, stream stalled
    std::uint64_t watchdog_deferrals = 0;   ///< budget expired, stream healthy
    std::uint64_t streams_aborted = 0;      ///< partial assemblies discarded
    std::uint64_t late_packets = 0;         ///< packets for resolved blocks
    std::uint64_t malformed_packets = 0;    ///< protocol_processor rejects
  };

  /// Turn on the watchdog + software-fallback path. Call before start().
  /// Installs the default fallback backend (a sequential SoftwareValidator);
  /// override it with set_fallback_backend() before start().
  void enable_graceful_degradation(DegradeConfig config);
  void enable_graceful_degradation() {
    enable_graceful_degradation(DegradeConfig());
  }

  /// Swap the engine used for software fallback validation. Any
  /// ValidatorBackend works — the flags/commit-hash equivalence guarantee
  /// then rests on that backend's own equivalence. Call after
  /// enable_graceful_degradation(), before start(). Must not be null.
  void set_fallback_backend(std::unique_ptr<fabric::ValidatorBackend> backend);
  fabric::ValidatorBackend* fallback_backend() { return fallback_backend_.get(); }

  bool degraded_mode() const { return degrade_.has_value(); }
  const DegradeMetrics& degrade_metrics() const { return degrade_metrics_; }

  /// The host's shadow copy of the world state (degraded mode). Seed it
  /// with the same initial keys as the hardware KV store before start() —
  /// the fallback validator runs against this view.
  fabric::StateDb& shadow_state() { return shadow_state_; }

  /// Network ingress: a BMac packet arrives at the FPGA's interface.
  /// Callable from event context (network delivery callbacks).
  void deliver_packet(BmacPacket packet);

  /// Host ingress: the marshaled block as received by the peer software
  /// (needed for the final ledger commit, and — in degraded mode — as the
  /// input to the software fallback).
  void deliver_block(fabric::Block block);

  // --- results / inspection -------------------------------------------------
  const fabric::Ledger& ledger() const { return ledger_; }
  BlockProcessor& processor() { return processor_; }
  const BlockProcessor& processor() const { return processor_; }
  HwIdentityCache& identity_cache() { return cache_; }

  struct HostMetrics {
    std::uint64_t blocks_committed = 0;
    std::uint64_t blocks_rejected = 0;
    std::uint64_t transactions_committed = 0;  ///< valid + invalid, in blocks
    std::uint64_t valid_transactions = 0;
  };
  const HostMetrics& host_metrics() const { return host_metrics_; }

  /// All per-block results in commit order (flags + block_monitor stats;
  /// `fallback` marks software-validated blocks).
  const std::vector<ResultEntry>& results() const { return results_; }

 private:
  /// NIC-side per-block record assembly (degraded mode only): everything
  /// the protocol_processor extracted for one block, held until the stream
  /// is complete.
  struct StreamAssembly {
    enum class State { kAssembling, kComplete, kReleased };
    State state = State::kAssembling;
    std::vector<EndsEntry> ends;
    std::vector<RdsetEntry> reads;
    std::vector<WrsetEntry> writes;
    std::vector<TxEntry> txs;
    std::optional<BlockEntry> block;
    std::set<std::pair<int, std::uint32_t>> sections_seen;
    std::uint32_t total_sections = 0;
  };

  sim::Process protocol_processor_proc();
  sim::Process host_commit_proc();          ///< healthy mode (unchanged path)
  // Degraded-mode processes:
  sim::Process stream_release_proc();       ///< ordered release to the FIFOs
  sim::Process reg_map_drain_proc();        ///< GetBlockData -> hw_results_
  sim::Process degraded_host_commit_proc(); ///< in-order commit sequencer

  void note_first_block(std::uint64_t block_num);
  void stage_records(const BmacPacket& packet,
                     ProtocolReceiver::Emitted&& emitted);
  void on_watchdog(std::uint64_t block_num, std::size_t armed_local,
                   std::uint64_t armed_global);
  void arm_watchdog(std::uint64_t block_num);
  std::size_t stream_progress(std::uint64_t block_num) const;
  /// Commit bookkeeping shared by both engines: advance the sequencer,
  /// drop leftover stream state, disarm the watchdog.
  void resolve_block(std::uint64_t block_num);
  /// Mirror a committed block's valid write sets into the shadow state DB
  /// (host copy) — keeps the fallback validator's view == hardware state.
  void apply_writes_to_shadow(const fabric::Block& block,
                              const std::vector<fabric::TxValidationCode>& flags);
  /// Push a fallback-committed block's valid write sets into the
  /// in-hardware KV store (host write-through over PCIe).
  void apply_writes_to_hw_store(
      const fabric::Block& block,
      const std::vector<fabric::TxValidationCode>& flags);

  sim::Simulation& sim_;
  const fabric::Msp& msp_;
  std::map<std::string, fabric::EndorsementPolicy> policies_;
  HwConfig config_;
  sim::Fifo<BmacPacket> rx_queue_;
  HwIdentityCache cache_;
  ProtocolReceiver receiver_;
  BlockProcessor processor_;

  std::map<std::uint64_t, fabric::Block> pending_blocks_;
  fabric::Ledger ledger_;
  HostMetrics host_metrics_;
  std::vector<ResultEntry> results_;

  // --- degraded mode --------------------------------------------------------
  std::optional<DegradeConfig> degrade_;
  DegradeMetrics degrade_metrics_;
  std::unique_ptr<fabric::ValidatorBackend> fallback_backend_;
  fabric::StateDb shadow_state_;
  std::map<std::uint64_t, StreamAssembly> streams_;
  std::map<std::uint64_t, ResultEntry> hw_results_;
  std::set<std::uint64_t> fallback_pending_;
  std::map<std::uint64_t, sim::EventId> watchdogs_;
  std::uint64_t staged_sections_total_ = 0;  ///< watchdog progress signal
  std::uint64_t staging_high_water_ = 0;     ///< highest block staged so far
  bool ingest_busy_ = false;  ///< protocol_processor mid-packet
  bool base_known_ = false;
  std::uint64_t next_release_ = 0;  ///< next block to hand to the hardware
  std::uint64_t next_commit_ = 0;   ///< next block the host will commit
  std::unique_ptr<sim::Trigger> release_kick_;
  std::unique_ptr<sim::Trigger> commit_kick_;

  // --- observability -------------------------------------------------------
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int protocol_lane_ = 0;
  int host_lane_ = 0;
  obs::Counter* packets_ctr_ = nullptr;
  obs::Counter* commits_ctr_ = nullptr;
  obs::Histogram* commit_latency_us_ = nullptr;
  // Live degrade counters (same names publish_metrics sets; bound when a
  // registry is attached with degradation enabled, so the continuous
  // sampler sees the degrade path move during the run).
  obs::Counter* fallback_ctr_ = nullptr;
  obs::Counter* watchdog_ctr_ = nullptr;
  obs::Counter* deferral_ctr_ = nullptr;
  obs::Counter* abort_ctr_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

/// Compile every chaincode policy into its hardware circuit (the YAML-driven
/// generation step of §3.5).
std::map<std::string, PolicyCircuit> compile_policies(
    const std::map<std::string, fabric::EndorsementPolicy>& policies,
    const fabric::Msp& msp);

}  // namespace bm::bmac

// Hardware FIFO record types (the entries of block_fifo, tx_fifo, ends_fifo,
// rdset_fifo, wrset_fifo and res_fifo — §3.1/§3.3).
//
// The protocol_processor writes these records as packets arrive; the
// block_processor consumes them. Verification requests carry the exact
// {signature, key, data hash} tuple the paper's ecdsa_engine takes. For
// synthetic benchmark workloads the expensive verification can be
// precomputed (`precomputed`), which changes only wall-clock cost of the
// host running the simulation, never simulated behaviour.
#pragma once

#include <optional>
#include <string>

#include "crypto/ecdsa.hpp"
#include "fabric/block.hpp"
#include "fabric/identity.hpp"
#include "fabric/rwset.hpp"
#include "sim/simulation.hpp"

namespace bm::bmac {

struct VerifyRequest {
  // NOTE: FIFO payload types declare a defaulted constructor so they are
  // not aggregates — GCC 12's coroutine support miscompiles aggregate
  // temporaries inside co_await expressions (see sim/fifo.hpp).
  VerifyRequest() = default;

  crypto::Signature signature;
  crypto::PublicKey key;
  crypto::Digest digest{};
  /// When set, the engine model returns this instead of running the real
  /// ECDSA math (synthetic workloads); simulated latency is identical.
  std::optional<bool> precomputed;
  /// Malformed DER / missing key: the engine rejects without doing math.
  bool well_formed = true;

  bool execute() const {
    if (!well_formed) return false;
    if (precomputed) return *precomputed;
    return crypto::verify(key, digest, signature);
  }

  static VerifyRequest assumed(bool result) {
    VerifyRequest r;
    r.precomputed = result;
    return r;
  }
};

/// One entry per block in block_fifo.
struct BlockEntry {
  BlockEntry() = default;

  std::uint64_t block_num = 0;
  std::uint32_t tx_count = 0;
  VerifyRequest verify;  ///< orderer signature over the block digest
};

/// One entry per transaction in tx_fifo.
struct TxEntry {
  TxEntry() = default;

  std::uint64_t block_num = 0;
  std::uint32_t tx_seq = 0;
  std::string chaincode_id;
  VerifyRequest verify;  ///< creator signature over the payload digest
  std::uint16_t endorsement_count = 0;
  std::uint16_t read_count = 0;
  std::uint16_t write_count = 0;
  /// False when the structural fields (payload, signature, chaincode id,
  /// rwset) could not be located — maps to TxValidationCode::kBadPayload,
  /// matching the software validator's parse failure.
  bool parse_ok = true;
};

/// One entry per endorsement in ends_fifo.
struct EndsEntry {
  EndsEntry() = default;

  fabric::EncodedId endorser;
  VerifyRequest verify;  ///< endorser signature over the endorsement digest
};

/// One entry per read-set element in rdset_fifo.
struct RdsetEntry {
  RdsetEntry() = default;
  RdsetEntry(std::string k, std::optional<fabric::Version> v)
      : key(std::move(k)), expected_version(v) {}

  std::string key;  ///< namespaced key
  std::optional<fabric::Version> expected_version;
};

/// One entry per write-set element in wrset_fifo.
struct WrsetEntry {
  WrsetEntry() = default;
  WrsetEntry(std::string k, Bytes v) : key(std::move(k)), value(std::move(v)) {}

  std::string key;  ///< namespaced key
  Bytes value;
};

/// Per-block statistics gathered by block_monitor (reported through
/// reg_map; the paper's Caliper harness reads these instead of software
/// timestamps for the BMac peer — §4.1).
struct BlockStats {
  BlockStats() = default;

  sim::Time received_at = 0;     ///< block_fifo entry complete
  sim::Time verify_start = 0;
  sim::Time verify_end = 0;
  sim::Time validate_start = 0;  ///< block entered the block_validate stage
  sim::Time validate_end = 0;    ///< last tx through tx_mvcc_commit
  std::uint32_t ecdsa_executed = 0;   ///< verifications actually run
  std::uint32_t ecdsa_skipped = 0;    ///< dropped by short-circuit / skip
  sim::Time tx_latency_sum = 0;  ///< sum over txs of (vscc done - dispatch)
};

/// One entry per block in res_fifo / reg_map.
struct ResultEntry {
  ResultEntry() = default;

  std::uint64_t block_num = 0;
  bool block_valid = false;
  std::vector<fabric::TxValidationCode> flags;
  BlockStats stats;
  /// True when the hardware stream for this block stalled and the host
  /// computed the flags with the SoftwareValidator instead (graceful
  /// degradation; stats are zero on this path).
  bool fallback = false;
};

}  // namespace bm::bmac

// Identity caches: sender-side (software) and receiver-side (hardware).
//
// The sender maps certificate bytes -> 16-bit encoded id and remembers which
// ids the hardware already knows; on a miss it emits an identity-sync packet
// so the hardware cache stays in step (§3.2: "The identity cache is
// initialized and updated by the sender"). The hardware cache maps id ->
// certificate (and its pre-extracted public key, which the DataProcessor
// post-processor would otherwise pull out of the X.509 bytes each time).
#pragma once

#include <map>

#include "fabric/identity.hpp"

namespace bm::bmac {

class SenderIdentityCache {
 public:
  explicit SenderIdentityCache(const fabric::Msp& msp) : msp_(msp) {}

  struct Lookup {
    fabric::EncodedId id;
    bool newly_inserted = false;  ///< sender must emit an identity sync
  };

  /// Resolve certificate bytes to an encoded id. Certificates that do not
  /// chain to a registered org return nullopt (the section is then sent
  /// unmodified for that identity — the hardware will fail verification,
  /// matching the software peer's rejection).
  std::optional<Lookup> lookup_or_insert(ByteView cert_bytes);

  std::size_t size() const { return by_digest_.size(); }

 private:
  const fabric::Msp& msp_;
  /// Keyed by SHA-256 of the marshaled certificate.
  std::map<std::string, fabric::EncodedId> by_digest_;
};

class HwIdentityCache {
 public:
  struct Entry {
    Bytes cert_bytes;
    fabric::Certificate cert;  ///< parsed once at insertion
  };

  /// Insert or overwrite; returns false if the certificate fails to parse.
  bool insert(fabric::EncodedId id, ByteView cert_bytes);

  const Entry* find(fabric::EncodedId id) const;
  std::size_t size() const { return entries_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::map<std::uint16_t, Entry> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace bm::bmac

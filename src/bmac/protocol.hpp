// BMac protocol: software sender and hardware-receiver (protocol_processor)
// functional logic (§3.2).
//
// Sender (Fig. 3a): a block is split into sections (header / one per tx /
// metadata). For each section the DataRemover replaces every identity
// certificate with its 16-bit encoded id (emitting identity-sync packets
// for ids the hardware has not seen), and the AnnotationGenerator records
// pointer annotations — offset/length of the data fields the accelerator
// needs, expressed in the ORIGINAL section bytes — plus one locator
// annotation per removed identity, expressed in the modified payload.
//
// Receiver (Fig. 3b): the PacketProcessor parses the L7 header; the
// DataInserter splices cached certificates back to recover the exact
// original section bytes; the DataExtractor / DataProcessor /
// HashCalculator turn annotations into verification requests (DER -> (r,s),
// X.509 -> public key, SHA-256 over annotated ranges) and rwset entries;
// the DataWriter emits the FIFO records of records.hpp in order.
#pragma once

#include <deque>

#include "bmac/identity_cache.hpp"
#include "bmac/packet.hpp"
#include "bmac/records.hpp"
#include "fabric/block.hpp"

namespace bm::bmac {

/// Locator index conventions (Annotation::index for kLocator).
constexpr std::uint8_t kCreatorLocator = 255;
constexpr std::uint8_t kOrdererLocator = 254;

struct SendResult {
  std::vector<BmacPacket> packets;  ///< identity syncs interleaved in order
  std::size_t gossip_size = 0;      ///< marshaled block size (Gossip baseline)
  std::size_t bmac_size = 0;        ///< total BMac wire bytes (L7 level)
  std::size_t identities_removed = 0;
  std::size_t identity_bytes_removed = 0;
};

class ProtocolSender {
 public:
  explicit ProtocolSender(const fabric::Msp& msp) : cache_(msp) {}

  /// Break a block into BMac packets. Orderer integration calls this right
  /// before the block goes out through Gossip (§3.5).
  SendResult send(const fabric::Block& block);

  const SenderIdentityCache& cache() const { return cache_; }

 private:
  SenderIdentityCache cache_;
};

/// Functional model of the protocol_processor pipeline. Packets are fed in
/// arrival order; completed records come out in DataWriter order. The DES
/// wrapper (hw_protocol_processor) adds timing around this logic.
class ProtocolReceiver {
 public:
  explicit ProtocolReceiver(HwIdentityCache& cache) : cache_(cache) {}

  /// Records emitted by one packet, in DataWriter push order.
  struct Emitted {
    std::optional<BlockEntry> block;
    std::vector<TxEntry> txs;
    std::vector<EndsEntry> ends;
    std::vector<RdsetEntry> reads;
    std::vector<WrsetEntry> writes;
    bool error = false;  ///< malformed packet (dropped, like hardware would)
  };

  Emitted on_packet(const BmacPacket& packet);

  /// DataInserter: reconstruct the original section bytes from a modified
  /// payload and its locator annotations. Exposed for the round-trip
  /// property tests.
  static std::optional<Bytes> reconstruct_section(
      const BmacPacket& packet, const HwIdentityCache& cache);

 private:
  struct PendingBlock {
    std::uint32_t tx_count = 0;
    bool have_header = false;
    bool have_metadata = false;
    Bytes header_bytes;
    VerifyRequest block_verify;
  };

  HwIdentityCache& cache_;
  std::map<std::uint64_t, PendingBlock> pending_;
};

}  // namespace bm::bmac

#include "bmac/identity_cache.hpp"

#include "crypto/sha256.hpp"

namespace bm::bmac {

std::optional<SenderIdentityCache::Lookup>
SenderIdentityCache::lookup_or_insert(ByteView cert_bytes) {
  const crypto::Digest digest = crypto::sha256(cert_bytes);
  const std::string key(digest.begin(), digest.end());
  if (const auto it = by_digest_.find(key); it != by_digest_.end())
    return Lookup{it->second, false};

  const auto cert = fabric::Certificate::unmarshal(cert_bytes);
  if (!cert) return std::nullopt;
  const auto id = msp_.encode(*cert);
  if (!id) return std::nullopt;
  by_digest_[key] = *id;
  return Lookup{*id, true};
}

bool HwIdentityCache::insert(fabric::EncodedId id, ByteView cert_bytes) {
  auto cert = fabric::Certificate::unmarshal(cert_bytes);
  if (!cert) return false;
  entries_[id.value] =
      Entry{Bytes(cert_bytes.begin(), cert_bytes.end()), std::move(*cert)};
  return true;
}

const HwIdentityCache::Entry* HwIdentityCache::find(
    fabric::EncodedId id) const {
  const auto it = entries_.find(id.value);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

}  // namespace bm::bmac

// BMac protocol packets: L7 header, annotations and section payloads (§3.2).
//
// A block is broken into 1 header section + one section per transaction +
// 1 metadata section; each section travels in its own self-contained UDP
// packet. The L7 header has a fixed part (block number, section type/index,
// counts, payload size) and a variable part (the annotations). Identity
// certificates in the payload are replaced by 16-bit encoded ids; locator
// annotations record where, pointer annotations record where the data
// fields the accelerator needs live in the *original* (reconstructed)
// section bytes.
#pragma once

#include <optional>
#include <vector>

#include "fabric/identity.hpp"

namespace bm::bmac {

enum class SectionType : std::uint8_t {
  kHeader = 0,
  kTransaction = 1,
  kMetadata = 2,
  kIdentitySync = 3,  ///< sender pushes a new identity into the hw cache
};

/// Data fields the hardware needs to locate (the DataExtractor routes each
/// to DataWriter, DataProcessor or HashCalculator based on this tag).
enum class FieldId : std::uint8_t {
  kHeaderBytes = 0,     ///< whole marshaled block header (hash input)
  kOrdererSig = 1,      ///< DER signature in the metadata section
  kPayloadBytes = 2,    ///< envelope payload (client-signature hash input)
  kCreatorSig = 3,      ///< DER client signature
  kChaincodeId = 4,
  kRwset = 5,           ///< marshaled rwset (decode + endorsement hash input)
  kEndorsementSig = 6,  ///< DER endorser signature (indexed)
};

struct Annotation {
  enum class Kind : std::uint8_t { kPointer = 0, kLocator = 1 };

  Kind kind = Kind::kPointer;
  FieldId field = FieldId::kHeaderBytes;  ///< pointer annotations only
  std::uint8_t index = 0;   ///< which endorsement / identity slot
  std::uint32_t offset = 0; ///< pointer: offset in original section bytes;
                            ///< locator: offset in the *modified* payload
  std::uint32_t length = 0; ///< pointer: field length; locator: removed length
  fabric::EncodedId id;     ///< locator annotations only
};

struct PacketHeader {
  std::uint64_t block_num = 0;
  SectionType section = SectionType::kHeader;
  std::uint16_t section_index = 0;   ///< tx index for transaction sections
  std::uint16_t total_sections = 0;  ///< 2 + tx count
  std::uint16_t annotation_count = 0;
  std::uint32_t payload_size = 0;
};

struct BmacPacket {
  // Defaulted ctor: FIFO payloads must not be aggregates (see sim/fifo.hpp).
  BmacPacket() = default;

  PacketHeader header;
  std::vector<Annotation> annotations;
  Bytes payload;

  /// Serialized wire bytes (L7 header + annotations + payload).
  Bytes encode() const;
  static std::optional<BmacPacket> decode(ByteView data);

  /// Size on the wire including L7 header and annotations (excluding
  /// L2/IP/UDP overhead, which the network layer adds).
  std::size_t wire_size() const;
};

/// Fixed L7 header size and per-annotation size (for size accounting).
constexpr std::size_t kPacketHeaderSize = 8 + 1 + 2 + 2 + 2 + 4;
constexpr std::size_t kAnnotationSize = 1 + 1 + 1 + 4 + 4 + 2;

}  // namespace bm::bmac

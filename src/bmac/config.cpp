#include "bmac/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bm::bmac {

namespace {

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return std::string(s.substr(begin, end - begin));
}

std::string strip_quotes(std::string s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\'')))
    return s.substr(1, s.size() - 2);
  return s;
}

std::size_t indent_of(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && line[i] == ' ') ++i;
  return i;
}

/// "[a, b, c]" -> {"a","b","c"}
std::vector<std::string> parse_inline_list(const std::string& value) {
  std::vector<std::string> out;
  std::string body = value;
  if (!body.empty() && body.front() == '[') body = body.substr(1);
  if (!body.empty() && body.back() == ']') body.pop_back();
  std::stringstream ss(body);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::string trimmed = strip_quotes(trim(item));
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

}  // namespace

void BmacConfig::populate_msp(fabric::Msp& msp) const {
  for (const std::string& org : orgs) msp.add_org(org);
}

std::map<std::string, fabric::EndorsementPolicy> BmacConfig::parse_policies()
    const {
  std::map<std::string, fabric::EndorsementPolicy> out;
  for (const auto& [name, text] : chaincode_policies)
    out.emplace(name, fabric::parse_policy_or_throw(text, orgs));
  return out;
}

std::variant<BmacConfig, BmacConfigError> parse_config(std::string_view text) {
  BmacConfig config;
  enum class Section { kNone, kNetwork, kChaincodes, kHardware };
  Section section = Section::kNone;
  std::string current_chaincode;

  std::size_t line_no = 0;
  std::stringstream input{std::string(text)};
  std::string raw;
  while (std::getline(input, raw)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const std::size_t indent = indent_of(raw);

    if (indent == 0) {
      if (line == "network:") section = Section::kNetwork;
      else if (line == "chaincodes:") section = Section::kChaincodes;
      else if (line == "hardware:") section = Section::kHardware;
      else
        return BmacConfigError{"unknown top-level key: " + line, line_no};
      continue;
    }

    const auto colon = line.find(':');
    const bool is_list_item = line.rfind("- ", 0) == 0;

    switch (section) {
      case Section::kNone:
        return BmacConfigError{"content before any section", line_no};
      case Section::kNetwork: {
        if (colon == std::string::npos)
          return BmacConfigError{"expected key: value", line_no};
        const std::string key = trim(line.substr(0, colon));
        const std::string value = trim(line.substr(colon + 1));
        if (key == "orgs") config.orgs = parse_inline_list(value);
        else
          return BmacConfigError{"unknown network key: " + key, line_no};
        break;
      }
      case Section::kChaincodes: {
        std::string body = line;
        if (is_list_item) body = trim(body.substr(2));
        const auto body_colon = body.find(':');
        if (body_colon == std::string::npos)
          return BmacConfigError{"expected key: value", line_no};
        const std::string key = trim(body.substr(0, body_colon));
        const std::string value =
            strip_quotes(trim(body.substr(body_colon + 1)));
        if (key == "name") {
          current_chaincode = value;
          config.chaincode_policies[current_chaincode] = "";
        } else if (key == "policy") {
          if (current_chaincode.empty())
            return BmacConfigError{"policy before chaincode name", line_no};
          config.chaincode_policies[current_chaincode] = value;
        } else {
          return BmacConfigError{"unknown chaincode key: " + key, line_no};
        }
        break;
      }
      case Section::kHardware: {
        if (colon == std::string::npos)
          return BmacConfigError{"expected key: value", line_no};
        const std::string key = trim(line.substr(0, colon));
        const std::string value = trim(line.substr(colon + 1));
        int number = 0;
        try {
          number = std::stoi(value);
        } catch (const std::exception&) {
          return BmacConfigError{"expected integer for " + key, line_no};
        }
        if (key == "tx_validators") config.hw.tx_validators = number;
        else if (key == "engines_per_vscc") config.hw.engines_per_vscc = number;
        else if (key == "max_block_txs")
          config.hw.max_block_txs = static_cast<std::size_t>(number);
        else if (key == "db_capacity")
          config.hw.db_capacity = static_cast<std::size_t>(number);
        else
          return BmacConfigError{"unknown hardware key: " + key, line_no};
        break;
      }
    }
  }

  if (config.orgs.empty())
    return BmacConfigError{"network.orgs must list at least one org", 0};
  for (const auto& [name, policy] : config.chaincode_policies)
    if (policy.empty())
      return BmacConfigError{"chaincode '" + name + "' has no policy", 0};
  return config;
}

BmacConfig load_config_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open config file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto result = parse_config(buffer.str());
  if (auto* err = std::get_if<BmacConfigError>(&result))
    throw std::runtime_error("config parse error at line " +
                             std::to_string(err->line) + ": " + err->message);
  return std::move(std::get<BmacConfig>(result));
}

}  // namespace bm::bmac

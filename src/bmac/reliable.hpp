// Go-Back-N reliability layer for the BMac protocol (§5).
//
// The paper does not implement retransmission but points at Go-Back-N as
// used by RDMA-over-Ethernet deployments. This implements exactly that, as
// the optional reliability shim between the ProtocolSender and the UDP
// network:
//   - the sender stamps every packet of a stream with a sequence number and
//     keeps a window of unacknowledged packets;
//   - the receiver accepts only the next expected sequence number, drops
//     everything else, and returns cumulative ACKs;
//   - on timeout (or a duplicate-ACK burst), the sender retransmits from
//     the first unacknowledged packet.
// Because delivery is in order, the protocol_processor's assumption that
// sections arrive sequentially keeps holding even on a lossy link.
#pragma once

#include <deque>
#include <functional>

#include "bmac/packet.hpp"
#include "sim/simulation.hpp"

namespace bm::bmac {

/// A sequenced frame on the wire: 8-byte sequence header + encoded packet.
struct SequencedFrame {
  SequencedFrame() = default;  // FIFO payload: must not be an aggregate

  std::uint64_t seq = 0;
  Bytes payload;  ///< encoded BmacPacket

  std::size_t wire_size() const { return 8 + payload.size(); }
};

struct GbnStats {
  std::uint64_t frames_sent = 0;        ///< first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t frames_delivered = 0;   ///< in-order, to the application
  std::uint64_t frames_discarded = 0;   ///< out-of-order arrivals dropped
};

/// Sender half. The caller provides the datagram transmit function (which
/// may lose frames) and receives ACK callbacks via on_ack().
class GbnSender {
 public:
  struct Config {
    std::size_t window = 32;
    sim::Time retransmit_timeout = 2 * sim::kMillisecond;
  };

  using TransmitFn = std::function<void(const SequencedFrame&)>;

  GbnSender(sim::Simulation& sim, Config config, TransmitFn transmit);

  /// Queue a packet for reliable delivery; transmits immediately if the
  /// window has room.
  void send(Bytes encoded_packet);

  /// Deliver a cumulative ACK from the receiver ("everything below
  /// `next_expected` arrived").
  void on_ack(std::uint64_t next_expected);

  bool idle() const { return outstanding_.empty() && backlog_.empty(); }
  const GbnStats& stats() const { return stats_; }

 private:
  void pump();
  void arm_timer();
  void on_timeout();

  sim::Simulation& sim_;
  Config config_;
  TransmitFn transmit_;

  std::uint64_t next_seq_ = 0;   ///< next new sequence number
  std::uint64_t base_ = 0;       ///< oldest unacknowledged
  std::deque<SequencedFrame> outstanding_;  ///< [base_, next_seq_)
  std::deque<Bytes> backlog_;    ///< waiting for window space
  sim::EventId timer_ = 0;
  bool timer_armed_ = false;
  GbnStats stats_;
};

/// Receiver half: in-order filter producing cumulative ACKs.
class GbnReceiver {
 public:
  using DeliverFn = std::function<void(Bytes)>;       ///< in-order payloads
  using AckFn = std::function<void(std::uint64_t)>;   ///< cumulative ACK

  GbnReceiver(DeliverFn deliver, AckFn ack)
      : deliver_(std::move(deliver)), ack_(std::move(ack)) {}

  /// A frame arrived from the network (possibly out of order / duplicate).
  void on_frame(const SequencedFrame& frame);

  std::uint64_t next_expected() const { return next_expected_; }
  const GbnStats& stats() const { return stats_; }

 private:
  DeliverFn deliver_;
  AckFn ack_;
  std::uint64_t next_expected_ = 0;
  GbnStats stats_;
};

}  // namespace bm::bmac

// Go-Back-N reliability layer for the BMac protocol (§5).
//
// The paper does not implement retransmission but points at Go-Back-N as
// used by RDMA-over-Ethernet deployments. This implements exactly that, as
// the optional reliability shim between the ProtocolSender and the UDP
// network:
//   - the sender stamps every packet of a stream with a sequence number and
//     keeps a window of unacknowledged packets;
//   - the receiver accepts only the next expected sequence number, drops
//     everything else, and returns cumulative ACKs;
//   - on timeout (or a duplicate-ACK burst), the sender retransmits from
//     the first unacknowledged packet.
// Because delivery is in order, the protocol_processor's assumption that
// sections arrive sequentially keeps holding even on a lossy link.
//
// Degraded-network extensions (see docs/FAULTS.md):
//   - wire framing with a CRC-32 trailer (encode()/decode()/on_wire()):
//     corruption that slips past the link FCS is caught here and handled
//     as loss, so the hardware never consumes a flipped byte;
//   - exponential-backoff RTO: each consecutive timeout without window
//     progress multiplies the RTO by `rto_backoff`, capped at `rto_max`;
//   - a retransmission cap: after `retransmit_cap` consecutive timeouts
//     the sender abandons the outstanding frames, reports the gap through
//     the failure callback (the BMac peer's fallback signal) and emits a
//     SYNC frame that fast-forwards the receiver past the gap so the
//     stream keeps making progress for later blocks.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "bmac/packet.hpp"
#include "sim/simulation.hpp"

namespace bm::bmac {

/// Wire overhead of a sequenced frame: 8-byte seq + 1 flag byte + CRC-32.
constexpr std::size_t kGbnFrameOverhead = 13;

/// A sequenced frame on the wire.
struct SequencedFrame {
  SequencedFrame() = default;  // FIFO payload: must not be an aggregate

  std::uint64_t seq = 0;
  bool sync = false;  ///< control frame: "fast-forward next_expected to seq"
  Bytes payload;      ///< encoded BmacPacket (empty for sync frames)

  std::size_t wire_size() const { return kGbnFrameOverhead + payload.size(); }

  /// [seq:8 LE][flags:1][payload][crc32:4 LE] — CRC over everything before.
  Bytes encode() const;
  /// Structural decode only; returns nullopt for truncated input or a CRC
  /// mismatch (corrupted frame).
  static std::optional<SequencedFrame> decode(ByteView wire);
};

/// CRC-protected cumulative ACK: [next_expected:8 LE][crc32:4 LE]. A
/// corrupted ACK must never be trusted — a flipped byte could otherwise
/// fast-forward the sender's window and silently discard frames.
constexpr std::size_t kGbnAckWireSize = 12;
Bytes encode_ack(std::uint64_t next_expected);
std::optional<std::uint64_t> decode_ack(ByteView wire);

struct GbnStats {
  std::uint64_t frames_sent = 0;        ///< first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t frames_delivered = 0;   ///< in-order, to the application
  std::uint64_t frames_discarded = 0;   ///< out-of-order arrivals dropped
  std::uint64_t frames_corrupted = 0;   ///< CRC failures in on_wire()
  std::uint64_t frames_abandoned = 0;   ///< given up at the retransmit cap
  std::uint64_t stream_resyncs = 0;     ///< SYNC frames sent (sender) /
                                        ///< accepted (receiver)
};

/// Sender half. The caller provides the datagram transmit function (which
/// may lose frames) and receives ACK callbacks via on_ack().
class GbnSender {
 public:
  struct Config {
    std::size_t window = 32;
    sim::Time retransmit_timeout = 2 * sim::kMillisecond;  ///< initial RTO
    /// Consecutive timeouts without progress multiply the RTO by this
    /// factor (1.0 = fixed RTO), bounded by `rto_max`.
    double rto_backoff = 2.0;
    sim::Time rto_max = 64 * sim::kMillisecond;
    /// After this many consecutive timeouts the outstanding frames are
    /// abandoned and the failure callback fires. 0 = retry forever.
    std::size_t retransmit_cap = 0;
  };

  using TransmitFn = std::function<void(const SequencedFrame&)>;
  /// Fired when the retransmission cap abandons frames [first, last].
  using FailureFn =
      std::function<void(std::uint64_t first_seq, std::uint64_t last_seq)>;

  GbnSender(sim::Simulation& sim, Config config, TransmitFn transmit);

  /// Queue a packet for reliable delivery; transmits immediately if the
  /// window has room.
  void send(Bytes encoded_packet);

  /// Deliver a cumulative ACK from the receiver ("everything below
  /// `next_expected` arrived").
  void on_ack(std::uint64_t next_expected);

  /// Register the fallback signal (retransmission-cap exhaustion).
  void set_failure_callback(FailureFn fn) { on_failure_ = std::move(fn); }

  bool idle() const { return outstanding_.empty() && backlog_.empty(); }
  const GbnStats& stats() const { return stats_; }
  /// The RTO the next armed timer will use (backoff state; for tests).
  sim::Time current_rto() const { return current_rto_; }

 private:
  void pump();
  void arm_timer();
  void on_timeout();
  /// Retransmission cap hit: drop the window and emit a SYNC frame.
  void resync();

  sim::Simulation& sim_;
  Config config_;
  TransmitFn transmit_;
  FailureFn on_failure_;

  std::uint64_t next_seq_ = 0;   ///< next new sequence number
  std::uint64_t base_ = 0;       ///< oldest unacknowledged
  std::deque<SequencedFrame> outstanding_;  ///< [base_, next_seq_)
  std::deque<Bytes> backlog_;    ///< waiting for window space
  sim::EventId timer_ = 0;
  bool timer_armed_ = false;
  sim::Time current_rto_ = 0;    ///< 0 = use config on next arm
  std::size_t attempts_ = 0;     ///< consecutive timeouts without progress
  GbnStats stats_;
};

/// Receiver half: in-order filter producing cumulative ACKs.
class GbnReceiver {
 public:
  using DeliverFn = std::function<void(Bytes)>;       ///< in-order payloads
  using AckFn = std::function<void(std::uint64_t)>;   ///< cumulative ACK

  GbnReceiver(DeliverFn deliver, AckFn ack)
      : deliver_(std::move(deliver)), ack_(std::move(ack)) {}

  /// A frame arrived from the network (possibly out of order / duplicate).
  void on_frame(const SequencedFrame& frame);

  /// Wire-format entry point: decode + CRC check, then on_frame(). A frame
  /// failing the CRC is counted and dropped silently (no ACK — nothing in
  /// a corrupted frame can be trusted); the sender's timeout recovers it.
  void on_wire(ByteView wire);

  std::uint64_t next_expected() const { return next_expected_; }
  const GbnStats& stats() const { return stats_; }

 private:
  DeliverFn deliver_;
  AckFn ack_;
  std::uint64_t next_expected_ = 0;
  GbnStats stats_;
};

}  // namespace bm::bmac

// Calibrated timing constants of the BMac hardware (250 MHz target, §3.5).
//
// Anchors from the paper:
//   * §4.3: "an ecdsa_engine takes much longer (~145 us per verification)
//     than the rest of the operations (tens of us)" — the single constant
//     that dominates pipeline behaviour. 145 us at 250 MHz is ~36k cycles,
//     consistent with published FPGA P-256 verifier latencies.
//   * Fig. 6a table: protocol_processor sustains up to 30 Gbps, translating
//     to "at least 205,000 tps" — i.e. a per-packet pipeline initiation
//     interval of ~4.8 us alongside the byte-rate bound.
//   * Non-crypto modules (schedulers, collector, mvcc datapath, reg_map)
//     run at a few hundred cycles per operation: sub-microsecond to a few
//     microseconds. These only matter when they would approach the
//     145 us / V per-transaction budget (they never do in the paper's
//     configurations — that is the point of the design).
// With these constants the DES reproduces Fig. 7's hardware numbers to a
// few percent — e.g. 8 validators, block 150, 2of2 -> ~49 k tps (paper:
// 49,200), 16x2 at block 250 -> ~96 k tps (paper: 95,600).
#pragma once

#include "sim/simulation.hpp"

namespace bm::bmac {

struct HwTimingModel {
  /// One ECDSA P-256 verification in an ecdsa_engine.
  sim::Time ecdsa_verify = 145 * sim::kMicrosecond;

  /// tx_scheduler: read tx_fifo + ends_fifo and dispatch to a validator.
  sim::Time scheduler_dispatch = 1 * sim::kMicrosecond;

  /// One FIFO pop by a pipeline stage.
  sim::Time fifo_read = 200;  // ns

  /// ends_policy_evaluator register write + combinational settle.
  sim::Time policy_update = 200;  // ns

  /// tx_collector in-order collection per transaction.
  sim::Time collector_per_tx = 500;  // ns

  /// In-hardware KV store access (read or write), per operation.
  sim::Time db_op = 500;  // ns

  /// State-database access that falls through to the host tier (§5):
  /// a PCIe round trip plus the host-side lookup.
  sim::Time db_op_host = 3 * sim::kMicrosecond;

  /// tx_mvcc_commit per-transaction control overhead.
  sim::Time mvcc_per_tx = 1 * sim::kMicrosecond;

  /// res_fifo write + reg_map register update.
  sim::Time result_write = 2 * sim::kMicrosecond;

  // --- protocol_processor --------------------------------------------------
  /// Internal processing byte-rate (Fig. 6a: up to 30 Gbps).
  double line_rate_gbps = 30.0;
  /// Per-packet pipeline initiation interval (~205k packets/s).
  sim::Time packet_interval = 4800;  // ns

  // --- host software side ---------------------------------------------------
  /// GetBlockData(): reg_map read over AXI-Lite/PCIe.
  sim::Time host_result_read = 20 * sim::kMicrosecond;
  /// Ledger commit on the host (excluded from the commit-throughput metric,
  /// §4.2, but it must overlap with hardware validation of the next block).
  sim::Time ledger_commit_fixed = 500 * sim::kMicrosecond;
  sim::Time ledger_commit_per_tx = 2 * sim::kMicrosecond;

  /// protocol_processor time to ingest one packet of `bytes`.
  sim::Time packet_processing_time(std::size_t bytes) const {
    const auto byte_time = static_cast<sim::Time>(
        static_cast<double>(bytes) * 8.0 / (line_rate_gbps * 1e9) *
        sim::kSecond);
    return std::max(byte_time, packet_interval);
  }
};

}  // namespace bm::bmac

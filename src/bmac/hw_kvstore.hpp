// In-hardware versioned key-value store (§3.3), with the optional
// host-backed tier proposed in §5.
//
// Base mode: fixed capacity (8192 entries in the paper's configuration —
// limited by FPGA BRAM/URAM), versioned values {value, (block, tx)}, and a
// per-key lock so a key being written cannot be read mid-update.
//
// Tiered mode (§5: "use in-hardware database for small amount of actively
// accessed data, while keeping a persistent database on the host CPU"):
// attach_host_store() turns the on-chip table into an LRU cache; capacity
// overflow evicts the least-recently-used entry to the host store, misses
// fall through to the host and promote the entry back on-chip. Every access
// reports which tier served it so the pipeline model can charge the PCIe
// round-trip for host accesses.
#pragma once

#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "fabric/statedb.hpp"

namespace bm::bmac {

/// Which tier served the last access (timing differs by ~an order of
/// magnitude: BRAM lookup vs PCIe round trip).
enum class AccessTier { kHardware, kHost };

class HwKvStore {
 public:
  explicit HwKvStore(std::size_t capacity) : capacity_(capacity) {}

  struct ReadResult {
    Bytes value;
    fabric::Version version;
  };

  /// Read a key; nullopt when absent (in every tier) or locked for writing.
  std::optional<ReadResult> read(const std::string& key);

  /// Write a key (insert or update). Without a host store, returns false
  /// when the table is full; with one, evicts the LRU entry to the host.
  bool write(const std::string& key, Bytes value, fabric::Version version);

  /// One element of a grouped write-through burst.
  struct BatchWrite {
    std::string key;
    Bytes value;
    fabric::Version version;
  };

  /// Apply a whole block's write-set in one pass, in order — the host
  /// write-through burst used by the degraded path (one PCIe transaction
  /// instead of per-key doorbells). Returns the number of writes applied;
  /// a write refused for overflow does not stop the rest of the burst.
  std::size_t write_batch(std::vector<BatchWrite>&& writes);

  /// Version check used by the mvcc stage.
  bool version_matches(const std::string& key,
                       const std::optional<fabric::Version>& expected);

  /// §5: attach the host CPU's persistent database as the backing tier.
  void attach_host_store(fabric::StateDb* host) { host_ = host; }
  bool has_host_store() const { return host_ != nullptr; }

  /// Tier that served the most recent read/write/version_matches call.
  AccessTier last_tier() const { return last_tier_; }

  /// Internal locking used by the commit datapath.
  void lock(const std::string& key) { locked_.insert(key); }
  void unlock(const std::string& key) { locked_.erase(key); }
  bool is_locked(const std::string& key) const {
    return locked_.count(key) > 0;
  }

  // Counter accessors follow the repo-wide bounded-cache vocabulary
  // (capacity / entries / hits / misses / evictions, docs/OBSERVABILITY.md):
  // a hit is an access the on-chip tier served, a miss one that fell
  // through to the host.
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return reads_ + writes_ - host_accesses_; }
  std::uint64_t misses() const { return host_accesses_; }
  std::uint64_t overflows() const { return overflows_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t host_accesses() const { return host_accesses_; }
  std::uint64_t total_reads() const { return reads_; }
  std::uint64_t total_writes() const { return writes_; }

 private:
  struct Entry {
    ReadResult value;
    std::list<std::string>::iterator lru;
  };

  void touch(Entry& entry);
  /// Insert into the on-chip table, evicting to the host if needed.
  /// Returns false on overflow without a host store.
  bool insert_on_chip(const std::string& key, ReadResult value);
  /// Fetch from the host tier (if attached) and promote on-chip.
  Entry* fetch_from_host(const std::string& key);

  std::size_t capacity_;
  std::unordered_map<std::string, Entry> data_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_set<std::string> locked_;
  fabric::StateDb* host_ = nullptr;

  AccessTier last_tier_ = AccessTier::kHardware;
  std::uint64_t overflows_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t host_accesses_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace bm::bmac

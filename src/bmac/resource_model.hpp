// Analytic FPGA resource model for BMac architectures on a Xilinx Alveo
// U250, reproducing Table 1.
//
// Utilization is linear in the architecture knobs: a fixed base (OpenNIC
// shell + protocol_processor + block-level modules + in-hardware state
// database) plus a per-tx_validator cost (tx_verify control and its
// dedicated ecdsa_engine, tx_vscc control, collector port) plus a per-vscc-
// engine cost. The coefficients are fit to the five architectures of
// Table 1 (LUT: 13.5% + 0.79%/validator + 0.53%/engine; FF: 5.7% + 0.26%/
// validator + 0.02%/engine; BRAM/URAM constant at 13.1% — FIFOs, identity
// cache and the 8192-entry database do not scale with V or E).
// Policy circuits add a handful of LUTs per gate input — visible only in
// the ablation bench, exactly as the paper's "about the same for all
// architectures" footprint implies.
#pragma once

#include "bmac/block_processor.hpp"

namespace bm::bmac {

/// Alveo U250 device budget.
struct DeviceBudget {
  std::uint64_t lut = 1'728'000;
  std::uint64_t ff = 3'456'000;
  std::uint64_t bram36 = 2'688;
  std::uint64_t uram = 1'280;
};

struct ModuleCost {
  std::string name;
  std::uint64_t lut = 0;
  std::uint64_t ff = 0;
  std::uint64_t bram36 = 0;
  std::uint64_t uram = 0;
};

struct ResourceUsage {
  std::uint64_t lut = 0;
  std::uint64_t ff = 0;
  std::uint64_t bram36 = 0;
  std::uint64_t uram = 0;

  double lut_pct(const DeviceBudget& dev = {}) const {
    return 100.0 * static_cast<double>(lut) / static_cast<double>(dev.lut);
  }
  double ff_pct(const DeviceBudget& dev = {}) const {
    return 100.0 * static_cast<double>(ff) / static_cast<double>(dev.ff);
  }
  double bram_pct(const DeviceBudget& dev = {}) const {
    return 100.0 * static_cast<double>(bram36) /
           static_cast<double>(dev.bram36);
  }
  double uram_pct(const DeviceBudget& dev = {}) const {
    return 100.0 * static_cast<double>(uram) / static_cast<double>(dev.uram);
  }
};

/// Fixed-function resources that do not depend on the architecture
/// (Table 1's footnote: GT 83.3%, BUFG 2.2%, MMCM 6.3%, PCIe 25%).
struct FixedUtilization {
  double gt_pct = 83.3;
  double bufg_pct = 2.2;
  double mmcm_pct = 6.3;
  double pcie_pct = 25.0;
};

class ResourceModel {
 public:
  /// Estimate total usage for an architecture, including the compiled
  /// endorsement-policy circuits.
  ResourceUsage estimate(
      const HwConfig& config,
      const std::map<std::string, PolicyCircuit>& policies = {}) const;

  /// Per-module breakdown (for the ablation bench / documentation).
  std::vector<ModuleCost> breakdown(
      const HwConfig& config,
      const std::map<std::string, PolicyCircuit>& policies = {}) const;

  FixedUtilization fixed() const { return FixedUtilization{}; }
};

}  // namespace bm::bmac

#include "bmac/block_processor.hpp"

#include <cassert>

namespace bm::bmac {

BlockProcessor::BlockProcessor(sim::Simulation& sim, HwConfig config,
                               std::map<std::string, PolicyCircuit> policies)
    : sim_(sim),
      config_(config),
      policies_(std::move(policies)),
      block_fifo_(sim, 8, "block_fifo"),
      tx_fifo_(sim, config.max_block_txs * 2, "tx_fifo"),
      ends_fifo_(sim, config.max_block_txs * 8, "ends_fifo"),
      rdset_fifo_(sim, config.max_block_txs * 16, "rdset_fifo"),
      wrset_fifo_(sim, config.max_block_txs * 16, "wrset_fifo"),
      verify_to_validate_(sim, 1, "verify_to_validate"),
      collector_ctl_(sim, 4, "collector_ctl"),
      mvcc_ctl_(sim, 4, "mvcc_ctl"),
      free_validators_(sim, static_cast<std::size_t>(config.tx_validators) + 1,
                       "free_validators"),
      assignment_order_(sim, config.max_block_txs * 2, "assignment_order"),
      collected_(sim, 4, "collected"),
      block_done_(sim, 1, "block_done"),
      res_fifo_(sim, 4, "res_fifo"),
      reg_map_(sim, 1, "reg_map"),
      statedb_(config.db_capacity) {
  assert(config_.tx_validators >= 1);
  assert(config_.engines_per_vscc >= 1);
  // Register-file width: highest org index referenced by any circuit. 16
  // registers cover every configuration in the paper.
  policy_org_count_ = 16;
  validator_in_.reserve(config_.tx_validators);
  verify_to_vscc_.reserve(config_.tx_validators);
  validator_out_.reserve(config_.tx_validators);
  for (int v = 0; v < config_.tx_validators; ++v) {
    validator_in_.push_back(std::make_unique<sim::Fifo<DispatchedTx>>(
        sim, 1, "validator_in_" + std::to_string(v)));
    verify_to_vscc_.push_back(std::make_unique<sim::Fifo<VerifiedTx>>(
        sim, 1, "verify_to_vscc_" + std::to_string(v)));
    validator_out_.push_back(std::make_unique<sim::Fifo<ValidatedTx>>(
        sim, 1, "validator_out_" + std::to_string(v)));
  }
}

void BlockProcessor::start() {
  sim_.spawn(block_verify_proc());
  sim_.spawn(tx_scheduler_proc());
  for (int v = 0; v < config_.tx_validators; ++v) {
    sim_.spawn(tx_verify_proc(v));
    sim_.spawn(tx_vscc_proc(v));
  }
  sim_.spawn(tx_collector_proc());
  sim_.spawn(tx_mvcc_commit_proc());
  sim_.spawn(reg_map_proc());
}

// --- Stage 1 of the block-level pipeline ------------------------------------
sim::Process BlockProcessor::block_verify_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockEntry entry = co_await block_fifo_.get();
    BlockCtl ctl;
    ctl.block_num = entry.block_num;
    ctl.tx_count = entry.tx_count;
    ctl.stats.received_at = sim_.now();
    ctl.stats.verify_start = sim_.now();
    // Dedicated ecdsa_engine: blocks are verified as soon as they arrive.
    co_await sim_.delay(t.ecdsa_verify);
    ctl.block_valid = entry.verify.execute();
    ctl.stats.ecdsa_executed = 1;
    ctl.stats.verify_end = sim_.now();
    co_await verify_to_validate_.put(ctl);
  }
}

// --- Stage 2: block_validate ------------------------------------------------
sim::Process BlockProcessor::tx_scheduler_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockCtl ctl = co_await verify_to_validate_.get();
    ctl.stats.validate_start = sim_.now();
    co_await collector_ctl_.put(ctl);
    co_await mvcc_ctl_.put(ctl);
    for (std::uint32_t seq = 0; seq < ctl.tx_count; ++seq) {
      DispatchedTx work;
      work.block_valid = ctl.block_valid;
      co_await sim_.delay(t.fifo_read);
      work.tx = co_await tx_fifo_.get();
      // Read exactly this transaction's endorsements from ends_fifo.
      work.ends.reserve(work.tx.endorsement_count);
      for (std::uint16_t i = 0; i < work.tx.endorsement_count; ++i) {
        co_await sim_.delay(t.fifo_read);
        work.ends.push_back(co_await ends_fifo_.get());
      }
      // Issue to the first free tx_verify instance (work-conserving).
      const int validator = co_await free_validators_.get();
      co_await sim_.delay(t.scheduler_dispatch);
      work.dispatched_at = sim_.now();
      co_await assignment_order_.put(validator);
      co_await validator_in_[static_cast<std::size_t>(validator)]->put(
          std::move(work));
    }
    // block_validate holds the block until it is fully processed; the next
    // block stays in the block_verify stage meanwhile (2-stage pipeline).
    co_await block_done_.get();
  }
}

sim::Process BlockProcessor::tx_verify_proc(int validator) {
  const HwTimingModel& t = config_.timing;
  auto& in = *validator_in_[static_cast<std::size_t>(validator)];
  auto& out = *verify_to_vscc_[static_cast<std::size_t>(validator)];
  co_await free_validators_.put(validator);
  for (;;) {
    DispatchedTx work = co_await in.get();
    VerifiedTx result;
    result.creator_ok = false;
    if (work.block_valid && work.tx.verify.well_formed) {
      // Dedicated ecdsa_engine for this tx_verify instance.
      co_await sim_.delay(t.ecdsa_verify);
      result.creator_ok = work.tx.verify.execute();
      result.executed += 1;
    } else {
      // Skip mechanism: no engine cycles for already-invalid transactions.
      result.skipped += 1;
    }
    result.work = std::move(work);
    co_await out.put(std::move(result));
    // Ready for the next transaction while tx_vscc works on this one.
    co_await free_validators_.put(validator);
  }
}

sim::Process BlockProcessor::tx_vscc_proc(int validator) {
  const HwTimingModel& t = config_.timing;
  auto& in = *verify_to_vscc_[static_cast<std::size_t>(validator)];
  auto& out = *validator_out_[static_cast<std::size_t>(validator)];
  RegisterFile regs(policy_org_count_);
  const auto engines = static_cast<std::size_t>(config_.engines_per_vscc);

  for (;;) {
    VerifiedTx verified = co_await in.get();
    const DispatchedTx& work = verified.work;

    ValidatedTx result;
    result.tx_seq = work.tx.tx_seq;
    const sim::Time dispatched_at = work.dispatched_at;
    result.read_count = work.tx.read_count;
    result.write_count = work.tx.write_count;
    result.executed = verified.executed;
    result.skipped = verified.skipped;

    const auto ends_total = static_cast<std::uint32_t>(work.ends.size());
    if (!work.block_valid) {
      result.code = fabric::TxValidationCode::kNotValidated;
      result.skipped += ends_total;
    } else if (!work.tx.parse_ok) {
      result.code = fabric::TxValidationCode::kBadPayload;
      result.skipped += ends_total;
    } else if (!verified.creator_ok) {
      result.code = fabric::TxValidationCode::kBadCreatorSignature;
      result.skipped += ends_total;  // endorsements discarded
    } else {
      const auto policy = policies_.find(work.tx.chaincode_id);
      if (policy == policies_.end()) {
        result.code = fabric::TxValidationCode::kInvalidEndorserTransaction;
        result.skipped += ends_total;
      } else {
        // ends_scheduler: issue endorsements to the engine pool, checking
        // the policy circuit after each round; stop (and drop in-flight
        // work) as soon as the policy is satisfied.
        regs.clear();
        bool satisfied = false;
        std::size_t next = 0;
        while ((!satisfied || !config_.short_circuit_vscc) &&
               next < work.ends.size()) {
          const std::size_t batch =
              std::min(engines, work.ends.size() - next);
          co_await sim_.delay(t.ecdsa_verify);  // engines run in parallel
          for (std::size_t i = 0; i < batch; ++i) {
            const EndsEntry& endorsement = work.ends[next + i];
            const bool ok = endorsement.verify.execute();
            co_await sim_.delay(t.policy_update);
            regs.set(endorsement.endorser, ok);
            result.executed += 1;
          }
          next += batch;
          satisfied = policy->second.evaluate(regs);
        }
        result.skipped +=
            static_cast<std::uint32_t>(work.ends.size() - next);
        result.code = satisfied
                          ? fabric::TxValidationCode::kValid
                          : fabric::TxValidationCode::kEndorsementPolicyFailure;
      }
    }
    result.latency = sim_.now() - dispatched_at;
    co_await out.put(std::move(result));
  }
}

sim::Process BlockProcessor::tx_collector_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockCtl ctl = co_await collector_ctl_.get();
    for (std::uint32_t seq = 0; seq < ctl.tx_count; ++seq) {
      // Collect strictly in dispatch (= program) order: take the validator
      // that got tx `seq`, then wait for that validator's output.
      const int validator = co_await assignment_order_.get();
      ValidatedTx tx =
          co_await validator_out_[static_cast<std::size_t>(validator)]->get();
      assert(tx.tx_seq == seq);
      co_await sim_.delay(t.collector_per_tx);
      co_await collected_.put(std::move(tx));
    }
  }
}

sim::Process BlockProcessor::tx_mvcc_commit_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockCtl ctl = co_await mvcc_ctl_.get();
    ResultEntry result;
    result.block_num = ctl.block_num;
    result.block_valid = ctl.block_valid;
    result.flags.assign(ctl.tx_count,
                        fabric::TxValidationCode::kNotValidated);
    result.stats = ctl.stats;

    for (std::uint32_t seq = 0; seq < ctl.tx_count; ++seq) {
      ValidatedTx tx = co_await collected_.get();
      result.stats.ecdsa_executed += tx.executed;
      result.stats.ecdsa_skipped += tx.skipped;
      result.stats.tx_latency_sum += tx.latency;
      co_await sim_.delay(t.mvcc_per_tx);

      bool valid = tx.code == fabric::TxValidationCode::kValid;
      // mvcc: re-read every read-set key and compare versions. Entries are
      // drained from rdset_fifo even when the check is skipped.
      for (std::uint16_t i = 0; i < tx.read_count; ++i) {
        co_await sim_.delay(t.fifo_read);
        RdsetEntry read = co_await rdset_fifo_.get();
        if (!valid) continue;
        const bool match =
            statedb_.version_matches(read.key, read.expected_version);
        co_await sim_.delay(statedb_.last_tier() == AccessTier::kHost
                                ? t.db_op_host
                                : t.db_op);
        if (!match) {
          valid = false;
          tx.code = fabric::TxValidationCode::kMvccReadConflict;
        }
      }
      // commit: apply the write set (skipped for invalid transactions, but
      // wrset entries are still drained).
      const fabric::Version version{ctl.block_num, seq};
      for (std::uint16_t i = 0; i < tx.write_count; ++i) {
        co_await sim_.delay(t.fifo_read);
        WrsetEntry write = co_await wrset_fifo_.get();
        if (!valid) continue;
        statedb_.lock(write.key);
        statedb_.write(write.key, std::move(write.value), version);
        co_await sim_.delay(statedb_.last_tier() == AccessTier::kHost
                                ? t.db_op_host
                                : t.db_op);
        statedb_.unlock(write.key);
      }
      result.flags[seq] = tx.code;
      if (valid) ++monitor_.valid_transactions;
      ++monitor_.transactions;
    }

    result.stats.validate_end = sim_.now();
    ++monitor_.blocks;
    monitor_.ecdsa_executed += result.stats.ecdsa_executed;
    monitor_.ecdsa_skipped += result.stats.ecdsa_skipped;
    monitor_.total_block_latency +=
        result.stats.validate_end - result.stats.validate_start;
    co_await res_fifo_.put(std::move(result));
    co_await block_done_.put(0);
  }
}

sim::Process BlockProcessor::reg_map_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    ResultEntry result = co_await res_fifo_.get();
    co_await sim_.delay(t.result_write);
    // reg_map_ has capacity 1: writing blocks until the host (CPU) has read
    // the previous block's result.
    co_await reg_map_.put(std::move(result));
  }
}

}  // namespace bm::bmac

#include "bmac/block_processor.hpp"

#include <cassert>

#include "obs/probes.hpp"

namespace bm::bmac {

BlockProcessor::BlockProcessor(sim::Simulation& sim, HwConfig config,
                               std::map<std::string, PolicyCircuit> policies)
    : sim_(sim),
      config_(config),
      policies_(std::move(policies)),
      block_fifo_(sim, 8, "block_fifo"),
      tx_fifo_(sim, config.max_block_txs * 2, "tx_fifo"),
      ends_fifo_(sim, config.max_block_txs * 8, "ends_fifo"),
      rdset_fifo_(sim, config.max_block_txs * 16, "rdset_fifo"),
      wrset_fifo_(sim, config.max_block_txs * 16, "wrset_fifo"),
      verify_to_validate_(sim, 1, "verify_to_validate"),
      collector_ctl_(sim, 4, "collector_ctl"),
      mvcc_ctl_(sim, 4, "mvcc_ctl"),
      free_validators_(sim, static_cast<std::size_t>(config.tx_validators) + 1,
                       "free_validators"),
      assignment_order_(sim, config.max_block_txs * 2, "assignment_order"),
      collected_(sim, 4, "collected"),
      block_done_(sim, 1, "block_done"),
      res_fifo_(sim, 4, "res_fifo"),
      reg_map_(sim, 1, "reg_map"),
      statedb_(config.db_capacity) {
  assert(config_.tx_validators >= 1);
  assert(config_.engines_per_vscc >= 1);
  // Register-file width: highest org index referenced by any circuit. 16
  // registers cover every configuration in the paper.
  policy_org_count_ = 16;
  verify_engine_busy_.assign(static_cast<std::size_t>(config_.tx_validators),
                             0);
  vscc_engine_busy_.assign(static_cast<std::size_t>(config_.tx_validators), 0);
  validator_in_.reserve(config_.tx_validators);
  verify_to_vscc_.reserve(config_.tx_validators);
  validator_out_.reserve(config_.tx_validators);
  for (int v = 0; v < config_.tx_validators; ++v) {
    validator_in_.push_back(std::make_unique<sim::Fifo<DispatchedTx>>(
        sim, 1, "validator_in_" + std::to_string(v)));
    verify_to_vscc_.push_back(std::make_unique<sim::Fifo<VerifiedTx>>(
        sim, 1, "verify_to_vscc_" + std::to_string(v)));
    validator_out_.push_back(std::make_unique<sim::Fifo<ValidatedTx>>(
        sim, 1, "validator_out_" + std::to_string(v)));
  }
}

void BlockProcessor::attach_observability(obs::Registry* registry,
                                          obs::Tracer* tracer) {
  registry_ = registry;
  tracer_ = tracer;
  if (registry_ != nullptr) {
    block_latency_ms_ = &registry_->histogram(
        "bmac_block_validation_latency_ms",
        obs::Histogram::latency_ms_buckets(),
        "block received -> all transactions validated and committed");
    tx_latency_us_ = &registry_->histogram(
        "bmac_tx_validation_latency_us", obs::Histogram::latency_us_buckets(),
        "transaction dispatch -> vscc verdict");
    ecdsa_executed_ctr_ = &registry_->counter(
        "bmac_ecdsa_executed_total", "signature verifications run by engines");
    ecdsa_skipped_ctr_ = &registry_->counter(
        "bmac_ecdsa_skipped_total",
        "verifications avoided by short-circuit / invalid-skip");
    blocks_ctr_ =
        &registry_->counter("bmac_blocks_validated_total", "blocks processed");
    txs_ctr_ = &registry_->counter("bmac_txs_validated_total",
                                   "transactions processed");
    valid_txs_ctr_ = &registry_->counter("bmac_txs_valid_total",
                                         "transactions flagged valid");
  }
  if (tracer_ != nullptr) {
    lanes_.block_verify = tracer_->lane("block_verify");
    lanes_.scheduler = tracer_->lane("tx_scheduler");
    lanes_.tx_verify.clear();
    lanes_.tx_vscc.clear();
    for (int v = 0; v < config_.tx_validators; ++v) {
      lanes_.tx_verify.push_back(
          tracer_->lane("tx_verify_" + std::to_string(v)));
      lanes_.tx_vscc.push_back(tracer_->lane("tx_vscc_" + std::to_string(v)));
    }
    lanes_.collector = tracer_->lane("tx_collector");
    lanes_.mvcc = tracer_->lane("tx_mvcc_commit");
    lanes_.monitor = tracer_->lane("block_monitor");
    lanes_.reg_map = tracer_->lane("reg_map");
    // One lane per probed FIFO so stall spans never overlap (all these
    // FIFOs have a single producer).
    obs::attach_fifo_trace(sim_, block_fifo_, tracer_,
                           tracer_->lane("block_fifo"));
    obs::attach_fifo_trace(sim_, tx_fifo_, tracer_, tracer_->lane("tx_fifo"));
    obs::attach_fifo_trace(sim_, ends_fifo_, tracer_,
                           tracer_->lane("ends_fifo"));
    obs::attach_fifo_trace(sim_, rdset_fifo_, tracer_,
                           tracer_->lane("rdset_fifo"));
    obs::attach_fifo_trace(sim_, wrset_fifo_, tracer_,
                           tracer_->lane("wrset_fifo"));
    obs::attach_fifo_trace(sim_, res_fifo_, tracer_,
                           tracer_->lane("res_fifo"));
  }
}

void BlockProcessor::publish_metrics() {
  if (registry_ == nullptr) return;
  const auto elapsed = static_cast<double>(sim_.now());
  const double engines_per_validator = 1.0 + config_.engines_per_vscc;
  auto utilization = [&](double busy, double engines) {
    return elapsed > 0 ? busy / (elapsed * engines) : 0.0;
  };
  double total_busy = static_cast<double>(block_engine_busy_);
  double total_engines = 1.0;
  registry_
      ->gauge("bmac_engine_utilization_block_verify",
              "busy fraction of the dedicated block_verify ecdsa_engine")
      .set(utilization(static_cast<double>(block_engine_busy_), 1.0));
  for (int v = 0; v < config_.tx_validators; ++v) {
    const auto i = static_cast<std::size_t>(v);
    const double busy = static_cast<double>(verify_engine_busy_[i]) +
                        static_cast<double>(vscc_engine_busy_[i]);
    registry_
        ->gauge("bmac_engine_utilization_v" + std::to_string(v),
                "busy fraction of validator engines (tx_verify + tx_vscc)")
        .set(utilization(busy, engines_per_validator));
    total_busy += busy;
    total_engines += engines_per_validator;
  }
  registry_
      ->gauge("bmac_engine_utilization",
              "aggregate ecdsa-engine busy fraction across the machine")
      .set(utilization(total_busy, total_engines));

  obs::publish_fifo_metrics(*registry_, block_fifo_, "bmac_fifo");
  obs::publish_fifo_metrics(*registry_, tx_fifo_, "bmac_fifo");
  obs::publish_fifo_metrics(*registry_, ends_fifo_, "bmac_fifo");
  obs::publish_fifo_metrics(*registry_, rdset_fifo_, "bmac_fifo");
  obs::publish_fifo_metrics(*registry_, wrset_fifo_, "bmac_fifo");
  obs::publish_fifo_metrics(*registry_, res_fifo_, "bmac_fifo");
  obs::publish_fifo_metrics(*registry_, reg_map_, "bmac_fifo");

  // Standard bounded-cache metric set (docs/OBSERVABILITY.md):
  // capacity / entries gauges + hits / misses / evictions counters.
  registry_
      ->gauge("bmac_statedb_capacity", "on-chip store entry capacity")
      .set(static_cast<double>(statedb_.capacity()));
  registry_
      ->gauge("bmac_statedb_entries", "on-chip store fill")
      .set(static_cast<double>(statedb_.size()));
  registry_
      ->counter("bmac_statedb_hits_total",
                "accesses served by the on-chip tier")
      .set(statedb_.hits());
  registry_
      ->counter("bmac_statedb_misses_total",
                "accesses that fell through to the host tier")
      .set(statedb_.misses());
  registry_
      ->counter("bmac_statedb_overflows_total",
                "writes dropped by the on-chip store")
      .set(statedb_.overflows());
  registry_
      ->counter("bmac_statedb_evictions_total", "entries evicted to the host")
      .set(statedb_.evictions());
  registry_
      ->gauge("sim_event_queue_peak", "event-queue high-water mark")
      .set(static_cast<double>(sim_.max_queue_depth()));
  registry_->counter("sim_events_executed_total", "simulation events run")
      .set(sim_.events_executed());
}

void BlockProcessor::start() {
  sim_.spawn(block_verify_proc());
  sim_.spawn(tx_scheduler_proc());
  for (int v = 0; v < config_.tx_validators; ++v) {
    sim_.spawn(tx_verify_proc(v));
    sim_.spawn(tx_vscc_proc(v));
  }
  sim_.spawn(tx_collector_proc());
  sim_.spawn(tx_mvcc_commit_proc());
  sim_.spawn(reg_map_proc());
}

// --- Stage 1 of the block-level pipeline ------------------------------------
sim::Process BlockProcessor::block_verify_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockEntry entry = co_await block_fifo_.get();
    BlockCtl ctl;
    ctl.block_num = entry.block_num;
    ctl.tx_count = entry.tx_count;
    ctl.stats.received_at = sim_.now();
    ctl.stats.verify_start = sim_.now();
    // Dedicated ecdsa_engine: blocks are verified as soon as they arrive.
    co_await sim_.delay(t.ecdsa_verify);
    block_engine_busy_ += t.ecdsa_verify;
    ctl.block_valid = entry.verify.execute();
    ctl.stats.ecdsa_executed = 1;
    ctl.stats.verify_end = sim_.now();
    if (tracer_ != nullptr) {
      tracer_->complete(lanes_.block_verify, "block_verify", "ecdsa",
                        ctl.stats.verify_start, ctl.stats.verify_end,
                        {{"block", ctl.block_num}, {"valid", ctl.block_valid}});
    }
    co_await verify_to_validate_.put(ctl);
  }
}

// --- Stage 2: block_validate ------------------------------------------------
sim::Process BlockProcessor::tx_scheduler_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockCtl ctl = co_await verify_to_validate_.get();
    ctl.stats.validate_start = sim_.now();
    const sim::Time dispatch_start = sim_.now();
    co_await collector_ctl_.put(ctl);
    co_await mvcc_ctl_.put(ctl);
    for (std::uint32_t seq = 0; seq < ctl.tx_count; ++seq) {
      DispatchedTx work;
      work.block_valid = ctl.block_valid;
      co_await sim_.delay(t.fifo_read);
      work.tx = co_await tx_fifo_.get();
      // Read exactly this transaction's endorsements from ends_fifo.
      work.ends.reserve(work.tx.endorsement_count);
      for (std::uint16_t i = 0; i < work.tx.endorsement_count; ++i) {
        co_await sim_.delay(t.fifo_read);
        work.ends.push_back(co_await ends_fifo_.get());
      }
      // Issue to the first free tx_verify instance (work-conserving).
      const int validator = co_await free_validators_.get();
      co_await sim_.delay(t.scheduler_dispatch);
      work.dispatched_at = sim_.now();
      co_await assignment_order_.put(validator);
      co_await validator_in_[static_cast<std::size_t>(validator)]->put(
          std::move(work));
    }
    if (tracer_ != nullptr) {
      tracer_->complete(lanes_.scheduler, "dispatch", "pipeline",
                        dispatch_start, sim_.now(),
                        {{"block", ctl.block_num},
                         {"txs", static_cast<std::uint64_t>(ctl.tx_count)}});
    }
    // block_validate holds the block until it is fully processed; the next
    // block stays in the block_verify stage meanwhile (2-stage pipeline).
    co_await block_done_.get();
  }
}

sim::Process BlockProcessor::tx_verify_proc(int validator) {
  const HwTimingModel& t = config_.timing;
  auto& in = *validator_in_[static_cast<std::size_t>(validator)];
  auto& out = *verify_to_vscc_[static_cast<std::size_t>(validator)];
  co_await free_validators_.put(validator);
  for (;;) {
    DispatchedTx work = co_await in.get();
    VerifiedTx result;
    result.creator_ok = false;
    const sim::Time verify_start = sim_.now();
    if (work.block_valid && work.tx.verify.well_formed) {
      // Dedicated ecdsa_engine for this tx_verify instance.
      co_await sim_.delay(t.ecdsa_verify);
      verify_engine_busy_[static_cast<std::size_t>(validator)] +=
          t.ecdsa_verify;
      result.creator_ok = work.tx.verify.execute();
      result.executed += 1;
    } else {
      // Skip mechanism: no engine cycles for already-invalid transactions.
      result.skipped += 1;
    }
    if (tracer_ != nullptr) {
      tracer_->complete(
          lanes_.tx_verify[static_cast<std::size_t>(validator)], "tx_verify",
          "ecdsa", verify_start, sim_.now(),
          {{"tx", static_cast<std::uint64_t>(work.tx.tx_seq)},
           {"ok", result.creator_ok}});
    }
    result.work = std::move(work);
    co_await out.put(std::move(result));
    // Ready for the next transaction while tx_vscc works on this one.
    co_await free_validators_.put(validator);
  }
}

sim::Process BlockProcessor::tx_vscc_proc(int validator) {
  const HwTimingModel& t = config_.timing;
  auto& in = *verify_to_vscc_[static_cast<std::size_t>(validator)];
  auto& out = *validator_out_[static_cast<std::size_t>(validator)];
  RegisterFile regs(policy_org_count_);
  const auto engines = static_cast<std::size_t>(config_.engines_per_vscc);

  for (;;) {
    VerifiedTx verified = co_await in.get();
    const DispatchedTx& work = verified.work;
    const sim::Time vscc_start = sim_.now();

    ValidatedTx result;
    result.tx_seq = work.tx.tx_seq;
    const sim::Time dispatched_at = work.dispatched_at;
    result.read_count = work.tx.read_count;
    result.write_count = work.tx.write_count;
    result.executed = verified.executed;
    result.skipped = verified.skipped;

    const auto ends_total = static_cast<std::uint32_t>(work.ends.size());
    if (!work.block_valid) {
      result.code = fabric::TxValidationCode::kNotValidated;
      result.skipped += ends_total;
    } else if (!work.tx.parse_ok) {
      result.code = fabric::TxValidationCode::kBadPayload;
      result.skipped += ends_total;
    } else if (!verified.creator_ok) {
      result.code = fabric::TxValidationCode::kBadCreatorSignature;
      result.skipped += ends_total;  // endorsements discarded
    } else {
      const auto policy = policies_.find(work.tx.chaincode_id);
      if (policy == policies_.end()) {
        result.code = fabric::TxValidationCode::kInvalidEndorserTransaction;
        result.skipped += ends_total;
      } else {
        // ends_scheduler: issue endorsements to the engine pool, checking
        // the policy circuit after each round; stop (and drop in-flight
        // work) as soon as the policy is satisfied.
        regs.clear();
        bool satisfied = false;
        std::size_t next = 0;
        while ((!satisfied || !config_.short_circuit_vscc) &&
               next < work.ends.size()) {
          const std::size_t batch =
              std::min(engines, work.ends.size() - next);
          co_await sim_.delay(t.ecdsa_verify);  // engines run in parallel
          vscc_engine_busy_[static_cast<std::size_t>(validator)] +=
              static_cast<sim::Time>(batch) * t.ecdsa_verify;
          for (std::size_t i = 0; i < batch; ++i) {
            const EndsEntry& endorsement = work.ends[next + i];
            const bool ok = endorsement.verify.execute();
            co_await sim_.delay(t.policy_update);
            regs.set(endorsement.endorser, ok);
            result.executed += 1;
          }
          next += batch;
          satisfied = policy->second.evaluate(regs);
        }
        result.skipped +=
            static_cast<std::uint32_t>(work.ends.size() - next);
        result.code = satisfied
                          ? fabric::TxValidationCode::kValid
                          : fabric::TxValidationCode::kEndorsementPolicyFailure;
      }
    }
    result.latency = sim_.now() - dispatched_at;
    if (tracer_ != nullptr) {
      tracer_->complete(
          lanes_.tx_vscc[static_cast<std::size_t>(validator)], "tx_vscc",
          "ecdsa", vscc_start, sim_.now(),
          {{"tx", static_cast<std::uint64_t>(result.tx_seq)},
           {"executed", static_cast<std::uint64_t>(result.executed)},
           {"skipped", static_cast<std::uint64_t>(result.skipped)}});
    }
    co_await out.put(std::move(result));
  }
}

sim::Process BlockProcessor::tx_collector_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockCtl ctl = co_await collector_ctl_.get();
    const sim::Time collect_start = sim_.now();
    for (std::uint32_t seq = 0; seq < ctl.tx_count; ++seq) {
      // Collect strictly in dispatch (= program) order: take the validator
      // that got tx `seq`, then wait for that validator's output.
      const int validator = co_await assignment_order_.get();
      ValidatedTx tx =
          co_await validator_out_[static_cast<std::size_t>(validator)]->get();
      assert(tx.tx_seq == seq);
      co_await sim_.delay(t.collector_per_tx);
      co_await collected_.put(std::move(tx));
    }
    if (tracer_ != nullptr) {
      tracer_->complete(lanes_.collector, "collect", "pipeline", collect_start,
                        sim_.now(),
                        {{"block", ctl.block_num},
                         {"txs", static_cast<std::uint64_t>(ctl.tx_count)}});
    }
  }
}

sim::Process BlockProcessor::tx_mvcc_commit_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BlockCtl ctl = co_await mvcc_ctl_.get();
    ResultEntry result;
    result.block_num = ctl.block_num;
    result.block_valid = ctl.block_valid;
    result.flags.assign(ctl.tx_count,
                        fabric::TxValidationCode::kNotValidated);
    result.stats = ctl.stats;
    const sim::Time mvcc_start = sim_.now();
    std::uint64_t block_valid_txs = 0;

    for (std::uint32_t seq = 0; seq < ctl.tx_count; ++seq) {
      ValidatedTx tx = co_await collected_.get();
      result.stats.ecdsa_executed += tx.executed;
      result.stats.ecdsa_skipped += tx.skipped;
      result.stats.tx_latency_sum += tx.latency;
      co_await sim_.delay(t.mvcc_per_tx);

      bool valid = tx.code == fabric::TxValidationCode::kValid;
      // mvcc: re-read every read-set key and compare versions. Entries are
      // drained from rdset_fifo even when the check is skipped.
      for (std::uint16_t i = 0; i < tx.read_count; ++i) {
        co_await sim_.delay(t.fifo_read);
        RdsetEntry read = co_await rdset_fifo_.get();
        if (!valid) continue;
        const bool match =
            statedb_.version_matches(read.key, read.expected_version);
        co_await sim_.delay(statedb_.last_tier() == AccessTier::kHost
                                ? t.db_op_host
                                : t.db_op);
        if (!match) {
          valid = false;
          tx.code = fabric::TxValidationCode::kMvccReadConflict;
        }
      }
      // commit: apply the write set (skipped for invalid transactions, but
      // wrset entries are still drained).
      const fabric::Version version{ctl.block_num, seq};
      for (std::uint16_t i = 0; i < tx.write_count; ++i) {
        co_await sim_.delay(t.fifo_read);
        WrsetEntry write = co_await wrset_fifo_.get();
        if (!valid) continue;
        statedb_.lock(write.key);
        statedb_.write(write.key, std::move(write.value), version);
        co_await sim_.delay(statedb_.last_tier() == AccessTier::kHost
                                ? t.db_op_host
                                : t.db_op);
        statedb_.unlock(write.key);
      }
      result.flags[seq] = tx.code;
      if (valid) {
        ++monitor_.valid_transactions;
        ++block_valid_txs;
      }
      ++monitor_.transactions;
      if (tx_latency_us_ != nullptr) {
        tx_latency_us_->observe(static_cast<double>(tx.latency) / 1000.0);
      }
    }

    result.stats.validate_end = sim_.now();
    ++monitor_.blocks;
    monitor_.ecdsa_executed += result.stats.ecdsa_executed;
    monitor_.ecdsa_skipped += result.stats.ecdsa_skipped;
    monitor_.total_block_latency +=
        result.stats.validate_end - result.stats.validate_start;
    if (registry_ != nullptr) {
      block_latency_ms_->observe(
          static_cast<double>(result.stats.validate_end -
                              result.stats.received_at) /
          1e6);
      blocks_ctr_->inc();
      txs_ctr_->inc(ctl.tx_count);
      valid_txs_ctr_->inc(block_valid_txs);
      ecdsa_executed_ctr_->inc(result.stats.ecdsa_executed);
      ecdsa_skipped_ctr_->inc(result.stats.ecdsa_skipped);
    }
    if (tracer_ != nullptr) {
      tracer_->complete(lanes_.mvcc, "mvcc_commit", "pipeline", mvcc_start,
                        sim_.now(),
                        {{"block", ctl.block_num},
                         {"txs", static_cast<std::uint64_t>(ctl.tx_count)}});
      // One span per block on the monitor lane, covering the whole
      // block_validate window; these serialize via the block_done_ token.
      tracer_->complete(
          lanes_.monitor, "block_validate", "monitor",
          result.stats.validate_start, result.stats.validate_end,
          {{"block", ctl.block_num},
           {"txs", static_cast<std::uint64_t>(ctl.tx_count)},
           {"valid", block_valid_txs},
           {"ecdsa_executed",
            static_cast<std::uint64_t>(result.stats.ecdsa_executed)},
           {"ecdsa_skipped",
            static_cast<std::uint64_t>(result.stats.ecdsa_skipped)}});
    }
    co_await res_fifo_.put(std::move(result));
    co_await block_done_.put(0);
  }
}

sim::Process BlockProcessor::reg_map_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    ResultEntry result = co_await res_fifo_.get();
    co_await sim_.delay(t.result_write);
    if (tracer_ != nullptr) {
      tracer_->instant(lanes_.reg_map, "result_ready", "monitor", sim_.now(),
                       {{"block", result.block_num}});
    }
    // reg_map_ has capacity 1: writing blocks until the host (CPU) has read
    // the previous block's result.
    co_await reg_map_.put(std::move(result));
  }
}

}  // namespace bm::bmac

// Endorsement policies compiled to combinational circuits (§3.3).
//
// The ends_policy_evaluator holds a register file with one register per
// organization and one bit per role; endorsement verification results are
// written to (org, role) bits, and the policy is a combinational circuit
// over those bits — all sub-expressions evaluate in parallel, which is why
// the "complex policy" of Fig. 7f costs the hardware nothing while the
// software peer (sequential sub-expression evaluation) collapses.
//
// k-out-of-n nodes are expanded into an OR of all n-choose-k AND terms
// (e.g. "2-outof-3" -> three 2-input ANDs + one 3-input OR, exactly the
// paper's example) when the expansion is small; larger thresholds keep a
// threshold gate (hardware: adder tree + comparator).
#pragma once

#include <vector>

#include "fabric/policy.hpp"

namespace bm::bmac {

/// The ends_policy_evaluator register file: one register per org (indices
/// 1..N), 4 role bits each.
class RegisterFile {
 public:
  explicit RegisterFile(std::size_t org_count)
      : bits_(org_count + 1, 0) {}  // index 0 unused (org indices start at 1)

  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }

  /// Write a verification result bit for an endorser id (set on valid).
  void set(fabric::EncodedId id, bool valid);

  bool get(std::uint8_t org, fabric::Role role) const;

  std::size_t org_count() const { return bits_.size() - 1; }

 private:
  std::vector<std::uint8_t> bits_;  ///< 4 role bits per org
};

struct Gate {
  enum class Type : std::uint8_t { kInput, kAnd, kOr, kThreshold };
  Type type = Type::kInput;
  // kInput:
  std::uint8_t org = 0;
  fabric::Role role = fabric::Role::kPeer;
  // kAnd / kOr / kThreshold:
  int k = 0;  ///< threshold gates only
  std::vector<std::uint32_t> inputs;  ///< indices of earlier gates
};

struct CircuitStats {
  std::size_t inputs = 0;
  std::size_t and_gates = 0;
  std::size_t or_gates = 0;
  std::size_t threshold_gates = 0;
  std::size_t total_gate_inputs = 0;  ///< sum of fan-ins (LUT cost proxy)
};

class PolicyCircuit {
 public:
  /// Compile a policy; org names resolve through the MSP. Principals whose
  /// org is unknown compile to constant-false inputs.
  static PolicyCircuit compile(const fabric::EndorsementPolicy& policy,
                               const fabric::Msp& msp);

  /// Combinational evaluation over the register file.
  bool evaluate(const RegisterFile& regs) const;

  CircuitStats stats() const;
  std::size_t gate_count() const { return gates_.size(); }
  const std::string& source_text() const { return source_text_; }

 private:
  std::vector<Gate> gates_;  ///< topologically ordered; last gate = output
  std::string source_text_;
};

}  // namespace bm::bmac

#include "bmac/resource_model.hpp"

namespace bm::bmac {

namespace {

// Fixed modules. LUT/FF totals chosen so the base sums to the Table 1 fit
// (base LUT = 13.5% of 1,728k = 233.3k; base FF = 5.7% of 3,456k = 197k;
// BRAM 352 = 13.1% of 2,688; URAM 168 = 13.1% of 1,280).
const ModuleCost kShell{"opennic_shell (Ethernet+DMA+AXI)", 100'000, 110'000,
                        140, 40};
const ModuleCost kProtocolProcessor{
    "protocol_processor (P4 parser + DataInserter/Extractor + 3x SHA-256)",
    80'000, 60'000, 15, 60};
const ModuleCost kIdentityCache{"identity_cache", 4'000, 2'000, 0, 32};
const ModuleCost kBlockLevel{
    "block_verify engine + block_monitor + reg_map", 22'300, 15'000, 5, 0};
const ModuleCost kMvccCommit{"tx_mvcc_commit datapath", 12'000, 6'000, 0, 0};
const ModuleCost kStateDb{"in-hardware state database (8192 entries)",
                          15'000, 4'000, 192, 36};

// Per-instance modules (the Table 1 scaling knobs).
constexpr std::uint64_t kEcdsaEngineLut = 9'158;   // 0.53% of 1,728k
constexpr std::uint64_t kEcdsaEngineFf = 691;      // 0.02% of 3,456k
constexpr std::uint64_t kValidatorCtlLut = 4'493;  // 0.79% - engine share
constexpr std::uint64_t kValidatorCtlFf = 8'295;   // 0.26% - engine share

// Policy circuits: a LUT6 absorbs ~3 gate inputs; one FF per gate output.
constexpr std::uint64_t kLutPerGateInput = 1;

}  // namespace

std::vector<ModuleCost> ResourceModel::breakdown(
    const HwConfig& config,
    const std::map<std::string, PolicyCircuit>& policies) const {
  std::vector<ModuleCost> modules = {kShell,      kProtocolProcessor,
                                     kIdentityCache, kBlockLevel,
                                     kMvccCommit, kStateDb};

  const auto validators = static_cast<std::uint64_t>(config.tx_validators);
  const auto engines =
      validators * static_cast<std::uint64_t>(config.engines_per_vscc);

  modules.push_back(ModuleCost{
      "tx_validators (" + config.name() + "): tx_verify engine + control",
      validators * (kEcdsaEngineLut + kValidatorCtlLut),
      validators * (kEcdsaEngineFf + kValidatorCtlFf), 0, 0});
  modules.push_back(ModuleCost{
      "tx_vscc ecdsa_engines (" + std::to_string(engines) + ")",
      engines * kEcdsaEngineLut, engines * kEcdsaEngineFf, 0, 0});

  std::uint64_t circuit_inputs = 0;
  std::uint64_t circuit_gates = 0;
  for (const auto& [name, circuit] : policies) {
    const CircuitStats stats = circuit.stats();
    circuit_inputs += stats.total_gate_inputs + stats.inputs;
    circuit_gates += circuit.gate_count();
  }
  if (circuit_gates > 0) {
    // One evaluator per tx_vscc instance.
    modules.push_back(ModuleCost{
        "ends_policy_evaluator circuits (x" +
            std::to_string(config.tx_validators) + ")",
        validators * circuit_inputs * kLutPerGateInput,
        validators * circuit_gates, 0, 0});
  }
  return modules;
}

ResourceUsage ResourceModel::estimate(
    const HwConfig& config,
    const std::map<std::string, PolicyCircuit>& policies) const {
  ResourceUsage usage;
  for (const ModuleCost& module : breakdown(config, policies)) {
    usage.lut += module.lut;
    usage.ff += module.ff;
    usage.bram36 += module.bram36;
    usage.uram += module.uram;
  }
  return usage;
}

}  // namespace bm::bmac

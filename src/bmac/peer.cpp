#include "bmac/peer.hpp"

#include <cassert>

#include "obs/probes.hpp"

namespace bm::bmac {

std::map<std::string, PolicyCircuit> compile_policies(
    const std::map<std::string, fabric::EndorsementPolicy>& policies,
    const fabric::Msp& msp) {
  std::map<std::string, PolicyCircuit> circuits;
  for (const auto& [chaincode, policy] : policies)
    circuits.emplace(chaincode, PolicyCircuit::compile(policy, msp));
  return circuits;
}

BmacPeer::BmacPeer(
    sim::Simulation& sim, const fabric::Msp& msp, HwConfig config,
    const std::map<std::string, fabric::EndorsementPolicy>& policies)
    : sim_(sim),
      config_(config),
      rx_queue_(sim, 65536, "rx_queue"),
      receiver_(cache_),
      processor_(sim, config, compile_policies(policies, msp)) {}

void BmacPeer::start() {
  processor_.start();
  sim_.spawn(protocol_processor_proc());
  sim_.spawn(host_commit_proc());
}

void BmacPeer::attach_observability(obs::Registry* registry,
                                    obs::Tracer* tracer) {
  registry_ = registry;
  tracer_ = tracer;
  if (registry_ != nullptr) {
    packets_ctr_ = &registry_->counter(
        "bmac_packets_processed_total",
        "BMac packets consumed by the protocol_processor");
    commits_ctr_ = &registry_->counter("bmac_host_blocks_committed_total",
                                       "blocks appended to the host ledger");
    commit_latency_us_ = &registry_->histogram(
        "bmac_host_commit_latency_us", obs::Histogram::latency_us_buckets(),
        "reg_map result ready -> ledger append done");
  }
  if (tracer_ != nullptr) {
    // Lanes are created before the BlockProcessor's so the trace reads
    // top-to-bottom in pipeline order: protocol ingress, stages, host.
    protocol_lane_ = tracer_->lane("protocol_processor");
    obs::attach_fifo_trace(sim_, rx_queue_, tracer_, tracer_->lane("rx_queue"));
  }
  processor_.attach_observability(registry, tracer);
  if (tracer_ != nullptr) {
    host_lane_ = tracer_->lane("host_commit");
  }
}

void BmacPeer::publish_metrics() {
  if (registry_ != nullptr) {
    registry_
        ->counter("bmac_host_blocks_rejected_total",
                  "blocks discarded after a failed block signature")
        .set(host_metrics_.blocks_rejected);
    registry_
        ->counter("bmac_host_txs_committed_total",
                  "transactions written to the ledger (valid + invalid)")
        .set(host_metrics_.transactions_committed);
    registry_
        ->counter("bmac_host_txs_valid_total",
                  "committed transactions flagged valid")
        .set(host_metrics_.valid_transactions);
    obs::publish_fifo_metrics(*registry_, rx_queue_, "bmac_fifo");
  }
  processor_.publish_metrics();
}

void BmacPeer::deliver_packet(BmacPacket packet) {
  const bool accepted = rx_queue_.try_put(std::move(packet));
  assert(accepted && "rx queue overflow");
  (void)accepted;
}

void BmacPeer::deliver_block(fabric::Block block) {
  pending_blocks_.emplace(block.header.number, std::move(block));
}

sim::Process BmacPeer::protocol_processor_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    BmacPacket packet = co_await rx_queue_.get();
    const sim::Time packet_start = sim_.now();
    const std::size_t wire_size = packet.wire_size();
    co_await sim_.delay(t.packet_processing_time(wire_size));
    ProtocolReceiver::Emitted emitted = receiver_.on_packet(packet);
    // DataWriter: push each record as soon as it is complete. Back-pressure
    // from full FIFOs stalls the protocol_processor, like real hardware.
    for (auto& end : emitted.ends) co_await processor_.ends_fifo().put(std::move(end));
    for (auto& read : emitted.reads)
      co_await processor_.rdset_fifo().put(std::move(read));
    for (auto& write : emitted.writes)
      co_await processor_.wrset_fifo().put(std::move(write));
    for (auto& tx : emitted.txs) co_await processor_.tx_fifo().put(std::move(tx));
    if (emitted.block)
      co_await processor_.block_fifo().put(std::move(*emitted.block));
    if (packets_ctr_ != nullptr) packets_ctr_->inc();
    if (tracer_ != nullptr) {
      tracer_->complete(
          protocol_lane_, "packet", "protocol", packet_start, sim_.now(),
          {{"bytes", static_cast<std::uint64_t>(wire_size)},
           {"ends", static_cast<std::uint64_t>(emitted.ends.size())},
           {"txs", static_cast<std::uint64_t>(emitted.txs.size())},
           {"block", emitted.block.has_value()}});
    }
  }
}

sim::Process BmacPeer::host_commit_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    // GetBlockData(): returns when reg_map holds the validation result.
    ResultEntry result = co_await processor_.reg_map().get();
    const sim::Time commit_start = sim_.now();
    co_await sim_.delay(t.host_result_read);

    // The same block arrives via Gossip/forwarded UDP; normally it is
    // already here since hardware validation takes far longer than block
    // delivery. Poll briefly otherwise.
    auto it = pending_blocks_.find(result.block_num);
    while (it == pending_blocks_.end()) {
      co_await sim_.delay(100 * sim::kMicrosecond);
      it = pending_blocks_.find(result.block_num);
    }
    fabric::Block block = std::move(it->second);
    pending_blocks_.erase(it);

    if (result.block_valid) {
      assert(result.flags.size() == block.envelopes.size());
      for (std::size_t i = 0; i < result.flags.size(); ++i)
        block.metadata.tx_flags[i] =
            static_cast<std::uint8_t>(result.flags[i]);
      co_await sim_.delay(
          t.ledger_commit_fixed +
          t.ledger_commit_per_tx * static_cast<sim::Time>(result.flags.size()));
      ledger_.append(std::move(block));
      ++host_metrics_.blocks_committed;
      host_metrics_.transactions_committed += result.flags.size();
      for (const auto flag : result.flags)
        if (flag == fabric::TxValidationCode::kValid)
          ++host_metrics_.valid_transactions;
    } else {
      ++host_metrics_.blocks_rejected;
    }
    if (commits_ctr_ != nullptr && result.block_valid) commits_ctr_->inc();
    if (commit_latency_us_ != nullptr) {
      commit_latency_us_->observe(
          static_cast<double>(sim_.now() - commit_start) / 1000.0);
    }
    if (tracer_ != nullptr) {
      tracer_->complete(
          host_lane_, "host_commit", "host-commit", commit_start, sim_.now(),
          {{"block", result.block_num},
           {"txs", static_cast<std::uint64_t>(result.flags.size())},
           {"committed", result.block_valid}});
    }
    results_.push_back(std::move(result));
  }
}

}  // namespace bm::bmac

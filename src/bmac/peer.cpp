#include "bmac/peer.hpp"

#include <cassert>

#include "fabric/transaction.hpp"
#include "obs/flight.hpp"
#include "obs/probes.hpp"

namespace bm::bmac {

std::map<std::string, PolicyCircuit> compile_policies(
    const std::map<std::string, fabric::EndorsementPolicy>& policies,
    const fabric::Msp& msp) {
  std::map<std::string, PolicyCircuit> circuits;
  for (const auto& [chaincode, policy] : policies)
    circuits.emplace(chaincode, PolicyCircuit::compile(policy, msp));
  return circuits;
}

BmacPeer::BmacPeer(
    sim::Simulation& sim, const fabric::Msp& msp, HwConfig config,
    const std::map<std::string, fabric::EndorsementPolicy>& policies)
    : sim_(sim),
      msp_(msp),
      policies_(policies),
      config_(config),
      rx_queue_(sim, 65536, "rx_queue"),
      receiver_(cache_),
      processor_(sim, config, compile_policies(policies, msp)) {}

void BmacPeer::enable_graceful_degradation(DegradeConfig config) {
  degrade_ = config;
  fallback_backend_ = fabric::make_software_backend(
      msp_, policies_, fabric::SoftwareBackendOptions{/*parallelism=*/1,
                                                      /*verify_cache=*/0});
  release_kick_ = std::make_unique<sim::Trigger>(sim_);
  commit_kick_ = std::make_unique<sim::Trigger>(sim_);
}

void BmacPeer::set_fallback_backend(
    std::unique_ptr<fabric::ValidatorBackend> backend) {
  fallback_backend_ = std::move(backend);
}

void BmacPeer::start() {
  processor_.start();
  sim_.spawn(protocol_processor_proc());
  if (degrade_) {
    sim_.spawn(stream_release_proc());
    sim_.spawn(reg_map_drain_proc());
    sim_.spawn(degraded_host_commit_proc());
  } else {
    sim_.spawn(host_commit_proc());
  }
}

void BmacPeer::attach_observability(obs::Registry* registry,
                                    obs::Tracer* tracer) {
  registry_ = registry;
  tracer_ = tracer;
  if (registry_ != nullptr) {
    packets_ctr_ = &registry_->counter(
        "bmac_packets_processed_total",
        "BMac packets consumed by the protocol_processor");
    commits_ctr_ = &registry_->counter("bmac_host_blocks_committed_total",
                                       "blocks appended to the host ledger");
    commit_latency_us_ = &registry_->histogram(
        "bmac_host_commit_latency_us", obs::Histogram::latency_us_buckets(),
        "reg_map result ready -> ledger append done");
    if (degrade_) {
      fallback_ctr_ = &registry_->counter(
          "bmac_fallback_blocks_total",
          "blocks validated in software after a stalled stream");
      watchdog_ctr_ = &registry_->counter(
          "bmac_watchdog_fires_total",
          "result-budget expiries with an incomplete stream");
      deferral_ctr_ = &registry_->counter(
          "bmac_watchdog_deferrals_total",
          "result-budget expiries with a healthy stream (re-armed)");
      abort_ctr_ = &registry_->counter(
          "bmac_streams_aborted_total",
          "partial record assemblies discarded at fallback");
    }
  }
  if (tracer_ != nullptr) {
    // Lanes are created before the BlockProcessor's so the trace reads
    // top-to-bottom in pipeline order: protocol ingress, stages, host.
    protocol_lane_ = tracer_->lane("protocol_processor");
    obs::attach_fifo_trace(sim_, rx_queue_, tracer_, tracer_->lane("rx_queue"));
  }
  processor_.attach_observability(registry, tracer);
  if (tracer_ != nullptr) {
    host_lane_ = tracer_->lane("host_commit");
  }
}

void BmacPeer::publish_metrics() {
  if (registry_ != nullptr) {
    registry_
        ->counter("bmac_host_blocks_rejected_total",
                  "blocks discarded after a failed block signature")
        .set(host_metrics_.blocks_rejected);
    registry_
        ->counter("bmac_host_txs_committed_total",
                  "transactions written to the ledger (valid + invalid)")
        .set(host_metrics_.transactions_committed);
    registry_
        ->counter("bmac_host_txs_valid_total",
                  "committed transactions flagged valid")
        .set(host_metrics_.valid_transactions);
    if (degrade_) {
      registry_
          ->counter("bmac_fallback_blocks_total",
                    "blocks validated in software after a stalled stream")
          .set(degrade_metrics_.fallback_blocks);
      registry_
          ->counter("bmac_watchdog_fires_total",
                    "result-budget expiries with an incomplete stream")
          .set(degrade_metrics_.watchdog_fires);
      registry_
          ->counter("bmac_watchdog_deferrals_total",
                    "result-budget expiries with a healthy stream (re-armed)")
          .set(degrade_metrics_.watchdog_deferrals);
      registry_
          ->counter("bmac_streams_aborted_total",
                    "partial record assemblies discarded at fallback")
          .set(degrade_metrics_.streams_aborted);
      registry_
          ->counter("bmac_late_packets_total",
                    "packets for already-resolved blocks, dropped")
          .set(degrade_metrics_.late_packets);
      registry_
          ->counter("bmac_malformed_packets_total",
                    "packets the protocol_processor rejected")
          .set(degrade_metrics_.malformed_packets);
    }
    obs::publish_fifo_metrics(*registry_, rx_queue_, "bmac_fifo");
  }
  processor_.publish_metrics();
}

void BmacPeer::deliver_packet(BmacPacket packet) {
  const bool accepted = rx_queue_.try_put(std::move(packet));
  assert(accepted && "rx queue overflow");
  (void)accepted;
}

void BmacPeer::deliver_block(fabric::Block block) {
  const std::uint64_t block_num = block.header.number;
  pending_blocks_.emplace(block_num, std::move(block));
  if (degrade_) {
    note_first_block(block_num);
    arm_watchdog(block_num);
    commit_kick_->fire(0);
  }
}

void BmacPeer::note_first_block(std::uint64_t block_num) {
  // Degraded mode assumes blocks are produced (and delivered on the host
  // path) in order, as Fabric's orderer guarantees; the first number seen
  // anywhere anchors the release/commit sequencers.
  if (base_known_) return;
  base_known_ = true;
  next_release_ = block_num;
  next_commit_ = block_num;
}

sim::Process BmacPeer::protocol_processor_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    ingest_busy_ = false;
    BmacPacket packet = co_await rx_queue_.get();
    ingest_busy_ = true;
    const sim::Time packet_start = sim_.now();
    const std::size_t wire_size = packet.wire_size();
    co_await sim_.delay(t.packet_processing_time(wire_size));
    if (degrade_) {
      if (packet.header.section != SectionType::kIdentitySync && base_known_ &&
          packet.header.block_num < next_release_) {
        // A straggler for a block already released or resolved (e.g. a
        // retransmission that raced the fallback): the hardware must not
        // re-stage records for it.
        ++degrade_metrics_.late_packets;
        if (packets_ctr_ != nullptr) packets_ctr_->inc();
        if (tracer_ != nullptr) {
          tracer_->complete(protocol_lane_, "packet_late", "protocol",
                            packet_start, sim_.now(),
                            {{"bytes", static_cast<std::uint64_t>(wire_size)},
                             {"block", packet.header.block_num}});
        }
        continue;
      }
      ProtocolReceiver::Emitted emitted = receiver_.on_packet(packet);
      if (packets_ctr_ != nullptr) packets_ctr_->inc();
      if (tracer_ != nullptr) {
        tracer_->complete(
            protocol_lane_, "packet", "protocol", packet_start, sim_.now(),
            {{"bytes", static_cast<std::uint64_t>(wire_size)},
             {"ends", static_cast<std::uint64_t>(emitted.ends.size())},
             {"txs", static_cast<std::uint64_t>(emitted.txs.size())},
             {"block", emitted.block.has_value()}});
      }
      if (emitted.error) {
        ++degrade_metrics_.malformed_packets;
      } else {
        stage_records(packet, std::move(emitted));
      }
      continue;
    }
    ProtocolReceiver::Emitted emitted = receiver_.on_packet(packet);
    // DataWriter: push each record as soon as it is complete. Back-pressure
    // from full FIFOs stalls the protocol_processor, like real hardware.
    for (auto& end : emitted.ends) co_await processor_.ends_fifo().put(std::move(end));
    for (auto& read : emitted.reads)
      co_await processor_.rdset_fifo().put(std::move(read));
    for (auto& write : emitted.writes)
      co_await processor_.wrset_fifo().put(std::move(write));
    for (auto& tx : emitted.txs) co_await processor_.tx_fifo().put(std::move(tx));
    if (emitted.block)
      co_await processor_.block_fifo().put(std::move(*emitted.block));
    if (packets_ctr_ != nullptr) packets_ctr_->inc();
    if (tracer_ != nullptr) {
      tracer_->complete(
          protocol_lane_, "packet", "protocol", packet_start, sim_.now(),
          {{"bytes", static_cast<std::uint64_t>(wire_size)},
           {"ends", static_cast<std::uint64_t>(emitted.ends.size())},
           {"txs", static_cast<std::uint64_t>(emitted.txs.size())},
           {"block", emitted.block.has_value()}});
    }
  }
}

void BmacPeer::stage_records(const BmacPacket& packet,
                             ProtocolReceiver::Emitted&& emitted) {
  const std::uint64_t block_num = packet.header.block_num;
  if (packet.header.section == SectionType::kIdentitySync) return;
  note_first_block(block_num);
  StreamAssembly& stream = streams_[block_num];
  if (stream.state != StreamAssembly::State::kAssembling) {
    ++degrade_metrics_.late_packets;  // duplicate after completion
    return;
  }
  const auto section_key =
      std::make_pair(static_cast<int>(packet.header.section),
                     static_cast<std::uint32_t>(packet.header.section_index));
  if (!stream.sections_seen.insert(section_key).second) return;  // duplicate
  ++staged_sections_total_;
  staging_high_water_ = std::max(staging_high_water_, block_num);
  stream.total_sections = packet.header.total_sections;
  for (auto& end : emitted.ends) stream.ends.push_back(std::move(end));
  for (auto& read : emitted.reads) stream.reads.push_back(std::move(read));
  for (auto& write : emitted.writes) stream.writes.push_back(std::move(write));
  for (auto& tx : emitted.txs) stream.txs.push_back(std::move(tx));
  if (emitted.block) stream.block = std::move(emitted.block);
  if (stream.total_sections > 0 &&
      stream.sections_seen.size() == stream.total_sections && stream.block) {
    stream.state = StreamAssembly::State::kComplete;
    release_kick_->fire(0);
  }
}

sim::Process BmacPeer::stream_release_proc() {
  for (;;) {
    while (base_known_) {
      auto it = streams_.find(next_release_);
      if (it == streams_.end() ||
          it->second.state != StreamAssembly::State::kComplete)
        break;
      StreamAssembly& stream = it->second;
      stream.state = StreamAssembly::State::kReleased;
      // The stream completed after all; a watchdog that raced it is void.
      fallback_pending_.erase(next_release_);
      ++next_release_;
      // Hand the complete block to the hardware FIFOs in DataWriter order
      // (records within each FIFO are in arrival = section order; the
      // block entry goes last, exactly when the metadata section would
      // have produced it on the healthy path).
      for (auto& end : stream.ends)
        co_await processor_.ends_fifo().put(std::move(end));
      for (auto& read : stream.reads)
        co_await processor_.rdset_fifo().put(std::move(read));
      for (auto& write : stream.writes)
        co_await processor_.wrset_fifo().put(std::move(write));
      for (auto& tx : stream.txs)
        co_await processor_.tx_fifo().put(std::move(tx));
      co_await processor_.block_fifo().put(std::move(*stream.block));
    }
    co_await release_kick_->wait();
  }
}

sim::Process BmacPeer::reg_map_drain_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    // GetBlockData(): returns when reg_map holds the validation result.
    ResultEntry result = co_await processor_.reg_map().get();
    co_await sim_.delay(t.host_result_read);
    const std::uint64_t block_num = result.block_num;
    hw_results_.emplace(block_num, std::move(result));
    commit_kick_->fire(0);
  }
}

std::size_t BmacPeer::stream_progress(std::uint64_t block_num) const {
  const auto it = streams_.find(block_num);
  return it == streams_.end() ? 0 : it->second.sections_seen.size();
}

void BmacPeer::arm_watchdog(std::uint64_t block_num) {
  if (watchdogs_.count(block_num) != 0) return;
  const std::size_t local = stream_progress(block_num);
  const std::uint64_t global = staged_sections_total_;
  watchdogs_[block_num] =
      sim_.schedule(degrade_->result_budget, [this, block_num, local, global] {
        watchdogs_.erase(block_num);
        on_watchdog(block_num, local, global);
      });
}

void BmacPeer::on_watchdog(std::uint64_t block_num, std::size_t armed_local,
                           std::uint64_t armed_global) {
  if (base_known_ && block_num < next_commit_) return;  // already committed
  if (hw_results_.count(block_num) != 0) return;  // result waiting in line
  const auto it = streams_.find(block_num);
  if (it != streams_.end() &&
      it->second.state != StreamAssembly::State::kAssembling) {
    // The record stream is intact — the hardware is merely behind (an
    // earlier block is being resolved, or validation is slow). The result
    // is guaranteed to arrive; give it another budget.
    ++degrade_metrics_.watchdog_deferrals;
    if (deferral_ctr_ != nullptr) deferral_ctr_->inc();
    arm_watchdog(block_num);
    return;
  }
  if (stream_progress(block_num) > armed_local) {
    // New sections landed during this budget: the stream is slow (small
    // budget, retransmissions in flight), not stalled. Fall back only when
    // a full budget passes with zero assembly progress.
    ++degrade_metrics_.watchdog_deferrals;
    if (deferral_ctr_ != nullptr) deferral_ctr_->inc();
    arm_watchdog(block_num);
    return;
  }
  if (staged_sections_total_ > armed_global &&
      staging_high_water_ < block_num) {
    // The GBN stream delivers in order, and every section staged during this
    // budget belonged to an earlier block: this block's packets are queued
    // behind a busy pipe, not lost. Once staging reaches or skips past this
    // block (high water >= block_num) this clause stops deferring, so a
    // resync that abandoned the block still falls back within one budget of
    // the pipe draining.
    ++degrade_metrics_.watchdog_deferrals;
    if (deferral_ctr_ != nullptr) deferral_ctr_->inc();
    arm_watchdog(block_num);
    return;
  }
  if ((!rx_queue_.empty() || ingest_busy_) &&
      staging_high_water_ <= block_num) {
    // Nothing staged this budget, but the ingress pipe is still chewing
    // (packets can take longer than a small budget to process) and staging
    // has not yet skipped past this block — with in-order delivery the
    // queued packets may still belong to it. Fall back only once the pipe
    // idles or staging moves beyond the block.
    ++degrade_metrics_.watchdog_deferrals;
    if (deferral_ctr_ != nullptr) deferral_ctr_->inc();
    arm_watchdog(block_num);
    return;
  }
  // Stream stalled (sections missing, frames abandoned by the GBN sender,
  // or nothing arrived at all): schedule the software fallback.
  ++degrade_metrics_.watchdog_fires;
  if (watchdog_ctr_ != nullptr) watchdog_ctr_->inc();
  if (flight_ != nullptr) {
    flight_->record(obs::FlightStage::kWatchdog, block_num, "stream_stalled");
    flight_->trigger("bmac:watchdog block " + std::to_string(block_num));
  }
  fallback_pending_.insert(block_num);
  commit_kick_->fire(0);
}

sim::Process BmacPeer::degraded_host_commit_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    while (base_known_) {
      const std::uint64_t block_num = next_commit_;
      auto hw = hw_results_.find(block_num);
      if (hw != hw_results_.end()) {
        ResultEntry result = std::move(hw->second);
        hw_results_.erase(hw);
        const sim::Time commit_start = sim_.now();
        auto it = pending_blocks_.find(block_num);
        while (it == pending_blocks_.end()) {
          co_await sim_.delay(100 * sim::kMicrosecond);
          it = pending_blocks_.find(block_num);
        }
        fabric::Block block = std::move(it->second);
        pending_blocks_.erase(it);
        if (result.block_valid) {
          assert(result.flags.size() == block.envelopes.size());
          for (std::size_t i = 0; i < result.flags.size(); ++i)
            block.metadata.tx_flags[i] =
                static_cast<std::uint8_t>(result.flags[i]);
          co_await sim_.delay(t.ledger_commit_fixed +
                              t.ledger_commit_per_tx *
                                  static_cast<sim::Time>(result.flags.size()));
          apply_writes_to_shadow(block, result.flags);
          ledger_.append(std::move(block));
          ++host_metrics_.blocks_committed;
          host_metrics_.transactions_committed += result.flags.size();
          for (const auto flag : result.flags)
            if (flag == fabric::TxValidationCode::kValid)
              ++host_metrics_.valid_transactions;
        } else {
          ++host_metrics_.blocks_rejected;
        }
        if (commits_ctr_ != nullptr && result.block_valid) commits_ctr_->inc();
        if (commit_latency_us_ != nullptr) {
          commit_latency_us_->observe(
              static_cast<double>(sim_.now() - commit_start) / 1000.0);
        }
        if (tracer_ != nullptr) {
          tracer_->complete(
              host_lane_, "host_commit", "host-commit", commit_start,
              sim_.now(),
              {{"block", result.block_num},
               {"txs", static_cast<std::uint64_t>(result.flags.size())},
               {"committed", result.block_valid},
               {"fallback", false}});
        }
        results_.push_back(std::move(result));
        resolve_block(block_num);
        continue;
      }
      if (fallback_pending_.count(block_num) != 0) {
        const auto stream = streams_.find(block_num);
        if (stream != streams_.end() &&
            stream->second.state != StreamAssembly::State::kAssembling) {
          // The stream healed between the watchdog and here — the hardware
          // result is on its way; do not double-validate.
          fallback_pending_.erase(block_num);
          break;
        }
        auto it = pending_blocks_.find(block_num);
        if (it == pending_blocks_.end()) break;  // watchdog needs the block
        fabric::Block block = std::move(it->second);
        pending_blocks_.erase(it);
        fallback_pending_.erase(block_num);
        const sim::Time commit_start = sim_.now();
        co_await sim_.delay(
            degrade_->fallback_fixed +
            degrade_->fallback_per_tx *
                static_cast<sim::Time>(block.envelopes.size()));
        // Full software validation against the shadow state, committing to
        // the same ledger the hardware path uses — the commit-hash chain
        // continues exactly as if the hardware had produced the flags.
        fabric::BlockValidationResult verdict =
            fallback_backend_->validate_and_commit(block, shadow_state_,
                                                   ledger_);
        if (verdict.block_valid) {
          ++host_metrics_.blocks_committed;
          host_metrics_.transactions_committed += verdict.flags.size();
          host_metrics_.valid_transactions += verdict.valid_tx_count;
          // Write-through: the in-hardware KV store must see this block's
          // writes before it validates any later block's reads.
          apply_writes_to_hw_store(block, verdict.flags);
        } else {
          ++host_metrics_.blocks_rejected;
        }
        ++degrade_metrics_.fallback_blocks;
        if (fallback_ctr_ != nullptr) fallback_ctr_->inc();
        if (flight_ != nullptr) {
          flight_->record(obs::FlightStage::kFallback, block_num,
                          verdict.block_valid ? "committed" : "rejected");
          flight_->trigger("bmac:fallback block " + std::to_string(block_num));
        }
        if (commits_ctr_ != nullptr && verdict.block_valid)
          commits_ctr_->inc();
        if (commit_latency_us_ != nullptr) {
          commit_latency_us_->observe(
              static_cast<double>(sim_.now() - commit_start) / 1000.0);
        }
        if (tracer_ != nullptr) {
          tracer_->complete(
              host_lane_, "host_commit_fallback", "host-commit", commit_start,
              sim_.now(),
              {{"block", block_num},
               {"txs", static_cast<std::uint64_t>(verdict.flags.size())},
               {"committed", verdict.block_valid},
               {"fallback", true}});
        }
        ResultEntry result;
        result.block_num = block_num;
        result.block_valid = verdict.block_valid;
        result.flags = std::move(verdict.flags);
        result.fallback = true;
        results_.push_back(std::move(result));
        resolve_block(block_num);
        continue;
      }
      break;  // nothing resolvable at next_commit_ yet
    }
    co_await commit_kick_->wait();
  }
}

void BmacPeer::resolve_block(std::uint64_t block_num) {
  auto it = streams_.find(block_num);
  if (it != streams_.end()) {
    if (it->second.state != StreamAssembly::State::kReleased) {
      ++degrade_metrics_.streams_aborted;
      if (abort_ctr_ != nullptr) abort_ctr_->inc();
      if (flight_ != nullptr)
        flight_->record(obs::FlightStage::kAborted, block_num,
                        "partial_stream");
    }
    streams_.erase(it);
  }
  hw_results_.erase(block_num);
  fallback_pending_.erase(block_num);
  auto wd = watchdogs_.find(block_num);
  if (wd != watchdogs_.end()) {
    sim_.cancel(wd->second);
    watchdogs_.erase(wd);
  }
  next_commit_ = block_num + 1;
  if (next_release_ <= block_num) {
    next_release_ = block_num + 1;
    release_kick_->fire(0);
  }
}

void BmacPeer::apply_writes_to_shadow(
    const fabric::Block& block,
    const std::vector<fabric::TxValidationCode>& flags) {
  for (std::size_t i = 0; i < block.envelopes.size(); ++i) {
    if (flags[i] != fabric::TxValidationCode::kValid) continue;
    const auto tx = fabric::parse_envelope(block.envelopes[i]);
    if (!tx) continue;
    const fabric::Version version{block.header.number,
                                  static_cast<std::uint32_t>(i)};
    for (const fabric::KVWrite& write : tx->rwset.writes)
      shadow_state_.put(
          fabric::StateDb::namespaced(tx->chaincode_id, write.key),
          write.value, version);
  }
}

void BmacPeer::apply_writes_to_hw_store(
    const fabric::Block& block,
    const std::vector<fabric::TxValidationCode>& flags) {
  // Gather the block's valid writes into one burst (parity with the state
  // DB's batched commit): a single write-through transaction over PCIe.
  std::vector<HwKvStore::BatchWrite> burst;
  for (std::size_t i = 0; i < block.envelopes.size(); ++i) {
    if (flags[i] != fabric::TxValidationCode::kValid) continue;
    const auto tx = fabric::parse_envelope(block.envelopes[i]);
    if (!tx) continue;
    const fabric::Version version{block.header.number,
                                  static_cast<std::uint32_t>(i)};
    for (const fabric::KVWrite& write : tx->rwset.writes)
      burst.push_back(HwKvStore::BatchWrite{
          fabric::StateDb::namespaced(tx->chaincode_id, write.key),
          write.value, version});
  }
  processor_.statedb().write_batch(std::move(burst));
}

sim::Process BmacPeer::host_commit_proc() {
  const HwTimingModel& t = config_.timing;
  for (;;) {
    // GetBlockData(): returns when reg_map holds the validation result.
    ResultEntry result = co_await processor_.reg_map().get();
    const sim::Time commit_start = sim_.now();
    co_await sim_.delay(t.host_result_read);

    // The same block arrives via Gossip/forwarded UDP; normally it is
    // already here since hardware validation takes far longer than block
    // delivery. Poll briefly otherwise.
    auto it = pending_blocks_.find(result.block_num);
    while (it == pending_blocks_.end()) {
      co_await sim_.delay(100 * sim::kMicrosecond);
      it = pending_blocks_.find(result.block_num);
    }
    fabric::Block block = std::move(it->second);
    pending_blocks_.erase(it);

    if (result.block_valid) {
      assert(result.flags.size() == block.envelopes.size());
      for (std::size_t i = 0; i < result.flags.size(); ++i)
        block.metadata.tx_flags[i] =
            static_cast<std::uint8_t>(result.flags[i]);
      co_await sim_.delay(
          t.ledger_commit_fixed +
          t.ledger_commit_per_tx * static_cast<sim::Time>(result.flags.size()));
      ledger_.append(std::move(block));
      ++host_metrics_.blocks_committed;
      host_metrics_.transactions_committed += result.flags.size();
      for (const auto flag : result.flags)
        if (flag == fabric::TxValidationCode::kValid)
          ++host_metrics_.valid_transactions;
    } else {
      ++host_metrics_.blocks_rejected;
    }
    if (commits_ctr_ != nullptr && result.block_valid) commits_ctr_->inc();
    if (commit_latency_us_ != nullptr) {
      commit_latency_us_->observe(
          static_cast<double>(sim_.now() - commit_start) / 1000.0);
    }
    if (tracer_ != nullptr) {
      tracer_->complete(
          host_lane_, "host_commit", "host-commit", commit_start, sim_.now(),
          {{"block", result.block_num},
           {"txs", static_cast<std::uint64_t>(result.flags.size())},
           {"committed", result.block_valid}});
    }
    results_.push_back(std::move(result));
  }
}

}  // namespace bm::bmac

#include "bmac/protocol.hpp"

#include <algorithm>

#include "crypto/der.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"
#include "wire/proto.hpp"

namespace bm::bmac {

namespace {

using fabric::txfield::kAction;
using fabric::txfield::kChaincodeId;
using fabric::txfield::kCreatorCert;
using fabric::txfield::kEndorsement;
using fabric::txfield::kEndorserCert;
using fabric::txfield::kEndorserSig;
using fabric::txfield::kHeader;
using fabric::txfield::kPayload;
using fabric::txfield::kRwset;
using fabric::txfield::kSignature;
using fabric::txfield::kSignatureHeader;

/// Absolute offset of a nested span inside its root buffer. Valid because
/// ProtoReader yields subspans aliasing the buffer it reads.
std::size_t offset_in(ByteView root, ByteView sub) {
  return static_cast<std::size_t>(sub.data() - root.data());
}

struct Removal {
  std::size_t offset = 0;  ///< in the original section bytes
  std::size_t length = 0;
  fabric::EncodedId id;
  std::uint8_t index = 0;
};

/// DataRemover: strip identities, producing the modified payload and the
/// locator annotations (offsets in the modified payload).
Bytes remove_identities(ByteView original, std::vector<Removal> removals,
                        std::vector<Annotation>& annotations) {
  std::sort(removals.begin(), removals.end(),
            [](const Removal& a, const Removal& b) {
              return a.offset < b.offset;
            });
  Bytes out;
  out.reserve(original.size());
  std::size_t pos = 0;
  for (const Removal& r : removals) {
    append(out, original.subspan(pos, r.offset - pos));
    Annotation locator;
    locator.kind = Annotation::Kind::kLocator;
    locator.index = r.index;
    locator.offset = static_cast<std::uint32_t>(out.size());
    locator.length = static_cast<std::uint32_t>(r.length);
    locator.id = r.id;
    annotations.push_back(locator);
    out.push_back(static_cast<std::uint8_t>(r.id.value >> 8));
    out.push_back(static_cast<std::uint8_t>(r.id.value));
    pos = r.offset + r.length;
  }
  append(out, original.subspan(pos));
  return out;
}

Annotation pointer(FieldId field, std::size_t offset, std::size_t length,
                   std::uint8_t index = 0) {
  Annotation a;
  a.kind = Annotation::Kind::kPointer;
  a.field = field;
  a.index = index;
  a.offset = static_cast<std::uint32_t>(offset);
  a.length = static_cast<std::uint32_t>(length);
  return a;
}

/// Metadata section body: orderer certificate (1) + orderer signature (2).
enum : std::uint32_t { kMetaCert = 1, kMetaSig = 2 };

}  // namespace

SendResult ProtocolSender::send(const fabric::Block& block) {
  SendResult result;
  result.gossip_size = block.marshal().size();

  const std::uint16_t total_sections =
      static_cast<std::uint16_t>(2 + block.envelopes.size());

  auto emit_identity_sync = [&](fabric::EncodedId id, ByteView cert_bytes) {
    BmacPacket sync;
    sync.header.block_num = block.header.number;
    sync.header.section = SectionType::kIdentitySync;
    sync.header.total_sections = total_sections;
    Annotation locator;
    locator.kind = Annotation::Kind::kLocator;
    locator.id = id;
    locator.length = static_cast<std::uint32_t>(cert_bytes.size());
    sync.annotations.push_back(locator);
    sync.payload.assign(cert_bytes.begin(), cert_bytes.end());
    result.packets.push_back(std::move(sync));
  };

  /// Look up (and on miss, sync) an identity; nullopt if unknown to the MSP.
  auto resolve = [&](ByteView cert_bytes) -> std::optional<fabric::EncodedId> {
    const auto lookup = cache_.lookup_or_insert(cert_bytes);
    if (!lookup) return std::nullopt;
    if (lookup->newly_inserted) emit_identity_sync(lookup->id, cert_bytes);
    return lookup->id;
  };

  // --- Header section -----------------------------------------------------
  {
    BmacPacket pkt;
    pkt.header.block_num = block.header.number;
    pkt.header.section = SectionType::kHeader;
    pkt.header.section_index = 0;
    pkt.header.total_sections = total_sections;
    pkt.payload = block.header.marshal();
    pkt.annotations.push_back(
        pointer(FieldId::kHeaderBytes, 0, pkt.payload.size()));
    pkt.header.annotation_count =
        static_cast<std::uint16_t>(pkt.annotations.size());
    pkt.header.payload_size = static_cast<std::uint32_t>(pkt.payload.size());
    result.packets.push_back(std::move(pkt));
  }

  // --- Transaction sections -----------------------------------------------
  for (std::size_t i = 0; i < block.envelopes.size(); ++i) {
    const ByteView envelope = block.envelopes[i];
    BmacPacket pkt;
    pkt.header.block_num = block.header.number;
    pkt.header.section = SectionType::kTransaction;
    pkt.header.section_index = static_cast<std::uint16_t>(i);
    pkt.header.total_sections = total_sections;

    std::vector<Annotation> pointers;
    std::vector<Removal> removals;

    const auto payload = wire::find_bytes_field(envelope, kPayload);
    const auto signature = wire::find_bytes_field(envelope, kSignature);
    if (payload && signature) {
      pointers.push_back(pointer(FieldId::kPayloadBytes,
                                 offset_in(envelope, *payload),
                                 payload->size()));
      pointers.push_back(pointer(FieldId::kCreatorSig,
                                 offset_in(envelope, *signature),
                                 signature->size()));
      if (const auto header = wire::find_bytes_field(*payload, kHeader)) {
        if (const auto sig_header =
                wire::find_bytes_field(*header, kSignatureHeader)) {
          if (const auto creator =
                  wire::find_bytes_field(*sig_header, kCreatorCert)) {
            if (const auto id = resolve(*creator)) {
              removals.push_back(Removal{offset_in(envelope, *creator),
                                         creator->size(), *id,
                                         kCreatorLocator});
              result.identities_removed++;
              result.identity_bytes_removed += creator->size();
            }
          }
        }
      }
      if (const auto action = wire::find_bytes_field(*payload, kAction)) {
        if (const auto cc = wire::find_bytes_field(*action, kChaincodeId))
          pointers.push_back(pointer(FieldId::kChaincodeId,
                                     offset_in(envelope, *cc), cc->size()));
        if (const auto rwset = wire::find_bytes_field(*action, kRwset))
          pointers.push_back(pointer(FieldId::kRwset,
                                     offset_in(envelope, *rwset),
                                     rwset->size()));
        std::uint8_t end_index = 0;
        for (const ByteView endorsement :
             wire::find_repeated_bytes(*action, kEndorsement)) {
          if (const auto sig =
                  wire::find_bytes_field(endorsement, kEndorserSig))
            pointers.push_back(pointer(FieldId::kEndorsementSig,
                                       offset_in(envelope, *sig), sig->size(),
                                       end_index));
          if (const auto cert =
                  wire::find_bytes_field(endorsement, kEndorserCert)) {
            if (const auto id = resolve(*cert)) {
              removals.push_back(Removal{offset_in(envelope, *cert),
                                         cert->size(), *id, end_index});
              result.identities_removed++;
              result.identity_bytes_removed += cert->size();
            }
          }
          ++end_index;
        }
      }
    }

    pkt.annotations = std::move(pointers);
    pkt.payload = remove_identities(envelope, std::move(removals),
                                    pkt.annotations);
    pkt.header.annotation_count =
        static_cast<std::uint16_t>(pkt.annotations.size());
    pkt.header.payload_size = static_cast<std::uint32_t>(pkt.payload.size());
    result.packets.push_back(std::move(pkt));
  }

  // --- Metadata section ----------------------------------------------------
  {
    wire::ProtoWriter meta;
    meta.bytes_field(kMetaCert, block.metadata.orderer_cert);
    meta.bytes_field(kMetaSig, block.metadata.orderer_sig);
    const Bytes original = meta.take();

    BmacPacket pkt;
    pkt.header.block_num = block.header.number;
    pkt.header.section = SectionType::kMetadata;
    pkt.header.section_index =
        static_cast<std::uint16_t>(total_sections - 1);
    pkt.header.total_sections = total_sections;

    std::vector<Removal> removals;
    const auto cert = wire::find_bytes_field(original, kMetaCert);
    const auto sig = wire::find_bytes_field(original, kMetaSig);
    if (sig)
      pkt.annotations.push_back(pointer(FieldId::kOrdererSig,
                                        offset_in(original, *sig),
                                        sig->size()));
    if (cert) {
      if (const auto id = resolve(*cert)) {
        removals.push_back(Removal{offset_in(original, *cert), cert->size(),
                                   *id, kOrdererLocator});
        result.identities_removed++;
        result.identity_bytes_removed += cert->size();
      }
    }
    pkt.payload =
        remove_identities(original, std::move(removals), pkt.annotations);
    pkt.header.annotation_count =
        static_cast<std::uint16_t>(pkt.annotations.size());
    pkt.header.payload_size = static_cast<std::uint32_t>(pkt.payload.size());
    result.packets.push_back(std::move(pkt));
  }

  for (const BmacPacket& pkt : result.packets)
    result.bmac_size += pkt.wire_size();
  return result;
}

std::optional<Bytes> ProtocolReceiver::reconstruct_section(
    const BmacPacket& packet, const HwIdentityCache& cache) {
  // Locators are emitted in ascending modified-payload offset order.
  Bytes out;
  std::size_t pos = 0;
  for (const Annotation& a : packet.annotations) {
    if (a.kind != Annotation::Kind::kLocator) continue;
    if (a.offset + 2 > packet.payload.size() || a.offset < pos)
      return std::nullopt;
    append(out, ByteView(packet.payload).subspan(pos, a.offset - pos));
    const auto* entry = cache.find(a.id);
    if (entry == nullptr || entry->cert_bytes.size() != a.length)
      return std::nullopt;
    append(out, entry->cert_bytes);
    pos = a.offset + 2;
  }
  append(out, ByteView(packet.payload).subspan(pos));
  return out;
}

ProtocolReceiver::Emitted ProtocolReceiver::on_packet(
    const BmacPacket& packet) {
  Emitted emitted;

  if (packet.header.section == SectionType::kIdentitySync) {
    if (packet.annotations.size() != 1 ||
        !cache_.insert(packet.annotations[0].id, packet.payload))
      emitted.error = true;
    return emitted;
  }

  PendingBlock& pending = pending_[packet.header.block_num];
  const auto section = reconstruct_section(packet, cache_);
  if (!section) {
    emitted.error = true;
    return emitted;
  }

  auto find_pointer = [&](FieldId field,
                          std::uint8_t index = 0) -> std::optional<ByteView> {
    for (const Annotation& a : packet.annotations) {
      if (a.kind != Annotation::Kind::kPointer || a.field != field ||
          a.index != index)
        continue;
      if (a.offset + a.length > section->size()) return std::nullopt;
      return ByteView(*section).subspan(a.offset, a.length);
    }
    return std::nullopt;
  };

  auto locator_id = [&](std::uint8_t index)
      -> std::optional<fabric::EncodedId> {
    for (const Annotation& a : packet.annotations)
      if (a.kind == Annotation::Kind::kLocator && a.index == index)
        return a.id;
    return std::nullopt;
  };

  /// DataProcessor: DER signature + cached public key -> VerifyRequest.
  auto make_request = [&](std::optional<ByteView> der_sig,
                          std::optional<fabric::EncodedId> signer,
                          const crypto::Digest& digest) {
    VerifyRequest request;
    request.digest = digest;
    request.well_formed = false;
    if (!der_sig || !signer) return request;
    const auto sig = crypto::der_decode_signature(*der_sig);
    const auto* entry = cache_.find(*signer);
    if (!sig || entry == nullptr) return request;
    request.signature = *sig;
    request.key = entry->cert.public_key;
    request.well_formed = true;
    return request;
  };

  switch (packet.header.section) {
    case SectionType::kHeader: {
      pending.header_bytes = *section;
      pending.have_header = true;
      pending.tx_count = packet.header.total_sections >= 2
                             ? packet.header.total_sections - 2
                             : 0;
      break;
    }
    case SectionType::kMetadata: {
      if (!pending.have_header) {
        emitted.error = true;
        return emitted;
      }
      const auto signer = locator_id(kOrdererLocator);
      crypto::Sha256 h;  // HashCalculator unit 1: block hash
      h.update(pending.header_bytes);
      if (signer) {
        if (const auto* entry = cache_.find(*signer))
          h.update(entry->cert_bytes);
      }
      BlockEntry entry;
      entry.block_num = packet.header.block_num;
      entry.tx_count = pending.tx_count;
      entry.verify =
          make_request(find_pointer(FieldId::kOrdererSig), signer, h.finish());
      emitted.block = entry;
      pending_.erase(packet.header.block_num);
      break;
    }
    case SectionType::kTransaction: {
      TxEntry tx;
      tx.block_num = packet.header.block_num;
      tx.tx_seq = packet.header.section_index;

      const auto chaincode = find_pointer(FieldId::kChaincodeId);
      if (chaincode) tx.chaincode_id = to_string(*chaincode);

      const auto payload = find_pointer(FieldId::kPayloadBytes);
      crypto::Digest tx_digest{};  // HashCalculator unit 2: tx hash
      if (payload) tx_digest = crypto::sha256(*payload);
      tx.verify = make_request(find_pointer(FieldId::kCreatorSig),
                               locator_id(kCreatorLocator), tx_digest);
      if (!payload) tx.verify.well_formed = false;

      const auto rwset_bytes = find_pointer(FieldId::kRwset);

      // Endorsements, in index order.
      for (std::uint8_t index = 0;; ++index) {
        const auto signer = locator_id(index);
        const auto sig = find_pointer(FieldId::kEndorsementSig, index);
        if (!signer && !sig) break;
        EndsEntry endorsement;
        endorsement.endorser =
            signer.value_or(fabric::EncodedId{0});
        crypto::Sha256 h;  // HashCalculator unit 3: endorsement hash
        if (chaincode) h.update(*chaincode);
        if (rwset_bytes) h.update(*rwset_bytes);
        if (signer) {
          if (const auto* entry = cache_.find(*signer))
            h.update(entry->cert_bytes);
        }
        endorsement.verify = make_request(sig, signer, h.finish());
        emitted.ends.push_back(std::move(endorsement));
      }
      tx.endorsement_count = static_cast<std::uint16_t>(emitted.ends.size());

      // Simplified protobuf decoder for the read and write sets.
      if (rwset_bytes) {
        if (const auto rwset = fabric::ReadWriteSet::unmarshal(*rwset_bytes)) {
          for (const auto& read : rwset->reads)
            emitted.reads.push_back(RdsetEntry{
                fabric::StateDb::namespaced(tx.chaincode_id, read.key),
                read.version});
          for (const auto& write : rwset->writes)
            emitted.writes.push_back(WrsetEntry{
                fabric::StateDb::namespaced(tx.chaincode_id, write.key),
                write.value});
        }
      }
      tx.read_count = static_cast<std::uint16_t>(emitted.reads.size());
      tx.write_count = static_cast<std::uint16_t>(emitted.writes.size());
      tx.parse_ok = payload.has_value() && chaincode.has_value() &&
                    rwset_bytes.has_value() &&
                    find_pointer(FieldId::kCreatorSig).has_value();
      emitted.txs.push_back(std::move(tx));
      break;
    }
    case SectionType::kIdentitySync:
      break;  // handled above
  }
  return emitted;
}

}  // namespace bm::bmac

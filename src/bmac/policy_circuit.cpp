#include "bmac/policy_circuit.hpp"

#include <functional>

namespace bm::bmac {

void RegisterFile::set(fabric::EncodedId id, bool valid) {
  const std::uint8_t org = id.org();
  if (org == 0 || org >= bits_.size()) return;  // unknown org: no register
  const auto bit = static_cast<std::uint8_t>(1u << static_cast<int>(id.role()));
  if (valid) bits_[org] |= bit;
  else bits_[org] &= static_cast<std::uint8_t>(~bit);
}

bool RegisterFile::get(std::uint8_t org, fabric::Role role) const {
  if (org == 0 || org >= bits_.size()) return false;
  return (bits_[org] >> static_cast<int>(role)) & 1;
}

namespace {

/// Expansion limit for k-of-n -> sum-of-products (n choose k AND terms).
constexpr std::size_t kMaxExpansionTerms = 64;

std::size_t choose(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
    if (result > 10 * kMaxExpansionTerms) return result;  // avoid overflow
  }
  return result;
}

class Compiler {
 public:
  Compiler(const fabric::Msp& msp, std::vector<Gate>& gates)
      : msp_(msp), gates_(gates) {}

  std::uint32_t compile(const fabric::PolicyNode& node) {
    switch (node.kind) {
      case fabric::PolicyNode::Kind::kPrincipal:
        return input_gate(node.principal);
      case fabric::PolicyNode::Kind::kAnd:
        return nary(Gate::Type::kAnd, node.children);
      case fabric::PolicyNode::Kind::kOr:
        return nary(Gate::Type::kOr, node.children);
      case fabric::PolicyNode::Kind::kKOutOf:
        return k_out_of(node);
    }
    return input_gate({});  // unreachable
  }

 private:
  std::uint32_t emit(Gate gate) {
    gates_.push_back(std::move(gate));
    return static_cast<std::uint32_t>(gates_.size() - 1);
  }

  std::uint32_t input_gate(const fabric::PolicyPrincipal& principal) {
    Gate gate;
    gate.type = Gate::Type::kInput;
    const auto* ca = msp_.find_org(principal.org);
    gate.org = ca ? ca->org_index() : 0;  // org 0 reads constant false
    gate.role = principal.role;
    return emit(std::move(gate));
  }

  std::uint32_t nary(Gate::Type type,
                     const std::vector<fabric::PolicyNodePtr>& children) {
    Gate gate;
    gate.type = type;
    gate.inputs.reserve(children.size());
    for (const auto& child : children) gate.inputs.push_back(compile(*child));
    return emit(std::move(gate));
  }

  std::uint32_t k_out_of(const fabric::PolicyNode& node) {
    const std::size_t n = node.children.size();
    const auto k = static_cast<std::size_t>(node.k);

    std::vector<std::uint32_t> child_gates;
    child_gates.reserve(n);
    for (const auto& child : node.children)
      child_gates.push_back(compile(*child));

    if (choose(n, k) <= kMaxExpansionTerms) {
      // Sum-of-products expansion: OR over all k-subsets of AND terms.
      std::vector<std::uint32_t> terms;
      std::vector<std::size_t> pick(k);
      std::function<void(std::size_t, std::size_t)> recurse =
          [&](std::size_t start, std::size_t depth) {
            if (depth == k) {
              if (k == 1) {
                terms.push_back(child_gates[pick[0]]);
                return;
              }
              Gate and_gate;
              and_gate.type = Gate::Type::kAnd;
              for (std::size_t i = 0; i < k; ++i)
                and_gate.inputs.push_back(child_gates[pick[i]]);
              terms.push_back(emit(std::move(and_gate)));
              return;
            }
            for (std::size_t i = start; i + (k - depth) <= n; ++i) {
              pick[depth] = i;
              recurse(i + 1, depth + 1);
            }
          };
      recurse(0, 0);
      if (terms.size() == 1) return terms[0];
      Gate or_gate;
      or_gate.type = Gate::Type::kOr;
      or_gate.inputs = std::move(terms);
      return emit(std::move(or_gate));
    }

    Gate threshold;
    threshold.type = Gate::Type::kThreshold;
    threshold.k = node.k;
    threshold.inputs = std::move(child_gates);
    return emit(std::move(threshold));
  }

  const fabric::Msp& msp_;
  std::vector<Gate>& gates_;
};

}  // namespace

PolicyCircuit PolicyCircuit::compile(const fabric::EndorsementPolicy& policy,
                                     const fabric::Msp& msp) {
  PolicyCircuit circuit;
  circuit.source_text_ = policy.text();
  if (!policy.empty()) {
    Compiler compiler(msp, circuit.gates_);
    compiler.compile(policy.root());
  }
  return circuit;
}

bool PolicyCircuit::evaluate(const RegisterFile& regs) const {
  if (gates_.empty()) return false;
  std::vector<std::uint8_t> values(gates_.size(), 0);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.type) {
      case Gate::Type::kInput:
        values[i] = regs.get(gate.org, gate.role) ? 1 : 0;
        break;
      case Gate::Type::kAnd: {
        bool all = true;
        for (const std::uint32_t input : gate.inputs)
          all = all && values[input] != 0;
        values[i] = all ? 1 : 0;
        break;
      }
      case Gate::Type::kOr: {
        bool any = false;
        for (const std::uint32_t input : gate.inputs)
          any = any || values[input] != 0;
        values[i] = any ? 1 : 0;
        break;
      }
      case Gate::Type::kThreshold: {
        int count = 0;
        for (const std::uint32_t input : gate.inputs)
          count += values[input] != 0 ? 1 : 0;
        values[i] = count >= gate.k ? 1 : 0;
        break;
      }
    }
  }
  return values.back() != 0;
}

CircuitStats PolicyCircuit::stats() const {
  CircuitStats stats;
  for (const Gate& gate : gates_) {
    switch (gate.type) {
      case Gate::Type::kInput: ++stats.inputs; break;
      case Gate::Type::kAnd: ++stats.and_gates; break;
      case Gate::Type::kOr: ++stats.or_gates; break;
      case Gate::Type::kThreshold: ++stats.threshold_gates; break;
    }
    stats.total_gate_inputs += gate.inputs.size();
  }
  return stats;
}

}  // namespace bm::bmac

// block_processor: the integrated block-level and transaction-level
// validation pipeline (§3.3, Fig. 4), as a discrete-event model.
//
// Structure (all stages are coroutine processes over bounded FIFOs):
//
//   block_fifo -> [block_verify] -> ctl -> [tx_scheduler] ---> validator 0..V-1
//                 (1 ecdsa_engine)            |                [tx_verify ->
//   tx_fifo   --------------------------------+                 tx_vscc(E engines,
//   ends_fifo --------------------------------+                 ends_scheduler +
//                                                               policy circuit)]
//   rdset_fifo / wrset_fifo -> [tx_mvcc_commit] <- [tx_collector (in order)]
//                                   |-> res_fifo -> [reg_map]
//
// Fidelity points from the paper:
//  - dedicated ecdsa_engine for block_verify and per-validator tx_verify;
//  - configurable V tx_validators each with E ecdsa_engines in tx_vscc;
//  - ends_scheduler short-circuits: it re-evaluates the compiled policy
//    circuit after every verification round and drops the remaining
//    endorsements once the policy is satisfied (Fig. 7e's 2of3 win);
//  - tx_verify skips engine work for transactions already invalid;
//  - tx_collector restores program order before the sequential mvcc stage;
//  - tx_mvcc_commit combines mvcc and state-db commit in one stage and
//    consumes (drains) read/write-set entries even for invalid transactions;
//  - reg_map blocks new results until the host has read the previous one;
//  - block_monitor counters (per-block timing, engine utilization).
#pragma once

#include <map>

#include "bmac/hw_kvstore.hpp"
#include "bmac/hw_timing.hpp"
#include "bmac/policy_circuit.hpp"
#include "bmac/records.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fifo.hpp"

namespace bm::bmac {

struct HwConfig {
  int tx_validators = 8;        ///< V: parallel tx_verify+tx_vscc instances
  int engines_per_vscc = 2;     ///< E: ecdsa_engines per tx_vscc
  std::size_t max_block_txs = 256;
  std::size_t db_capacity = 8192;
  /// Ablation knob: when false, the ends_scheduler verifies every
  /// endorsement like the Fabric software does, instead of stopping once
  /// the policy circuit is satisfied (§3.3's short-circuit evaluation).
  bool short_circuit_vscc = true;
  HwTimingModel timing;

  std::string name() const {
    return std::to_string(tx_validators) + "x" +
           std::to_string(engines_per_vscc);
  }
};

/// Aggregate counters kept by the block_monitor.
struct MonitorStats {
  std::uint64_t blocks = 0;
  std::uint64_t transactions = 0;
  std::uint64_t valid_transactions = 0;
  std::uint64_t ecdsa_executed = 0;
  std::uint64_t ecdsa_skipped = 0;  ///< short-circuit + invalid-skip wins
  sim::Time total_block_latency = 0;  ///< sum of (validate_end - received_at)
};

class BlockProcessor {
 public:
  BlockProcessor(sim::Simulation& sim, HwConfig config,
                 std::map<std::string, PolicyCircuit> policies);

  /// Spawn all pipeline processes. Call once before Simulation::run().
  void start();

  /// Attach observability sinks (either may be null). Call before start():
  /// registers the pipeline's metrics, creates one trace lane per stage and
  /// per FIFO, and hooks the FIFO depth/stall probes. With both sinks null
  /// (the default) instrumentation reduces to per-site pointer checks and
  /// never schedules simulation events, so timing is unchanged.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

  /// Publish/refresh the gauges derived from lifetime state — per-validator
  /// ecdsa-engine utilization, FIFO peak depths, event-queue high-water
  /// mark. Idempotent; call any time after (or during) a run. No-op when no
  /// registry is attached.
  void publish_metrics();

  // Input FIFOs, written by the protocol_processor (or synthetic feeder).
  sim::Fifo<BlockEntry>& block_fifo() { return block_fifo_; }
  sim::Fifo<TxEntry>& tx_fifo() { return tx_fifo_; }
  sim::Fifo<EndsEntry>& ends_fifo() { return ends_fifo_; }
  sim::Fifo<RdsetEntry>& rdset_fifo() { return rdset_fifo_; }
  sim::Fifo<WrsetEntry>& wrset_fifo() { return wrset_fifo_; }

  /// Output: validation results in block order, one entry at a time
  /// (reg_map semantics — the producer blocks until the host reads).
  sim::Fifo<ResultEntry>& reg_map() { return reg_map_; }

  HwKvStore& statedb() { return statedb_; }
  const HwKvStore& statedb() const { return statedb_; }
  const MonitorStats& monitor() const { return monitor_; }
  const HwConfig& config() const { return config_; }

 private:
  /// Control record passed from block_verify to the block_validate stage.
  struct BlockCtl {
    BlockCtl() = default;

    std::uint64_t block_num = 0;
    std::uint32_t tx_count = 0;
    bool block_valid = false;
    BlockStats stats;
  };

  /// Work unit dispatched to a validator.
  struct DispatchedTx {
    DispatchedTx() = default;

    TxEntry tx;
    std::vector<EndsEntry> ends;
    bool block_valid = false;
    sim::Time dispatched_at = 0;
  };

  /// Intermediate result between tx_verify and tx_vscc.
  struct VerifiedTx {
    VerifiedTx() = default;

    DispatchedTx work;
    bool creator_ok = false;
    std::uint32_t executed = 0;
    std::uint32_t skipped = 0;
  };

  /// Result of one transaction leaving a validator.
  struct ValidatedTx {
    ValidatedTx() = default;

    std::uint32_t tx_seq = 0;
    fabric::TxValidationCode code = fabric::TxValidationCode::kNotValidated;
    std::uint16_t read_count = 0;
    std::uint16_t write_count = 0;
    std::uint32_t executed = 0;
    std::uint32_t skipped = 0;
    sim::Time latency = 0;  ///< dispatch -> vscc verdict
  };

  sim::Process block_verify_proc();
  sim::Process tx_scheduler_proc();
  sim::Process tx_verify_proc(int validator);
  sim::Process tx_vscc_proc(int validator);
  sim::Process tx_collector_proc();
  sim::Process tx_mvcc_commit_proc();
  sim::Process reg_map_proc();

  sim::Simulation& sim_;
  HwConfig config_;
  std::map<std::string, PolicyCircuit> policies_;
  std::size_t policy_org_count_ = 0;

  // Input FIFO capacities mirror modest on-chip buffers; back-pressure
  // through them is part of the model.
  sim::Fifo<BlockEntry> block_fifo_;
  sim::Fifo<TxEntry> tx_fifo_;
  sim::Fifo<EndsEntry> ends_fifo_;
  sim::Fifo<RdsetEntry> rdset_fifo_;
  sim::Fifo<WrsetEntry> wrset_fifo_;

  sim::Fifo<BlockCtl> verify_to_validate_;   ///< 2-stage block pipeline
  sim::Fifo<BlockCtl> collector_ctl_;        ///< block info for the collector
  sim::Fifo<BlockCtl> mvcc_ctl_;             ///< block info for mvcc stage
  sim::Fifo<int> free_validators_;           ///< ends_scheduler work tokens
  sim::Fifo<int> assignment_order_;          ///< dispatch order for collector
  std::vector<std::unique_ptr<sim::Fifo<DispatchedTx>>> validator_in_;
  std::vector<std::unique_ptr<sim::Fifo<VerifiedTx>>> verify_to_vscc_;
  std::vector<std::unique_ptr<sim::Fifo<ValidatedTx>>> validator_out_;
  sim::Fifo<ValidatedTx> collected_;         ///< in program order
  /// Completion handshake: block_validate processes one block at a time
  /// (§3.3: res_fifo is written "after the entire block has been
  /// processed"); the scheduler takes the next block only after this token.
  sim::Fifo<int> block_done_;
  sim::Fifo<ResultEntry> res_fifo_;
  sim::Fifo<ResultEntry> reg_map_;

  HwKvStore statedb_;
  MonitorStats monitor_;

  // --- observability -------------------------------------------------------
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  struct TraceLanes {
    int block_verify = 0;
    int scheduler = 0;
    int collector = 0;
    int mvcc = 0;
    int monitor = 0;
    int reg_map = 0;
    std::vector<int> tx_verify;  ///< one lane per validator
    std::vector<int> tx_vscc;
  } lanes_;
  /// Busy-time accumulators for the engine-utilization gauges (always on —
  /// three integer adds per transaction).
  sim::Time block_engine_busy_ = 0;
  std::vector<sim::Time> verify_engine_busy_;
  std::vector<sim::Time> vscc_engine_busy_;
  // Cached registry handles (null when unattached).
  obs::Histogram* block_latency_ms_ = nullptr;
  obs::Histogram* tx_latency_us_ = nullptr;
  obs::Counter* ecdsa_executed_ctr_ = nullptr;
  obs::Counter* ecdsa_skipped_ctr_ = nullptr;
  obs::Counter* blocks_ctr_ = nullptr;
  obs::Counter* txs_ctr_ = nullptr;
  obs::Counter* valid_txs_ctr_ = nullptr;
};

}  // namespace bm::bmac

#include "bmac/packet.hpp"

namespace bm::bmac {

Bytes BmacPacket::encode() const {
  Bytes out;
  out.reserve(wire_size());
  put_u64be(out, header.block_num);
  out.push_back(static_cast<std::uint8_t>(header.section));
  put_u16be(out, header.section_index);
  put_u16be(out, header.total_sections);
  put_u16be(out, static_cast<std::uint16_t>(annotations.size()));
  put_u32be(out, static_cast<std::uint32_t>(payload.size()));
  for (const Annotation& a : annotations) {
    out.push_back(static_cast<std::uint8_t>(a.kind));
    out.push_back(static_cast<std::uint8_t>(a.field));
    out.push_back(a.index);
    put_u32be(out, a.offset);
    put_u32be(out, a.length);
    put_u16be(out, a.id.value);
  }
  append(out, payload);
  return out;
}

std::optional<BmacPacket> BmacPacket::decode(ByteView data) {
  if (data.size() < kPacketHeaderSize) return std::nullopt;
  BmacPacket pkt;
  pkt.header.block_num = get_u64be(data, 0);
  const std::uint8_t section = data[8];
  if (section > static_cast<std::uint8_t>(SectionType::kIdentitySync))
    return std::nullopt;
  pkt.header.section = static_cast<SectionType>(section);
  pkt.header.section_index = get_u16be(data, 9);
  pkt.header.total_sections = get_u16be(data, 11);
  pkt.header.annotation_count = get_u16be(data, 13);
  pkt.header.payload_size = get_u32be(data, 15);

  std::size_t pos = kPacketHeaderSize;
  const std::size_t ann_bytes = pkt.header.annotation_count * kAnnotationSize;
  if (pos + ann_bytes + pkt.header.payload_size != data.size())
    return std::nullopt;

  pkt.annotations.reserve(pkt.header.annotation_count);
  for (std::uint16_t i = 0; i < pkt.header.annotation_count; ++i) {
    Annotation a;
    const std::uint8_t kind = data[pos];
    if (kind > 1) return std::nullopt;
    a.kind = static_cast<Annotation::Kind>(kind);
    a.field = static_cast<FieldId>(data[pos + 1]);
    a.index = data[pos + 2];
    a.offset = get_u32be(data, pos + 3);
    a.length = get_u32be(data, pos + 7);
    a.id = fabric::EncodedId{get_u16be(data, pos + 11)};
    pkt.annotations.push_back(a);
    pos += kAnnotationSize;
  }
  pkt.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                     data.end());
  return pkt;
}

std::size_t BmacPacket::wire_size() const {
  return kPacketHeaderSize + annotations.size() * kAnnotationSize +
         payload.size();
}

}  // namespace bm::bmac

#include "bmac/reliable.hpp"

#include <algorithm>

#include "common/crc32.hpp"

namespace bm::bmac {

namespace {

void put_u64_le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u32_le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64_le(ByteView in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint32_t get_u32_le(ByteView in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

constexpr std::uint8_t kSyncFlag = 0x01;

}  // namespace

Bytes SequencedFrame::encode() const {
  Bytes out;
  out.reserve(wire_size());
  put_u64_le(out, seq);
  out.push_back(sync ? kSyncFlag : 0);
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32_le(out, crc32(ByteView(out)));
  return out;
}

std::optional<SequencedFrame> SequencedFrame::decode(ByteView wire) {
  if (wire.size() < kGbnFrameOverhead) return std::nullopt;
  const std::size_t body = wire.size() - 4;
  if (crc32(wire.subspan(0, body)) != get_u32_le(wire.subspan(body)))
    return std::nullopt;
  SequencedFrame frame;
  frame.seq = get_u64_le(wire);
  const std::uint8_t flags = wire[8];
  if ((flags & ~kSyncFlag) != 0) return std::nullopt;
  frame.sync = (flags & kSyncFlag) != 0;
  frame.payload.assign(wire.begin() + 9, wire.begin() + static_cast<std::ptrdiff_t>(body));
  return frame;
}

Bytes encode_ack(std::uint64_t next_expected) {
  Bytes out;
  out.reserve(kGbnAckWireSize);
  put_u64_le(out, next_expected);
  put_u32_le(out, crc32(ByteView(out)));
  return out;
}

std::optional<std::uint64_t> decode_ack(ByteView wire) {
  if (wire.size() != kGbnAckWireSize) return std::nullopt;
  if (crc32(wire.subspan(0, 8)) != get_u32_le(wire.subspan(8)))
    return std::nullopt;
  return get_u64_le(wire);
}

GbnSender::GbnSender(sim::Simulation& sim, Config config, TransmitFn transmit)
    : sim_(sim), config_(config), transmit_(std::move(transmit)) {}

void GbnSender::send(Bytes encoded_packet) {
  backlog_.push_back(std::move(encoded_packet));
  pump();
}

void GbnSender::pump() {
  while (!backlog_.empty() && outstanding_.size() < config_.window) {
    SequencedFrame frame;
    frame.seq = next_seq_++;
    frame.payload = std::move(backlog_.front());
    backlog_.pop_front();
    transmit_(frame);
    ++stats_.frames_sent;
    outstanding_.push_back(std::move(frame));
  }
  if (!outstanding_.empty()) arm_timer();
}

void GbnSender::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  if (current_rto_ <= 0) current_rto_ = config_.retransmit_timeout;
  timer_ = sim_.schedule(current_rto_, [this] {
    timer_armed_ = false;
    on_timeout();
  });
}

void GbnSender::on_timeout() {
  if (outstanding_.empty()) return;
  ++stats_.timeouts;
  ++attempts_;
  if (config_.retransmit_cap > 0 && attempts_ > config_.retransmit_cap) {
    resync();
    return;
  }
  // Go-Back-N: retransmit every unacknowledged frame, oldest first.
  for (const SequencedFrame& frame : outstanding_) {
    transmit_(frame);
    ++stats_.retransmissions;
  }
  // Exponential backoff: each fruitless round waits longer, so a congested
  // or partitioned path is not hammered at the base rate.
  if (config_.rto_backoff > 1.0) {
    current_rto_ = std::min(
        config_.rto_max,
        static_cast<sim::Time>(static_cast<double>(current_rto_) *
                               config_.rto_backoff));
  }
  arm_timer();
}

void GbnSender::resync() {
  // The retransmission budget for this window is exhausted: whatever blocks
  // those frames carried will never complete at the receiver. Give up on
  // them (the peer's watchdog falls back to software validation), tell the
  // application which sequence range died, and move the stream past the gap
  // with a SYNC frame so later blocks still flow.
  const std::uint64_t first = base_;
  const std::uint64_t last = next_seq_ - 1;
  stats_.frames_abandoned += outstanding_.size();
  ++stats_.stream_resyncs;
  outstanding_.clear();
  base_ = next_seq_;
  attempts_ = 0;
  current_rto_ = config_.retransmit_timeout;

  SequencedFrame sync;
  sync.seq = next_seq_++;
  sync.sync = true;
  transmit_(sync);
  ++stats_.frames_sent;
  outstanding_.push_back(std::move(sync));
  arm_timer();

  if (on_failure_) on_failure_(first, last);
}

void GbnSender::on_ack(std::uint64_t next_expected) {
  ++stats_.acks_received;
  if (next_expected <= base_) return;  // stale cumulative ACK
  while (base_ < next_expected && !outstanding_.empty()) {
    outstanding_.pop_front();
    ++base_;
  }
  // Window progress: the path is alive again — reset the backoff state.
  attempts_ = 0;
  current_rto_ = config_.retransmit_timeout;
  if (timer_armed_) {
    sim_.cancel(timer_);
    timer_armed_ = false;
  }
  pump();
}

void GbnReceiver::on_frame(const SequencedFrame& frame) {
  if (frame.sync) {
    // Sender-initiated resynchronization: accept the jump (it only ever
    // moves forward) and ACK so the sender's window can advance.
    if (frame.seq >= next_expected_) {
      next_expected_ = frame.seq + 1;
      ++stats_.stream_resyncs;
    }
    ack_(next_expected_);
    return;
  }
  if (frame.seq == next_expected_) {
    ++next_expected_;
    ++stats_.frames_delivered;
    deliver_(frame.payload);
  } else {
    // Out-of-order or duplicate: Go-Back-N receivers keep no buffer.
    ++stats_.frames_discarded;
  }
  // Cumulative ACK either way (re-ACKs trigger fast recovery at the sender
  // when combined with the timeout).
  ack_(next_expected_);
}

void GbnReceiver::on_wire(ByteView wire) {
  const auto frame = SequencedFrame::decode(wire);
  if (!frame) {
    // Corrupted or truncated: nothing in it can be trusted, not even the
    // sequence number — drop silently and let the timeout recover.
    ++stats_.frames_corrupted;
    return;
  }
  on_frame(*frame);
}

}  // namespace bm::bmac

#include "bmac/reliable.hpp"

namespace bm::bmac {

GbnSender::GbnSender(sim::Simulation& sim, Config config, TransmitFn transmit)
    : sim_(sim), config_(config), transmit_(std::move(transmit)) {}

void GbnSender::send(Bytes encoded_packet) {
  backlog_.push_back(std::move(encoded_packet));
  pump();
}

void GbnSender::pump() {
  while (!backlog_.empty() && outstanding_.size() < config_.window) {
    SequencedFrame frame;
    frame.seq = next_seq_++;
    frame.payload = std::move(backlog_.front());
    backlog_.pop_front();
    transmit_(frame);
    ++stats_.frames_sent;
    outstanding_.push_back(std::move(frame));
  }
  if (!outstanding_.empty()) arm_timer();
}

void GbnSender::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  timer_ = sim_.schedule(config_.retransmit_timeout, [this] {
    timer_armed_ = false;
    on_timeout();
  });
}

void GbnSender::on_timeout() {
  if (outstanding_.empty()) return;
  // Go-Back-N: retransmit every unacknowledged frame, oldest first.
  ++stats_.timeouts;
  for (const SequencedFrame& frame : outstanding_) {
    transmit_(frame);
    ++stats_.retransmissions;
  }
  arm_timer();
}

void GbnSender::on_ack(std::uint64_t next_expected) {
  ++stats_.acks_received;
  if (next_expected <= base_) return;  // stale cumulative ACK
  while (base_ < next_expected && !outstanding_.empty()) {
    outstanding_.pop_front();
    ++base_;
  }
  if (timer_armed_) {
    sim_.cancel(timer_);
    timer_armed_ = false;
  }
  pump();
}

void GbnReceiver::on_frame(const SequencedFrame& frame) {
  if (frame.seq == next_expected_) {
    ++next_expected_;
    ++stats_.frames_delivered;
    deliver_(frame.payload);
  } else {
    // Out-of-order or duplicate: Go-Back-N receivers keep no buffer.
    ++stats_.frames_discarded;
  }
  // Cumulative ACK either way (re-ACKs trigger fast recovery at the sender
  // when combined with the timeout).
  ack_(next_expected_);
}

}  // namespace bm::bmac

// BMac deployment configuration (§3.5).
//
// The paper drives hardware generation from a YAML file listing the Fabric
// network's identities and the chaincode endorsement policies; a script
// derives encoded ids and regenerates the ends_policy_evaluator. This
// module parses an equivalent YAML subset:
//
//   network:
//     orgs: [Org1, Org2]
//   chaincodes:
//     - name: smallbank
//       policy: "2-outof-2 orgs"
//   hardware:
//     tx_validators: 8
//     engines_per_vscc: 2
//     max_block_txs: 256
//     db_capacity: 8192
//
// and materializes the Msp (one CA per org), the parsed endorsement
// policies and the HwConfig.
#pragma once

#include <variant>

#include "bmac/block_processor.hpp"
#include "fabric/policy.hpp"

namespace bm::bmac {

struct BmacConfigError {
  std::string message;
  std::size_t line = 0;
};

struct BmacConfig {
  std::vector<std::string> orgs;
  std::map<std::string, std::string> chaincode_policies;  ///< name -> text
  HwConfig hw;

  /// Build the MSP (registers every org, in order) — org indices follow
  /// list order, giving the same encoded ids on sender and receiver.
  void populate_msp(fabric::Msp& msp) const;

  /// Parse every chaincode policy against this config's org universe.
  std::map<std::string, fabric::EndorsementPolicy> parse_policies() const;
};

/// Parse the YAML subset above from a string.
std::variant<BmacConfig, BmacConfigError> parse_config(std::string_view text);

/// Parse from a file; throws std::runtime_error on IO or parse failure.
BmacConfig load_config_file(const std::string& path);

}  // namespace bm::bmac

// Tiny declarative command-line flag parser shared by the tool and bench
// binaries, so every executable spells the common flags the same way
// (--trace-out / --metrics-out / --metrics-text / the telemetry outputs)
// instead of growing its own ad-hoc argv scan.
//
// Deliberately minimal: long flags only ("--name VALUE" or boolean
// "--name"), no grouping, no abbreviation — the binaries are drivers for
// experiments, not general CLIs. Strict mode rejects unknown flags (tools,
// where a typo should fail loudly); permissive mode skips them (benches,
// which accept the observability flags but must not choke on harness args).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace bm::cli {

class ArgParser {
 public:
  enum class Unknown {
    kError,   ///< unknown "--flag" fails the parse (tools)
    kIgnore,  ///< unknown arguments are skipped (benches)
  };

  explicit ArgParser(Unknown unknown = Unknown::kError) : unknown_(unknown) {}

  /// Register "--name VALUE" flags. `name` includes the leading dashes.
  void add_string(std::string name, std::string* out, std::string help);
  void add_int(std::string name, int* out, std::string help);
  void add_size(std::string name, std::size_t* out, std::string help);
  void add_double(std::string name, double* out, std::string help);
  /// Register a boolean "--name" flag (no value; sets *out = true).
  void add_flag(std::string name, bool* out, std::string help);

  /// Parse argv[start, argc). Returns false on a malformed or (in strict
  /// mode) unknown flag; error() then describes the failure.
  bool parse(int argc, char** argv, int start = 1);

  const std::string& error() const { return error_; }

  /// "  --name VALUE  help" lines for usage messages, in registration order.
  std::string help_text() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    bool takes_value;
    std::function<bool(const char*)> apply;  ///< false = unparseable value
  };

  std::vector<Spec> specs_;
  Unknown unknown_;
  std::string error_;
};

/// The flag set every experiment binary shares. Observability outputs are
/// deterministic artifacts (Chrome trace JSON, metrics snapshots). Fault
/// schedules ride in a composed scenario file's "faults" section
/// (`--scenario`, configs/scenario_*.json).
struct CommonFlags {
  std::string trace_out;     ///< --trace-out FILE
  std::string metrics_out;   ///< --metrics-out FILE (JSON snapshot)
  std::string metrics_text;  ///< --metrics-text FILE (Prometheus text)

  // Continuous telemetry (see src/obs/telemetry.hpp).
  double sample_interval_ms = 0;  ///< --sample-interval MS (0 = no sampler)
  std::string timeseries_out;     ///< --timeseries-out FILE (JSON columns)
  std::string timeseries_csv;     ///< --timeseries-csv FILE
  std::string slo_config;         ///< --slo-config FILE (SLO rules JSON)
  std::string slo_out;            ///< --slo-out FILE (alert log JSON)
  std::string flight_out;         ///< --flight-out FILE (post-mortem dump)

  /// Register the shared flags on `parser`.
  void register_with(ArgParser& parser);

  /// True when any observability output was requested.
  bool wants_obs() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !metrics_text.empty() || wants_telemetry();
  }

  /// True when continuous telemetry (sampler / SLO monitor / flight
  /// recorder) should run during the simulation.
  bool wants_telemetry() const {
    return sample_interval_ms > 0 || !timeseries_out.empty() ||
           !timeseries_csv.empty() || !slo_config.empty() ||
           !slo_out.empty() || !flight_out.empty();
  }
};

}  // namespace bm::cli

// Shared scenario-config facility.
//
// Every JSON loader in the repo (serve scenarios, SLO rules, fault
// scenarios, composed --scenario files) builds on the same primitives:
// optional readers that keep the caller's default when a key is absent,
// required readers, type checks, ranged numerics, and uniform diagnostics
// that name the file and the JSON path of the offending key, e.g.
//
//   configs/serve_steady.json: serve.traffic.rate_tps: expected number > 0
//
// Usage:
//
//   config::Root root = config::Root::parse(text, "serve", file_label);
//   if (!root.ok()) { *error = root.error(); return std::nullopt; }
//   config::Section s = root.section();
//   s.read_number("rate_tps", &options.rate_tps, config::positive());
//   config::Section traffic = s.object("traffic");
//   traffic.read_time_ms("period_ms", &config.period);
//   if (!root.ok()) { *error = root.error(); return std::nullopt; }
//
// Readers on an absent Section are no-ops that keep defaults, so loaders
// can be written as straight-line code; the first error wins and is checked
// once at the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/json.hpp"
#include "sim/simulation.hpp"

namespace bm::config {

/// Numeric constraint attached to a reader; describe() renders the suffix
/// used in diagnostics ("expected number > 0").
struct Range {
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
  bool min_open = false;
  bool max_open = false;

  bool contains(double v) const;
  bool bounded() const;
  /// "> 0", ">= 0", "in [0, 1]", "in (0, 1)", "<= 8" ...
  std::string describe() const;
};

Range positive();       ///< > 0
Range non_negative();   ///< >= 0
Range unit_interval();  ///< in [0, 1]
Range open_unit();      ///< in (0, 1)
Range at_least(double min);
Range at_most(double max);

namespace detail {
/// Shared per-parse error state: first error wins, later readers no-op.
struct ErrorSink {
  std::string file;   // optional file label prefixed to diagnostics
  std::string error;  // empty while ok
  bool failed = false;

  bool fail(const std::string& path, std::string_view message);
};
}  // namespace detail

/// A view of one JSON node plus its provenance (path from the root label).
/// Default-constructed or missing-key sections are "absent": every reader
/// keeps the caller's default and reports success.
class Section {
 public:
  Section() = default;
  Section(const json::Value* value, std::string path, detail::ErrorSink* sink)
      : value_(value), path_(std::move(path)), sink_(sink) {}

  bool present() const { return value_ != nullptr; }
  explicit operator bool() const { return present(); }
  const std::string& path() const { return path_; }
  const json::Value* raw() const { return value_; }

  bool is_object() const { return value_ != nullptr && value_->is_object(); }
  bool is_array() const { return value_ != nullptr && value_->is_array(); }
  bool is_number() const { return value_ != nullptr && value_->is_number(); }
  bool is_string() const { return value_ != nullptr && value_->is_string(); }

  // --- navigation ----------------------------------------------------------

  /// Member of any type; absent key (or absent parent) yields an absent
  /// Section with the extended path.
  Section member(std::string_view key) const;
  /// Member that, when present, must be an object (diagnostic otherwise).
  Section object(std::string_view key) const;
  /// Member that, when present, must be an array.
  Section array(std::string_view key) const;
  /// Member that must exist and be an array.
  Section require_array(std::string_view key) const;
  /// Array element; path becomes "path[i]". Absent when out of range or not
  /// an array.
  Section element(std::size_t index) const;
  std::size_t array_size() const;

  // --- optional readers (absent key keeps *out, returns true) --------------

  bool read_number(std::string_view key, double* out,
                   const Range& range = Range{}) const;
  bool read_size(std::string_view key, std::size_t* out,
                 const Range& range = Range{}) const;
  bool read_int(std::string_view key, int* out,
                const Range& range = Range{}) const;
  bool read_u64(std::string_view key, std::uint64_t* out,
                const Range& range = Range{}) const;
  /// Accepts true/false or a number (0 = false) for back-compat with the
  /// pre-facility loaders that modelled flags as numbers.
  bool read_bool(std::string_view key, bool* out) const;
  bool read_string(std::string_view key, std::string* out) const;
  /// Durations are written in the file as milliseconds / microseconds and
  /// stored as sim::Time nanoseconds.
  bool read_time_ms(std::string_view key, sim::Time* out,
                    const Range& range = Range{}) const;
  bool read_time_us(std::string_view key, sim::Time* out,
                    const Range& range = Range{}) const;

  /// String-valued enumeration. Unknown values produce a diagnostic listing
  /// the accepted spellings: `unknown value "x" (a | b | c)`.
  template <typename T>
  bool read_enum(std::string_view key, T* out,
                 std::initializer_list<std::pair<std::string_view, T>> choices)
      const {
    std::string text;
    bool was_present = false;
    if (!read_string_presence(key, &text, &was_present)) return false;
    if (!was_present) return true;
    for (const auto& [name, value] : choices) {
      if (text == name) {
        *out = value;
        return true;
      }
    }
    std::string allowed;
    for (const auto& [name, value] : choices) {
      if (!allowed.empty()) allowed += " | ";
      allowed += name;
    }
    return fail_key(key,
                    "unknown value \"" + text + "\" (" + allowed + ")");
  }

  // --- required readers ----------------------------------------------------

  bool require_number(std::string_view key, double* out,
                      const Range& range = Range{}) const;
  bool require_string(std::string_view key, std::string* out,
                      bool non_empty = true) const;

  // --- direct readers on this node (array elements) ------------------------

  bool value_number(double* out, const Range& range = Range{}) const;

  // --- diagnostics ---------------------------------------------------------

  /// Record "<file>: <path>: <message>"; returns false for use in chains.
  bool fail(std::string_view message) const;
  /// Record "<file>: <path>.<key>: <message>".
  bool fail_key(std::string_view key, std::string_view message) const;

 private:
  bool read_string_presence(std::string_view key, std::string* out,
                            bool* present) const;
  std::string key_path(std::string_view key) const;

  const json::Value* value_ = nullptr;
  std::string path_;
  detail::ErrorSink* sink_ = nullptr;
};

/// Owns the parsed JSON document and the error sink the Sections write to.
/// Keep the Root alive for as long as any Section derived from it is used.
class Root {
 public:
  /// Parse JSON text. `root_label` seeds the diagnostic path ("serve",
  /// "slo", "faults", "scenario"); `file_label`, when non-empty, prefixes
  /// every diagnostic with the file name. The root must be a JSON object.
  static Root parse(std::string_view text, std::string root_label,
                    std::string file_label = {});
  /// Read `path` from disk and parse it; diagnostics carry the path.
  static Root load(const std::string& path, std::string root_label);

  bool ok() const { return !sink_->failed; }
  const std::string& error() const { return sink_->error; }
  /// Root object section; absent when parsing failed.
  Section section() const;

  Root(Root&&) = default;
  Root& operator=(Root&&) = default;

 private:
  Root();

  std::optional<json::Value> value_;
  std::string root_label_;
  std::unique_ptr<detail::ErrorSink> sink_;
};

/// Slurp a file; nullopt (and "<path>: cannot open file" in *error) on
/// failure. Shared by loaders that need the text before parsing.
std::optional<std::string> read_file(const std::string& path,
                                     std::string* error = nullptr);

}  // namespace bm::config

#include "common/log.hpp"

#include <cstdio>

namespace bm {

namespace {
LogLevel g_level = LogLevel::Warn;
LogSink g_sink;    // empty -> stderr
LogClock g_clock;  // empty -> no time prefix

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    default:              return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(LogSink sink) { g_sink = std::move(sink); }
void set_log_clock(LogClock clock) { g_clock = std::move(clock); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::string line = msg;
  if (g_clock) {
    const std::int64_t ns = g_clock();
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "[t=%lld.%03lldus] ",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    line = prefix + line;
  }
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), line.c_str());
}
}  // namespace detail

}  // namespace bm

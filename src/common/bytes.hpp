// Byte-buffer primitives shared by every module.
//
// The whole code base passes immutable byte ranges as `ByteView`
// (a std::span of const bytes) and owns data as `Bytes`. Helpers here cover
// the common slicing / concatenation / integer packing patterns used by the
// wire format, the crypto layer and the BMac protocol.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bm {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Bytes of a string's characters (no terminator).
Bytes to_bytes(std::string_view s);

/// Interpret a byte range as text (caller asserts it is printable).
std::string to_string(ByteView b);

/// Constant-free equality (ranges compared element-wise).
bool equal(ByteView a, ByteView b);

/// Append `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenate any number of views into a fresh buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Sub-view helpers; `offset + len` must be within range.
ByteView slice(ByteView b, std::size_t offset, std::size_t len);

/// Big-endian fixed-width packing (network order, used by packet headers).
void put_u16be(Bytes& dst, std::uint16_t v);
void put_u32be(Bytes& dst, std::uint32_t v);
void put_u64be(Bytes& dst, std::uint64_t v);
std::uint16_t get_u16be(ByteView b, std::size_t offset);
std::uint32_t get_u32be(ByteView b, std::size_t offset);
std::uint64_t get_u64be(ByteView b, std::size_t offset);

}  // namespace bm

#include "common/bytes.hpp"

#include <cassert>

namespace bm {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

bool equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0;
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

ByteView slice(ByteView b, std::size_t offset, std::size_t len) {
  assert(offset + len <= b.size());
  return b.subspan(offset, len);
}

void put_u16be(Bytes& dst, std::uint16_t v) {
  dst.push_back(static_cast<std::uint8_t>(v >> 8));
  dst.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(Bytes& dst, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    dst.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u64be(Bytes& dst, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    dst.push_back(static_cast<std::uint8_t>(v >> shift));
}

std::uint16_t get_u16be(ByteView b, std::size_t offset) {
  assert(offset + 2 <= b.size());
  return static_cast<std::uint16_t>((b[offset] << 8) | b[offset + 1]);
}

std::uint32_t get_u32be(ByteView b, std::size_t offset) {
  assert(offset + 4 <= b.size());
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | b[offset + i];
  return v;
}

std::uint64_t get_u64be(ByteView b, std::size_t offset) {
  assert(offset + 8 <= b.size());
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[offset + i];
  return v;
}

}  // namespace bm

// Minimal recursive-descent JSON parser.
//
// Lives in common/ so both the observability layer (registry snapshots,
// Chrome traces) and the scenario-config facility (common/config.hpp) can
// parse JSON without external dependencies. Supports the full JSON grammar
// the serializers produce; not meant as a general-purpose library.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bm::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered, duplicate keys keep the last value.
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; null when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parse `text`; on failure returns nullopt and (if given) fills `error`
/// with a message including the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace bm::json

// Minimal leveled logger for examples and benches.
//
// The library itself stays quiet by default (level = Warn); examples raise
// the level to Info to narrate what the system is doing.
#pragma once

#include <sstream>
#include <string>

namespace bm {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::Debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::Info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::Warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::Error, args...); }

}  // namespace bm

// Minimal leveled logger for examples and benches.
//
// The library itself stays quiet by default (level = Warn); examples raise
// the level to Info to narrate what the system is doing.
//
// Lines go to a pluggable sink (default: stderr) so tests can capture
// output, and when a clock source is registered (see
// sim::attach_log_clock) every line is prefixed with the simulated time —
// ordering log output against trace spans instead of wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace bm {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted line (already filtered by level, without the
/// "[LEVEL]" prefix). Pass an empty function to restore the stderr sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Time source for line prefixes, returning simulated nanoseconds. Pass an
/// empty function to drop the time prefix. The caller owns the lifetime of
/// anything the function captures (detach before destroying a Simulation).
using LogClock = std::function<std::int64_t()>;
void set_log_clock(LogClock clock);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::Debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::Info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::Warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::Error, args...); }

}  // namespace bm

#include "common/thread_pool.hpp"

namespace bm {

ThreadPool::ThreadPool(unsigned concurrency) {
  const unsigned workers = concurrency > 1 ? concurrency - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_tasks(const std::function<void(std::size_t)>& fn,
                           std::size_t count) {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    fn(i);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_count_ = count;
  next_index_.store(0, std::memory_order_relaxed);
  remaining_.store(count, std::memory_order_relaxed);
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();

  run_tasks(fn, count);

  // Wait for completion AND for every worker to leave the claim loop, so the
  // next parallel_for cannot race a straggler against the reset counters.
  lock.lock();
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 &&
           active_workers_ == 0;
  });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(std::size_t)>* job = job_;
    const std::size_t count = job_count_;
    ++active_workers_;
    lock.unlock();

    if (job != nullptr) run_tasks(*job, count);

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

}  // namespace bm

// Small fixed-size worker pool for data-parallel loops.
//
// One blocking primitive, parallel_for, fans indices out across persistent
// worker threads plus the calling thread. Work items claim indices from a
// shared atomic counter, so any partition of indices to threads yields the
// same per-index results; callers that write to per-index slots therefore
// get schedule-independent (deterministic) output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bm {

class ThreadPool {
 public:
  /// `concurrency` is the total parallel width including the calling thread;
  /// concurrency <= 1 spawns no workers and parallel_for runs inline.
  explicit ThreadPool(unsigned concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(i) for every i in [0, count) across the pool and the calling
  /// thread; returns once all calls have completed. fn must not throw.
  /// Not reentrant: parallel_for must not be called from inside fn, and only
  /// one thread may drive the pool at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_tasks(const std::function<void(std::size_t)>& fn,
                 std::size_t count);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job; written by the driver and read by workers under mutex_.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t active_workers_ = 0;  ///< workers inside the claim loop
  bool stop_ = false;
  std::atomic<std::size_t> next_index_{0};
  std::atomic<std::size_t> remaining_{0};
  std::vector<std::thread> workers_;
};

}  // namespace bm

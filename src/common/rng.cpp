#include "common/rng.hpp"

#include <cmath>

namespace bm {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; i += 8) {
    const std::uint64_t r = next_u64();
    for (std::size_t j = 0; j < 8 && i + j < n; ++j)
      out[i + j] = static_cast<std::uint8_t>(r >> (8 * j));
  }
  return out;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

// --- Zipf (Hörmann rejection-inversion) --------------------------------------
//
// Samples rank k in [1, n] with P(k) ∝ k^-s by inverting the integral
// H(x) = ∫ x^-s dx of the continuous envelope, then accepting k when the
// uniform deviate falls under the discrete mass. Expected iterations per
// sample are < 1.15 for any (n, s), independent of n.

Zipf::Zipf(std::uint64_t n, double s) : n_(n == 0 ? 1 : n), s_(s) {
  if (s_ <= 0) return;  // uniform fallback, no precomputation
  hx0_ = h(0.5);
  hxm_ = h(static_cast<double>(n_) + 0.5);
  threshold_ = 1.0 - h_inv(h(1.5) - 1.0);
}

double Zipf::h(double x) const {
  // Antiderivative of x^-s: x^(1-s)/(1-s), or ln(x) at s = 1.
  const double one_minus = 1.0 - s_;
  if (one_minus == 0.0) return std::log(x);
  return std::exp(one_minus * std::log(x)) / one_minus;
}

double Zipf::h_inv(double x) const {
  const double one_minus = 1.0 - s_;
  if (one_minus == 0.0) return std::exp(x);
  return std::exp(std::log(one_minus * x) / one_minus);
}

std::uint64_t Zipf::sample(Rng& rng) const {
  if (s_ <= 0) return rng.uniform(n_);
  for (;;) {
    const double u = hxm_ + rng.uniform_double() * (hx0_ - hxm_);
    const double x = h_inv(u);
    double k = std::floor(x + 0.5);
    if (k < 1) k = 1;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= threshold_ ||
        u >= h(k + 0.5) - std::exp(-s_ * std::log(k))) {
      return static_cast<std::uint64_t>(k) - 1;  // ranks are 0-based
    }
  }
}

}  // namespace bm

#include "common/json.hpp"

#include <cctype>
#include <cstdlib>

namespace bm::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : object)
    if (k == key) found = &v;
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v) || (skip_ws(), pos_ != text_.size())) {
      if (error != nullptr)
        *error = error_.empty()
                     ? "trailing data at offset " + std::to_string(pos_)
                     : error_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null") || fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key))
        return fail("expected object key");
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode (no surrogate-pair handling; the serializers
            // only escape control characters).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) return fail("expected a value");
    out.type = Value::Type::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace bm::json

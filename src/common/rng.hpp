// Deterministic pseudo-random generation.
//
// Everything stochastic in the repository (workload generation, network
// jitter, nonce derivation fallbacks, property-test inputs) flows through
// this xoshiro256** generator so that a fixed seed reproduces a run exactly.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace bm {

/// SplitMix64 step; used to seed xoshiro and for cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna). Not cryptographic; the crypto layer
/// derives nonces deterministically from message+key material instead.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Fill a fresh buffer with `n` random bytes.
  Bytes bytes(std::size_t n);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with exponent s, using
/// Hörmann's rejection-inversion method: O(1) per sample with no per-rank
/// table, so it scales to 10^6-element populations (hot-key workloads,
/// skewed session mixes). s = 0 degenerates to the uniform distribution.
/// Rank 0 is the most popular element.
class Zipf {
 public:
  Zipf(std::uint64_t n, double s);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t size() const { return n_; }
  double exponent() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_ = 1;
  double s_ = 0;
  double hx0_ = 0;   // H(0.5)
  double hxm_ = 0;   // H(n + 0.5)
  double threshold_ = 0;  // s = 1 - Hinv(H(1.5) - 1/1^s)
};

}  // namespace bm

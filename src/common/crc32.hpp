// CRC-32 (IEEE 802.3 polynomial, reflected) for on-disk record integrity.
#pragma once

#include "common/bytes.hpp"

namespace bm {

std::uint32_t crc32(ByteView data);

/// Incremental form: pass the previous result to continue a running CRC.
std::uint32_t crc32_update(std::uint32_t crc, ByteView data);

}  // namespace bm

// Hex encoding/decoding for digests, keys and debug dumps.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace bm {

/// Lower-case hex string of a byte range.
std::string hex_encode(ByteView b);

/// Parse hex (upper or lower case); nullopt on odd length or bad digit.
std::optional<Bytes> hex_decode(std::string_view s);

}  // namespace bm

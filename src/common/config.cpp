#include "common/config.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace bm::config {

// --- Range -------------------------------------------------------------------

bool Range::contains(double v) const {
  if (min_open ? v <= min : v < min) return false;
  if (max_open ? v >= max : v > max) return false;
  return true;
}

bool Range::bounded() const {
  return min != -std::numeric_limits<double>::infinity() ||
         max != std::numeric_limits<double>::infinity();
}

namespace {

std::string format_bound(double v) {
  // Bounds are small human-written numbers; trim trailing zeros.
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::string Range::describe() const {
  const bool has_min = min != -std::numeric_limits<double>::infinity();
  const bool has_max = max != std::numeric_limits<double>::infinity();
  if (has_min && has_max) {
    return std::string("in ") + (min_open ? "(" : "[") + format_bound(min) +
           ", " + format_bound(max) + (max_open ? ")" : "]");
  }
  if (has_min) return (min_open ? "> " : ">= ") + format_bound(min);
  if (has_max) return (max_open ? "< " : "<= ") + format_bound(max);
  return {};
}

Range positive() { return Range{0, std::numeric_limits<double>::infinity(), true, false}; }
Range non_negative() { return Range{0, std::numeric_limits<double>::infinity(), false, false}; }
Range unit_interval() { return Range{0, 1, false, false}; }
Range open_unit() { return Range{0, 1, true, true}; }
Range at_least(double min) {
  return Range{min, std::numeric_limits<double>::infinity(), false, false};
}
Range at_most(double max) {
  return Range{-std::numeric_limits<double>::infinity(), max, false, false};
}

// --- ErrorSink ---------------------------------------------------------------

namespace detail {

bool ErrorSink::fail(const std::string& path, std::string_view message) {
  if (!failed) {
    failed = true;
    error.clear();
    if (!file.empty()) error += file + ": ";
    error += path + ": ";
    error += message;
  }
  return false;
}

}  // namespace detail

// --- Section -----------------------------------------------------------------

std::string Section::key_path(std::string_view key) const {
  if (path_.empty()) return std::string(key);
  return path_ + "." + std::string(key);
}

bool Section::fail(std::string_view message) const {
  if (sink_ != nullptr) sink_->fail(path_, message);
  return false;
}

bool Section::fail_key(std::string_view key, std::string_view message) const {
  if (sink_ != nullptr) sink_->fail(key_path(key), message);
  return false;
}

Section Section::member(std::string_view key) const {
  if (value_ == nullptr) return Section(nullptr, key_path(key), sink_);
  return Section(value_->find(key), key_path(key), sink_);
}

Section Section::object(std::string_view key) const {
  Section s = member(key);
  if (s.present() && !s.is_object()) {
    fail_key(key, "expected an object");
    return Section(nullptr, s.path(), sink_);
  }
  return s;
}

Section Section::array(std::string_view key) const {
  Section s = member(key);
  if (s.present() && !s.is_array()) {
    fail_key(key, "expected an array");
    return Section(nullptr, s.path(), sink_);
  }
  return s;
}

Section Section::require_array(std::string_view key) const {
  Section s = array(key);
  if (!s.present() && sink_ != nullptr && !sink_->failed)
    fail_key(key, "missing required array");
  return s;
}

Section Section::element(std::size_t index) const {
  const std::string path = path_ + "[" + std::to_string(index) + "]";
  if (value_ == nullptr || !value_->is_array() || index >= value_->array.size())
    return Section(nullptr, path, sink_);
  return Section(&value_->array[index], path, sink_);
}

std::size_t Section::array_size() const {
  return is_array() ? value_->array.size() : 0;
}

bool Section::read_number(std::string_view key, double* out,
                          const Range& range) const {
  if (value_ == nullptr) return true;
  const json::Value* v = value_->find(key);
  if (v == nullptr) return true;  // optional: keep default
  if (!v->is_number())
    return fail_key(key, range.bounded()
                             ? "expected number " + range.describe()
                             : std::string("expected a number"));
  if (!range.contains(v->number))
    return fail_key(key, "expected number " + range.describe());
  *out = v->number;
  return true;
}

bool Section::read_size(std::string_view key, std::size_t* out,
                        const Range& range) const {
  double value = static_cast<double>(*out);
  if (!read_number(key, &value, range)) return false;
  if (value < 0) value = 0;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool Section::read_int(std::string_view key, int* out,
                       const Range& range) const {
  double value = static_cast<double>(*out);
  if (!read_number(key, &value, range)) return false;
  *out = static_cast<int>(value);
  return true;
}

bool Section::read_u64(std::string_view key, std::uint64_t* out,
                       const Range& range) const {
  double value = static_cast<double>(*out);
  if (!read_number(key, &value, range)) return false;
  if (value < 0) value = 0;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

bool Section::read_bool(std::string_view key, bool* out) const {
  if (value_ == nullptr) return true;
  const json::Value* v = value_->find(key);
  if (v == nullptr) return true;
  if (v->type == json::Value::Type::kBool) {
    *out = v->boolean;
    return true;
  }
  if (v->is_number()) {  // legacy spelling: 0 / 1
    *out = v->number != 0.0;
    return true;
  }
  return fail_key(key, "expected a boolean");
}

bool Section::read_string_presence(std::string_view key, std::string* out,
                                   bool* present) const {
  *present = false;
  if (value_ == nullptr) return true;
  const json::Value* v = value_->find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) return fail_key(key, "expected a string");
  *present = true;
  *out = v->string;
  return true;
}

bool Section::read_string(std::string_view key, std::string* out) const {
  bool present = false;
  std::string text;
  if (!read_string_presence(key, &text, &present)) return false;
  if (present) *out = std::move(text);
  return true;
}

bool Section::read_time_ms(std::string_view key, sim::Time* out,
                           const Range& range) const {
  double ms = static_cast<double>(*out) / static_cast<double>(sim::kMillisecond);
  if (!read_number(key, &ms, range)) return false;
  *out = static_cast<sim::Time>(ms * static_cast<double>(sim::kMillisecond));
  return true;
}

bool Section::read_time_us(std::string_view key, sim::Time* out,
                           const Range& range) const {
  double us = static_cast<double>(*out) / static_cast<double>(sim::kMicrosecond);
  if (!read_number(key, &us, range)) return false;
  *out = static_cast<sim::Time>(us * static_cast<double>(sim::kMicrosecond));
  return true;
}

bool Section::require_number(std::string_view key, double* out,
                             const Range& range) const {
  if (value_ == nullptr || value_->find(key) == nullptr)
    return fail_key(key, "missing required number");
  return read_number(key, out, range);
}

bool Section::require_string(std::string_view key, std::string* out,
                             bool non_empty) const {
  if (value_ == nullptr || value_->find(key) == nullptr)
    return fail_key(key, "missing required string");
  bool present = false;
  std::string text;
  if (!read_string_presence(key, &text, &present)) return false;
  if (non_empty && text.empty())
    return fail_key(key, "expected a non-empty string");
  *out = std::move(text);
  return true;
}

bool Section::value_number(double* out, const Range& range) const {
  if (value_ == nullptr) return fail("missing required number");
  if (!value_->is_number())
    return fail(range.bounded() ? "expected number " + range.describe()
                                : std::string("expected a number"));
  if (!range.contains(value_->number))
    return fail("expected number " + range.describe());
  *out = value_->number;
  return true;
}

// --- Root --------------------------------------------------------------------

Root::Root() : sink_(std::make_unique<detail::ErrorSink>()) {}

Section Root::section() const {
  if (!value_) return Section(nullptr, root_label_, sink_.get());
  return Section(&*value_, root_label_, sink_.get());
}

Root Root::parse(std::string_view text, std::string root_label,
                 std::string file_label) {
  Root root;
  root.root_label_ = std::move(root_label);
  root.sink_->file = std::move(file_label);
  std::string parse_error;
  auto value = json::parse(text, &parse_error);
  if (!value) {
    root.sink_->fail(root.root_label_, "invalid JSON: " + parse_error);
    return root;
  }
  if (!value->is_object()) {
    root.sink_->fail(root.root_label_, "expected an object");
    return root;
  }
  root.value_ = std::move(value);
  return root;
}

Root Root::load(const std::string& path, std::string root_label) {
  std::string error;
  auto text = read_file(path, &error);
  if (!text) {
    Root root;
    root.root_label_ = std::move(root_label);
    root.sink_->error = error;
    root.sink_->failed = true;
    return root;
  }
  return parse(*text, std::move(root_label), path);
}

std::optional<std::string> read_file(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open file";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace bm::config

#include "common/crc32.hpp"

#include <array>

namespace bm {

namespace {
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
const std::array<std::uint32_t, 256> kTable = make_table();
}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, ByteView data) {
  crc = ~crc;
  for (const std::uint8_t byte : data)
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

std::uint32_t crc32(ByteView data) { return crc32_update(0, data); }

}  // namespace bm

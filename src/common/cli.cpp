#include "common/cli.hpp"

#include <cstdlib>

namespace bm::cli {

void ArgParser::add_string(std::string name, std::string* out,
                           std::string help) {
  specs_.push_back(Spec{std::move(name), std::move(help), true,
                        [out](const char* v) {
                          *out = v;
                          return true;
                        }});
}

void ArgParser::add_int(std::string name, int* out, std::string help) {
  specs_.push_back(Spec{std::move(name), std::move(help), true,
                        [out](const char* v) {
                          char* end = nullptr;
                          const long parsed = std::strtol(v, &end, 10);
                          if (end == v || *end != '\0') return false;
                          *out = static_cast<int>(parsed);
                          return true;
                        }});
}

void ArgParser::add_size(std::string name, std::size_t* out,
                         std::string help) {
  specs_.push_back(Spec{std::move(name), std::move(help), true,
                        [out](const char* v) {
                          char* end = nullptr;
                          const unsigned long long parsed =
                              std::strtoull(v, &end, 10);
                          if (end == v || *end != '\0') return false;
                          *out = static_cast<std::size_t>(parsed);
                          return true;
                        }});
}

void ArgParser::add_double(std::string name, double* out, std::string help) {
  specs_.push_back(Spec{std::move(name), std::move(help), true,
                        [out](const char* v) {
                          char* end = nullptr;
                          const double parsed = std::strtod(v, &end);
                          if (end == v || *end != '\0') return false;
                          *out = parsed;
                          return true;
                        }});
}

void ArgParser::add_flag(std::string name, bool* out, std::string help) {
  specs_.push_back(Spec{std::move(name), std::move(help), false,
                        [out](const char*) {
                          *out = true;
                          return true;
                        }});
}

bool ArgParser::parse(int argc, char** argv, int start) {
  error_.clear();
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    const Spec* match = nullptr;
    for (const Spec& spec : specs_)
      if (spec.name == arg) {
        match = &spec;
        break;
      }
    if (match == nullptr) {
      if (unknown_ == Unknown::kIgnore) continue;
      error_ = "unknown option: " + arg;
      return false;
    }
    const char* value = nullptr;
    if (match->takes_value) {
      if (i + 1 >= argc) {
        error_ = arg + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    if (!match->apply(value)) {
      error_ = "bad value for " + arg + ": " + value;
      return false;
    }
  }
  return true;
}

std::string ArgParser::help_text() const {
  std::string out;
  for (const Spec& spec : specs_) {
    out += "  ";
    out += spec.name;
    if (spec.takes_value) out += " VALUE";
    out += "  ";
    out += spec.help;
    out += '\n';
  }
  return out;
}

void CommonFlags::register_with(ArgParser& parser) {
  parser.add_string("--trace-out", &trace_out,
                    "write a Chrome trace-event JSON of the run");
  parser.add_string("--metrics-out", &metrics_out,
                    "write a JSON metrics snapshot");
  parser.add_string("--metrics-text", &metrics_text,
                    "write the metrics snapshot in Prometheus text format");
  parser.add_double("--sample-interval", &sample_interval_ms,
                    "sample metrics every N ms of sim time");
  parser.add_string("--timeseries-out", &timeseries_out,
                    "write the sampled time series as columnar JSON");
  parser.add_string("--timeseries-csv", &timeseries_csv,
                    "write the sampled time series as CSV");
  parser.add_string("--slo-config", &slo_config,
                    "SLO rules JSON (see configs/slo_default.json)");
  parser.add_string("--slo-out", &slo_out,
                    "write the SLO alert log as JSON");
  parser.add_string("--flight-out", &flight_out,
                    "write the flight-recorder post-mortem dump");
}

}  // namespace bm::cli

#include "serve/scenario.hpp"

#include "common/config.hpp"

namespace bm::serve {

namespace {

std::optional<Scenario> scenario_from_root(const config::Root& root,
                                           std::string* error) {
  Scenario scenario;
  const config::Section s = root.section();
  s.read_string("name", &scenario.name);

  // Every section is an optional layer: a serve run with no "serve"
  // section gets the built-in steady-Poisson defaults, a chaos run only
  // needs "faults", and so on.
  const config::Section serve = s.member("serve");
  if (serve.present()) {
    if (!serve.is_object()) {
      serve.fail("expected an object");
    } else {
      auto options = detail::parse_serve_section(serve);
      if (options) scenario.serve = std::move(*options);
    }
  }

  // Top-level overrides: these re-run the same sub-parsers onto the options
  // already filled from the serve section, so present keys win and absent
  // keys keep the serve-section (or default) value.
  detail::parse_serve_sessions(s.object("sessions"),
                               &scenario.serve.sessions);
  detail::parse_serve_durability(s.object("durability"),
                                 &scenario.serve.network.durability);
  if (scenario.serve.sessions.enabled &&
      scenario.serve.admission.classes < scenario.serve.sessions.rate_classes)
    scenario.serve.admission.classes = scenario.serve.sessions.rate_classes;

  const config::Section slo = s.member("slo");
  if (slo.present()) {
    if (!slo.is_object())
      slo.fail("expected an object");
    else
      scenario.slo = obs::detail::parse_slo_section(slo);
  }

  const config::Section faults = s.member("faults");
  if (faults.present()) {
    if (!faults.is_object())
      faults.fail("expected an object");
    else
      scenario.faults = net::detail::parse_faults_section(faults);
  }

  const config::Section cluster = s.member("cluster");
  if (cluster.present()) {
    if (!cluster.is_object())
      cluster.fail("expected an object");
    else
      scenario.cluster = cluster::detail::parse_cluster_section(cluster);
  }

  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  // A scenario-level name labels the whole experiment; default to the serve
  // section's name so reports stay labelled either way.
  if (scenario.name.empty())
    scenario.name = scenario.serve.name;
  else
    scenario.serve.name = scenario.name;
  return scenario;
}

}  // namespace

std::optional<Scenario> parse_scenario(std::string_view text,
                                       std::string* error) {
  return scenario_from_root(config::Root::parse(text, "scenario"), error);
}

std::optional<Scenario> load_scenario(const std::string& path,
                                      std::string* error) {
  return scenario_from_root(config::Root::load(path, "scenario"), error);
}

}  // namespace bm::serve

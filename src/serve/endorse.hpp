// EndorsementService: the execute phase of execute-order-validate as a
// deadline-aware multi-worker stage (docs/SERVING.md).
//
// Admitted requests wait in the AdmissionQueue until one of `workers`
// simulated endorser lanes frees up. At dispatch the service checks the
// request's deadline — work that already blew its SLO while queued is
// *cancelled* (counted, never executed) instead of wasting a lane on a
// response the client has stopped waiting for. Dispatched requests execute
// the chaincode against committed endorsement state (TxDraft, sequential,
// deterministic) and occupy the lane for a modeled service time; the real
// ECDSA signing of the resulting envelopes is deferred to block cut and
// fanned across a common::ThreadPool (sign_envelopes), which is wall-clock
// parallelism only — per-index output slots keep the bytes deterministic.
#pragma once

#include <functional>

#include "common/thread_pool.hpp"
#include "obs/flight.hpp"
#include "serve/admission.hpp"
#include "workload/network_harness.hpp"

namespace bm::serve {

class EndorsementService {
 public:
  struct Config {
    int workers = 8;  ///< simulated endorser lanes (chaincode containers)
    /// Modeled service time: base + per_endorsement * endorsers(draft).
    /// Defaults approximate a chaincode execution plus one ECDSA sign per
    /// endorsement response at the crypto layer's measured ~110 us/sign.
    sim::Time service_base = 150 * sim::kMicrosecond;
    sim::Time per_endorsement = 120 * sim::kMicrosecond;
    /// Queue-to-dispatch deadline; 0 disables cancellation.
    sim::Time deadline = 50 * sim::kMillisecond;
    /// Thread-pool width for the real signing work; 1 = inline,
    /// 0 = hardware_concurrency.
    unsigned sign_threads = 1;
  };

  struct Stats {
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;  ///< deadline expired while queued
    sim::Time busy_time = 0;      ///< summed lane occupancy
  };

  /// Called (at the completion's simulated time) with the finished draft.
  using CompletionFn =
      std::function<void(AdmittedRequest, workload::TxDraft)>;
  /// Called when a queued request is cancelled past its deadline.
  using CancelFn = std::function<void(AdmittedRequest)>;

  EndorsementService(sim::Simulation& sim, Config config,
                     workload::FabricNetworkHarness& harness,
                     AdmissionQueue& queue);

  void set_completion(CompletionFn fn) { completion_ = std::move(fn); }
  void set_cancelled(CancelFn fn) { cancelled_ = std::move(fn); }

  /// Dispatch waiting requests onto free lanes. Call after every admission
  /// and every completion; idempotent when nothing can start.
  void pump();

  int free_workers() const { return config_.workers - busy_; }
  bool idle() const { return busy_ == 0; }
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

  sim::Time service_time(const workload::TxDraft& draft) const {
    return config_.service_base +
           config_.per_endorsement *
               static_cast<sim::Time>(draft.endorsers.size());
  }

  /// Sign a batch of drafts into envelopes across the thread pool.
  /// Deterministic: slot i holds sign_envelope(drafts[i]).
  std::vector<Bytes> sign_envelopes(
      const std::vector<workload::TxDraft>& drafts);

  /// Snapshot the counters under "<prefix>_..." (idempotent).
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

  /// Bind live counters (same names publish_metrics sets) plus a
  /// "<prefix>_busy_workers" gauge for the continuous-telemetry sampler.
  void attach_observability(obs::Registry& registry, const std::string& prefix);

  /// Record dispatch / deadline-cancel lifecycle events (null to detach).
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

 private:
  sim::Simulation& sim_;
  Config config_;
  workload::FabricNetworkHarness& harness_;
  AdmissionQueue& queue_;
  ThreadPool pool_;
  CompletionFn completion_;
  CancelFn cancelled_;
  int busy_ = 0;
  Stats stats_;

  obs::Counter* live_dispatched_ = nullptr;
  obs::Counter* live_completed_ = nullptr;
  obs::Counter* live_cancelled_ = nullptr;
  obs::Gauge* live_busy_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace bm::serve

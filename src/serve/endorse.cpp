#include "serve/endorse.hpp"

#include <algorithm>

namespace bm::serve {

EndorsementService::EndorsementService(sim::Simulation& sim, Config config,
                                       workload::FabricNetworkHarness& harness,
                                       AdmissionQueue& queue)
    : sim_(sim),
      config_(config),
      harness_(harness),
      queue_(queue),
      pool_(config_.sign_threads == 0 ? std::thread::hardware_concurrency()
                                      : config_.sign_threads) {
  config_.workers = std::max(1, config_.workers);
}

void EndorsementService::pump() {
  while (busy_ < config_.workers) {
    auto request = queue_.pop();
    if (!request) return;
    if (config_.deadline > 0 &&
        sim_.now() - request->arrived > config_.deadline) {
      // The client's SLO already expired while the request queued;
      // executing it would burn a lane on a dead response.
      stats_.cancelled += 1;
      if (live_cancelled_ != nullptr) live_cancelled_->inc();
      if (flight_ != nullptr)
        flight_->record(obs::FlightStage::kTimedOut, request->id, "deadline");
      if (cancelled_) cancelled_(*request);
      continue;
    }

    // Execute the chaincode now, against the state committed so far — the
    // endorsement reads the versions this simulated moment observes.
    workload::TxDraft draft = harness_.prepare_tx();
    const sim::Time service = service_time(draft);
    busy_ += 1;
    stats_.dispatched += 1;
    stats_.busy_time += service;
    if (live_dispatched_ != nullptr) live_dispatched_->inc();
    if (live_busy_ != nullptr) live_busy_->set(busy_);
    if (flight_ != nullptr)
      flight_->record(obs::FlightStage::kDispatched, request->id);
    sim_.schedule(service, [this, request = *request,
                            draft = std::move(draft)]() mutable {
      busy_ -= 1;
      stats_.completed += 1;
      if (live_completed_ != nullptr) live_completed_->inc();
      if (live_busy_ != nullptr) live_busy_->set(busy_);
      if (completion_) completion_(request, std::move(draft));
      pump();
    });
  }
}

std::vector<Bytes> EndorsementService::sign_envelopes(
    const std::vector<workload::TxDraft>& drafts) {
  std::vector<Bytes> envelopes(drafts.size());
  pool_.parallel_for(drafts.size(), [&](std::size_t i) {
    envelopes[i] = harness_.sign_envelope(drafts[i]);
  });
  return envelopes;
}

void EndorsementService::publish_metrics(obs::Registry& registry,
                                         const std::string& prefix) const {
  registry.counter(prefix + "_dispatched_total", "requests dispatched")
      .set(stats_.dispatched);
  registry.counter(prefix + "_completed_total", "endorsements completed")
      .set(stats_.completed);
  registry
      .counter(prefix + "_cancelled_total",
               "queued requests cancelled past their deadline")
      .set(stats_.cancelled);
  registry
      .gauge(prefix + "_busy_seconds",
             "summed simulated lane occupancy")
      .set(static_cast<double>(stats_.busy_time) /
           static_cast<double>(sim::kSecond));
}

void EndorsementService::attach_observability(obs::Registry& registry,
                                              const std::string& prefix) {
  live_dispatched_ =
      &registry.counter(prefix + "_dispatched_total", "requests dispatched");
  live_completed_ =
      &registry.counter(prefix + "_completed_total", "endorsements completed");
  live_cancelled_ =
      &registry.counter(prefix + "_cancelled_total",
                        "queued requests cancelled past their deadline");
  live_busy_ =
      &registry.gauge(prefix + "_busy_workers", "lanes busy right now");
}

}  // namespace bm::serve

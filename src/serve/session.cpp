#include "serve/session.hpp"

namespace bm::serve {

const char* session_verdict_name(SessionVerdict verdict) {
  switch (verdict) {
    case SessionVerdict::kOk: return "ok";
    case SessionVerdict::kBadCert: return "bad_cert";
    case SessionVerdict::kCapacity: return "capacity";
    case SessionVerdict::kUnknownSession: return "unknown_session";
    case SessionVerdict::kIdleEvicted: return "idle_evicted";
    case SessionVerdict::kDuplicateSeq: return "duplicate_seq";
    case SessionVerdict::kOutOfOrderSeq: return "out_of_order_seq";
    case SessionVerdict::kSeqOverflow: return "seq_overflow";
  }
  return "unknown";
}

SessionManager::SessionManager(sim::Simulation& sim, const fabric::Msp& msp,
                               SessionConfig config)
    : sim_(sim),
      msp_(msp),
      config_(std::move(config)),
      wheel_(config_.wheel_granularity) {}

SessionManager::~SessionManager() {
  if (timer_pending_) sim_.cancel(timer_event_);
}

SessionManager::Slot* SessionManager::resolve(SessionId id) {
  const std::uint32_t slot = slot_of(id);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return nullptr;
  Slot& s = slots_[slot];
  if (s.state == State::kFree || s.generation != generation) return nullptr;
  return &s;
}

const SessionManager::Slot* SessionManager::resolve(SessionId id) const {
  return const_cast<SessionManager*>(this)->resolve(id);
}

SessionManager::OpenResult SessionManager::open(
    const fabric::Certificate& cert, int rate_class) {
  if (!msp_.validate(cert)) {
    ++stats_.rejected_bad_cert;
    if (c_rejected_cert_ != nullptr) c_rejected_cert_->inc();
    return {SessionVerdict::kBadCert, kNoSession};
  }
  if (config_.max_sessions > 0 &&
      active_count_ + grace_count_ >= config_.max_sessions) {
    ++stats_.rejected_capacity;
    if (c_rejected_capacity_ != nullptr) c_rejected_capacity_->inc();
    return {SessionVerdict::kCapacity, kNoSession};
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.state = State::kActive;
  const int classes = config_.rate_classes > 0 ? config_.rate_classes : 1;
  s.rate_class = static_cast<std::uint8_t>(
      rate_class < 0 ? 0 : (rate_class >= classes ? classes - 1 : rate_class));
  s.next_seq = 0;
  s.last_active = sim_.now();
  ++active_count_;
  ++stats_.opened;
  if (c_opened_ != nullptr) c_opened_->inc();
  if (g_active_ != nullptr) g_active_->set(static_cast<double>(active_count_));
  touch(slot);
  return {SessionVerdict::kOk,
          (static_cast<SessionId>(s.generation) << 32) | slot};
}

SessionVerdict SessionManager::resume(SessionId id,
                                      const fabric::Certificate& cert) {
  Slot* s = resolve(id);
  if (s == nullptr) {
    ++stats_.unknown_session;
    return SessionVerdict::kUnknownSession;
  }
  if (s->state == State::kActive) return SessionVerdict::kOk;  // no-op
  if (!msp_.validate(cert)) {
    ++stats_.rejected_bad_cert;
    if (c_rejected_cert_ != nullptr) c_rejected_cert_->inc();
    return SessionVerdict::kBadCert;
  }
  s->state = State::kActive;
  s->last_active = sim_.now();
  --grace_count_;
  ++active_count_;
  ++stats_.reconnected;
  if (c_reconnected_ != nullptr) c_reconnected_->inc();
  if (g_active_ != nullptr) g_active_->set(static_cast<double>(active_count_));
  touch(slot_of(id));
  return SessionVerdict::kOk;
}

SessionVerdict SessionManager::submit(SessionId id, std::uint64_t seq) {
  Slot* s = resolve(id);
  if (s == nullptr) {
    ++stats_.unknown_session;
    return SessionVerdict::kUnknownSession;
  }
  if (s->state == State::kGrace) return SessionVerdict::kIdleEvicted;
  if (s->next_seq >= config_.seq_limit) {
    ++stats_.seq_overflow;
    if (c_seq_rejected_ != nullptr) c_seq_rejected_->inc();
    return SessionVerdict::kSeqOverflow;
  }
  if (seq < s->next_seq) {
    ++stats_.seq_duplicate;
    if (c_seq_rejected_ != nullptr) c_seq_rejected_->inc();
    return SessionVerdict::kDuplicateSeq;
  }
  if (seq > s->next_seq) {
    ++stats_.seq_out_of_order;
    if (c_seq_rejected_ != nullptr) c_seq_rejected_->inc();
    return SessionVerdict::kOutOfOrderSeq;
  }
  ++s->next_seq;
  s->last_active = sim_.now();
  touch(slot_of(id));
  return SessionVerdict::kOk;
}

std::uint64_t SessionManager::expected_seq(SessionId id) const {
  const Slot* s = resolve(id);
  return s != nullptr ? s->next_seq : 0;
}

int SessionManager::rate_class(SessionId id) const {
  const Slot* s = resolve(id);
  return s != nullptr ? s->rate_class : 0;
}

bool SessionManager::is_active(SessionId id) const {
  const Slot* s = resolve(id);
  return s != nullptr && s->state == State::kActive;
}

void SessionManager::touch(std::uint32_t slot) {
  wheel_.arm(slot, sim_.now() + config_.idle_timeout);
  reschedule();
}

void SessionManager::on_expire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.state == State::kActive) {
    s.state = State::kGrace;
    --active_count_;
    ++grace_count_;
    ++stats_.evicted;
    if (c_evicted_ != nullptr) c_evicted_->inc();
    if (g_active_ != nullptr)
      g_active_->set(static_cast<double>(active_count_));
    if (config_.grace > 0)
      wheel_.arm(slot, sim_.now() + config_.grace);
    else
      purge(slot);
  } else if (s.state == State::kGrace) {
    purge(slot);
  }
}

void SessionManager::purge(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.state = State::kFree;
  ++s.generation;  // stale SessionIds now resolve to kUnknownSession
  --grace_count_;
  ++stats_.purged;
  free_slots_.push_back(slot);
}

void SessionManager::reschedule() {
  const sim::Time due = wheel_.next_due();
  if (due == TimerWheel::kNever) {
    if (timer_pending_) {
      sim_.cancel(timer_event_);
      timer_pending_ = false;
    }
    return;
  }
  if (timer_pending_ && timer_at_ <= due) return;  // current wakeup is fine
  if (timer_pending_) sim_.cancel(timer_event_);
  const sim::Time delay = due > sim_.now() ? due - sim_.now() : 0;
  timer_at_ = due;
  timer_pending_ = true;
  timer_event_ = sim_.schedule(delay, [this] {
    timer_pending_ = false;
    wheel_.advance(sim_.now(), [this](TimerWheel::Key slot) {
      on_expire(slot);
    });
    reschedule();
  });
}

void SessionManager::attach_observability(obs::Registry& registry) {
  g_active_ =
      &registry.gauge("serve_sessions_active", "sessions currently active");
  c_opened_ = &registry.counter("serve_sessions_opened_total",
                                "sessions opened (successful handshakes)");
  c_evicted_ = &registry.counter("serve_sessions_evicted_total",
                                 "sessions idle-evicted into the grace window");
  c_reconnected_ =
      &registry.counter("serve_sessions_reconnected_total",
                        "sessions resumed within the grace window");
  c_rejected_cert_ =
      &registry.counter("serve_sessions_rejected_bad_cert_total",
                        "handshakes rejected by MSP validation");
  c_rejected_capacity_ =
      &registry.counter("serve_sessions_rejected_capacity_total",
                        "handshakes rejected by the session cap");
  c_seq_rejected_ =
      &registry.counter("serve_session_seq_rejected_total",
                        "requests rejected by sequence-number checks");
  g_active_->set(static_cast<double>(active_count_));
}

void SessionManager::publish_metrics(obs::Registry& registry) const {
  registry.gauge("serve_sessions_active", "sessions currently active")
      .set(static_cast<double>(active_count_));
  registry
      .counter("serve_sessions_opened_total",
               "sessions opened (successful handshakes)")
      .set(stats_.opened);
  registry
      .counter("serve_sessions_evicted_total",
               "sessions idle-evicted into the grace window")
      .set(stats_.evicted);
  registry
      .counter("serve_sessions_reconnected_total",
               "sessions resumed within the grace window")
      .set(stats_.reconnected);
  registry
      .counter("serve_sessions_rejected_bad_cert_total",
               "handshakes rejected by MSP validation")
      .set(stats_.rejected_bad_cert);
  registry
      .counter("serve_sessions_rejected_capacity_total",
               "handshakes rejected by the session cap")
      .set(stats_.rejected_capacity);
  registry
      .counter("serve_session_seq_rejected_total",
               "requests rejected by sequence-number checks")
      .set(stats_.seq_duplicate + stats_.seq_out_of_order +
           stats_.seq_overflow);
  registry
      .counter("serve_sessions_purged_total",
               "sessions purged after the grace window expired")
      .set(stats_.purged);
}

}  // namespace bm::serve

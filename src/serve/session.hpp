// Session/identity lifecycle layer for the serving front end.
//
// The paper's deployment model is a network-attached peer absorbing traffic
// from many Fabric clients, each bound to an MSP identity. This layer gives
// the open-loop pipeline that client model: every request belongs to an
// authenticated session with a monotone sequence number, a rate class that
// feeds the admission queue's per-class caps, and an idle timer on an O(1)
// hierarchical wheel (serve/timer_wheel.hpp) so 10^6 concurrent sessions
// never cost a per-tick scan.
//
// Lifecycle:
//
//            open(cert)                     idle_timeout
//   [free] -------------> [active] ----------------------> [grace]
//     ^                      ^                                |
//     |                      |  resume(id, cert) within       |
//     |                      +------ grace window ------------+
//     |                                                       |
//     +------------------- grace expired (purge) -------------+
//
// A session evicted for idleness keeps its sequence state for `grace`;
// reconnecting within the window resumes exactly where it left off, after
// which the old SessionId is forgotten (generation bump) and a reconnect
// must perform a fresh handshake.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fabric/identity.hpp"
#include "obs/metrics.hpp"
#include "serve/timer_wheel.hpp"
#include "sim/simulation.hpp"

namespace bm::serve {

/// Opaque session handle: (generation << 32) | slot. Never 0 for a live
/// session, so 0 doubles as "no session yet".
using SessionId = std::uint64_t;
constexpr SessionId kNoSession = 0;

enum class SessionVerdict : std::uint8_t {
  kOk = 0,
  kBadCert,         ///< handshake failed MSP validation
  kCapacity,        ///< session table full
  kUnknownSession,  ///< stale id: never opened, or purged after grace
  kIdleEvicted,     ///< session is in the grace window; resume() first
  kDuplicateSeq,    ///< seq below the next expected (replay)
  kOutOfOrderSeq,   ///< seq above the next expected (gap)
  kSeqOverflow,     ///< sequence space exhausted (seq_limit reached)
};

const char* session_verdict_name(SessionVerdict verdict);

/// Scenario knobs for the session layer. The client-model knobs
/// (bad_cert_share, duplicate_rate, out_of_order_rate, zipf_s, preconnect)
/// shape the synthetic population the pipeline drives through the manager;
/// the rest configure the manager itself.
struct SessionConfig {
  bool enabled = false;          ///< off = PR5-compatible anonymous arrivals
  std::size_t population = 1000; ///< configured client population
  std::size_t max_sessions = 0;  ///< concurrent session cap; 0 = unbounded
  sim::Time idle_timeout = 30 * sim::kSecond;
  sim::Time grace = 10 * sim::kSecond;  ///< reconnect window after eviction
  sim::Time wheel_granularity = 10 * sim::kMillisecond;
  int rate_classes = 2;
  /// Sequence space per session; submits past this return kSeqOverflow.
  std::uint64_t seq_limit = std::numeric_limits<std::uint32_t>::max();
  std::size_t cert_pool = 32;  ///< distinct client certs shared by the population

  // Client model (consumed by serve/pipeline, not the manager):
  double zipf_s = 0.0;           ///< session-population skew; 0 = uniform
  double bad_cert_share = 0.0;   ///< handshakes presenting a forged cert
  double duplicate_rate = 0.0;   ///< requests replaying the previous seq
  double out_of_order_rate = 0.0;///< requests skipping a seq
  bool preconnect = false;       ///< open the whole population at t = 0
};

struct SessionStats {
  std::uint64_t opened = 0;
  std::uint64_t rejected_bad_cert = 0;
  std::uint64_t rejected_capacity = 0;
  std::uint64_t evicted = 0;
  std::uint64_t reconnected = 0;
  std::uint64_t purged = 0;
  std::uint64_t seq_duplicate = 0;
  std::uint64_t seq_out_of_order = 0;
  std::uint64_t seq_overflow = 0;
  std::uint64_t unknown_session = 0;
};

/// Owns the session table and its idle timers. Single-threaded like the
/// rest of the DES; handshake certificate validation delegates to the
/// (thread-safe) Msp. All operations are O(1); memory is linear in the
/// peak concurrent session count, not in events.
class SessionManager {
 public:
  struct OpenResult {
    SessionVerdict verdict = SessionVerdict::kOk;
    SessionId id = kNoSession;
  };

  SessionManager(sim::Simulation& sim, const fabric::Msp& msp,
                 SessionConfig config);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Handshake: validate `cert` against the MSP and allocate a session in
  /// `rate_class` (clamped to [0, rate_classes)).
  OpenResult open(const fabric::Certificate& cert, int rate_class);

  /// Reconnect an evicted session within its grace window; sequence state
  /// resumes. kUnknownSession once the grace window has expired.
  SessionVerdict resume(SessionId id, const fabric::Certificate& cert);

  /// Submit a request with an explicit sequence number; kOk advances the
  /// expected sequence and refreshes the idle timer.
  SessionVerdict submit(SessionId id, std::uint64_t seq);

  /// The sequence number the manager expects next (what a well-behaved
  /// client should send); 0 for unknown sessions.
  std::uint64_t expected_seq(SessionId id) const;

  /// Rate class a session was opened in; 0 for unknown sessions.
  int rate_class(SessionId id) const;

  bool is_active(SessionId id) const;

  std::size_t active_count() const { return active_count_; }
  std::size_t grace_count() const { return grace_count_; }
  /// Slots ever allocated — the memory footprint driver.
  std::size_t table_size() const { return slots_.size(); }
  const SessionStats& stats() const { return stats_; }
  const TimerWheel& wheel() const { return wheel_; }

  /// Bind live gauges/counters (serve_sessions_active, ..._opened_total,
  /// ..._evicted_total, ..._reconnected_total, ...) so the time-series
  /// sampler sees session churn as it happens.
  void attach_observability(obs::Registry& registry);
  /// Idempotent end-of-run snapshot of the same metrics.
  void publish_metrics(obs::Registry& registry) const;

 private:
  enum class State : std::uint8_t { kFree, kActive, kGrace };

  struct Slot {
    std::uint32_t generation = 1;
    State state = State::kFree;
    std::uint8_t rate_class = 0;
    std::uint64_t next_seq = 0;
    sim::Time last_active = 0;
  };

  Slot* resolve(SessionId id);
  const Slot* resolve(SessionId id) const;
  static std::uint32_t slot_of(SessionId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFull);
  }
  void touch(std::uint32_t slot);
  void on_expire(std::uint32_t slot);
  void purge(std::uint32_t slot);
  void reschedule();

  sim::Simulation& sim_;
  const fabric::Msp& msp_;
  SessionConfig config_;
  TimerWheel wheel_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t active_count_ = 0;
  std::size_t grace_count_ = 0;
  SessionStats stats_;

  bool timer_pending_ = false;
  sim::EventId timer_event_ = 0;
  sim::Time timer_at_ = 0;

  obs::Gauge* g_active_ = nullptr;
  obs::Counter* c_opened_ = nullptr;
  obs::Counter* c_evicted_ = nullptr;
  obs::Counter* c_reconnected_ = nullptr;
  obs::Counter* c_rejected_cert_ = nullptr;
  obs::Counter* c_rejected_capacity_ = nullptr;
  obs::Counter* c_seq_rejected_ = nullptr;
};

}  // namespace bm::serve
